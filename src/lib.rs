//! # softsim — high-level cycle-accurate HW/SW co-simulation for FPGA
//! soft processors
//!
//! A Rust reproduction of Ou & Prasanna, *"MATLAB/Simulink Based
//! Hardware/Software Co-Simulation for Designing Using FPGA Configured
//! Soft Processors"* (IPDPS 2005).
//!
//! The facade re-exports every subsystem:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`isa`] | `softsim-isa` | MB32 instruction set, assembler, images |
//! | [`iss`] | `softsim-iss` | cycle-accurate instruction-set simulator |
//! | [`blocks`] | `softsim-blocks` | System-Generator-style block simulator |
//! | [`bus`] | `softsim-bus` | FSL / LMB / OPB bus models |
//! | [`cosim`] | `softsim-cosim` | **the co-simulation engine (the paper's contribution)** |
//! | [`rtl`] | `softsim-rtl` | event-driven RTL baseline ("ModelSim") |
//! | [`resource`] | `softsim-resource` | rapid resource estimation |
//! | [`energy`] | `softsim-energy` | rapid energy estimation (the paper's §V extension) |
//! | [`apps`] | `softsim-apps` | CORDIC divider + block matmul evaluation apps |
//! | [`trace`] | `softsim-trace` | cycle-domain tracing, stall attribution, profiling |
//! | [`metrics`] | `softsim-metrics` | windowed metrics registry, Prometheus/JSON export, run diffing |
//! | [`resilience`] | `softsim-resilience` | fault injection, watchdogs, checkpoint/restore, divergence localization |
//!
//! # Quickstart
//!
//! ```
//! use softsim::cosim::{CoSim, CoSimStop};
//! use softsim::isa::asm::assemble;
//!
//! let program = assemble("
//!     addik r3, r0, 6
//!     muli  r3, r3, 7
//!     halt
//! ").unwrap();
//! let mut sim = CoSim::software_only(&program);
//! assert_eq!(sim.run(1_000), CoSimStop::Halted);
//! assert_eq!(sim.cpu().reg(softsim::isa::Reg::new(3)), 42);
//! println!("took {} cycles = {:.2} µs at 50 MHz",
//!          sim.cpu_stats().cycles, sim.time_us());
//! ```

#![warn(missing_docs)]

pub use softsim_apps as apps;
pub use softsim_blocks as blocks;
pub use softsim_bus as bus;
pub use softsim_cosim as cosim;
pub use softsim_energy as energy;
pub use softsim_isa as isa;
pub use softsim_iss as iss;
pub use softsim_metrics as metrics;
pub use softsim_profile as profile;
pub use softsim_resilience as resilience;
pub use softsim_resource as resource;
pub use softsim_rtl as rtl;
pub use softsim_trace as trace;
