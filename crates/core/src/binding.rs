//! Bindings between FSL channels and block-graph gateways.
//!
//! In the paper, the *MicroBlaze Simulink block* "implements the FSL FIFO
//! and the data input and output interfaces" and moves words between the
//! processor simulation and the System Generator design (§III-A/B). A
//! [`FslToHw`]/[`FslFromHw`] pair describes exactly that wiring for one
//! channel: which gateway ports of the peripheral graph carry the FSL
//! data, valid, control and handshake signals.

/// Wiring of one processor → hardware FSL channel into gateway inputs.
#[derive(Debug, Clone)]
pub struct FslToHw {
    /// FSL channel index (0..8).
    pub channel: usize,
    /// Gateway-in name receiving the 32-bit data word.
    pub data: String,
    /// Gateway-in name receiving the `exists`/valid strobe (1 bit).
    pub valid: String,
    /// Gateway-in name receiving the control bit (`Out#_control`), if the
    /// peripheral distinguishes control words.
    pub control: Option<String>,
    /// Gateway-out name the peripheral drives low to defer consumption
    /// (defaults to always-ready when absent).
    pub ready: Option<String>,
}

impl FslToHw {
    /// Standard naming: `fsl{ch}_data` / `fsl{ch}_valid` / `fsl{ch}_ctrl`.
    pub fn standard(channel: usize) -> FslToHw {
        FslToHw {
            channel,
            data: format!("fsl{channel}_data"),
            valid: format!("fsl{channel}_valid"),
            control: Some(format!("fsl{channel}_ctrl")),
            ready: None,
        }
    }

    /// Drops the control-bit wire (peripherals that only take data words).
    pub fn without_control(mut self) -> FslToHw {
        self.control = None;
        self
    }

    /// Adds a ready/backpressure wire.
    pub fn with_ready(mut self, name: impl Into<String>) -> FslToHw {
        self.ready = Some(name.into());
        self
    }
}

/// Wiring of one hardware → processor FSL channel from gateway outputs.
#[derive(Debug, Clone)]
pub struct FslFromHw {
    /// FSL channel index (0..8).
    pub channel: usize,
    /// Gateway-out name producing the 32-bit result word.
    pub data: String,
    /// Gateway-out name strobing result validity (1 bit).
    pub valid: String,
    /// Gateway-out name driving the control bit, if any.
    pub control: Option<String>,
}

impl FslFromHw {
    /// Standard naming: `fsl{ch}_out_data` / `fsl{ch}_out_valid`.
    pub fn standard(channel: usize) -> FslFromHw {
        FslFromHw {
            channel,
            data: format!("fsl{channel}_out_data"),
            valid: format!("fsl{channel}_out_valid"),
            control: None,
        }
    }
}
