//! # softsim-cosim — MATLAB/Simulink-style HW/SW co-simulation engine
//!
//! The primary contribution of the reproduced paper: a **high-level
//! cycle-accurate hardware/software co-simulation environment** for FPGA
//! soft processors. It composes
//!
//! * the cycle-accurate MB32 instruction-set simulator (`softsim-iss`),
//! * arithmetic-level block models of customized hardware peripherals
//!   (`softsim-blocks`), and
//! * cycle-accurate FSL bus models (`softsim-bus`)
//!
//! into one lock-step simulation ([`CoSim`]), avoiding register-transfer /
//! gate-level simulation entirely while preserving per-cycle functional
//! behavior. Blocking FSL reads/writes stall the simulated processor; the
//! peripheral consumes and produces words through named gateway bindings
//! ([`FslToHw`] / [`FslFromHw`]), mirroring the paper's MicroBlaze
//! Simulink block.
//!
//! ```
//! use softsim_cosim::{CoSim, CoSimStop};
//! use softsim_isa::asm::assemble;
//!
//! let image = assemble("
//!     addik r3, r0, 21
//!     addk  r3, r3, r3
//!     halt
//! ").unwrap();
//! let mut sim = CoSim::software_only(&image);
//! assert_eq!(sim.run(1_000), CoSimStop::Halted);
//! assert_eq!(sim.cpu().reg(softsim_isa::Reg::new(3)), 42);
//! ```

#![warn(missing_docs)]

mod binding;
mod cosim;
pub mod opb;

pub use binding::{FslFromHw, FslToHw};
pub use cosim::{CoSim, CoSimState, CoSimStop, DeadlockCause, HwStats, Peripheral, PAPER_CLOCK_HZ};
pub use opb::OpbBlockAdapter;

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_blocks::library::{AddSub, AddSubOp, Constant, Delay, Register};
    use softsim_blocks::{Fix, FixFmt, Graph};
    use softsim_isa::asm::assemble;
    use softsim_isa::reg::r;

    /// A trivial peripheral: adds 100 to every word sent on FSL0 and
    /// returns it on FSL0, one cycle later.
    fn adder_peripheral() -> Peripheral {
        let mut g = Graph::new();
        let data = g.gateway_in("fsl0_data", FixFmt::INT32);
        let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
        let hundred = g.add("hundred", Constant::int(100, FixFmt::INT32));
        let add = g.add("add", AddSub::new(AddSubOp::Add, FixFmt::INT32));
        let rdata = g.add("rdata", Register::zeroed(FixFmt::INT32));
        let rvalid = g.add("rvalid", Delay::new(FixFmt::BOOL, 1));
        g.connect(data, 0, add, 0).unwrap();
        g.connect(hundred, 0, add, 1).unwrap();
        g.connect(add, 0, rdata, 0).unwrap();
        g.connect(valid, 0, rdata, 1).unwrap();
        g.connect(valid, 0, rvalid, 0).unwrap();
        g.gateway_out("fsl0_out_data", rdata, 0);
        g.gateway_out("fsl0_out_valid", rvalid, 0);
        let mut g = g;
        g.compile().unwrap();
        Peripheral::new(
            g,
            vec![FslToHw::standard(0).without_control()],
            vec![FslFromHw::standard(0)],
        )
    }

    #[test]
    fn software_only_runs() {
        let image = assemble("addik r3, r0, 7\nmuli r3, r3, 6\nhalt\n").unwrap();
        let mut sim = CoSim::software_only(&image);
        assert_eq!(sim.run(100), CoSimStop::Halted);
        assert_eq!(sim.cpu().reg(r(3)), 42);
    }

    #[test]
    fn round_trip_through_hardware_adder() {
        let image = assemble(
            "addik r3, r0, 23\n\
             put r3, rfsl0\n\
             get r4, rfsl0\n\
             halt\n",
        )
        .unwrap();
        let mut sim = CoSim::with_peripheral(&image, adder_peripheral());
        assert_eq!(sim.run(1_000), CoSimStop::Halted);
        assert_eq!(sim.cpu().reg(r(4)), 123, "hardware added 100");
        let hw = sim.hw_stats();
        assert_eq!(hw.words_to_hw, 1);
        assert_eq!(hw.words_from_hw, 1);
        assert_eq!(hw.output_overflows, 0);
    }

    #[test]
    fn blocking_get_overlaps_with_hardware_latency() {
        // Send 4 words, then read 4 results; the CPU stalls on `get`
        // while the peripheral pipeline catches up.
        let image = assemble(
            "addik r3, r0, 0\n\
             addik r5, r0, 4\n\
             send: put r3, rfsl0\n\
             addik r3, r3, 1\n\
             addik r5, r5, -1\n\
             bnei r5, send\n\
             addik r5, r0, 4\n\
             addik r6, r0, 0\n\
             recv: get r4, rfsl0\n\
             addk r6, r6, r4\n\
             addik r5, r5, -1\n\
             bnei r5, recv\n\
             halt\n",
        )
        .unwrap();
        let mut sim = CoSim::with_peripheral(&image, adder_peripheral());
        assert_eq!(sim.run(10_000), CoSimStop::Halted);
        // Results: (0..4).map(|x| x + 100).sum() = 406.
        assert_eq!(sim.cpu().reg(r(6)), 406);
        assert_eq!(sim.hw_stats().words_from_hw, 4);
    }

    #[test]
    fn time_us_uses_paper_clock() {
        let image = assemble("halt\n").unwrap();
        let mut sim = CoSim::software_only(&image);
        sim.run(10);
        // halt takes 1 cycle at 50 MHz = 0.02 µs.
        assert!((sim.time_us() - 0.02).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "missing gateway-in")]
    fn misnamed_binding_panics_at_attach() {
        let mut g = Graph::new();
        let _ = g.gateway_in("wrong_name", FixFmt::INT32);
        g.compile().unwrap();
        let _ = Peripheral::new(g, vec![FslToHw::standard(0)], vec![]);
    }

    #[test]
    fn fix_bits_cross_bus_preserve_sign() {
        // A negative 32-bit word sent over the bus must come back negative.
        let x = Fix::from_int(-5, FixFmt::INT32);
        let bits = x.to_bits() as u32;
        let back = Fix::from_bits(bits as u64, FixFmt::INT32);
        assert_eq!(back.raw(), -5);
    }
}
