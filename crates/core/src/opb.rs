//! OPB attachment of customized hardware peripherals.
//!
//! The paper supports both dedicated Fast Simplex Links and the shared
//! IBM On-chip Peripheral Bus for processor ↔ peripheral communication
//! (§III-A). [`OpbBlockAdapter`] exposes the same block-graph peripheral
//! behind a memory-mapped register interface so the two attachments can
//! be compared on identical hardware — the FSL-vs-OPB ablation.
//!
//! # Register map (word offsets from the peripheral base)
//!
//! | offset | access | meaning |
//! |---|---|---|
//! | `0x0` | read | STATUS: bit 0 = result available, bit 1 = input full |
//! | `0x4` | read | RDATA: pops the next result word |
//! | `0x8` | write | WDATA: enqueues a data word |
//! | `0xC` | write | WCTRL: enqueues a control word |

use softsim_blocks::graph::{InputHandle, OutputHandle};
use softsim_blocks::{Fix, FixFmt, Graph};
use softsim_bus::OpbPeripheral;
use softsim_trace::{SharedSink, TraceEvent};
use std::collections::VecDeque;

/// STATUS register offset.
pub const REG_STATUS: u32 = 0x0;
/// RDATA register offset.
pub const REG_RDATA: u32 = 0x4;
/// WDATA register offset.
pub const REG_WDATA: u32 = 0x8;
/// WCTRL register offset.
pub const REG_WCTRL: u32 = 0xC;

/// Input-queue capacity of the adapter (same as an FSL FIFO).
pub const INPUT_DEPTH: usize = 16;

/// A block-graph peripheral behind an OPB register interface.
///
/// The wrapped graph uses the standard channel-0 gateway names
/// (`fsl0_data`/`fsl0_valid`/`fsl0_ctrl` in, `fsl0_out_data`/
/// `fsl0_out_valid` out) so the *same* peripheral can be attached either
/// way.
pub struct OpbBlockAdapter {
    graph: Graph,
    h_data: InputHandle,
    h_valid: InputHandle,
    h_ctrl: Option<InputHandle>,
    h_out_data: OutputHandle,
    h_out_valid: OutputHandle,
    /// Words awaiting delivery into the graph: `(data, control)`.
    input: VecDeque<(u32, bool)>,
    /// Result words awaiting an RDATA read.
    output: VecDeque<u32>,
    /// Bus clocks elapsed — the adapter's cycle domain (the OPB is
    /// clocked by the processor, so this tracks CPU cycles one-to-one).
    cycle: u64,
    /// Optional observability sink for word transfers across the bus.
    sink: Option<SharedSink>,
}

impl OpbBlockAdapter {
    /// Wraps a compiled graph with standard channel-0 gateways.
    ///
    /// # Panics
    /// Panics if the graph lacks the standard gateways.
    pub fn new(graph: Graph) -> OpbBlockAdapter {
        let h_data = graph.input_handle("fsl0_data").expect("fsl0_data gateway");
        let h_valid = graph.input_handle("fsl0_valid").expect("fsl0_valid gateway");
        let h_ctrl = graph.input_handle("fsl0_ctrl").ok();
        let h_out_data = graph.output_handle("fsl0_out_data").expect("fsl0_out_data gateway");
        let h_out_valid = graph.output_handle("fsl0_out_valid").expect("fsl0_out_valid gateway");
        OpbBlockAdapter {
            graph,
            h_data,
            h_valid,
            h_ctrl,
            h_out_data,
            h_out_valid,
            input: VecDeque::new(),
            output: VecDeque::new(),
            cycle: 0,
            sink: None,
        }
    }

    /// Results currently buffered (testing/diagnostics).
    pub fn pending_results(&self) -> usize {
        self.output.len()
    }

    /// Attaches an observability sink. Word transfers across the bus are
    /// reported as [`TraceEvent::GatewayWord`] with `peripheral = 0xff`
    /// (distinguishing the OPB attachment from FSL-attached peripherals)
    /// and the adapter's own clock count as the cycle.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    #[inline]
    fn emit(&self, to_hw: bool, data: u32) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().event(&TraceEvent::GatewayWord {
                cycle: self.cycle,
                peripheral: 0xff,
                to_hw,
                data,
            });
        }
    }
}

impl OpbPeripheral for OpbBlockAdapter {
    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            REG_STATUS => {
                let exists = !self.output.is_empty() as u32;
                let full = (self.input.len() >= INPUT_DEPTH) as u32;
                exists | (full << 1)
            }
            REG_RDATA => self.output.pop_front().unwrap_or(0),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            REG_WDATA if self.input.len() < INPUT_DEPTH => {
                self.input.push_back((value, false));
            }
            REG_WCTRL if self.input.len() < INPUT_DEPTH => {
                self.input.push_back((value, true));
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        // Deliver at most one word per clock into the graph, exactly as
        // the FSL gateway binding does.
        let (data, valid, ctrl) = match self.input.pop_front() {
            Some((d, c)) => (d, true, c),
            None => (0, false, false),
        };
        if valid {
            self.emit(true, data);
        }
        self.graph.set_input_fast(self.h_data, Fix::from_bits(data as u64, FixFmt::INT32));
        self.graph.set_input_fast(self.h_valid, Fix::from_int(valid as i64, FixFmt::BOOL));
        if let Some(h) = self.h_ctrl {
            self.graph.set_input_fast(h, Fix::from_int(ctrl as i64, FixFmt::BOOL));
        }
        self.graph.step();
        if !self.graph.output_fast(self.h_out_valid).is_zero() {
            let out = self.graph.output_fast(self.h_out_data).to_bits() as u32;
            self.emit(false, out);
            self.output.push_back(out);
        }
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_blocks::library::{AddSub, AddSubOp, Constant, Delay, Register};

    fn adder_graph() -> Graph {
        let mut g = Graph::new();
        let data = g.gateway_in("fsl0_data", FixFmt::INT32);
        let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
        let hundred = g.add("hundred", Constant::int(100, FixFmt::INT32));
        let add = g.add("add", AddSub::new(AddSubOp::Add, FixFmt::INT32));
        let rdata = g.add("rdata", Register::zeroed(FixFmt::INT32));
        let rvalid = g.add("rvalid", Delay::new(FixFmt::BOOL, 1));
        g.connect(data, 0, add, 0).unwrap();
        g.connect(hundred, 0, add, 1).unwrap();
        g.connect(add, 0, rdata, 0).unwrap();
        g.connect(valid, 0, rdata, 1).unwrap();
        g.connect(valid, 0, rvalid, 0).unwrap();
        g.gateway_out("fsl0_out_data", rdata, 0);
        g.gateway_out("fsl0_out_valid", rvalid, 0);
        g.compile().unwrap();
        g
    }

    #[test]
    fn adapter_round_trip() {
        let mut a = OpbBlockAdapter::new(adder_graph());
        assert_eq!(a.read(REG_STATUS), 0);
        a.write(REG_WDATA, 23);
        // Word flows through the graph over two ticks (latch + present).
        a.tick();
        a.tick();
        assert_eq!(a.read(REG_STATUS) & 1, 1);
        assert_eq!(a.read(REG_RDATA), 123);
        assert_eq!(a.read(REG_STATUS), 0);
    }

    #[test]
    fn status_full_bit() {
        let mut a = OpbBlockAdapter::new(adder_graph());
        for i in 0..INPUT_DEPTH as u32 {
            a.write(REG_WDATA, i);
        }
        assert_eq!(a.read(REG_STATUS) & 2, 2, "input queue full");
        a.tick();
        assert_eq!(a.read(REG_STATUS) & 2, 0, "one word consumed");
    }
}
