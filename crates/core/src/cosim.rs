//! The hardware/software co-simulation engine.
//!
//! [`CoSim`] is the Rust realization of the paper's contribution (Fig. 1 /
//! Fig. 2): it advances, in lock-step and one clock cycle at a time,
//!
//! 1. the **software execution platform** — the cycle-accurate MB32
//!    instruction-set simulator;
//! 2. the **communication interface** — the FSL FIFO models with their
//!    blocking/non-blocking semantics; and
//! 3. the **customized hardware peripherals** — the high-level
//!    arithmetic block graph.
//!
//! Because every component is cycle-accurate, the functional behavior per
//! simulated clock matches the low-level implementation (validated against
//! the event-driven RTL model in the integration tests), while the
//! simulation itself runs one to two orders of magnitude faster — the
//! paper's headline result.

use crate::binding::{FslFromHw, FslToHw};
use softsim_blocks::graph::{GraphState, InputHandle, OutputHandle};
use softsim_blocks::{Fix, FixFmt, Graph};
use softsim_bus::{FslBank, FslBankState, FslWord};
use softsim_isa::{CpuConfig, Image};
use softsim_iss::{Cpu, CpuSnapshot, CpuStats, Event, Fault, FslBlock, TranslatedRun};
use softsim_trace::{shared, Fanout, FifoDir, GuestProfile, SharedSink, TraceEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// The clock frequency of the paper's experiments (§IV): 50 MHz on the
/// ML300 Virtex-II Pro board.
pub const PAPER_CLOCK_HZ: f64 = 50e6;

/// Consecutive no-progress stalled cycles before [`CoSim::run`] attempts
/// a fast-forward jump. Short stalls (pipeline latency bubbles) resolve
/// themselves cheaper than the quiescence scan.
const FF_MIN_STREAK: u64 = 4;

/// Cycles to keep stepping after a failed fast-forward eligibility check
/// before probing again, so a busy-but-stalled system does not pay the
/// quiescence scan every cycle.
const FF_COOLDOWN: u64 = 64;

/// Why a co-simulation run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoSimStop {
    /// The software executed `halt`.
    Halted,
    /// The cycle budget was exhausted. When the processor was blocked on
    /// a Fast Simplex Link at that moment, `blocked` says which channel
    /// and direction — the stall context the tracer already follows, now
    /// surfaced in the stop reason instead of being lost.
    CycleLimit {
        /// The FSL transfer the CPU was blocked on, if any.
        blocked: Option<FslBlock>,
    },
    /// The liveness watchdog fired: no forward progress for the
    /// configured number of cycles (see [`CoSim::set_watchdog`]).
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// What the system was stuck on.
        cause: DeadlockCause,
    },
    /// The processor faulted.
    Fault(Fault),
}

impl std::fmt::Display for CoSimStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoSimStop::Halted => write!(f, "halted"),
            CoSimStop::CycleLimit { blocked: None } => write!(f, "cycle budget exhausted"),
            CoSimStop::CycleLimit { blocked: Some(b) } => {
                write!(f, "cycle budget exhausted while stalled on a {b}")
            }
            CoSimStop::Deadlock { cycle, cause } => {
                write!(f, "deadlock detected at cycle {cycle}: {cause}")
            }
            CoSimStop::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

/// What the liveness watchdog found the system stuck on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockCause {
    /// The CPU is blocked on an FSL transfer and no peripheral made the
    /// flag change it is waiting for — the classic handshake deadlock
    /// the paper's co-simulation is meant to catch before synthesis.
    FslDeadlock {
        /// The blocking transfer.
        block: FslBlock,
    },
    /// Global livelock: the CPU keeps retiring nothing and no FIFO word
    /// moves anywhere in the system.
    Livelock,
}

impl std::fmt::Display for DeadlockCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadlockCause::FslDeadlock { block } => {
                write!(f, "processor stuck on a {block} with no peripheral progress")
            }
            DeadlockCause::Livelock => {
                write!(f, "no instruction retired and no FIFO word moved")
            }
        }
    }
}

/// Counters describing the hardware side of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwStats {
    /// Words delivered from the CPU-side FIFOs into gateway inputs.
    pub words_to_hw: u64,
    /// Words pushed from gateway outputs into the CPU-side FIFOs.
    pub words_from_hw: u64,
    /// Result words dropped because the return FIFO was full — a design
    /// error the paper avoids by sizing data sets to FIFO capacity; tests
    /// assert this stays zero.
    pub output_overflows: u64,
    /// High-water occupancy across the processor → hardware FIFOs
    /// claimed by peripherals (how close the software side came to
    /// overrunning the FSL depth).
    pub max_to_hw_occupancy: usize,
    /// High-water occupancy across the hardware → processor FIFOs
    /// claimed by peripherals.
    pub max_from_hw_occupancy: usize,
}

/// Resolved processor → hardware wiring (handles, no name lookups in the
/// per-cycle path).
struct ResolvedIn {
    channel: usize,
    data: InputHandle,
    valid: InputHandle,
    control: Option<InputHandle>,
    ready: Option<OutputHandle>,
}

/// Resolved hardware → processor wiring.
struct ResolvedOut {
    channel: usize,
    data: OutputHandle,
    valid: OutputHandle,
    control: Option<OutputHandle>,
}

/// A customized hardware peripheral attached over FSLs.
pub struct Peripheral {
    graph: Graph,
    inputs: Vec<ResolvedIn>,
    outputs: Vec<ResolvedOut>,
    /// Cumulative toggle count at the last published
    /// [`TraceEvent::BlockActivity`], for per-cycle deltas.
    last_toggles: u64,
}

impl Peripheral {
    /// Wraps a compiled block graph with its FSL wiring.
    ///
    /// # Panics
    /// Panics if a binding names a gateway the graph does not declare
    /// (checked eagerly so misconfigurations fail at attach time).
    pub fn new(graph: Graph, inputs: Vec<FslToHw>, outputs: Vec<FslFromHw>) -> Peripheral {
        let resolve_in = |name: &str| {
            graph.input_handle(name).unwrap_or_else(|_| panic!("missing gateway-in `{name}`"))
        };
        let resolve_out = |name: &str| {
            graph.output_handle(name).unwrap_or_else(|_| panic!("missing gateway-out `{name}`"))
        };
        let inputs = inputs
            .iter()
            .map(|b| ResolvedIn {
                channel: b.channel,
                data: resolve_in(&b.data),
                valid: resolve_in(&b.valid),
                control: b.control.as_deref().map(resolve_in),
                ready: b.ready.as_deref().map(resolve_out),
            })
            .collect();
        let outputs = outputs
            .iter()
            .map(|b| ResolvedOut {
                channel: b.channel,
                data: resolve_out(&b.data),
                valid: resolve_out(&b.valid),
                control: b.control.as_deref().map(resolve_out),
            })
            .collect();
        Peripheral { graph, inputs, outputs, last_toggles: 0 }
    }

    /// The underlying block graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying block graph (e.g. to attach
    /// probes or enable switching-activity measurement).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }
}

/// Liveness bookkeeping: progress counters as of the last observed
/// cycle, and how long they have been frozen.
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    /// Cycles without progress before declaring deadlock.
    threshold: u64,
    last_instructions: u64,
    last_fsl_ops: u64,
    stalled_cycles: u64,
}

/// A complete co-simulator snapshot (see [`CoSim::save_state`]):
/// processor, FSL bank and every peripheral graph, plus the
/// hardware-side counters — everything needed to resume a run
/// deterministically on a co-simulator built the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSimState {
    /// The processor snapshot.
    pub cpu: CpuSnapshot,
    /// Every FSL channel's contents and statistics.
    pub fsl: FslBankState,
    /// One graph snapshot per attached peripheral, attachment order.
    pub peripherals: Vec<GraphState>,
    /// Hardware-side counters.
    pub hw_stats: HwStats,
}

/// The co-simulator: one soft processor, its FSL channels, and an
/// optional customized hardware peripheral.
pub struct CoSim {
    cpu: Cpu,
    fsl: FslBank,
    peripherals: Vec<Peripheral>,
    hw_stats: HwStats,
    clock_hz: f64,
    /// The *effective* cycle-domain sink for gateway word transfers (the
    /// CPU and FSL bank hold their own clones): the user sink, the guest
    /// profiler, or a fanout of both.
    sink: Option<SharedSink>,
    /// The sink attached via [`CoSim::attach_trace`], kept separate so
    /// profiling and user tracing compose.
    user_sink: Option<SharedSink>,
    /// The guest profiler, when [`CoSim::set_profiling`] is on.
    profiler: Option<Rc<RefCell<GuestProfile>>>,
    /// Liveness watchdog, when armed (see [`CoSim::set_watchdog`]).
    watchdog: Option<Watchdog>,
    /// Opt-in stall fast-forwarding (see [`CoSim::set_fast_forward`]).
    fast_forward: bool,
    /// Absolute-cycle ceiling no `run` call may pass (see
    /// [`CoSim::set_run_horizon`]).
    run_horizon: Option<u64>,
    /// Observer counter: successful fast-forward jumps taken by `run`.
    /// Harness telemetry only — not part of the architectural state, so
    /// `save_state`/`load_state` neither persist nor reset it.
    ff_engagements: u64,
    /// Observer counter: cycles covered by fast-forward jumps (same
    /// telemetry-only contract as `ff_engagements`).
    ff_skipped_cycles: u64,
}

impl CoSim {
    /// A co-simulator running `image` with no hardware peripheral
    /// ("pure software" configurations in the paper's figures).
    pub fn software_only(image: &Image) -> CoSim {
        CoSim {
            cpu: Cpu::with_default_memory(image),
            fsl: FslBank::default(),
            peripherals: Vec::new(),
            hw_stats: HwStats::default(),
            clock_hz: PAPER_CLOCK_HZ,
            sink: None,
            user_sink: None,
            profiler: None,
            watchdog: None,
            fast_forward: false,
            run_horizon: None,
            ff_engagements: 0,
            ff_skipped_cycles: 0,
        }
    }

    /// A co-simulator with a customized hardware peripheral attached.
    pub fn with_peripheral(image: &Image, peripheral: Peripheral) -> CoSim {
        let mut sim = CoSim::software_only(image);
        sim.add_peripheral(peripheral);
        sim
    }

    /// A co-simulator with an explicit processor configuration (optional
    /// barrel shifter / multiplier / divider — the soft-processor
    /// configuration dimension of the design space).
    pub fn with_config(image: &Image, config: CpuConfig, peripheral: Option<Peripheral>) -> CoSim {
        let mut sim = CoSim {
            cpu: Cpu::with_config(image, config),
            fsl: FslBank::default(),
            peripherals: Vec::new(),
            hw_stats: HwStats::default(),
            clock_hz: PAPER_CLOCK_HZ,
            sink: None,
            user_sink: None,
            profiler: None,
            watchdog: None,
            fast_forward: false,
            run_horizon: None,
            ff_engagements: 0,
            ff_skipped_cycles: 0,
        };
        if let Some(p) = peripheral {
            sim.add_peripheral(p);
        }
        sim
    }

    /// Attaches a further customized hardware peripheral. Each FSL
    /// channel may be claimed by at most one peripheral per direction.
    ///
    /// # Panics
    /// Panics on a channel conflict with an already-attached peripheral.
    pub fn add_peripheral(&mut self, peripheral: Peripheral) {
        for existing in &self.peripherals {
            for b in &peripheral.inputs {
                assert!(
                    existing.inputs.iter().all(|e| e.channel != b.channel),
                    "input FSL channel {} already claimed",
                    b.channel
                );
            }
            for b in &peripheral.outputs {
                assert!(
                    existing.outputs.iter().all(|e| e.channel != b.channel),
                    "output FSL channel {} already claimed",
                    b.channel
                );
            }
        }
        self.peripherals.push(peripheral);
    }

    /// Overrides the modeled clock frequency (default 50 MHz).
    pub fn set_clock_hz(&mut self, hz: f64) {
        self.clock_hz = hz;
    }

    /// Enables or disables stall fast-forwarding (off by default).
    ///
    /// When enabled, [`CoSim::run`] detects stretches where the
    /// processor is blocked on an FSL transfer and every attached
    /// peripheral graph is provably quiescent, and advances the cycle
    /// counters in one jump instead of stepping the whole system through
    /// cycles in which nothing can change. The jump replays the exact
    /// per-cycle side effects of the stepped path — CPU cycle and stall
    /// counters, FIFO rejection statistics, per-graph cycle and activity
    /// counts, and watchdog progress — so statistics, halt cycles and
    /// deadlock reports are bit-identical either way. Fast-forwarding
    /// silently disengages whenever it could be observed at finer grain:
    /// with a trace sink attached (per-cycle event streams), with probes
    /// on any peripheral graph (per-cycle samples), or with an OPB bus
    /// attached (its timing is outside the quiescence contract).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether stall fast-forwarding is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Enables or disables translated basic-block execution on the
    /// processor (off by default; see `softsim-iss`'s `translate`
    /// module). When on, [`CoSim::run`] executes straight-line guest
    /// code through the ISS's pre-decoded block cache and replays the
    /// hardware side's cycles in bulk afterwards — bit-identical to
    /// stepping, because a translated block never touches an FSL
    /// channel. The fast path silently disengages whenever finer
    /// observation is attached (trace sink, profiler, breakpoints, an
    /// OPB bus) and composes with [`CoSim::set_fast_forward`] (blocks
    /// accelerate the *computing* stretches, fast-forward the *stalled*
    /// ones) and [`CoSim::set_run_horizon`] (a block is only dispatched
    /// when its worst-case cycles fit the remaining budget).
    pub fn set_translation(&mut self, enabled: bool) {
        self.cpu.set_translation(enabled);
    }

    /// Whether translated basic-block execution is enabled.
    pub fn translation(&self) -> bool {
        self.cpu.translation()
    }

    /// Observer counter: how many fast-forward jumps [`CoSim::run`] has
    /// taken since construction. Monotonic across `save_state` /
    /// `load_state` (it measures harness work, not architectural state).
    pub fn ff_engagements(&self) -> u64 {
        self.ff_engagements
    }

    /// Observer counter: how many cycles fast-forward jumps have covered
    /// since construction (same contract as [`CoSim::ff_engagements`]).
    pub fn ff_skipped_cycles(&self) -> u64 {
        self.ff_skipped_cycles
    }

    /// Sets (or clears, with `None`) an absolute-cycle run horizon: no
    /// [`CoSim::run`] call advances past cycle `horizon`, whether by
    /// stepping or by a fast-forward jump. Supervisors use it to pin
    /// runs to checkpoint boundaries and pending injection cycles — a
    /// fast-forward jump clamped at the horizon instead of overshooting
    /// it is what keeps "jump then inject" and "step then inject"
    /// bit-identical. The horizon costs nothing per cycle: it only
    /// shrinks the budget once at `run` entry.
    pub fn set_run_horizon(&mut self, horizon: Option<u64>) {
        self.run_horizon = horizon;
    }

    /// The armed run horizon, if any.
    pub fn run_horizon(&self) -> Option<u64> {
        self.run_horizon
    }

    /// Enables or disables SEC-DED protection on every FSL channel in
    /// both directions (see `FslFifo::set_ecc` in `softsim-bus`). Words
    /// already in flight are re-/de-coded in place, so hardening can be
    /// toggled at a checkpoint boundary.
    pub fn set_fsl_ecc(&mut self, on: bool) {
        self.fsl.set_ecc_all(on);
    }

    /// Whether FSL SEC-DED protection is enabled.
    pub fn fsl_ecc(&self) -> bool {
        self.fsl.ecc()
    }

    /// Faults detected *by the hardware itself* so far: the sum of every
    /// peripheral block's self-check counter (TMR replica miscompares).
    /// Recovery supervisors poll this for deltas between checkpoints.
    pub fn detected_faults(&self) -> u64 {
        self.peripherals.iter().map(|p| p.graph.detected_faults()).sum()
    }

    /// Attaches an observability sink to the whole system: the processor
    /// (instruction retires and stall attribution), the FSL bank (FIFO
    /// push/pop/full/empty with occupancies) and the co-simulator itself
    /// (gateway word transfers). All events share the processor's cycle
    /// domain. The untraced path is unaffected — no sink, no events.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.user_sink = Some(sink);
        self.rewire();
    }

    /// Detaches the observability sink from the processor, the FSL bank
    /// and the co-simulator, restoring the untraced fast path (and
    /// fast-forward eligibility) unless profiling keeps its own sink
    /// attached. Supervisors that only trace the diagnosis replay of a
    /// failed segment use this to keep the healthy-path overhead at zero.
    pub fn detach_trace(&mut self) {
        self.user_sink = None;
        self.rewire();
    }

    /// Toggles guest-program profiling.
    ///
    /// When on, a [`GuestProfile`] collects exact per-PC cycle/stall
    /// attribution and windowed FSL utilization from the event stream;
    /// read it back with [`CoSim::guest_profile`]. Profiling composes
    /// with [`CoSim::attach_trace`] (both sinks observe every event) and
    /// costs *zero* when off: with no profiler and no user sink the hot
    /// path keeps its single untraced branch. While on, it suppresses
    /// stall fast-forwarding like any attached sink, preserving
    /// bit-exact cycle streams.
    pub fn set_profiling(&mut self, on: bool) {
        if on && self.profiler.is_none() {
            self.profiler = Some(Rc::new(RefCell::new(GuestProfile::new())));
        } else if !on {
            self.profiler = None;
        }
        self.rewire();
    }

    /// True while guest-program profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// A snapshot of the collected guest profile (`None` when profiling
    /// is off). The attribution of an instruction still in flight — a
    /// run stopped by a cycle limit mid-stall — is folded in, so totals
    /// always reconcile exactly with [`CoSim::cpu_stats`] `.cycles`.
    pub fn guest_profile(&self) -> Option<GuestProfile> {
        let profiler = self.profiler.as_ref()?;
        let mut profile = profiler.borrow().clone();
        if let Some(f) = self.cpu.in_flight() {
            profile.add_in_flight(f.pc, f.cycles, f.read_stalls, f.write_stalls);
        }
        Some(profile)
    }

    /// Recomputes the effective sink from the user sink and the
    /// profiler, and attaches it to the processor, the FSL bank and the
    /// co-simulator (or restores the untraced fast path when neither is
    /// present).
    fn rewire(&mut self) {
        let effective: Option<SharedSink> = match (&self.user_sink, &self.profiler) {
            (None, None) => None,
            (Some(u), None) => Some(u.clone()),
            (None, Some(p)) => Some(shared(p.clone())),
            (Some(u), Some(p)) => {
                let fanout = Fanout::new().with(u.clone()).with(shared(p.clone()));
                Some(shared(Rc::new(RefCell::new(fanout))))
            }
        };
        match effective {
            Some(sink) => {
                self.cpu.attach_trace(sink.clone());
                self.fsl.attach_trace(sink.clone());
                self.sink = Some(sink);
            }
            None => {
                self.cpu.detach_trace();
                self.fsl.detach_trace();
                self.sink = None;
            }
        }
    }

    /// The processor model.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the processor (for debugger-style interaction).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The FSL channels.
    pub fn fsl(&self) -> &FslBank {
        &self.fsl
    }

    /// Mutable access to the FSL channels — used by fault injectors to
    /// corrupt in-flight words or stick flags, and by tests that shape
    /// pathological FIFO configurations.
    pub fn fsl_mut(&mut self) -> &mut FslBank {
        &mut self.fsl
    }

    /// The attached customized hardware peripherals.
    pub fn peripherals(&self) -> &[Peripheral] {
        &self.peripherals
    }

    /// Mutable access to the attached peripherals (e.g. to enable
    /// switching-activity measurement on their graphs before a run).
    pub fn peripherals_mut(&mut self) -> &mut [Peripheral] {
        &mut self.peripherals
    }

    /// Hardware-side statistics.
    pub fn hw_stats(&self) -> HwStats {
        self.hw_stats
    }

    /// Software-side statistics.
    pub fn cpu_stats(&self) -> CpuStats {
        self.cpu.stats()
    }

    /// Simulated time so far, in microseconds at the modeled clock.
    pub fn time_us(&self) -> f64 {
        self.cpu.stats().time_us(self.clock_hz)
    }

    /// Advances the whole system by one clock cycle.
    pub fn step(&mut self) -> Event {
        // The cycle about to execute — matches the stamp `Cpu::tick`
        // writes into the FSL trace state, so gateway events sort with
        // the FIFO and retire events of the same clock.
        let cycle = self.cpu.stats().cycles;
        let event = self.cpu.tick(&mut self.fsl);
        self.tick_peripherals(cycle);
        event
    }

    /// Advances the hardware side — gateways, peripheral graphs, return
    /// FIFOs — by one clock cycle, `cycle` being the clock it models.
    /// Split out of [`CoSim::step`] so the translated-block fast path
    /// can replay the hardware's cycles after a CPU block executes in
    /// bulk: while the processor runs a translated block it touches no
    /// FSL channel (FSL instructions terminate blocks), so stepping the
    /// CPU `n` cycles and then the peripherals `n` cycles is
    /// bit-identical to interleaving them.
    fn tick_peripherals(&mut self, cycle: u64) {
        for (pid, p) in self.peripherals.iter_mut().enumerate() {
            // Feed gateway inputs from the processor-side FIFOs. The
            // peripheral's `ready` output (settled last cycle) gates
            // consumption.
            for b in &p.inputs {
                let ready = match b.ready {
                    Some(h) => !p.graph.output_fast(h).is_zero(),
                    None => true,
                };
                let fifo = self.fsl.to_hw(b.channel);
                let occupancy = fifo.len();
                if occupancy > self.hw_stats.max_to_hw_occupancy {
                    self.hw_stats.max_to_hw_occupancy = occupancy;
                }
                let word = if ready { fifo.try_pop() } else { None };
                let (data, valid, ctrl) = match word {
                    Some(w) => {
                        self.hw_stats.words_to_hw += 1;
                        if let Some(sink) = &self.sink {
                            sink.borrow_mut().event(&TraceEvent::GatewayWord {
                                cycle,
                                peripheral: pid as u8,
                                to_hw: true,
                                data: w.data,
                            });
                        }
                        (w.data, true, w.control)
                    }
                    None => (0, false, false),
                };
                p.graph.set_input_fast(b.data, Fix::from_bits(data as u64, FixFmt::INT32));
                p.graph.set_input_fast(b.valid, Fix::from_int(valid as i64, FixFmt::BOOL));
                if let Some(c) = b.control {
                    p.graph.set_input_fast(c, Fix::from_int(ctrl as i64, FixFmt::BOOL));
                }
            }
            p.graph.step();
            // Publish switching activity while it is being measured —
            // one event per peripheral per cycle keeps the untraced and
            // unmeasured paths free of extra work.
            if self.sink.is_some() && p.graph.activity_enabled() {
                let total = p.graph.total_toggles();
                let toggles = (total - p.last_toggles) as u32;
                p.last_toggles = total;
                if let Some(sink) = &self.sink {
                    sink.borrow_mut().event(&TraceEvent::BlockActivity {
                        cycle,
                        peripheral: pid as u8,
                        firings: p.graph.len() as u32,
                        toggles,
                    });
                }
            }
            // Drain gateway outputs into the return FIFOs.
            for b in &p.outputs {
                if p.graph.output_fast(b.valid).is_zero() {
                    continue;
                }
                let data = p.graph.output_fast(b.data).to_bits() as u32;
                let control = match b.control {
                    Some(c) => !p.graph.output_fast(c).is_zero(),
                    None => false,
                };
                if self.fsl.from_hw(b.channel).try_push(FslWord { data, control }) {
                    self.hw_stats.words_from_hw += 1;
                    if let Some(sink) = &self.sink {
                        sink.borrow_mut().event(&TraceEvent::GatewayWord {
                            cycle,
                            peripheral: pid as u8,
                            to_hw: false,
                            data,
                        });
                    }
                } else {
                    self.hw_stats.output_overflows += 1;
                }
                let occupancy = self.fsl.from_hw(b.channel).len();
                if occupancy > self.hw_stats.max_from_hw_occupancy {
                    self.hw_stats.max_from_hw_occupancy = occupancy;
                }
            }
        }
    }

    /// Arms the liveness watchdog: if `threshold` consecutive cycles
    /// pass in which no instruction retires *and* no FIFO word moves in
    /// either direction, [`CoSim::run`] stops with
    /// [`CoSimStop::Deadlock`] instead of silently burning the rest of
    /// its cycle budget. Pick a threshold larger than the longest
    /// FIFO-quiet stretch of the design (peripheral pipeline latency
    /// plus any batching the software does); a few thousand cycles is
    /// conservative for the workloads in this repository.
    ///
    /// # Panics
    /// Panics if `threshold == 0`.
    pub fn set_watchdog(&mut self, threshold: u64) {
        assert!(threshold > 0, "watchdog threshold must be positive");
        self.watchdog = Some(Watchdog {
            threshold,
            last_instructions: self.cpu.stats().instructions,
            last_fsl_ops: self.fsl.total_ops(),
            stalled_cycles: 0,
        });
    }

    /// Disarms the liveness watchdog.
    pub fn clear_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// One watchdog observation; called after each [`CoSim::step`] by
    /// [`CoSim::run`], and available to manual steppers. Returns the
    /// deadlock stop once the armed threshold is exceeded, `None`
    /// otherwise (including when no watchdog is armed).
    pub fn check_liveness(&mut self) -> Option<CoSimStop> {
        let wd = self.watchdog.as_mut()?;
        let instructions = self.cpu.stats().instructions;
        let fsl_ops = self.fsl.total_ops();
        if instructions != wd.last_instructions || fsl_ops != wd.last_fsl_ops {
            wd.last_instructions = instructions;
            wd.last_fsl_ops = fsl_ops;
            wd.stalled_cycles = 0;
            return None;
        }
        wd.stalled_cycles += 1;
        if wd.stalled_cycles < wd.threshold {
            return None;
        }
        let cycle = self.cpu.stats().cycles;
        let cause = match self.cpu.fsl_block() {
            Some(block) => DeadlockCause::FslDeadlock { block },
            None => DeadlockCause::Livelock,
        };
        Some(CoSimStop::Deadlock { cycle, cause })
    }

    /// Captures the whole system's simulation state: processor, FSL bank
    /// and every peripheral graph. Observers (trace sinks, probes,
    /// activity measurement) and the watchdog are not part of the
    /// snapshot; restoring never arms a watchdog that was not armed, and
    /// a watchdog armed on the restoring simulator stays armed (see
    /// [`CoSim::load_state`]).
    ///
    /// # Panics
    /// Panics if the processor has an OPB bus attached (see
    /// [`Cpu::save_state`]).
    pub fn save_state(&self) -> CoSimState {
        CoSimState {
            cpu: self.cpu.save_state(),
            fsl: self.fsl.save_state(),
            peripherals: self.peripherals.iter().map(|p| p.graph.save_state()).collect(),
            hw_stats: self.hw_stats,
        }
    }

    /// Restores a snapshot taken by [`CoSim::save_state`] on a
    /// co-simulator built from the same image and peripherals. An armed
    /// liveness watchdog stays armed: its threshold is kept and its
    /// progress baseline is re-anchored to the restored counters, so a
    /// checkpoint/restore cycle cannot silently disable deadlock
    /// detection. (Restoring previously disarmed the watchdog, which
    /// made every post-restore hang burn its full cycle budget.)
    ///
    /// # Panics
    /// Panics on a shape mismatch (different peripheral count or
    /// incompatible graph/memory layout).
    pub fn load_state(&mut self, state: &CoSimState) {
        assert_eq!(
            state.peripherals.len(),
            self.peripherals.len(),
            "snapshot/peripheral count mismatch"
        );
        self.cpu.load_state(&state.cpu);
        self.fsl.load_state(&state.fsl);
        for (p, s) in self.peripherals.iter_mut().zip(&state.peripherals) {
            p.graph.load_state(s);
            // Activity measurement is an observer, not design state; the
            // delta baseline just re-anchors so the next published
            // BlockActivity event doesn't span the restore.
            p.last_toggles = p.graph.total_toggles();
        }
        self.hw_stats = state.hw_stats;
        if let Some(wd) = &mut self.watchdog {
            wd.last_instructions = self.cpu.stats().instructions;
            wd.last_fsl_ops = self.fsl.total_ops();
            wd.stalled_cycles = 0;
        }
    }

    /// Attempts one stall fast-forward jump of at most `budget` cycles.
    ///
    /// Eligibility (all conservative — any doubt falls back to
    /// stepping): no trace sink, no OPB bus, the processor blocked on an
    /// FSL transfer whose FIFO flag is frozen (`get` from a channel with
    /// no word to take, `put` into a full channel), no probes on any
    /// peripheral graph, no gateway output about to push a word, no
    /// gateway input about to consume a word, and every peripheral graph
    /// reporting [`Graph::is_quiescent`]. Under those conditions a step
    /// changes nothing but counters, so `n` steps are replayed as bulk
    /// counter updates: CPU stall attribution, rejection statistics on
    /// the blocked FIFO and on every ready-but-starved gateway input,
    /// per-graph cycle/activity counts, and watchdog progress. The jump
    /// is capped so an armed watchdog fires at exactly the cycle the
    /// stepped path would have fired at.
    fn try_fast_forward(&mut self, budget: u64) -> Option<u64> {
        if self.sink.is_some() || self.cpu.opb().is_some() {
            return None;
        }
        let block = self.cpu.fsl_block()?;
        let ch = block.channel as usize;
        // The blocked transfer itself must be unable to complete: the
        // retry in `Cpu::tick` would otherwise make progress.
        let frozen = match block.dir {
            FifoDir::FromHw => !self.fsl.from_hw_ref(ch).exists(),
            FifoDir::ToHw => self.fsl.to_hw_ref(ch).full(),
        };
        if !frozen {
            return None;
        }
        // Gateway inputs whose `try_pop` would reject on empty — their
        // per-cycle rejection counts are replayed in bulk below.
        let mut starved: Vec<usize> = Vec::new();
        for p in &self.peripherals {
            if p.graph.has_probes() {
                return None;
            }
            for b in &p.inputs {
                let ready = match b.ready {
                    Some(h) => !p.graph.output_fast(h).is_zero(),
                    None => true,
                };
                if ready {
                    if self.fsl.to_hw_ref(b.channel).exists() {
                        return None;
                    }
                    starved.push(b.channel);
                }
            }
            for b in &p.outputs {
                if !p.graph.output_fast(b.valid).is_zero() {
                    return None;
                }
            }
            if !p.graph.is_quiescent() {
                return None;
            }
        }
        let n = match &self.watchdog {
            Some(wd) => budget.min(wd.threshold - wd.stalled_cycles).max(1),
            None => budget,
        };
        self.cpu
            .fast_forward_stall(n)
            .expect("fsl_block() above verified the pipeline is FSL-stalled");
        match block.dir {
            FifoDir::FromHw => self.fsl.from_hw(ch).add_empty_rejections(n),
            FifoDir::ToHw => self.fsl.to_hw(ch).add_full_rejections(n),
        }
        for ch in starved {
            self.fsl.to_hw(ch).add_empty_rejections(n);
        }
        for p in &mut self.peripherals {
            p.graph.fast_forward(n);
        }
        if let Some(wd) = &mut self.watchdog {
            wd.stalled_cycles += n;
        }
        Some(n)
    }

    /// Runs until the software halts, faults, deadlocks (when a watchdog
    /// is armed) or `max_cycles` elapse. On cycle-budget expiry the stop
    /// reports the FSL transfer the processor was blocked on — but only
    /// when the final executed cycle actually stalled on that transfer
    /// (a zero-cycle run, or one whose last step completed the transfer,
    /// reports no blockage).
    pub fn run(&mut self, max_cycles: u64) -> CoSimStop {
        // An armed run horizon shrinks the budget once, here — both the
        // stepped and the fast-forwarded path then respect it for free,
        // because neither can exceed `max_cycles`.
        let max_cycles = match self.run_horizon {
            Some(h) => max_cycles.min(h.saturating_sub(self.cpu.stats().cycles)),
            None => max_cycles,
        };
        let mut executed: u64 = 0;
        let mut streak: u64 = 0;
        let mut cooldown: u64 = 0;
        let mut last_ops = if self.fast_forward { self.fsl.total_ops() } else { 0 };
        while executed < max_cycles {
            // Translated-block fast path: run straight-line guest code
            // through the ISS block cache, then replay the hardware
            // side's cycles in bulk (see `tick_peripherals`). The block
            // is capped below the watchdog's remaining headroom so a
            // deadlock the stepped path would detect mid-block keeps the
            // fast path out entirely — and since every block ends with a
            // retired instruction, re-baselining the watchdog afterwards
            // reproduces exactly what per-cycle `check_liveness` calls
            // would have left behind.
            if self.cpu.translation() && self.sink.is_none() && self.cpu.opb().is_none() {
                let mut cap = max_cycles - executed;
                if let Some(wd) = &self.watchdog {
                    cap = cap.min((wd.threshold - wd.stalled_cycles).saturating_sub(1));
                }
                let start_cycle = self.cpu.stats().cycles;
                match self.cpu.run_translated_block(&mut self.fsl, cap) {
                    TranslatedRun::Ran { cycles } => {
                        // With no peripherals attached each replayed
                        // cycle is a no-op — skip the loop entirely.
                        if !self.peripherals.is_empty() {
                            for i in 0..cycles {
                                self.tick_peripherals(start_cycle + i);
                            }
                        }
                        executed += cycles;
                        if self.fast_forward {
                            // What the per-step bookkeeping below leaves
                            // after any cycle that retires/progresses.
                            streak = 0;
                            cooldown = 0;
                            last_ops = self.fsl.total_ops();
                        }
                        if let Some(wd) = &mut self.watchdog {
                            wd.last_instructions = self.cpu.stats().instructions;
                            wd.last_fsl_ops = self.fsl.total_ops();
                            wd.stalled_cycles = 0;
                        }
                        if self.cpu.halted() {
                            return CoSimStop::Halted;
                        }
                        continue;
                    }
                    TranslatedRun::Faulted { cycles, fault } => {
                        if !self.peripherals.is_empty() {
                            for i in 0..cycles {
                                self.tick_peripherals(start_cycle + i);
                            }
                        }
                        return CoSimStop::Fault(fault);
                    }
                    TranslatedRun::NotRun => {}
                }
            }
            if self.fast_forward && streak >= FF_MIN_STREAK {
                if cooldown == 0 {
                    if let Some(n) = self.try_fast_forward(max_cycles - executed) {
                        executed += n;
                        self.ff_engagements += 1;
                        self.ff_skipped_cycles += n;
                        // The jump already advanced the watchdog's stall
                        // count; if it reached the threshold, report the
                        // deadlock at the post-jump cycle without a
                        // second `check_liveness` increment.
                        if let Some(wd) = &self.watchdog {
                            if wd.stalled_cycles >= wd.threshold {
                                let cycle = self.cpu.stats().cycles;
                                let cause = match self.cpu.fsl_block() {
                                    Some(block) => DeadlockCause::FslDeadlock { block },
                                    None => DeadlockCause::Livelock,
                                };
                                return CoSimStop::Deadlock { cycle, cause };
                            }
                        }
                        continue;
                    }
                    cooldown = FF_COOLDOWN;
                } else {
                    cooldown -= 1;
                }
            }
            match self.step() {
                e if e.is_halt() => return CoSimStop::Halted,
                Event::Fault(f) => return CoSimStop::Fault(f),
                _ => {}
            }
            executed += 1;
            if self.fast_forward {
                let ops = self.fsl.total_ops();
                if self.cpu.fsl_block().is_some() && ops == last_ops {
                    streak += 1;
                } else {
                    streak = 0;
                    cooldown = 0;
                }
                last_ops = ops;
            }
            if let Some(stop) = self.check_liveness() {
                return stop;
            }
        }
        CoSimStop::CycleLimit { blocked: if executed > 0 { self.cpu.fsl_block() } else { None } }
    }
}
