//! Execution statistics collected by the instruction-set simulator.

/// Counters describing one simulation run.
///
/// The co-simulation reports (§IV of the paper) are derived from these:
/// execution time in µs is `cycles / f_clk`, and the communication-overhead
/// analysis uses the FSL traffic and stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Clock cycles elapsed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent stalled on blocking FSL reads.
    pub fsl_read_stalls: u64,
    /// Cycles spent stalled on blocking FSL writes.
    pub fsl_write_stalls: u64,
    /// Words sent to hardware over FSLs (`put` family).
    pub fsl_words_sent: u64,
    /// Words received from hardware over FSLs (`get` family).
    pub fsl_words_received: u64,
    /// Non-blocking FSL operations that could not complete.
    pub fsl_nonblocking_misses: u64,
    /// `get`/`cget` transfers whose control bit did not match the variant.
    pub fsl_control_mismatches: u64,
    /// Taken branches (including `rtsd`).
    pub taken_branches: u64,
    /// Data-side memory reads.
    pub mem_reads: u64,
    /// Data-side memory writes.
    pub mem_writes: u64,
    /// Multiply instructions executed (each costs three cycles).
    pub multiplies: u64,
}

impl CpuStats {
    /// Total FSL stall cycles in both directions.
    pub fn fsl_stalls(&self) -> u64 {
        self.fsl_read_stalls + self.fsl_write_stalls
    }

    /// Average cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Execution time in microseconds at clock frequency `f_hz`.
    ///
    /// The paper reports application performance at 50 MHz on the ML300
    /// Virtex-II Pro board.
    pub fn time_us(&self, f_hz: f64) -> f64 {
        self.cycles as f64 / f_hz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_at_50mhz() {
        let stats = CpuStats { cycles: 50, ..Default::default() };
        let us = stats.time_us(50e6);
        assert!((us - 1.0).abs() < 1e-12, "50 cycles at 50 MHz is 1 µs");
    }

    #[test]
    fn cpi_handles_empty_run() {
        assert_eq!(CpuStats::default().cpi(), 0.0);
        let s = CpuStats { cycles: 30, instructions: 10, ..Default::default() };
        assert!((s.cpi() - 3.0).abs() < 1e-12);
    }
}
