//! Architectural execution semantics for MB32 instructions.
//!
//! `execute` applies the architectural effect of one instruction to the
//! [`Cpu`] state. The cycle accounting lives in `cpu.rs`; this module is
//! purely about *what* each instruction does, mirroring the MicroBlaze
//! reference semantics for the implemented subset.

use crate::cpu::{Cpu, ExecOutcome};
use crate::fault::Fault;
use softsim_bus::{FslBank, FslWord};
use softsim_isa::{ArithFlags, BarrelOp, Inst, LogicOp, MemSize, Reg, ShiftOp};
use softsim_trace::BusKind;

impl Cpu {
    /// Extends a 16-bit immediate to 32 bits, honoring (and consuming) a
    /// preceding `imm` prefix.
    fn imm_ext(&self, latch: Option<u16>, imm: i16) -> u32 {
        match latch {
            Some(hi) => ((hi as u32) << 16) | (imm as u16 as u32),
            None => imm as i32 as u32,
        }
    }

    /// Adds with carry handling shared by the `add`/`rsub` families.
    fn add_with_flags(&mut self, rd: Reg, a: u32, b: u32, flags: ArithFlags) {
        let cin = if flags.carry_in { self.carry as u64 } else { 0 };
        let wide = a as u64 + b as u64 + cin;
        if !flags.keep {
            self.carry = wide > u32::MAX as u64;
        }
        self.set_reg(rd, wide as u32);
    }

    /// Executes one instruction. Returns how control flow proceeds.
    pub(crate) fn execute(
        &mut self,
        pc: u32,
        inst: &Inst,
        fsl: &mut FslBank,
    ) -> Result<ExecOutcome, Fault> {
        // The `imm` prefix applies exactly to the next instruction.
        let latch = self.imm_latch.take();
        // Optional-unit gating (MicroBlaze configurations without the
        // unit have no such instruction).
        match inst {
            Inst::Mul { .. } | Inst::MulI { .. } if !self.config.multiplier => {
                return Err(Fault::DisabledInstruction { pc, unit: "multiplier" });
            }
            Inst::Div { .. } if !self.config.divider => {
                return Err(Fault::DisabledInstruction { pc, unit: "divider" });
            }
            Inst::Barrel { .. } | Inst::BarrelI { .. } if !self.config.barrel_shifter => {
                return Err(Fault::DisabledInstruction { pc, unit: "barrel shifter" });
            }
            _ => {}
        }
        match *inst {
            Inst::Add { rd, ra, rb, flags } => {
                self.add_with_flags(rd, self.reg(ra), self.reg(rb), flags);
            }
            Inst::AddI { rd, ra, imm, flags } => {
                let b = self.imm_ext(latch, imm);
                self.add_with_flags(rd, self.reg(ra), b, flags);
            }
            // MicroBlaze reverse subtract: rd = rb + ~ra + 1 (or + carry).
            Inst::Rsub { rd, ra, rb, flags } => {
                let cin = if flags.carry_in { self.carry as u64 } else { 1 };
                let wide = self.reg(rb) as u64 + (!self.reg(ra)) as u64 + cin;
                if !flags.keep {
                    self.carry = wide > u32::MAX as u64;
                }
                self.set_reg(rd, wide as u32);
            }
            Inst::RsubI { rd, ra, imm, flags } => {
                let b = self.imm_ext(latch, imm);
                let cin = if flags.carry_in { self.carry as u64 } else { 1 };
                let wide = b as u64 + (!self.reg(ra)) as u64 + cin;
                if !flags.keep {
                    self.carry = wide > u32::MAX as u64;
                }
                self.set_reg(rd, wide as u32);
            }
            Inst::Cmp { rd, ra, rb, unsigned } => {
                let (a, b) = (self.reg(ra), self.reg(rb));
                let diff = b.wrapping_sub(a);
                let a_gt_b = if unsigned { a > b } else { (a as i32) > (b as i32) };
                self.set_reg(rd, (diff & 0x7FFF_FFFF) | ((a_gt_b as u32) << 31));
            }
            Inst::Mul { rd, ra, rb } => {
                self.stats.multiplies += 1;
                self.set_reg(rd, self.reg(ra).wrapping_mul(self.reg(rb)));
            }
            Inst::MulI { rd, ra, imm } => {
                self.stats.multiplies += 1;
                let b = self.imm_ext(latch, imm);
                self.set_reg(rd, self.reg(ra).wrapping_mul(b));
            }
            // MicroBlaze reverse divide: rd = rb / ra; division by zero
            // yields zero (the DZO case), INT_MIN / -1 wraps.
            Inst::Div { rd, ra, rb, unsigned } => {
                let (den, num) = (self.reg(ra), self.reg(rb));
                let q = if den == 0 {
                    0
                } else if unsigned {
                    num / den
                } else {
                    (num as i32).wrapping_div(den as i32) as u32
                };
                self.set_reg(rd, q);
            }
            Inst::Logic { op, rd, ra, rb } => {
                self.set_reg(rd, logic(op, self.reg(ra), self.reg(rb)));
            }
            Inst::LogicI { op, rd, ra, imm } => {
                let b = self.imm_ext(latch, imm);
                self.set_reg(rd, logic(op, self.reg(ra), b));
            }
            Inst::Shift { op, rd, ra } => {
                let a = self.reg(ra);
                let carry_out = a & 1 != 0;
                let out = match op {
                    ShiftOp::Sra => ((a as i32) >> 1) as u32,
                    ShiftOp::Src => (a >> 1) | ((self.carry as u32) << 31),
                    ShiftOp::Srl => a >> 1,
                };
                self.carry = carry_out;
                self.set_reg(rd, out);
            }
            Inst::Sext { rd, ra, half } => {
                let a = self.reg(ra);
                let out =
                    if half { a as u16 as i16 as i32 as u32 } else { a as u8 as i8 as i32 as u32 };
                self.set_reg(rd, out);
            }
            Inst::Barrel { op, rd, ra, rb } => {
                let amount = self.reg(rb) & 0x1F;
                self.set_reg(rd, barrel(op, self.reg(ra), amount));
            }
            Inst::BarrelI { op, rd, ra, amount } => {
                self.set_reg(rd, barrel(op, self.reg(ra), amount as u32 & 0x1F));
            }
            Inst::Load { size, rd, ra, rb } => {
                let ea = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.load(pc, size, ea)?;
                self.set_reg(rd, v);
            }
            Inst::LoadI { size, rd, ra, imm } => {
                let ea = self.reg(ra).wrapping_add(self.imm_ext(latch, imm));
                let v = self.load(pc, size, ea)?;
                self.set_reg(rd, v);
            }
            Inst::Store { size, rd, ra, rb } => {
                let ea = self.reg(ra).wrapping_add(self.reg(rb));
                self.store(pc, size, ea, self.reg(rd))?;
            }
            Inst::StoreI { size, rd, ra, imm } => {
                let ea = self.reg(ra).wrapping_add(self.imm_ext(latch, imm));
                self.store(pc, size, ea, self.reg(rd))?;
            }
            Inst::Br { rb, link, absolute, delay } => {
                let target = if absolute { self.reg(rb) } else { pc.wrapping_add(self.reg(rb)) };
                return Ok(self.take_branch(pc, target, link, delay));
            }
            Inst::BrI { imm, link, absolute, delay } => {
                let off = self.imm_ext(latch, imm);
                let target = if absolute { off } else { pc.wrapping_add(off) };
                return Ok(self.take_branch(pc, target, link, delay));
            }
            Inst::Bcc { cond, ra, rb, delay } => {
                if cond.holds(self.reg(ra)) {
                    let target = pc.wrapping_add(self.reg(rb));
                    return Ok(self.take_branch(pc, target, None, delay));
                }
            }
            Inst::BccI { cond, ra, imm, delay } => {
                if cond.holds(self.reg(ra)) {
                    let target = pc.wrapping_add(self.imm_ext(latch, imm));
                    return Ok(self.take_branch(pc, target, None, delay));
                }
            }
            Inst::Rtsd { ra, imm } => {
                let target = self.reg(ra).wrapping_add(self.imm_ext(latch, imm));
                return Ok(self.take_branch(pc, target, None, true));
            }
            Inst::Imm { imm } => {
                self.imm_latch = Some(imm);
            }
            Inst::Get { .. } | Inst::Put { .. } => {
                return Ok(match self.exec_fsl(inst, fsl) {
                    Ok(()) => ExecOutcome::Normal,
                    Err(()) => ExecOutcome::FslBlocked,
                });
            }
            Inst::Halt => {}
        }
        Ok(ExecOutcome::Normal)
    }

    fn take_branch(&mut self, pc: u32, target: u32, link: Option<Reg>, delay: bool) -> ExecOutcome {
        if let Some(rd) = link {
            // MicroBlaze stores the address of the branch itself; returns
            // use `rtsd rd, 8` to skip the branch and its delay slot.
            self.set_reg(rd, pc);
        }
        if delay {
            self.delay_target = Some(target);
        } else {
            self.redirect = Some(target);
        }
        ExecOutcome::Taken
    }

    fn load(&mut self, pc: u32, size: MemSize, ea: u32) -> Result<u32, Fault> {
        self.stats.mem_reads += 1;
        if ea >= crate::cpu::OPB_BASE {
            return self.opb_load(pc, size, ea);
        }
        let r = match size {
            MemSize::Byte => self.mem.read_u8(ea).map(u32::from),
            MemSize::Half => self.mem.read_u16(ea).map(u32::from),
            MemSize::Word => self.mem.read_u32(ea),
        };
        if r.is_ok() {
            self.emit_bus_transfer(BusKind::Lmb, false, ea, 0);
        }
        r.map_err(|err| Fault::Memory { pc, err })
    }

    fn store(&mut self, pc: u32, size: MemSize, ea: u32, value: u32) -> Result<(), Fault> {
        self.stats.mem_writes += 1;
        if ea >= crate::cpu::OPB_BASE {
            return self.opb_store(pc, size, ea, value);
        }
        let r = match size {
            MemSize::Byte => self.mem.write_u8(ea, value as u8),
            MemSize::Half => self.mem.write_u16(ea, value as u16),
            MemSize::Word => self.mem.write_u32(ea, value),
        };
        if r.is_ok() {
            self.emit_bus_transfer(BusKind::Lmb, true, ea, 0);
            // Self-modifying code: drop any translated block covering the
            // stored-to range so the next dispatch re-decodes it.
            self.translator.note_store(ea);
        }
        r.map_err(|err| Fault::Memory { pc, err })
    }

    /// OPB word read: routed over the peripheral bus, paying its transfer
    /// latency on top of the load's base cycles.
    fn opb_load(&mut self, pc: u32, size: MemSize, ea: u32) -> Result<u32, Fault> {
        let fault = |err| Fault::Memory { pc, err };
        if size != MemSize::Word {
            return Err(fault(softsim_bus::MemError::Misaligned { addr: ea, align: 4 }));
        }
        let bus = self
            .opb
            .as_mut()
            .ok_or(fault(softsim_bus::MemError::OutOfRange { addr: ea, size: 0 }))?;
        match bus.read(ea) {
            Ok((v, cycles)) => {
                self.extra_cycles += cycles;
                self.emit_bus_transfer(BusKind::Opb, false, ea, cycles);
                Ok(v)
            }
            Err(_) => Err(fault(softsim_bus::MemError::OutOfRange { addr: ea, size: 0 })),
        }
    }

    /// OPB word write.
    fn opb_store(&mut self, pc: u32, size: MemSize, ea: u32, value: u32) -> Result<(), Fault> {
        let fault = |err| Fault::Memory { pc, err };
        if size != MemSize::Word {
            return Err(fault(softsim_bus::MemError::Misaligned { addr: ea, align: 4 }));
        }
        let bus = self
            .opb
            .as_mut()
            .ok_or(fault(softsim_bus::MemError::OutOfRange { addr: ea, size: 0 }))?;
        match bus.write(ea, value) {
            Ok(cycles) => {
                self.extra_cycles += cycles;
                self.emit_bus_transfer(BusKind::Opb, true, ea, cycles);
                Ok(())
            }
            Err(_) => Err(fault(softsim_bus::MemError::OutOfRange { addr: ea, size: 0 })),
        }
    }

    /// Attempts the FSL transfer of a `get`/`put` instruction.
    ///
    /// * Blocking variants return `Err(())` when the channel is not ready,
    ///   which stalls the processor — exactly the paper's §III-B semantics
    ///   ("Blocking read or write will stall the MicroBlaze processor until
    ///   the read or write can occur").
    /// * Non-blocking variants always complete; the MSR carry flag records
    ///   failure (1) or success (0), matching `microblaze_nbread_datafsl`.
    pub(crate) fn exec_fsl(&mut self, inst: &Inst, fsl: &mut FslBank) -> Result<(), ()> {
        match *inst {
            Inst::Get { rd, chan, mode } => match fsl.from_hw(chan.index()).try_pop() {
                Some(word) => {
                    if word.control != mode.control {
                        self.stats.fsl_control_mismatches += 1;
                    }
                    self.set_reg(rd, word.data);
                    self.stats.fsl_words_received += 1;
                    if mode.non_blocking {
                        self.carry = false;
                    }
                    Ok(())
                }
                None if mode.non_blocking => {
                    self.carry = true;
                    self.stats.fsl_nonblocking_misses += 1;
                    Ok(())
                }
                None => Err(()),
            },
            Inst::Put { ra, chan, mode } => {
                let word = FslWord { data: self.reg(ra), control: mode.control };
                if fsl.to_hw(chan.index()).try_push(word) {
                    self.stats.fsl_words_sent += 1;
                    if mode.non_blocking {
                        self.carry = false;
                    }
                    Ok(())
                } else if mode.non_blocking {
                    self.carry = true;
                    self.stats.fsl_nonblocking_misses += 1;
                    Ok(())
                } else {
                    Err(())
                }
            }
            _ => unreachable!("exec_fsl called on non-FSL instruction"),
        }
    }
}

fn logic(op: LogicOp, a: u32, b: u32) -> u32 {
    match op {
        LogicOp::Or => a | b,
        LogicOp::And => a & b,
        LogicOp::Xor => a ^ b,
        LogicOp::Andn => a & !b,
    }
}

fn barrel(op: BarrelOp, a: u32, amount: u32) -> u32 {
    match op {
        BarrelOp::Bsll => a.wrapping_shl(amount),
        BarrelOp::Bsrl => a.wrapping_shr(amount),
        BarrelOp::Bsra => ((a as i32).wrapping_shr(amount)) as u32,
    }
}
