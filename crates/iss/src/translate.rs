//! Translated basic-block execution — the ISS fast path.
//!
//! Following Schnerr et al.'s cycle-accurate binary translation, the
//! interpreter's per-cycle fetch/decode/dispatch loop is replaced, on
//! hot straight-line code, by a *basic-block cache*: the first time
//! execution reaches a PC, the instructions from that PC up to the next
//! control-flow or interaction boundary are decoded **once** and stored
//! with their cycle costs annotated at translation time. Re-entering
//! the block then replays the pre-decoded instructions back to back —
//! no refetch, no redecode, no per-cycle pipeline state machine — while
//! charging exactly the cycles the interpreter would have.
//!
//! # Block boundaries
//!
//! A block extends from its entry PC to the first of:
//!
//! * a **branch** (`br`/`bcc`/`rtsd`) — included as the final step, so
//!   the taken/not-taken cycle split annotated at translation time is
//!   applied from the run-time [`ExecOutcome`];
//! * an **FSL instruction** (`get`/`put`) — excluded: blocking
//!   semantics need the per-cycle retry loop of [`Cpu::tick`];
//! * an **`imm` prefix** — excluded: the prefixed pair executes
//!   interpreted so the latch never spans a dispatch boundary;
//! * **`halt`**, an undecodable word, or the end of mapped memory —
//!   excluded (the interpreter raises the identical fault/halt);
//! * [`MAX_BLOCK_LEN`] instructions (a translation-size bound).
//!
//! # Determinism boundary
//!
//! Dispatch refuses (falls back to the interpreter, bit-exactly) when
//! anything needs per-instruction or per-cycle visibility: an attached
//! trace sink or architectural trace, breakpoints, an OPB bus, a
//! pending `imm` latch or delay slot, a pipeline that is not at an
//! instruction boundary, or a block whose worst-case cycles exceed the
//! remaining budget (the interpreter then single-steps to the exact
//! mid-instruction stop state). Stores into cached code invalidate the
//! covering blocks and stop the current block at the next step, so
//! self-modifying programs re-translate and stay bit-exact.

use crate::cpu::{Cpu, ExecOutcome, Pipe};
use crate::fault::Fault;
use softsim_bus::FslBank;
use softsim_isa::{decode, Inst};
use std::collections::HashMap;
use std::rc::Rc;

/// Upper bound on instructions per translated block.
const MAX_BLOCK_LEN: usize = 64;

/// Cached-code pages are `1 << PAGE_SHIFT` bytes: the invalidation
/// index maps a store's page to the blocks that overlap it.
const PAGE_SHIFT: u32 = 8;

/// Counters describing the translation cache (observer state: never
/// part of snapshots, never affects architectural results).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Basic blocks decoded into the cache (including empty ones that
    /// only record a boundary).
    pub blocks_translated: u64,
    /// Successful block dispatches by the run loop.
    pub block_dispatches: u64,
    /// Instructions executed through the translated path.
    pub translated_instructions: u64,
    /// Blocks dropped because a store hit their code range.
    pub invalidations: u64,
}

/// Outcome of one [`Cpu::run_translated_block`] dispatch attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslatedRun {
    /// Translation was ineligible here; nothing happened — the caller
    /// must fall back to [`Cpu::tick`].
    NotRun,
    /// A block (or a prefix of one, when invalidated mid-flight)
    /// executed; `cycles` were consumed and the pipeline is back at an
    /// instruction boundary.
    Ran {
        /// Cycles charged (identical to what the interpreter charges).
        cycles: u64,
    },
    /// An instruction in the block faulted; the processor is halted,
    /// exactly as [`Cpu::tick`] would leave it.
    Faulted {
        /// Cycles charged up to and including the faulting issue cycle.
        cycles: u64,
        /// The fault, as the interpreter would report it.
        fault: Fault,
    },
}

/// One pre-decoded instruction with its translation-time cycle costs.
#[derive(Debug, Clone)]
struct Step {
    inst: Inst,
    /// Cycles when the instruction completes normally (`base_cycles`;
    /// OPB latency cannot occur — dispatch requires no OPB bus).
    base: u32,
    /// Cycles when a branch is taken (`base_cycles + taken_penalty`).
    taken: u32,
}

/// A translated basic block.
#[derive(Debug)]
struct Block {
    steps: Vec<Step>,
    /// Code range covered, `[start, end)` in bytes.
    start: u32,
    end: u32,
    /// Sum of each step's worst-case cycles — dispatch only runs the
    /// block when this fits the remaining budget, so a translated run
    /// can never overshoot a cycle limit the interpreter would respect.
    worst_cycles: u64,
}

/// The per-CPU basic-block cache.
#[derive(Debug)]
pub(crate) struct Translator {
    pub(crate) enabled: bool,
    /// Direct-mapped block cache indexed by word address (`pc >> 2`),
    /// sized to guest memory on first use — a dispatch lookup is one
    /// bounds-checked index, no hashing.
    slots: Vec<Option<Rc<Block>>>,
    /// Number of `Some` slots (so flushing an already-empty cache stays
    /// free for the translation-off path).
    cached: usize,
    /// Page index for store invalidation: page number → entry PCs of
    /// blocks overlapping that page (entries may go stale after an
    /// invalidation; lookups skip PCs no longer cached).
    by_page: HashMap<u32, Vec<u32>>,
    /// Bumped on every invalidation/flush; an executing block re-checks
    /// it each step so a self-modifying store stops translated
    /// execution before any stale decode is used.
    generation: u64,
    /// Conservative watermarks over every cached block's `[start, end)`
    /// — `note_store` rejects stores outside `[code_lo, code_hi)` with
    /// two compares, so data-section stores (the overwhelming majority)
    /// never touch the page index. Only grown on insert; reset on
    /// [`Translator::flush`].
    code_lo: u32,
    code_hi: u32,
    stats: TranslationStats,
}

impl Default for Translator {
    fn default() -> Translator {
        Translator {
            enabled: false,
            slots: Vec::new(),
            cached: 0,
            by_page: HashMap::new(),
            generation: 0,
            code_lo: u32::MAX,
            code_hi: 0,
            stats: TranslationStats::default(),
        }
    }
}

impl Translator {
    /// Drops every cached block (memory replaced wholesale: snapshot
    /// restore, debugger writes). Clearing the slot vector (rather than
    /// refilling it) lets a later guest-memory size change re-size it.
    pub(crate) fn flush(&mut self) {
        if self.cached == 0 {
            return;
        }
        self.slots.clear();
        self.cached = 0;
        self.by_page.clear();
        self.code_lo = u32::MAX;
        self.code_hi = 0;
        self.generation += 1;
    }

    /// The cached block entered at `pc`, if any.
    fn lookup(&self, pc: u32) -> Option<&Rc<Block>> {
        self.slots.get((pc >> 2) as usize).and_then(|s| s.as_ref())
    }

    /// Drops the block entered at `pc` from the cache.
    fn evict(&mut self, pc: u32) {
        if let Some(slot) = self.slots.get_mut((pc >> 2) as usize) {
            if slot.take().is_some() {
                self.cached -= 1;
                self.generation += 1;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidates any cached block overlapping the 4 bytes at `addr`
    /// (the widest store), called on every successful LMB store. The
    /// watermark early-out keeps the cost of data-section stores — and
    /// of every store while translation is off — to two compares.
    pub(crate) fn note_store(&mut self, addr: u32) {
        // Saturating: a store at the very top of the address space can
        // only be over-covered, which at worst invalidates one extra
        // block (conservative, still bit-exact).
        let last = addr.saturating_add(3);
        if last < self.code_lo || addr >= self.code_hi {
            return;
        }
        let (lo, hi) = (addr >> PAGE_SHIFT, last >> PAGE_SHIFT);
        let mut doomed: Vec<u32> = Vec::new();
        for page in lo..=hi {
            if let Some(bucket) = self.by_page.get(&page) {
                for &start in bucket {
                    if let Some(b) = self.lookup(start) {
                        if last >= b.start && addr < b.end {
                            doomed.push(start);
                        }
                    }
                }
            }
        }
        for start in doomed {
            self.evict(start);
        }
    }
}

impl Cpu {
    /// Enables or disables translated basic-block execution (off by
    /// default). Turning it off keeps the cache (blocks stay valid —
    /// every store still invalidates); turning it on costs nothing
    /// until [`Cpu::run`] dispatches a block.
    pub fn set_translation(&mut self, enabled: bool) {
        self.translator.enabled = enabled;
    }

    /// Whether translated execution is enabled.
    pub fn translation(&self) -> bool {
        self.translator.enabled
    }

    /// Translation-cache counters (observer state — excluded from
    /// snapshots, identical architectural results whatever they say).
    pub fn translation_stats(&self) -> TranslationStats {
        self.translator.stats
    }

    /// True when translated dispatch may run right now: enabled, the
    /// pipeline at an instruction boundary, and nothing attached or
    /// latched that needs per-instruction visibility.
    fn translation_eligible(&self) -> bool {
        self.translator.enabled
            && !self.halted
            && matches!(self.pipe, Pipe::Ready)
            && self.sink.is_none()
            && self.trace.is_none()
            && self.breakpoints.is_empty()
            && self.opb.is_none()
            && self.imm_latch.is_none()
            && !self.in_delay_slot
            && self.delay_target.is_none()
            // The slot cache is direct-mapped by word index; an
            // unaligned PC would alias the aligned word's slot.
            && self.pc & 3 == 0
    }

    /// Decodes the basic block starting at `pc` into the cache. Returns
    /// the cached block (possibly empty when `pc` sits directly on a
    /// boundary instruction — cached anyway so repeat dispatches don't
    /// re-decode).
    fn translate_block(&mut self, pc: u32) -> Rc<Block> {
        // Size the direct-mapped slot table to the guest memory once;
        // `flush` drops it, so re-grow lazily here.
        let words = self.mem.bytes().len() / 4;
        if self.translator.slots.len() != words {
            self.translator.slots.resize(words, None);
        }
        let mut steps = Vec::new();
        let mut at = pc;
        let mut worst: u64 = 0;
        while steps.len() < MAX_BLOCK_LEN {
            let Ok(word) = self.mem.read_u32(at) else { break };
            let Ok(inst) = decode(word) else { break };
            if matches!(inst, Inst::Get { .. } | Inst::Put { .. } | Inst::Imm { .. } | Inst::Halt) {
                break;
            }
            let base = inst.base_cycles();
            let taken = base + inst.taken_penalty();
            worst += base.max(taken) as u64;
            let is_branch = inst.is_branch();
            steps.push(Step { inst, base, taken });
            at = at.wrapping_add(4);
            if is_branch {
                break;
            }
        }
        let block = Rc::new(Block { steps, start: pc, end: at, worst_cycles: worst });
        self.translator.stats.blocks_translated += 1;
        // Empty blocks cover no code bytes, so they never join the page
        // index or widen the store-filter watermarks (and `end - 1`
        // would wrap at pc 0).
        if !block.steps.is_empty() {
            self.translator.code_lo = self.translator.code_lo.min(block.start);
            self.translator.code_hi = self.translator.code_hi.max(block.end);
            for page in (block.start >> PAGE_SHIFT)..=((block.end - 1) >> PAGE_SHIFT) {
                let bucket = self.translator.by_page.entry(page).or_default();
                if !bucket.contains(&pc) {
                    bucket.push(pc);
                }
            }
        }
        if let Some(slot) = self.translator.slots.get_mut((pc >> 2) as usize) {
            if slot.replace(block.clone()).is_none() {
                self.translator.cached += 1;
            }
        }
        block
    }

    /// Executes one translated basic block at the current PC, charging
    /// at most `max_cycles` cycles, or returns
    /// [`TranslatedRun::NotRun`] without touching any state when the
    /// fast path is ineligible here (the caller then falls back to
    /// [`Cpu::tick`], which produces bit-identical results).
    ///
    /// The bulk loop replays exactly what `issue` + `retire` do for
    /// each instruction — same statistics, same PC sequencing, same
    /// fault behavior — minus the per-cycle pipeline bookkeeping that
    /// is unobservable between instruction boundaries.
    pub fn run_translated_block(&mut self, fsl: &mut FslBank, max_cycles: u64) -> TranslatedRun {
        if !self.translation_eligible() {
            return TranslatedRun::NotRun;
        }
        let entry = self.pc;
        let block = match self.translator.lookup(entry) {
            Some(b) => b.clone(),
            None => self.translate_block(entry),
        };
        if block.steps.is_empty() || block.worst_cycles > max_cycles {
            return TranslatedRun::NotRun;
        }
        self.translator.stats.block_dispatches += 1;
        let generation = self.translator.generation;
        // `issue` clears the breakpoint-resume latch on every issued
        // instruction; breakpoints are empty here, but the latch itself
        // must end up in the same state.
        self.bp_skip = None;
        let mut executed: u64 = 0;
        let mut pc = entry;
        for step in &block.steps {
            // issue(): charge the issue cycle, reset the per-instruction
            // attribution, execute architecturally.
            self.inst_start = self.stats.cycles;
            self.inst_read_stalls = 0;
            self.inst_write_stalls = 0;
            self.stats.cycles += 1;
            executed += 1;
            self.extra_cycles = 0;
            let cycles = match self.execute(pc, &step.inst, fsl) {
                Ok(ExecOutcome::Normal) => step.base,
                Ok(ExecOutcome::Taken) => {
                    self.stats.taken_branches += 1;
                    step.taken
                }
                // FSL instructions terminate blocks before themselves.
                Ok(ExecOutcome::FslBlocked) => unreachable!("FSL instruction inside a block"),
                Err(fault) => {
                    // fault(): the issue cycle is charged, nothing
                    // retires, the processor halts.
                    self.halted = true;
                    return TranslatedRun::Faulted { cycles: executed, fault };
                }
            };
            // Pipeline occupancy for the remaining cycles, all at once.
            let occupancy = (cycles.max(1) - 1) as u64;
            self.stats.cycles += occupancy;
            executed += occupancy;
            // retire(): count it and sequence the PC. `in_delay_slot`
            // can only become true on the block's final step (a taken
            // delayed branch), so the first arm never fires in-block —
            // kept for exact structural parity with `retire`.
            self.stats.instructions += 1;
            self.translator.stats.translated_instructions += 1;
            if self.in_delay_slot {
                self.in_delay_slot = false;
                self.pc = self.delay_target.take().expect("delay slot without target");
            } else if self.delay_target.is_some() && step.inst.has_delay_slot() {
                self.in_delay_slot = true;
                self.pc = pc.wrapping_add(4);
            } else if let Some(target) = self.redirect.take() {
                self.pc = target;
            } else {
                self.pc = pc.wrapping_add(4);
            }
            pc = self.pc;
            // A store just invalidated cached code (possibly the rest of
            // this very block): stop before using any stale decode.
            if self.translator.generation != generation {
                break;
            }
        }
        TranslatedRun::Ran { cycles: executed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;

    fn cpu(src: &str) -> (Cpu, FslBank) {
        let img = assemble(src).expect("assemble");
        (Cpu::with_default_memory(&img), FslBank::default())
    }

    /// The same program, interpreted vs translated, must agree on
    /// every architectural observable and every statistic.
    fn assert_equivalent(src: &str, budget: u64) {
        let (mut a, mut fa) = cpu(src);
        let (mut b, mut fb) = cpu(src);
        b.set_translation(true);
        let ra = a.run(&mut fa, budget);
        let rb = b.run(&mut fb, budget);
        assert_eq!(ra, rb, "stop reason diverged");
        assert_eq!(a.stats(), b.stats(), "stats diverged");
        assert_eq!(a.pc(), b.pc(), "pc diverged");
        assert_eq!(a.carry(), b.carry(), "carry diverged");
        for r in 0..32 {
            let r = softsim_isa::Reg::new(r);
            assert_eq!(a.reg(r), b.reg(r), "register {r:?} diverged");
        }
        assert_eq!(a.mem().bytes(), b.mem().bytes(), "memory diverged");
    }

    #[test]
    fn straight_line_block_is_bit_exact() {
        assert_equivalent(
            "
            addik r3, r0, 6
            muli  r3, r3, 7
            addik r4, r3, 100
            halt
            ",
            1_000,
        );
    }

    #[test]
    fn loops_and_branches_are_bit_exact() {
        assert_equivalent(
            "
                addik r3, r0, 0
                addik r4, r0, 25
            loop:
                addik r3, r3, 3
                addik r4, r4, -1
                bneid r4, loop
                addik r5, r5, 1
                halt
            ",
            10_000,
        );
    }

    #[test]
    fn translated_run_respects_cycle_budget_exactly() {
        let src = "
            loop:
                addik r3, r3, 1
                brid  loop
                addik r4, r4, 1
        ";
        for budget in 1..40 {
            assert_equivalent(src, budget);
        }
    }

    #[test]
    fn fault_in_block_matches_interpreter() {
        // The load at +8 goes out of range mid-block.
        assert_equivalent(
            "
            addik r3, r0, 4096
            bslli r3, r3, 8
            lw    r4, r3, r3
            halt
            ",
            1_000,
        );
    }

    #[test]
    fn dispatch_declines_when_observability_attached() {
        let (mut c, mut f) = cpu("addik r3, r0, 1\n halt");
        c.set_translation(true);
        c.enable_trace();
        assert_eq!(c.run_translated_block(&mut f, 1_000), TranslatedRun::NotRun);
        assert_eq!(c.run(&mut f, 1_000), crate::StopReason::Halted);
        assert_eq!(c.translation_stats().block_dispatches, 0);
        assert_eq!(c.trace().unwrap().len(), 2);
    }

    #[test]
    fn self_modifying_store_invalidates_and_stays_bit_exact() {
        use softsim_isa::{encode, ArithFlags, Reg};
        // The program overwrites `target` (inside the very block the
        // store executes from) with `addik r6, r0, 99`.
        let patch =
            encode(&Inst::AddI { rd: Reg::new(6), ra: Reg::R0, imm: 99, flags: ArithFlags::KEEP });
        let src = format!(
            "start:\n\
             \tli r3, {patch:#010x}\n\
             \tli r4, target\n\
             \tsw r3, r4, r0\n\
             \taddik r5, r0, 1\n\
             target:\n\
             \taddik r6, r0, 1\n\
             \thalt\n"
        );
        assert_equivalent(&src, 10_000);
        let (mut c, mut f) = cpu(&src);
        c.set_translation(true);
        assert_eq!(c.run(&mut f, 10_000), crate::StopReason::Halted);
        assert_eq!(c.reg(Reg::new(6)), 99, "patched instruction must execute");
        let stats = c.translation_stats();
        assert!(stats.block_dispatches > 0, "fast path never engaged: {stats:?}");
        assert!(stats.invalidations > 0, "store into cached code must invalidate: {stats:?}");
    }

    #[test]
    fn debugger_memory_write_flushes_cached_blocks() {
        use softsim_isa::{encode, ArithFlags, Reg};
        let src = "
            loop:
                addik r3, r3, 1
                brid  loop
                addik r4, r4, 1
        ";
        let img = assemble(src).expect("assemble");
        let patched = encode(&Inst::AddI {
            rd: Reg::new(3),
            ra: Reg::new(3),
            imm: 5,
            flags: ArithFlags::KEEP,
        });
        let run_with = |translation: bool| {
            let mut c = Cpu::with_default_memory(&img);
            c.set_translation(translation);
            let mut f = FslBank::default();
            assert_eq!(c.run(&mut f, 60), crate::StopReason::CycleLimit);
            // Debugger-style patch: the increment becomes 5.
            c.mem_mut().write_u32(0, patched).expect("patch in range");
            assert_eq!(c.run(&mut f, 60), crate::StopReason::CycleLimit);
            (c.reg(Reg::new(3)), c.reg(Reg::new(4)), c.pc(), c.stats(), c.translation_stats())
        };
        let interp = run_with(false);
        let xlated = run_with(true);
        assert_eq!(
            (interp.0, interp.1, interp.2, interp.3),
            (xlated.0, xlated.1, xlated.2, xlated.3)
        );
        assert!(xlated.4.block_dispatches > 0, "fast path never engaged: {:?}", xlated.4);
    }

    #[test]
    fn translation_engages_on_eligible_runs() {
        let (mut c, mut f) = cpu("
                addik r4, r0, 10
            loop:
                addik r3, r3, 1
                bneid r4, loop
                addik r4, r4, -1
                halt
            ");
        c.set_translation(true);
        assert_eq!(c.run(&mut f, 100_000), crate::StopReason::Halted);
        let stats = c.translation_stats();
        assert!(stats.block_dispatches > 0, "fast path never engaged: {stats:?}");
        assert!(stats.translated_instructions > 0);
    }
}
