//! # softsim-iss — cycle-accurate instruction-set simulator for MB32
//!
//! The software-execution-platform component of the paper's co-simulation
//! environment: a cycle-accurate simulator for programs running on the
//! MB32 (MicroBlaze-style) soft processor, together with a debugger
//! interface mirroring the `mb-gdb` pipe of Fig. 2.
//!
//! The simulator advances in single clock cycles ([`Cpu::tick`]) so the
//! co-simulation engine can interleave it exactly with the hardware-block
//! and bus models. Blocking FSL accesses stall the processor precisely as
//! §III-B describes.

#![warn(missing_docs)]

mod cpu;
pub mod debug;
mod exec;
mod fault;
mod stats;
mod translate;

pub use cpu::{
    classify, Cpu, CpuSnapshot, Event, FslBlock, InFlight, NotFslStalled, PipeSnapshot, StopReason,
    TraceEntry, DEFAULT_MEM_BYTES, OPB_BASE,
};
pub use fault::Fault;
pub use softsim_isa::CpuConfig;
pub use stats::CpuStats;
pub use translate::{TranslatedRun, TranslationStats};

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_bus::{FslBank, FslWord};
    use softsim_isa::asm::assemble;
    use softsim_isa::reg::r;
    use softsim_isa::Image;

    fn run_program(src: &str) -> (Cpu, FslBank) {
        let img = assemble(src).expect("program must assemble");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, 1_000_000);
        assert_eq!(stop, StopReason::Halted, "program must halt: {src}");
        (cpu, fsl)
    }

    fn image(src: &str) -> Image {
        assemble(src).expect("program must assemble")
    }

    #[test]
    fn arithmetic_and_carry_chain() {
        let (cpu, _) = run_program(
            "li r3, 0xFFFFFFFF\n\
             addik r4, r0, 1\n\
             add r5, r3, r4      # 0xFFFFFFFF + 1 = 0, carry out\n\
             addc r6, r0, r0     # r6 = carry = 1\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 0);
        assert_eq!(cpu.reg(r(6)), 1);
    }

    #[test]
    fn addk_preserves_carry() {
        let (cpu, _) = run_program(
            "li r3, 0xFFFFFFFF\n\
             add r4, r3, r3      # sets carry\n\
             addk r5, r0, r0     # keep: carry still set\n\
             addc r6, r0, r0     # r6 = 1\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(6)), 1);
    }

    #[test]
    fn rsub_is_reverse_subtract() {
        let (cpu, _) = run_program(
            "addik r3, r0, 7\n\
             addik r4, r0, 10\n\
             rsub r5, r3, r4     # r5 = r4 - r3 = 3\n\
             rsubi r6, r3, 5     # r6 = 5 - r3 = -2\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 3);
        assert_eq!(cpu.reg(r(6)) as i32, -2);
    }

    #[test]
    fn cmp_sets_sign_bit_for_signed_and_unsigned() {
        let (cpu, _) = run_program(
            "addik r3, r0, -1    # 0xFFFFFFFF\n\
             addik r4, r0, 1\n\
             cmp  r5, r3, r4     # signed: -1 > 1 false -> bit31 clear\n\
             cmpu r6, r3, r4     # unsigned: 0xFFFFFFFF > 1 -> bit31 set\n\
             cmp  r7, r4, r3     # signed: 1 > -1 -> bit31 set\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)) >> 31, 0);
        assert_eq!(cpu.reg(r(6)) >> 31, 1);
        assert_eq!(cpu.reg(r(7)) >> 31, 1);
    }

    #[test]
    fn multiply_matches_wrapping_semantics() {
        let (cpu, _) = run_program(
            "li r3, 123456\n\
             li r4, 789\n\
             mul r5, r3, r4\n\
             muli r6, r3, -2\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 123456u32.wrapping_mul(789));
        assert_eq!(cpu.reg(r(6)), 123456u32.wrapping_mul(-2i32 as u32));
    }

    #[test]
    fn one_bit_shifts_and_carry() {
        let (cpu, _) = run_program(
            "addik r3, r0, 5     # 0b101\n\
             srl r4, r3          # r4 = 2, carry = 1\n\
             src r5, r3          # r5 = (carry<<31) | 2\n\
             addik r6, r0, -8\n\
             sra r7, r6          # arithmetic: -4\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)), 2);
        assert_eq!(cpu.reg(r(5)), 0x8000_0002);
        assert_eq!(cpu.reg(r(7)) as i32, -4);
    }

    #[test]
    fn barrel_shifts() {
        let (cpu, _) = run_program(
            "li r3, 0x80000000\n\
             addik r4, r0, 4\n\
             bsrl r5, r3, r4     # logical right 4\n\
             bsra r6, r3, r4     # arithmetic right 4\n\
             bslli r7, r4, 8     # 4 << 8\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 0x0800_0000);
        assert_eq!(cpu.reg(r(6)), 0xF800_0000);
        assert_eq!(cpu.reg(r(7)), 4 << 8);
    }

    #[test]
    fn sign_extension() {
        let (cpu, _) = run_program(
            "addik r3, r0, 0x80\n\
             sext8 r4, r3\n\
             li r5, 0x8000\n\
             sext16 r6, r5\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)) as i32, -128);
        assert_eq!(cpu.reg(r(6)) as i32, -32768);
    }

    #[test]
    fn loads_and_stores_big_endian() {
        let (cpu, _) = run_program(
            "li r3, 0x11223344\n\
             swi r3, r0, 0x100\n\
             lbui r4, r0, 0x100   # MSB first\n\
             lhui r5, r0, 0x102\n\
             lwi r6, r0, 0x100\n\
             addik r7, r0, 0x100\n\
             addik r8, r0, 2\n\
             lhu r9, r7, r8\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)), 0x11);
        assert_eq!(cpu.reg(r(5)), 0x3344);
        assert_eq!(cpu.reg(r(6)), 0x11223344);
        assert_eq!(cpu.reg(r(9)), 0x3344);
    }

    #[test]
    fn loop_with_delay_slot_executes_slot_instruction() {
        let (cpu, _) = run_program(
            "      addik r3, r0, 5\n\
                   addk r4, r0, r0\n\
             loop: addik r3, r3, -1\n\
                   bneid r3, loop\n\
                   addik r4, r4, 1   # delay slot: executes every iteration\n\
                   halt\n",
        );
        assert_eq!(cpu.reg(r(3)), 0);
        assert_eq!(cpu.reg(r(4)), 5, "delay slot runs once per loop trip");
    }

    #[test]
    fn branch_not_taken_falls_through() {
        let (cpu, _) = run_program(
            "addik r3, r0, 0\n\
             bnei r3, skip\n\
             addik r4, r0, 1\n\
             skip: halt\n",
        );
        assert_eq!(cpu.reg(r(4)), 1);
    }

    #[test]
    fn call_return_with_link_register() {
        let (cpu, _) = run_program(
            "      addik r5, r0, 1\n\
                   brlid r15, double\n\
                   nop\n\
                   addik r6, r5, 0\n\
                   halt\n\
             double: addk r5, r5, r5\n\
                   rtsd r15, 8\n\
                   nop\n",
        );
        assert_eq!(cpu.reg(r(6)), 2, "function doubled r5 and returned");
    }

    #[test]
    fn nested_calls_via_different_link_registers() {
        let (cpu, _) = run_program(
            "      brlid r15, outer\n\
                   nop\n\
                   halt\n\
             outer: addik r3, r3, 1\n\
                   brlid r14, inner\n\
                   nop\n\
                   rtsd r15, 8\n\
                   nop\n\
             inner: addik r3, r3, 10\n\
                   rtsd r14, 8\n\
                   nop\n",
        );
        assert_eq!(cpu.reg(r(3)), 11);
    }

    #[test]
    fn imm_prefix_builds_32_bit_immediates() {
        let (cpu, _) = run_program(
            "imm 0x1234\n\
             addik r3, r0, 0x5678\n\
             addik r4, r0, 0x5678   # no prefix: sign-extended only\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(3)), 0x1234_5678);
        assert_eq!(cpu.reg(r(4)), 0x5678);
    }

    #[test]
    fn fsl_nonblocking_sets_carry_on_miss() {
        let (cpu, _) = run_program(
            "nget r3, rfsl0      # empty: carry = 1\n\
             addc r4, r0, r0     # r4 = 1\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)), 1);
        assert_eq!(cpu.stats().fsl_nonblocking_misses, 1);
    }

    #[test]
    fn fsl_blocking_get_stalls_until_data() {
        let img = image(
            "get r3, rfsl0\n\
             halt\n",
        );
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        // Stall for a while.
        for _ in 0..10 {
            let ev = cpu.tick(&mut fsl);
            assert_eq!(ev, Event::Busy);
        }
        assert!(cpu.stats().fsl_read_stalls >= 9);
        // Provide the word; the get completes two cycles later.
        fsl.from_hw(0).try_push(FslWord::data(0x42));
        let stop = cpu.run(&mut fsl, 100);
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(r(3)), 0x42);
        assert_eq!(cpu.stats().fsl_words_received, 1);
    }

    #[test]
    fn fsl_blocking_put_stalls_when_full() {
        let img = image(
            "addik r3, r0, 7\n\
             put r3, rfsl0\n\
             halt\n",
        );
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::new(1);
        fsl.to_hw(0).try_push(FslWord::data(0)); // pre-fill: channel full
        for _ in 0..8 {
            cpu.tick(&mut fsl);
        }
        assert!(!cpu.halted(), "put must stall while the FIFO is full");
        assert!(cpu.stats().fsl_write_stalls > 0);
        fsl.to_hw(0).try_pop();
        let stop = cpu.run(&mut fsl, 100);
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(fsl.to_hw(0).try_pop(), Some(FslWord::data(7)));
    }

    #[test]
    fn fsl_control_words_carry_the_control_bit() {
        let (_, mut fsl) = run_program(
            "addik r3, r0, 0xC0\n\
             cput r3, rfsl2\n\
             addik r4, r0, 0xD0\n\
             put r4, rfsl2\n\
             halt\n",
        );
        assert_eq!(fsl.to_hw(2).try_pop(), Some(FslWord::control(0xC0)));
        assert_eq!(fsl.to_hw(2).try_pop(), Some(FslWord::data(0xD0)));
    }

    #[test]
    fn cycle_accounting_matches_timing_model() {
        // addik(1) + mul(3) + lwi(2) + swi(2) + halt(1) = 9 cycles.
        let (cpu, _) = run_program(
            "addik r3, r0, 3\n\
             mul r4, r3, r3\n\
             lwi r5, r0, 0x40\n\
             swi r4, r0, 0x40\n\
             halt\n",
        );
        assert_eq!(cpu.stats().cycles, 9);
        assert_eq!(cpu.stats().instructions, 5);
        assert_eq!(cpu.stats().multiplies, 1);
    }

    #[test]
    fn taken_branch_penalty() {
        // bri taken without delay slot: 1 + 2 flush = 3 cycles, plus halt 1.
        let (cpu, _) = run_program("bri t\nnop\nt: halt\n");
        assert_eq!(cpu.stats().cycles, 4);
        // With delay slot: brid(1+1) + slot nop(1) + halt(1) = 4.
        let (cpu, _) = run_program("brid t\nnop\nt: halt\n");
        assert_eq!(cpu.stats().cycles, 4);
        // Not-taken conditional: 1 cycle only.
        let (cpu, _) = run_program("bnei r0, t\nt: halt\n");
        assert_eq!(cpu.stats().cycles, 2);
    }

    #[test]
    fn fault_on_illegal_delay_slot() {
        let img = image("brid t\nbri t\nt: halt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, 100);
        assert!(matches!(stop, StopReason::Fault(Fault::IllegalDelaySlot { pc: 4 })));
        assert!(cpu.halted());
    }

    #[test]
    fn fault_on_bad_memory_access() {
        let img = image("li r3, 0x7FFFFFF0\nlwi r4, r3, 0\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, 100);
        assert!(matches!(stop, StopReason::Fault(Fault::Memory { .. })));
    }

    #[test]
    fn fault_on_undecodable_instruction() {
        let img = image(".word 0xFFFFFFFF\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, 100);
        assert!(matches!(stop, StopReason::Fault(Fault::Decode { pc: 0, .. })));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _) = run_program(
            "addik r0, r0, 42\n\
             addk r3, r0, r0\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(0)), 0);
        assert_eq!(cpu.reg(r(3)), 0);
    }

    #[test]
    fn trace_records_retired_instructions_in_order() {
        let img = image("addik r3, r0, 1\naddik r3, r3, 1\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        cpu.enable_trace();
        let mut fsl = FslBank::default();
        cpu.run(&mut fsl, 100);
        let trace = cpu.trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].pc, 0);
        assert_eq!(trace[1].pc, 4);
        assert_eq!(trace[2].pc, 8);
        assert!(trace.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn cycle_limit_stops_infinite_loop() {
        let img = image("loop: bri loop\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, 1000);
        assert_eq!(stop, StopReason::CycleLimit);
        assert!(cpu.stats().cycles >= 1000);
    }

    #[test]
    fn reset_restores_initial_state() {
        let img = image("addik r3, r0, 9\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        cpu.run(&mut fsl, 100);
        assert!(cpu.halted());
        cpu.reset(&img);
        assert!(!cpu.halted());
        assert_eq!(cpu.pc(), 0);
        assert_eq!(cpu.reg(r(3)), 0);
        assert_eq!(cpu.stats().cycles, 0);
        cpu.run(&mut fsl, 100);
        assert_eq!(cpu.reg(r(3)), 9);
    }

    #[test]
    fn idiv_semantics_and_timing() {
        use softsim_isa::CpuConfig;
        let img = image(
            "li r3, 100\n\
             addik r4, r0, 7\n\
             idiv r5, r4, r3     # r5 = r3 / r4 = 14 (reverse operands)\n\
             addik r6, r0, -100\n\
             idiv r7, r4, r6     # signed: -14\n\
             idivu r8, r4, r6    # unsigned: huge\n\
             idiv r9, r0, r3     # divide by zero -> 0\n\
             halt\n",
        );
        let mut cpu = Cpu::with_config(&img, CpuConfig::full());
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, 10_000), StopReason::Halted);
        assert_eq!(cpu.reg(r(5)), 14);
        assert_eq!(cpu.reg(r(7)) as i32, -14);
        assert_eq!(cpu.reg(r(8)), (-100i32 as u32) / 7);
        assert_eq!(cpu.reg(r(9)), 0, "divide by zero yields zero");
        // Each idiv costs 32 cycles: 4 of them dominate the cycle count.
        assert!(cpu.stats().cycles >= 4 * 32);
    }

    #[test]
    fn idiv_int_min_by_minus_one_wraps() {
        use softsim_isa::CpuConfig;
        let img = image(
            "li r3, 0x80000000\n\
             addik r4, r0, -1\n\
             idiv r5, r4, r3\n\
             halt\n",
        );
        let mut cpu = Cpu::with_config(&img, CpuConfig::full());
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, 10_000), StopReason::Halted);
        assert_eq!(cpu.reg(r(5)), 0x8000_0000, "INT_MIN / -1 wraps");
    }

    #[test]
    fn optional_units_fault_when_absent() {
        use softsim_isa::CpuConfig;
        let cases = [
            ("mul r3, r4, r5\nhalt\n", "multiplier"),
            ("idiv r3, r4, r5\nhalt\n", "divider"),
            ("bslli r3, r4, 2\nhalt\n", "barrel shifter"),
        ];
        for (src, unit) in cases {
            let img = image(src);
            let mut cpu = Cpu::with_config(&img, CpuConfig::minimal());
            let mut fsl = FslBank::default();
            match cpu.run(&mut fsl, 1000) {
                StopReason::Fault(Fault::DisabledInstruction { unit: u, .. }) => {
                    assert_eq!(u, unit);
                }
                other => panic!("{unit}: expected DisabledInstruction, got {other:?}"),
            }
        }
        // The default configuration has the divider off.
        let img = image("idiv r3, r4, r5\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        assert!(matches!(
            cpu.run(&mut fsl, 1000),
            StopReason::Fault(Fault::DisabledInstruction { .. })
        ));
    }

    #[test]
    fn opb_mapped_registers_read_write() {
        use softsim_bus::{OpbBus, RegisterFile};
        let img = image(
            "li r3, 0x80000000\n\
             li r4, 0x1234\n\
             swi r4, r3, 8\n\
             lwi r5, r3, 8\n\
             halt\n",
        );
        let mut cpu = Cpu::with_default_memory(&img);
        let mut bus = OpbBus::new();
        bus.map(0x8000_0000, 0x100, Box::new(RegisterFile::new(8)));
        cpu.attach_opb(bus);
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, 1000), StopReason::Halted);
        assert_eq!(cpu.reg(r(5)), 0x1234);
    }

    #[test]
    fn opb_transfers_pay_bus_latency() {
        use softsim_bus::{OpbBus, RegisterFile, OPB_READ_LATENCY, OPB_WRITE_LATENCY};
        // Same program against LMB vs OPB addresses; the OPB run must be
        // slower by exactly the write+read bus latency.
        let lmb = image("li r3, 0x100\nswi r0, r3, 0\nlwi r5, r3, 0\nhalt\n");
        let opb = image("li r3, 0x80000000\nswi r0, r3, 0\nlwi r5, r3, 0\nhalt\n");
        let cycles = |img: &softsim_isa::Image, with_opb: bool| {
            let mut cpu = Cpu::with_default_memory(img);
            if with_opb {
                let mut bus = OpbBus::new();
                bus.map(0x8000_0000, 0x100, Box::new(RegisterFile::new(4)));
                cpu.attach_opb(bus);
            }
            let mut fsl = FslBank::default();
            assert_eq!(cpu.run(&mut fsl, 1000), StopReason::Halted);
            cpu.stats().cycles
        };
        let lmb_cycles = cycles(&lmb, false);
        let opb_cycles = cycles(&opb, true);
        assert_eq!(
            opb_cycles,
            lmb_cycles + (OPB_READ_LATENCY + OPB_WRITE_LATENCY) as u64,
            "OPB pays the documented per-transfer latency"
        );
    }

    #[test]
    fn opb_access_without_bus_faults() {
        let img = image("li r3, 0x80000000\nlwi r5, r3, 0\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        assert!(matches!(cpu.run(&mut fsl, 1000), StopReason::Fault(Fault::Memory { .. })));
    }

    #[test]
    fn opb_rejects_subword_access() {
        use softsim_bus::{OpbBus, RegisterFile};
        let img = image("li r3, 0x80000000\nlbui r5, r3, 0\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut bus = OpbBus::new();
        bus.map(0x8000_0000, 0x100, Box::new(RegisterFile::new(4)));
        cpu.attach_opb(bus);
        let mut fsl = FslBank::default();
        assert!(matches!(cpu.run(&mut fsl, 1000), StopReason::Fault(Fault::Memory { .. })));
    }

    /// Runs `src` through the interpreter and the translated fast path
    /// and asserts every architectural observable agrees — the shared
    /// oracle for the directed carry tests below.
    fn run_both_paths(src: &str) -> Cpu {
        let img = image(src);
        let mut interp = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        assert_eq!(interp.run(&mut fsl, 1_000_000), StopReason::Halted, "program must halt");
        let mut xlated = Cpu::with_default_memory(&img);
        xlated.set_translation(true);
        let mut fsl = FslBank::default();
        assert_eq!(xlated.run(&mut fsl, 1_000_000), StopReason::Halted);
        assert_eq!(interp.stats(), xlated.stats(), "stats diverged: {src}");
        assert_eq!(interp.carry(), xlated.carry(), "carry diverged: {src}");
        for i in 0..32u8 {
            assert_eq!(interp.reg(r(i)), xlated.reg(r(i)), "r{i} diverged: {src}");
        }
        xlated
    }

    #[test]
    fn carry_out_of_add_matches_microblaze() {
        // MicroBlaze: C = adder carry-out of a + b (+ cin).
        let cpu = run_both_paths(
            "li r3, 0xFFFFFFFF\n\
             addik r4, r0, 1\n\
             add r5, r3, r4      # 0xFFFFFFFF + 1 -> 0, C = 1\n\
             addc r6, r0, r0     # consume C: r6 = 1, C = 0\n\
             addc r7, r3, r0     # 0xFFFFFFFF + 0 + 0, no overflow: C = 0\n\
             addc r8, r0, r0     # r8 = 0\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 0);
        assert_eq!(cpu.reg(r(6)), 1);
        assert_eq!(cpu.reg(r(7)), 0xFFFF_FFFF);
        assert_eq!(cpu.reg(r(8)), 0);
    }

    #[test]
    fn carry_chain_performs_64_bit_addition() {
        // 0x00000001_FFFFFFFF + 0x00000002_00000001 via add / addc.
        let cpu = run_both_paths(
            "li r3, 0xFFFFFFFF\n\
             addik r4, r0, 1\n\
             add r5, r3, r4      # low word: 0, C = 1\n\
             addik r6, r0, 1\n\
             addik r7, r0, 2\n\
             addc r8, r6, r7     # high word: 1 + 2 + C = 4\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 0);
        assert_eq!(cpu.reg(r(8)), 4);
    }

    #[test]
    fn carry_out_of_rsub_is_not_borrow() {
        // MicroBlaze rsub: rd = rb + ~ra + 1; C is the adder carry-out,
        // i.e. C = 1 exactly when rb >= ra (no borrow).
        let cpu = run_both_paths(
            "addik r3, r0, 5\n\
             addik r4, r0, 3\n\
             rsub r5, r3, r4     # 3 - 5 = -2, borrow: C = 0\n\
             addc r6, r0, r0     # r6 = 0\n\
             rsub r7, r4, r3     # 5 - 3 = 2, no borrow: C = 1\n\
             addc r8, r0, r0     # r8 = 1\n\
             rsub r9, r4, r4     # 3 - 3 = 0, no borrow: C = 1\n\
             addc r10, r0, r0    # r10 = 1\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)) as i32, -2);
        assert_eq!(cpu.reg(r(6)), 0);
        assert_eq!(cpu.reg(r(7)), 2);
        assert_eq!(cpu.reg(r(8)), 1);
        assert_eq!(cpu.reg(r(9)), 0);
        assert_eq!(cpu.reg(r(10)), 1);
    }

    #[test]
    fn rsubc_chains_borrow_through_carry() {
        // rsubc: rd = rb + ~ra + C — the multi-word subtract primitive.
        // With C = 1 (no pending borrow) it is exact subtraction; with
        // C = 0 it subtracts one more.
        let cpu = run_both_paths(
            "addik r3, r0, 3\n\
             addik r4, r0, 10\n\
             li r9, 0xFFFFFFFF\n\
             add r10, r9, r9     # force C = 1\n\
             rsubc r5, r3, r4    # C = 1: exact 10 - 3 = 7, carry-out C = 1\n\
             addc r6, r0, r0     # r6 = 1, C = 0\n\
             rsubc r7, r3, r4    # C = 0: 10 + ~3 + 0 = 6 (one extra borrowed)\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), 7);
        assert_eq!(cpu.reg(r(6)), 1);
        assert_eq!(cpu.reg(r(7)), 6);
    }

    #[test]
    fn carry_out_of_srl_src_sra_is_shifted_out_bit() {
        let cpu = run_both_paths(
            "addik r3, r0, 5\n\
             srl r4, r3          # 0b101 >> 1 = 2, C = old bit0 = 1\n\
             addc r5, r0, r0     # r5 = 1\n\
             addik r6, r0, 4\n\
             srl r7, r6          # 0b100 >> 1 = 2, C = 0\n\
             addc r8, r0, r0     # r8 = 0\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)), 2);
        assert_eq!(cpu.reg(r(5)), 1);
        assert_eq!(cpu.reg(r(7)), 2);
        assert_eq!(cpu.reg(r(8)), 0);

        // src inserts the OLD carry into bit 31 while capturing bit 0 —
        // the order the MicroBlaze reference specifies.
        let cpu = run_both_paths(
            "addik r3, r0, 5\n\
             srl r4, r3          # C = 1\n\
             addik r5, r0, 4\n\
             src r6, r5          # (4 >> 1) | (1 << 31), new C = 4 & 1 = 0\n\
             addik r7, r0, 3\n\
             src r8, r7          # C = 0 now: 3 >> 1 = 1, new C = 1\n\
             addc r9, r0, r0     # r9 = 1\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(6)), 0x8000_0002);
        assert_eq!(cpu.reg(r(8)), 1);
        assert_eq!(cpu.reg(r(9)), 1);

        let cpu = run_both_paths(
            "addik r3, r0, -7\n\
             sra r4, r3          # 0xFFFFFFF9 >> 1 arith = -4, C = 1\n\
             addc r5, r0, r0     # r5 = 1\n\
             addik r6, r0, -8\n\
             sra r7, r6          # -8 >> 1 = -4, C = 0\n\
             addc r8, r0, r0     # r8 = 0\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(4)) as i32, -4);
        assert_eq!(cpu.reg(r(5)), 1);
        assert_eq!(cpu.reg(r(7)) as i32, -4);
        assert_eq!(cpu.reg(r(8)), 0);
    }

    #[test]
    fn in_flight_cycle_attribution_saturates_past_u32() {
        // A >4-billion-cycle stall (reachable via fast-forward jumps)
        // must clamp the per-instruction attribution, not truncate it.
        let img = image("get r3, rfsl0\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        assert_eq!(cpu.tick(&mut fsl), Event::Busy); // issues, blocks
        cpu.fast_forward_stall(u32::MAX as u64 + 10).expect("pipeline is FSL-stalled");
        let f = cpu.in_flight().expect("get is in flight");
        assert_eq!(f.cycles, u32::MAX, "attribution saturates instead of wrapping");
        assert_eq!(f.read_stalls, u32::MAX);
        assert_eq!(cpu.stats().cycles, 1 + u32::MAX as u64 + 10, "cycle counter stays exact");
    }

    #[test]
    fn fast_forward_stall_rejects_non_stalled_pipeline() {
        // Meaningful in release builds too: a typed error, not a
        // debug-only assert, and no counter is touched.
        let img = image("addik r3, r0, 1\nhalt\n");
        let mut cpu = Cpu::with_default_memory(&img);
        let before = cpu.stats();
        assert_eq!(cpu.fast_forward_stall(100), Err(NotFslStalled));
        assert_eq!(cpu.stats(), before, "rejected call must not corrupt accounting");
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, 100), StopReason::Halted);
        let before = cpu.stats();
        assert_eq!(cpu.fast_forward_stall(7), Err(NotFslStalled), "halted CPU is not stalled");
        assert_eq!(cpu.stats(), before);
    }

    #[test]
    fn software_multiply_by_shifts_matches_mul() {
        // Cross-check: compute 0xABCD * 77 with shift-add in software.
        let (cpu, _) = run_program(
            "li r3, 0xABCD\n\
             addik r4, r0, 77\n\
             addk r5, r0, r0      # acc\n\
             loop: andi r6, r4, 1\n\
             beqi r6, skip\n\
             addk r5, r5, r3\n\
             skip: addk r3, r3, r3\n\
             srl r4, r4\n\
             bnei r4, loop\n\
             mul r7, r0, r0       # placeholder\n\
             li r8, 0xABCD\n\
             muli r7, r8, 77\n\
             halt\n",
        );
        assert_eq!(cpu.reg(r(5)), cpu.reg(r(7)));
        assert_eq!(cpu.reg(r(5)), 0xABCD * 77);
    }
}
