//! Debugger interface — the `mb-gdb` analog.
//!
//! In the paper, the MicroBlaze Simulink block drives software execution
//! through `mb-gdb`, which runs "within a bidirectional software pipe" and
//! "accepts commands ... and interactively runs the software programs. It
//! also changes the status of the registers of the MicroBlaze processor
//! based on the results from the customized hardware designs" (§III-A).
//!
//! [`DebugSession`] reproduces that control interface: a command/reply
//! protocol over the cycle-accurate CPU model, with both a typed API
//! ([`Command`]/[`Reply`]) and a textual encoding ([`parse_command`],
//! [`Reply::to_line`]) mirroring the pipe.

use crate::cpu::{Cpu, StopReason};
use crate::stats::CpuStats;
use softsim_bus::FslBank;
use softsim_isa::Reg;

/// A debugger command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Read a general-purpose register.
    ReadReg(Reg),
    /// Write a general-purpose register (how the paper's Simulink block
    /// feeds hardware results back into the processor).
    WriteReg(Reg, u32),
    /// Read the program counter.
    ReadPc,
    /// Set the program counter.
    SetPc(u32),
    /// Read a word of local memory.
    ReadWord(u32),
    /// Write a word of local memory.
    WriteWord(u32, u32),
    /// Execute one instruction (however many cycles it takes).
    Step,
    /// Run until halt, fault, breakpoint or the cycle budget expires.
    Continue {
        /// Maximum number of cycles to simulate.
        max_cycles: u64,
    },
    /// Set a breakpoint.
    Break(u32),
    /// Delete a breakpoint.
    Delete(u32),
    /// Read execution statistics.
    Stats,
}

/// A debugger reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A register or memory value.
    Value(u32),
    /// Execution stopped.
    Stopped(StopReason),
    /// Statistics snapshot.
    Stats(CpuStats),
    /// Command acknowledged.
    Ok,
    /// Command failed.
    Error(String),
}

impl Reply {
    /// Serializes the reply as one line of the textual protocol.
    pub fn to_line(&self) -> String {
        match self {
            Reply::Value(v) => format!("value {v:#010x}"),
            Reply::Stopped(StopReason::Halted) => "stopped halted".into(),
            Reply::Stopped(StopReason::CycleLimit) => "stopped cycle-limit".into(),
            Reply::Stopped(StopReason::Breakpoint(pc)) => format!("stopped breakpoint {pc:#010x}"),
            Reply::Stopped(StopReason::Fault(f)) => format!("stopped fault: {f}"),
            Reply::Stats(s) => format!(
                "stats cycles={} instructions={} fsl-stalls={}",
                s.cycles,
                s.instructions,
                s.fsl_stalls()
            ),
            Reply::Ok => "ok".into(),
            Reply::Error(e) => format!("error {e}"),
        }
    }
}

/// Parses one line of the textual command protocol.
///
/// Grammar (whitespace-separated):
/// `rr REG` · `wr REG VALUE` · `rpc` · `wpc ADDR` · `rm ADDR` ·
/// `wm ADDR VALUE` · `step` · `cont CYCLES` · `break ADDR` ·
/// `delete ADDR` · `stats`
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut parts = line.split_whitespace();
    let head = parts.next().ok_or("empty command")?;
    let mut next_reg = || -> Result<Reg, String> {
        let tok = parts.next().ok_or("missing register")?;
        Reg::parse(tok).ok_or_else(|| format!("bad register `{tok}`"))
    };
    let cmd = match head {
        "rr" => Command::ReadReg(next_reg()?),
        "wr" => {
            let r = next_reg()?;
            Command::WriteReg(r, parse_u32(parts.next().ok_or("missing value")?)?)
        }
        "rpc" => Command::ReadPc,
        "wpc" => Command::SetPc(parse_u32(parts.next().ok_or("missing address")?)?),
        "rm" => Command::ReadWord(parse_u32(parts.next().ok_or("missing address")?)?),
        "wm" => {
            let a = parse_u32(parts.next().ok_or("missing address")?)?;
            Command::WriteWord(a, parse_u32(parts.next().ok_or("missing value")?)?)
        }
        "step" => Command::Step,
        "cont" => Command::Continue {
            max_cycles: parts
                .next()
                .map(|t| t.parse().map_err(|_| "bad cycle count".to_string()))
                .transpose()?
                .unwrap_or(u64::MAX / 2),
        },
        "break" => Command::Break(parse_u32(parts.next().ok_or("missing address")?)?),
        "delete" => Command::Delete(parse_u32(parts.next().ok_or("missing address")?)?),
        "stats" => Command::Stats,
        other => return Err(format!("unknown command `{other}`")),
    };
    if parts.next().is_some() {
        return Err("trailing operands".into());
    }
    Ok(cmd)
}

fn parse_u32(tok: &str) -> Result<u32, String> {
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    v.map_err(|_| format!("bad number `{tok}`"))
}

/// A debugging session over a CPU and its FSL channels.
pub struct DebugSession<'a> {
    cpu: &'a mut Cpu,
    fsl: &'a mut FslBank,
}

impl<'a> DebugSession<'a> {
    /// Attaches to a processor.
    pub fn new(cpu: &'a mut Cpu, fsl: &'a mut FslBank) -> DebugSession<'a> {
        DebugSession { cpu, fsl }
    }

    /// Executes one command.
    pub fn handle(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::ReadReg(r) => Reply::Value(self.cpu.reg(r)),
            Command::WriteReg(r, v) => {
                self.cpu.set_reg(r, v);
                Reply::Ok
            }
            Command::ReadPc => Reply::Value(self.cpu.pc()),
            Command::SetPc(a) => {
                self.cpu.set_pc(a);
                Reply::Ok
            }
            Command::ReadWord(a) => match self.cpu.mem().read_u32(a) {
                Ok(v) => Reply::Value(v),
                Err(e) => Reply::Error(e.to_string()),
            },
            Command::WriteWord(a, v) => match self.cpu.mem_mut().write_u32(a, v) {
                Ok(()) => Reply::Ok,
                Err(e) => Reply::Error(e.to_string()),
            },
            Command::Step => Reply::Stopped(self.step()),
            Command::Continue { max_cycles } => Reply::Stopped(self.cpu.run(self.fsl, max_cycles)),
            Command::Break(a) => {
                self.cpu.add_breakpoint(a);
                Reply::Ok
            }
            Command::Delete(a) => {
                if self.cpu.remove_breakpoint(a) {
                    Reply::Ok
                } else {
                    Reply::Error(format!("no breakpoint at {a:#010x}"))
                }
            }
            Command::Stats => Reply::Stats(self.cpu.stats()),
        }
    }

    /// Executes a textual command line.
    pub fn handle_line(&mut self, line: &str) -> String {
        match parse_command(line) {
            Ok(cmd) => self.handle(cmd).to_line(),
            Err(e) => Reply::Error(e).to_line(),
        }
    }

    /// Runs until the next instruction retires (or execution stops).
    fn step(&mut self) -> StopReason {
        use crate::cpu::Event;
        loop {
            match self.cpu.tick(self.fsl) {
                Event::Busy => continue,
                Event::Retired { .. } => {
                    return if self.cpu.halted() {
                        StopReason::Halted
                    } else {
                        StopReason::CycleLimit // "stepped"
                    };
                }
                Event::Halted => return StopReason::Halted,
                Event::Breakpoint { pc } => return StopReason::Breakpoint(pc),
                Event::Fault(f) => return StopReason::Fault(f),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;
    use softsim_isa::reg::r;

    fn session_program() -> softsim_isa::Image {
        assemble(
            "      addik r3, r0, 10\n\
             loop: addik r3, r3, -1\n\
                   bneid r3, loop\n\
                   nop\n\
                   halt\n",
        )
        .unwrap()
    }

    #[test]
    fn read_write_registers_and_memory() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        assert_eq!(dbg.handle(Command::WriteReg(r(5), 99)), Reply::Ok);
        assert_eq!(dbg.handle(Command::ReadReg(r(5))), Reply::Value(99));
        assert_eq!(dbg.handle(Command::WriteWord(0x100, 0xABCD)), Reply::Ok);
        assert_eq!(dbg.handle(Command::ReadWord(0x100)), Reply::Value(0xABCD));
        assert!(matches!(dbg.handle(Command::ReadWord(3)), Reply::Error(_)));
    }

    #[test]
    fn step_and_continue() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        dbg.handle(Command::Step);
        assert_eq!(dbg.handle(Command::ReadReg(r(3))), Reply::Value(10));
        let reply = dbg.handle(Command::Continue { max_cycles: 10_000 });
        assert_eq!(reply, Reply::Stopped(StopReason::Halted));
        assert_eq!(dbg.handle(Command::ReadReg(r(3))), Reply::Value(0));
    }

    #[test]
    fn breakpoints_stop_continue() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        dbg.handle(Command::Break(4));
        let reply = dbg.handle(Command::Continue { max_cycles: 10_000 });
        assert_eq!(reply, Reply::Stopped(StopReason::Breakpoint(4)));
        // Resuming proceeds past the breakpoint and hits it again on the
        // next loop iteration.
        let reply = dbg.handle(Command::Continue { max_cycles: 10_000 });
        assert_eq!(reply, Reply::Stopped(StopReason::Breakpoint(4)));
        dbg.handle(Command::Delete(4));
        let reply = dbg.handle(Command::Continue { max_cycles: 10_000 });
        assert_eq!(reply, Reply::Stopped(StopReason::Halted));
    }

    #[test]
    fn textual_protocol_round_trip() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        assert_eq!(dbg.handle_line("wr r4 0x2A"), "ok");
        assert_eq!(dbg.handle_line("rr r4"), "value 0x0000002a");
        assert_eq!(dbg.handle_line("rpc"), "value 0x00000000");
        assert_eq!(dbg.handle_line("cont"), "stopped halted");
        assert!(dbg.handle_line("stats").starts_with("stats cycles="));
        assert!(dbg.handle_line("bogus").starts_with("error"));
        assert!(dbg.handle_line("rr r99").starts_with("error"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("").is_err());
        assert!(parse_command("wr r1").is_err());
        assert!(parse_command("rm xyz").is_err());
        assert!(parse_command("step extra").is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        // Every malformed line maps to a distinct, precise diagnostic.
        assert_eq!(parse_command("   "), Err("empty command".into()));
        assert_eq!(parse_command("rr"), Err("missing register".into()));
        assert_eq!(parse_command("rr r42"), Err("bad register `r42`".into()));
        assert_eq!(parse_command("rr pc"), Err("bad register `pc`".into()));
        assert_eq!(parse_command("wr r1"), Err("missing value".into()));
        assert_eq!(parse_command("wr r1 0xZZ"), Err("bad number `0xZZ`".into()));
        assert_eq!(parse_command("wpc"), Err("missing address".into()));
        assert_eq!(parse_command("rm"), Err("missing address".into()));
        assert_eq!(parse_command("rm xyz"), Err("bad number `xyz`".into()));
        assert_eq!(parse_command("wm 0x10"), Err("missing value".into()));
        assert_eq!(parse_command("break"), Err("missing address".into()));
        assert_eq!(parse_command("delete"), Err("missing address".into()));
        assert_eq!(parse_command("cont fast"), Err("bad cycle count".into()));
        assert_eq!(parse_command("quit"), Err("unknown command `quit`".into()));
        assert_eq!(parse_command("stats now"), Err("trailing operands".into()));
        assert_eq!(parse_command("rpc 0"), Err("trailing operands".into()));
    }

    #[test]
    fn parse_accepts_hex_and_decimal_operands() {
        assert_eq!(parse_command("wm 0x40 255"), Ok(Command::WriteWord(0x40, 255)));
        assert_eq!(parse_command("cont 500"), Ok(Command::Continue { max_cycles: 500 }));
        // `cont` with no operand runs with an effectively unbounded budget.
        assert!(
            matches!(parse_command("cont"), Ok(Command::Continue { max_cycles }) if max_cycles > 1 << 60)
        );
    }

    #[test]
    fn commands_after_halt_still_answer() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        assert_eq!(
            dbg.handle(Command::Continue { max_cycles: 10_000 }),
            Reply::Stopped(StopReason::Halted)
        );
        // The session stays usable after halt: state reads answer, and
        // further execution requests report halted instead of wedging.
        assert_eq!(dbg.handle(Command::ReadReg(r(3))), Reply::Value(0));
        assert!(matches!(dbg.handle(Command::ReadPc), Reply::Value(_)));
        assert_eq!(dbg.handle(Command::Step), Reply::Stopped(StopReason::Halted));
        assert_eq!(
            dbg.handle(Command::Continue { max_cycles: 100 }),
            Reply::Stopped(StopReason::Halted)
        );
        assert!(matches!(dbg.handle(Command::Stats), Reply::Stats(_)));
    }

    #[test]
    fn breakpoint_add_remove_round_trips() {
        let img = session_program();
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        let mut dbg = DebugSession::new(&mut cpu, &mut fsl);
        // Textual add/remove round-trip, including the failure path.
        assert_eq!(dbg.handle_line("break 0x4"), "ok");
        assert_eq!(dbg.handle_line("delete 0x4"), "ok");
        assert_eq!(dbg.handle_line("delete 0x4"), "error no breakpoint at 0x00000004");
        assert_eq!(dbg.handle_line("delete 0x80"), "error no breakpoint at 0x00000080");
        // Re-adding after removal works, and duplicates collapse.
        assert_eq!(dbg.handle_line("break 0x4"), "ok");
        assert_eq!(dbg.handle_line("break 0x4"), "ok");
        assert_eq!(dbg.handle_line("delete 0x4"), "ok");
        assert_eq!(dbg.handle_line("delete 0x4"), "error no breakpoint at 0x00000004");
        // With every breakpoint gone the program runs to completion.
        assert_eq!(dbg.handle_line("cont"), "stopped halted");
    }
}
