//! Simulation faults raised by the instruction-set simulator.

use softsim_bus::MemError;
use softsim_isa::DecodeError;
use std::fmt;

/// A condition that stops simulation with an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The fetched word does not decode to an instruction.
    Decode {
        /// PC of the undecodable word.
        pc: u32,
        /// The decode failure.
        err: DecodeError,
    },
    /// A data or instruction access failed.
    Memory {
        /// PC of the faulting instruction.
        pc: u32,
        /// The memory failure.
        err: MemError,
    },
    /// A branch, `imm` prefix or `halt` appeared in a delay slot
    /// (architecturally illegal on MicroBlaze).
    IllegalDelaySlot {
        /// PC of the offending delay-slot instruction.
        pc: u32,
    },
    /// An instruction requiring an optional processor unit (barrel
    /// shifter, multiplier, divider) executed on a configuration without
    /// that unit.
    DisabledInstruction {
        /// PC of the offending instruction.
        pc: u32,
        /// The missing unit.
        unit: &'static str,
    },
}

impl Fault {
    /// PC at which the fault occurred.
    pub fn pc(&self) -> u32 {
        match self {
            Fault::Decode { pc, .. } | Fault::Memory { pc, .. } => *pc,
            Fault::IllegalDelaySlot { pc } => *pc,
            Fault::DisabledInstruction { pc, .. } => *pc,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Decode { pc, err } => write!(f, "decode fault at {pc:#010x}: {err}"),
            Fault::Memory { pc, err } => write!(f, "memory fault at {pc:#010x}: {err}"),
            Fault::IllegalDelaySlot { pc } => {
                write!(f, "illegal instruction in delay slot at {pc:#010x}")
            }
            Fault::DisabledInstruction { pc, unit } => {
                write!(f, "instruction at {pc:#010x} needs the optional {unit}, which this processor configuration omits")
            }
        }
    }
}

impl std::error::Error for Fault {}
