//! The cycle-accurate MB32 processor model.
//!
//! This is the "cycle-accurate instruction simulator" component of the
//! paper's environment (Fig. 2): it simulates software execution on the
//! soft processor with per-cycle resolution so it can be composed, clock by
//! clock, with the hardware-peripheral simulation and the FSL bus models.
//!
//! # Timing model
//!
//! MicroBlaze's three-stage pipeline retires most instructions in one
//! cycle. The model charges, per instruction:
//!
//! * 1 cycle for ALU/logic/shift/`imm` instructions;
//! * 3 cycles for `mul`/`muli` (the paper calls this out explicitly);
//! * 2 cycles for loads/stores (LMB with its fixed one-cycle wait state);
//! * 1 cycle for a not-taken branch; a taken branch pays a 2-cycle
//!   pipeline flush, reduced to 1 cycle by a delay slot;
//! * 2 cycles for a completing FSL `get`/`put`, plus one stall cycle per
//!   clock the blocking variant waits on the `full`/`exists` flags.
//!
//! Architectural effects are applied on the first cycle of an instruction;
//! the instruction then occupies the pipeline for the remaining cycles.
//!
//! Delay-slot bookkeeping is only engaged when a delayed branch is
//! *taken*; a not-taken delayed branch simply falls through (the programs
//! this simulator runs never place control flow in a delay slot, which the
//! model rejects as a fault exactly when it would matter).

use crate::fault::Fault;
use crate::stats::CpuStats;
use softsim_bus::{FslBank, LmbMemory};
use softsim_isa::{decode, encode, CpuConfig, Image, Inst, Reg};
use softsim_trace::{FifoDir, InstClass, SharedSink, StallCause, TraceEvent};
use std::collections::HashSet;

/// Default local-memory size (64 KiB, a typical MicroBlaze LMB setup).
pub const DEFAULT_MEM_BYTES: u32 = 64 * 1024;

/// Base address of the On-chip Peripheral Bus window: loads and stores
/// at or above this address are routed to the attached [`softsim_bus::OpbBus`].
pub const OPB_BASE: u32 = 0x8000_0000;

/// What happened during one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The processor is mid-instruction (multi-cycle op or FSL stall).
    Busy,
    /// An instruction retired this cycle.
    Retired {
        /// Address of the retired instruction.
        pc: u32,
        /// The retired instruction.
        inst: Inst,
    },
    /// The processor is halted (`halt` retired earlier, or a fault).
    Halted,
    /// Execution reached a breakpoint; the instruction at `pc` has not
    /// executed yet and will execute on the next `tick`.
    Breakpoint {
        /// The breakpoint address.
        pc: u32,
    },
    /// A simulation fault; the processor halts.
    Fault(Fault),
}

impl Event {
    /// True when this event means the processor has stopped executing —
    /// either it was already halted, or the instruction retiring this
    /// cycle is `halt`. The single halt predicate shared by
    /// [`Cpu::run`] and the co-simulator's run loop, so both stop on
    /// the same cycle.
    pub fn is_halt(&self) -> bool {
        matches!(self, Event::Halted | Event::Retired { inst: Inst::Halt, .. })
    }
}

/// Coarse classification of an instruction for profiling.
pub fn classify(inst: &Inst) -> InstClass {
    match inst {
        Inst::Add { .. }
        | Inst::AddI { .. }
        | Inst::Rsub { .. }
        | Inst::RsubI { .. }
        | Inst::Cmp { .. }
        | Inst::Sext { .. } => InstClass::Alu,
        Inst::Mul { .. } | Inst::MulI { .. } => InstClass::Mul,
        Inst::Div { .. } => InstClass::Div,
        Inst::Shift { .. } | Inst::Barrel { .. } | Inst::BarrelI { .. } => InstClass::Shift,
        Inst::Logic { .. } | Inst::LogicI { .. } => InstClass::Logic,
        Inst::Load { .. } | Inst::LoadI { .. } => InstClass::Load,
        Inst::Store { .. } | Inst::StoreI { .. } => InstClass::Store,
        Inst::Br { .. }
        | Inst::BrI { .. }
        | Inst::Bcc { .. }
        | Inst::BccI { .. }
        | Inst::Rtsd { .. } => InstClass::Branch,
        Inst::Imm { .. } => InstClass::Imm,
        Inst::Get { .. } => InstClass::FslGet,
        Inst::Put { .. } => InstClass::FslPut,
        Inst::Halt => InstClass::Halt,
    }
}

/// Why a multi-cycle [`Cpu::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// A breakpoint was hit.
    Breakpoint(u32),
    /// A fault occurred.
    Fault(Fault),
}

/// Where the processor is blocked on a Fast Simplex Link: the channel,
/// the direction (read or write side) and the PC of the blocking
/// instruction. Surfaced by [`Cpu::fsl_block`] so cycle-budget expiry
/// and deadlock reports can say *what* the CPU was waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FslBlock {
    /// FSL channel number (0–7).
    pub channel: u8,
    /// `FromHw` for a blocked `get`, `ToHw` for a blocked `put`.
    pub dir: FifoDir,
    /// Address of the blocking instruction.
    pub pc: u32,
}

impl std::fmt::Display for FslBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dir {
            FifoDir::FromHw => {
                write!(f, "blocking get on FSL channel {} at pc {:#010x}", self.channel, self.pc)
            }
            FifoDir::ToHw => {
                write!(f, "blocking put on FSL channel {} at pc {:#010x}", self.channel, self.pc)
            }
        }
    }
}

/// Error returned by [`Cpu::fast_forward_stall`] when the pipeline is
/// not blocked on an FSL transfer — the precondition the jump's cycle
/// accounting depends on. The call is a no-op in that case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotFslStalled;

impl std::fmt::Display for NotFslStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fast_forward_stall requires an FSL-stalled pipeline")
    }
}

impl std::error::Error for NotFslStalled {}

/// Micro-architectural state of the in-flight instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Pipe {
    /// Ready to fetch a new instruction on the next cycle.
    Ready,
    /// Instruction already executed; occupies the pipeline `remaining`
    /// more cycles before retiring.
    Busy { remaining: u32, pc: u32, inst: Inst },
    /// Blocked on a blocking FSL transfer; retried every cycle.
    FslStall { pc: u32, inst: Inst },
}

/// The in-flight instruction's attribution so far: what [`Cpu::in_flight`]
/// reports for runs stopped between retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Address of the in-flight instruction.
    pub pc: u32,
    /// Coarse classification.
    pub class: softsim_trace::InstClass,
    /// Cycles charged to it so far (issue + stalls + pipeline occupancy).
    pub cycles: u32,
    /// FSL read-stall cycles charged so far.
    pub read_stalls: u32,
    /// FSL write-stall cycles charged so far.
    pub write_stalls: u32,
}

/// One architectural trace record, used for ISS ↔ RTL cross-validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the instruction retired.
    pub cycle: u64,
    /// Instruction address.
    pub pc: u32,
    /// Raw instruction word.
    pub word: u32,
}

/// Serializable pipeline occupancy inside a [`CpuSnapshot`]. In-flight
/// instructions are stored re-encoded as raw words so the snapshot is
/// plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeSnapshot {
    /// Ready to fetch.
    Ready,
    /// An executed instruction occupying the pipeline.
    Busy {
        /// Cycles left before retiring.
        remaining: u32,
        /// Address of the in-flight instruction.
        pc: u32,
        /// The instruction, re-encoded.
        word: u32,
    },
    /// Blocked on a blocking FSL transfer.
    FslStall {
        /// Address of the blocked instruction.
        pc: u32,
        /// The instruction, re-encoded.
        word: u32,
    },
}

/// A complete processor snapshot (see [`Cpu::save_state`]): everything
/// the simulation needs to resume deterministically, excluding debugger
/// and tracing attachments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSnapshot {
    /// General-purpose registers.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// MSR carry flag.
    pub carry: bool,
    /// Latched `imm` prefix.
    pub imm_latch: Option<u16>,
    /// Pending delayed-branch target.
    pub delay_target: Option<u32>,
    /// True while a delay slot executes.
    pub in_delay_slot: bool,
    /// Pending non-delayed taken-branch target.
    pub redirect: Option<u32>,
    /// Full local-memory image.
    pub mem: Vec<u8>,
    /// Extra bus-latency cycles charged to the in-flight instruction.
    pub extra_cycles: u32,
    /// Pipeline occupancy.
    pub pipe: PipeSnapshot,
    /// Halt flag.
    pub halted: bool,
    /// Accumulated statistics.
    pub stats: CpuStats,
    /// Breakpoint address being resumed from.
    pub bp_skip: Option<u32>,
}

/// The MB32 processor.
pub struct Cpu {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) carry: bool,
    /// Upper half latched by an `imm` prefix for the next instruction.
    pub(crate) imm_latch: Option<u16>,
    /// Branch target awaiting the end of a delay slot.
    pub(crate) delay_target: Option<u32>,
    /// True while the delay-slot instruction of a taken branch executes.
    pub(crate) in_delay_slot: bool,
    /// Taken-branch target for branches without a delay slot.
    pub(crate) redirect: Option<u32>,
    pub(crate) mem: LmbMemory,
    /// Optional On-chip Peripheral Bus with memory-mapped peripherals
    /// (addresses at/above [`OPB_BASE`] route here).
    pub(crate) opb: Option<softsim_bus::OpbBus>,
    /// Extra bus-latency cycles charged to the current instruction.
    pub(crate) extra_cycles: u32,
    /// Optional-unit configuration.
    pub(crate) config: CpuConfig,
    pub(crate) pipe: Pipe,
    pub(crate) halted: bool,
    pub(crate) stats: CpuStats,
    pub(crate) breakpoints: HashSet<u32>,
    /// Breakpoint address being resumed from (suppresses re-reporting).
    pub(crate) bp_skip: Option<u32>,
    pub(crate) trace: Option<Vec<TraceEntry>>,
    /// Cycle-domain observability sink (None on the untraced fast path).
    pub(crate) sink: Option<SharedSink>,
    /// Issue cycle of the in-flight instruction (trace bookkeeping).
    pub(crate) inst_start: u64,
    /// FSL read-stall cycles charged to the in-flight instruction.
    pub(crate) inst_read_stalls: u32,
    /// FSL write-stall cycles charged to the in-flight instruction.
    pub(crate) inst_write_stalls: u32,
    /// Basic-block translation cache (see [`crate::translate`]).
    pub(crate) translator: crate::translate::Translator,
}

impl Cpu {
    /// Creates a processor with an explicit configuration.
    pub fn with_config(image: &Image, config: CpuConfig) -> Cpu {
        let mut cpu = Cpu::new(image, config.mem_bytes);
        cpu.config = config;
        cpu
    }

    /// The processor's optional-unit configuration.
    pub fn config(&self) -> CpuConfig {
        self.config
    }

    /// Creates a processor with `mem_bytes` of local memory and loads the
    /// program image.
    pub fn new(image: &Image, mem_bytes: u32) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: image.entry(),
            carry: false,
            imm_latch: None,
            delay_target: None,
            in_delay_slot: false,
            redirect: None,
            mem: LmbMemory::with_image(mem_bytes, image),
            opb: None,
            extra_cycles: 0,
            config: CpuConfig { mem_bytes, ..CpuConfig::default() },
            pipe: Pipe::Ready,
            halted: false,
            stats: CpuStats::default(),
            breakpoints: HashSet::new(),
            bp_skip: None,
            trace: None,
            sink: None,
            inst_start: 0,
            inst_read_stalls: 0,
            inst_write_stalls: 0,
            translator: crate::translate::Translator::default(),
        }
    }

    /// Creates a processor with the default 64 KiB local memory.
    pub fn with_default_memory(image: &Image) -> Cpu {
        Cpu::new(image, DEFAULT_MEM_BYTES)
    }

    /// Resets architectural state and reloads the image, keeping
    /// breakpoints and the tracing setting.
    pub fn reset(&mut self, image: &Image) {
        let size = self.mem.size();
        let breakpoints = std::mem::take(&mut self.breakpoints);
        let trace = self.trace.as_ref().map(|_| Vec::new());
        let sink = self.sink.take();
        let translation = self.translator.enabled;
        *self = Cpu::new(image, size);
        self.breakpoints = breakpoints;
        self.trace = trace;
        self.sink = sink;
        self.translator.enabled = translation;
    }

    /// Reads a register (r0 always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to r0 are discarded). Architectural
    /// writebacks are reported to an attached trace sink as
    /// [`TraceEvent::RegWrite`], stamped with the current cycle — the
    /// divergence localizer keys on these to find the first corrupted
    /// writeback after a fault.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
            if self.sink.is_some() {
                self.emit(TraceEvent::RegWrite {
                    cycle: self.stats.cycles.saturating_sub(1),
                    reg: r.index() as u8,
                    value,
                });
            }
        }
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (used by the debugger interface).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// The MSR carry flag.
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// True once the processor has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Local memory, for inspection.
    pub fn mem(&self) -> &LmbMemory {
        &self.mem
    }

    /// Mutable local memory (debugger writes). Flushes the translation
    /// cache: out-of-band writes may overwrite cached instructions.
    pub fn mem_mut(&mut self) -> &mut LmbMemory {
        self.translator.flush();
        &mut self.mem
    }

    /// Attaches an On-chip Peripheral Bus. Loads/stores at or above
    /// [`OPB_BASE`] become OPB transfers, paying the bus latency on top
    /// of the instruction's base cost; attached peripherals are ticked
    /// once per clock cycle.
    pub fn attach_opb(&mut self, bus: softsim_bus::OpbBus) {
        self.opb = Some(bus);
    }

    /// The attached OPB, if any.
    pub fn opb(&self) -> Option<&softsim_bus::OpbBus> {
        self.opb.as_ref()
    }

    /// Mutable access to the attached OPB.
    pub fn opb_mut(&mut self) -> Option<&mut softsim_bus::OpbBus> {
        self.opb.as_mut()
    }

    /// Adds a breakpoint at an instruction address.
    pub fn add_breakpoint(&mut self, addr: u32) {
        self.breakpoints.insert(addr);
    }

    /// Removes a breakpoint; returns whether it existed.
    pub fn remove_breakpoint(&mut self, addr: u32) -> bool {
        self.breakpoints.remove(&addr)
    }

    /// Enables architectural tracing (one entry per retired instruction).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Attaches a cycle-domain trace sink: retires (with per-instruction
    /// stall attribution) and FSL stall intervals are emitted as
    /// [`TraceEvent`]s. With no sink attached the hot path pays only a
    /// well-predicted `Option` branch — the overhead guard in
    /// `crates/bench` holds it to within 2%.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// The attached cycle-domain sink, if any.
    pub fn trace_sink(&self) -> Option<&SharedSink> {
        self.sink.as_ref()
    }

    /// Detaches the trace sink, restoring the untraced fast path (and
    /// the fast-forward eligibility that a sink suppresses).
    pub fn detach_trace(&mut self) {
        self.sink = None;
    }

    #[inline]
    fn emit(&self, e: TraceEvent) {
        if let Some(s) = &self.sink {
            s.borrow_mut().event(&e);
        }
    }

    /// Reports a completed LMB/OPB data transfer to the trace sink,
    /// stamped with the issue cycle of the memory instruction.
    pub(crate) fn emit_bus_transfer(
        &self,
        bus: softsim_trace::BusKind,
        write: bool,
        addr: u32,
        wait: u32,
    ) {
        self.emit(TraceEvent::BusTransfer {
            cycle: self.stats.cycles.saturating_sub(1),
            bus,
            write,
            addr,
            wait,
        });
    }

    /// The collected trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// True when the processor is between instructions (nothing in flight).
    pub fn at_instruction_boundary(&self) -> bool {
        matches!(self.pipe, Pipe::Ready)
    }

    /// The instruction currently occupying the pipeline, with the cycles
    /// and stalls it has accumulated so far, or `None` at an instruction
    /// boundary.
    ///
    /// Profilers attribute cycles from [`TraceEvent::Retire`] records; an
    /// instruction cut off by a cycle limit never retires, so this hook
    /// lets per-PC attribution reconcile *exactly* against
    /// [`CpuStats::cycles`] even for runs stopped mid-instruction.
    pub fn in_flight(&self) -> Option<InFlight> {
        match &self.pipe {
            Pipe::Ready => None,
            Pipe::Busy { pc, inst, .. } | Pipe::FslStall { pc, inst } => Some(InFlight {
                pc: *pc,
                class: classify(inst),
                cycles: self.inst_cycles(),
                read_stalls: self.inst_read_stalls,
                write_stalls: self.inst_write_stalls,
            }),
        }
    }

    /// Cycles charged to the in-flight instruction so far, saturating at
    /// `u32::MAX`. The subtraction is checked: `inst_start` is reset by
    /// `load_state` to the snapshot cycle, so a stale wrap can never
    /// produce an underflow panic, and a >4G-cycle stall (possible via
    /// fast-forwarded FSL stalls) clamps instead of truncating.
    fn inst_cycles(&self) -> u32 {
        u32::try_from(self.stats.cycles.saturating_sub(self.inst_start)).unwrap_or(u32::MAX)
    }

    /// When the processor is stalled on a blocking FSL transfer, the
    /// channel, direction and PC it is blocked on; `None` otherwise.
    pub fn fsl_block(&self) -> Option<FslBlock> {
        match &self.pipe {
            Pipe::FslStall { pc, inst } => match inst {
                Inst::Get { chan, .. } => {
                    Some(FslBlock { channel: chan.index() as u8, dir: FifoDir::FromHw, pc: *pc })
                }
                Inst::Put { chan, .. } => {
                    Some(FslBlock { channel: chan.index() as u8, dir: FifoDir::ToHw, pc: *pc })
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Advances a processor that is blocked on an FSL transfer by `n`
    /// cycles in one jump, charging exactly what `n` failing retries of
    /// [`Cpu::tick`] would: the cycle counter, the blocked direction's
    /// stall counter and the per-instruction stall attribution (which
    /// saturates — it only feeds the retire trace record, and the
    /// fast-forward path runs untraced). The pipeline stays in the
    /// stall state; the caller guarantees the blocking FIFO condition
    /// cannot clear during the jump.
    ///
    /// # Errors
    /// Returns [`NotFslStalled`] — touching no counters — when the
    /// pipeline is not in an FSL stall: silently accepting such a call
    /// would corrupt the cycle/stall accounting in release builds.
    pub fn fast_forward_stall(&mut self, n: u64) -> Result<(), NotFslStalled> {
        let Pipe::FslStall { inst, .. } = &self.pipe else {
            return Err(NotFslStalled);
        };
        self.stats.cycles += n;
        let clamped = u32::try_from(n).unwrap_or(u32::MAX);
        match inst {
            Inst::Get { .. } => {
                self.stats.fsl_read_stalls += n;
                self.inst_read_stalls = self.inst_read_stalls.saturating_add(clamped);
            }
            _ => {
                self.stats.fsl_write_stalls += n;
                self.inst_write_stalls = self.inst_write_stalls.saturating_add(clamped);
            }
        }
        Ok(())
    }

    /// Captures the processor's complete architectural and
    /// micro-architectural state (registers, PC, flags, prefix/branch
    /// latches, local memory, pipeline occupancy, halt flag and
    /// statistics). Breakpoints and trace attachments are debugger/
    /// observer state and are *not* captured; the in-flight instruction
    /// is stored re-encoded so the snapshot is plain data.
    ///
    /// # Panics
    /// Panics if an OPB bus is attached — memory-mapped peripherals hold
    /// arbitrary device state outside the snapshot domain.
    pub fn save_state(&self) -> CpuSnapshot {
        assert!(self.opb.is_none(), "Cpu::save_state does not cover attached OPB peripherals");
        let pipe = match &self.pipe {
            Pipe::Ready => PipeSnapshot::Ready,
            Pipe::Busy { remaining, pc, inst } => {
                PipeSnapshot::Busy { remaining: *remaining, pc: *pc, word: encode(inst) }
            }
            Pipe::FslStall { pc, inst } => PipeSnapshot::FslStall { pc: *pc, word: encode(inst) },
        };
        CpuSnapshot {
            regs: self.regs,
            pc: self.pc,
            carry: self.carry,
            imm_latch: self.imm_latch,
            delay_target: self.delay_target,
            in_delay_slot: self.in_delay_slot,
            redirect: self.redirect,
            mem: self.mem.bytes().to_vec(),
            extra_cycles: self.extra_cycles,
            pipe,
            halted: self.halted,
            stats: self.stats,
            bp_skip: self.bp_skip,
        }
    }

    /// Restores a snapshot taken by [`Cpu::save_state`] on a processor
    /// with the same memory size. Breakpoints and trace attachments keep
    /// their current values.
    ///
    /// # Panics
    /// Panics on a memory-size mismatch or a corrupted in-flight
    /// instruction word.
    pub fn load_state(&mut self, s: &CpuSnapshot) {
        let decode_pipe = |word: u32| {
            decode(word).unwrap_or_else(|e| panic!("snapshot pipeline word undecodable: {e}"))
        };
        self.pipe = match s.pipe {
            PipeSnapshot::Ready => Pipe::Ready,
            PipeSnapshot::Busy { remaining, pc, word } => {
                Pipe::Busy { remaining, pc, inst: decode_pipe(word) }
            }
            PipeSnapshot::FslStall { pc, word } => Pipe::FslStall { pc, inst: decode_pipe(word) },
        };
        self.regs = s.regs;
        self.pc = s.pc;
        self.carry = s.carry;
        self.imm_latch = s.imm_latch;
        self.delay_target = s.delay_target;
        self.in_delay_slot = s.in_delay_slot;
        self.redirect = s.redirect;
        self.mem.load_bytes(&s.mem);
        self.extra_cycles = s.extra_cycles;
        self.halted = s.halted;
        self.stats = s.stats;
        self.bp_skip = s.bp_skip;
        // Per-instruction trace bookkeeping restarts cleanly: attribution
        // within the in-flight instruction is observer state.
        self.inst_start = s.stats.cycles;
        self.inst_read_stalls = 0;
        self.inst_write_stalls = 0;
        // The snapshot replaced the whole memory image: every cached
        // block may now describe stale instructions.
        self.translator.flush();
    }

    /// Advances the processor by exactly one clock cycle.
    ///
    /// `fsl` carries the Fast Simplex Link channels shared with the
    /// hardware side of the co-simulation. The cycle is counted even when
    /// the processor only stalls.
    pub fn tick(&mut self, fsl: &mut FslBank) -> Event {
        if self.halted {
            return Event::Halted;
        }
        if let Some(opb) = &mut self.opb {
            opb.tick();
        }
        // Stamp the cycle domain into the FSL trace state so FIFO events
        // emitted this cycle (by us or by the hardware side) carry it.
        fsl.set_trace_cycle(self.stats.cycles);
        match std::mem::replace(&mut self.pipe, Pipe::Ready) {
            Pipe::Busy { remaining, pc, inst } => {
                self.stats.cycles += 1;
                if remaining > 1 {
                    self.pipe = Pipe::Busy { remaining: remaining - 1, pc, inst };
                    Event::Busy
                } else {
                    self.retire(pc, inst)
                }
            }
            Pipe::FslStall { pc, inst } => {
                self.stats.cycles += 1;
                match self.exec_fsl(&inst, fsl) {
                    Ok(()) => {
                        if self.sink.is_some() {
                            let (cause, stalled) = match inst {
                                Inst::Get { .. } => (StallCause::FslRead, self.inst_read_stalls),
                                _ => (StallCause::FslWrite, self.inst_write_stalls),
                            };
                            self.emit(TraceEvent::StallEnd {
                                cycle: self.stats.cycles - 1,
                                pc,
                                cause,
                                cycles: stalled as u64,
                            });
                        }
                        // One more cycle of pipeline occupancy after the
                        // transfer completes (total base cost of 2 cycles).
                        self.pipe = Pipe::Busy { remaining: 1, pc, inst };
                        Event::Busy
                    }
                    Err(()) => {
                        match inst {
                            Inst::Get { .. } => {
                                self.stats.fsl_read_stalls += 1;
                                self.inst_read_stalls += 1;
                            }
                            _ => {
                                self.stats.fsl_write_stalls += 1;
                                self.inst_write_stalls += 1;
                            }
                        }
                        self.pipe = Pipe::FslStall { pc, inst };
                        Event::Busy
                    }
                }
            }
            Pipe::Ready => self.issue(fsl),
        }
    }

    /// Fetches, decodes and begins the instruction at the current PC.
    fn issue(&mut self, fsl: &mut FslBank) -> Event {
        let pc = self.pc;
        if self.breakpoints.contains(&pc) && self.bp_skip != Some(pc) && !self.in_delay_slot {
            // Report without consuming a cycle; the next tick at this PC
            // proceeds past the breakpoint.
            self.bp_skip = Some(pc);
            return Event::Breakpoint { pc };
        }
        self.bp_skip = None;
        self.inst_start = self.stats.cycles;
        self.inst_read_stalls = 0;
        self.inst_write_stalls = 0;
        self.stats.cycles += 1;
        let word = match self.mem.read_u32(pc) {
            Ok(w) => w,
            Err(err) => return self.fault(Fault::Memory { pc, err }),
        };
        let inst = match decode(word) {
            Ok(i) => i,
            Err(err) => return self.fault(Fault::Decode { pc, err }),
        };
        if self.in_delay_slot && (inst.is_branch() || inst.is_imm_prefix() || inst == Inst::Halt) {
            return self.fault(Fault::IllegalDelaySlot { pc });
        }
        // Execute architecturally now; occupy the pipeline for the rest.
        self.extra_cycles = 0;
        let cycles = match self.execute(pc, &inst, fsl) {
            Ok(ExecOutcome::Normal) => inst.base_cycles() + self.extra_cycles,
            Ok(ExecOutcome::Taken) => {
                self.stats.taken_branches += 1;
                inst.base_cycles() + inst.taken_penalty()
            }
            Ok(ExecOutcome::FslBlocked) => {
                let cause = match inst {
                    Inst::Get { .. } => {
                        self.stats.fsl_read_stalls += 1;
                        self.inst_read_stalls += 1;
                        StallCause::FslRead
                    }
                    _ => {
                        self.stats.fsl_write_stalls += 1;
                        self.inst_write_stalls += 1;
                        StallCause::FslWrite
                    }
                };
                if self.sink.is_some() {
                    self.emit(TraceEvent::StallBegin { cycle: self.inst_start, pc, cause });
                }
                self.pipe = Pipe::FslStall { pc, inst };
                return Event::Busy;
            }
            Err(f) => return self.fault(f),
        };
        if cycles > 1 {
            self.pipe = Pipe::Busy { remaining: cycles - 1, pc, inst };
            Event::Busy
        } else {
            self.retire(pc, inst)
        }
    }

    /// Completes an instruction: records the trace entry and determines
    /// the next PC (fall-through, redirect, or delay-slot sequencing).
    fn retire(&mut self, pc: u32, inst: Inst) -> Event {
        self.stats.instructions += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                cycle: self.stats.cycles,
                pc,
                word: softsim_isa::encode(&inst),
            });
        }
        if self.sink.is_some() {
            self.emit(TraceEvent::Retire {
                cycle: self.inst_start,
                pc,
                word: softsim_isa::encode(&inst),
                class: classify(&inst),
                cycles: self.inst_cycles(),
                read_stalls: self.inst_read_stalls,
                write_stalls: self.inst_write_stalls,
            });
        }
        if self.in_delay_slot {
            // This was the delay-slot instruction: the branch completes.
            self.in_delay_slot = false;
            self.pc = self.delay_target.take().expect("delay slot without target");
        } else if self.delay_target.is_some() && inst.has_delay_slot() {
            // Taken delayed branch: fall into the delay slot first.
            self.in_delay_slot = true;
            self.pc = pc.wrapping_add(4);
        } else if let Some(target) = self.redirect.take() {
            self.pc = target;
        } else {
            self.pc = pc.wrapping_add(4);
        }
        if inst == Inst::Halt {
            self.halted = true;
        }
        Event::Retired { pc, inst }
    }

    fn fault(&mut self, fault: Fault) -> Event {
        self.halted = true;
        Event::Fault(fault)
    }

    /// Runs until halt, fault, breakpoint or `max_cycles` further cycles.
    ///
    /// With translation enabled (see [`Cpu::set_translation`]) hot
    /// straight-line stretches execute through the basic-block cache;
    /// every boundary, stall and observability condition falls back to
    /// the single-step interpreter, so the stop reason, statistics and
    /// architectural state are bit-identical either way.
    pub fn run(&mut self, fsl: &mut FslBank, max_cycles: u64) -> StopReason {
        let limit = self.stats.cycles + max_cycles;
        while self.stats.cycles < limit {
            if self.translator.enabled {
                match self.run_translated_block(fsl, limit - self.stats.cycles) {
                    crate::translate::TranslatedRun::Ran { .. } => {
                        if self.halted {
                            return StopReason::Halted;
                        }
                        continue;
                    }
                    crate::translate::TranslatedRun::Faulted { fault, .. } => {
                        return StopReason::Fault(fault);
                    }
                    crate::translate::TranslatedRun::NotRun => {}
                }
            }
            match self.tick(fsl) {
                e if e.is_halt() => return StopReason::Halted,
                Event::Fault(f) => return StopReason::Fault(f),
                Event::Breakpoint { pc } => return StopReason::Breakpoint(pc),
                _ => {}
            }
        }
        StopReason::CycleLimit
    }
}

/// Result of architecturally executing an instruction.
pub(crate) enum ExecOutcome {
    /// Straight-line instruction.
    Normal,
    /// A branch that was taken (pays the flush penalty).
    Taken,
    /// A blocking FSL access that could not complete this cycle.
    FslBlocked,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("halted", &self.halted)
            .field("cycles", &self.stats.cycles)
            .field("instructions", &self.stats.instructions)
            .field("opb", &self.opb.is_some())
            .finish_non_exhaustive()
    }
}
