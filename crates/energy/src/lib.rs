//! # softsim-energy — rapid energy estimation for soft-processor systems
//!
//! The extension the paper names as future work in §V: "One important
//! extension of our work is to provide rapid energy estimation for
//! application development using soft processors", combining
//!
//! 1. an **instruction-level energy model** for software running on the
//!    soft processor (the technique of Ou & Prasanna, SoCC 2004): each
//!    instruction class carries a characterized per-execution energy, and
//!    stall/idle cycles a base cost; and
//! 2. a **domain-specific energy model for the hardware peripherals**
//!    (the PyGen technique, FCCM 2004): per-cycle dynamic power derived
//!    from the resources a design occupies, scaled by an activity factor.
//!
//! Both plug directly into the co-simulation engine: the statistics the
//! cycle-accurate run already collects are exactly the inputs the models
//! need, so energy comes "for free" with every co-simulated run.
//!
//! Energy constants are representative of a Virtex-II-Pro-era device at
//! 50 MHz and 1.5 V; like the paper's performance numbers, *relative*
//! comparisons between design points are the meaningful output.

#![warn(missing_docs)]

use softsim_blocks::Resources;
use softsim_cosim::{CoSim, PAPER_CLOCK_HZ};
use softsim_iss::CpuStats;

/// Instruction-level energy model: nanojoules per instruction class
/// (SoCC 2004 style characterization).
#[derive(Debug, Clone, Copy)]
pub struct InstructionEnergyModel {
    /// Base energy of any retired instruction (fetch + decode + ALU).
    pub base_nj: f64,
    /// Extra energy of a multiply (three active array cycles).
    pub multiply_extra_nj: f64,
    /// Extra energy of a load (LMB + BRAM read).
    pub load_extra_nj: f64,
    /// Extra energy of a store.
    pub store_extra_nj: f64,
    /// Extra energy of a taken branch (pipeline flush).
    pub branch_taken_extra_nj: f64,
    /// Extra energy of an FSL transfer.
    pub fsl_extra_nj: f64,
    /// Energy of one stalled/idle processor cycle (clock tree + leakage
    /// charged per cycle).
    pub stall_cycle_nj: f64,
}

impl Default for InstructionEnergyModel {
    fn default() -> Self {
        InstructionEnergyModel {
            base_nj: 0.90,
            multiply_extra_nj: 0.65,
            load_extra_nj: 0.60,
            store_extra_nj: 0.55,
            branch_taken_extra_nj: 0.35,
            fsl_extra_nj: 0.40,
            stall_cycle_nj: 0.25,
        }
    }
}

/// Hardware-side energy model: per-cycle dynamic power from resources
/// (FCCM 2004 / PyGen style domain-specific characterization).
#[derive(Debug, Clone, Copy)]
pub struct HardwareEnergyModel {
    /// Dynamic energy per active slice per cycle (pJ).
    pub slice_pj_per_cycle: f64,
    /// Dynamic energy per embedded multiplier per cycle (pJ).
    pub mult18_pj_per_cycle: f64,
    /// Dynamic energy per block RAM per cycle (pJ).
    pub bram_pj_per_cycle: f64,
    /// Fraction of the design toggling in a typical cycle.
    pub activity: f64,
}

impl Default for HardwareEnergyModel {
    fn default() -> Self {
        HardwareEnergyModel {
            slice_pj_per_cycle: 6.0,
            mult18_pj_per_cycle: 45.0,
            bram_pj_per_cycle: 60.0,
            activity: 0.25,
        }
    }
}

/// Static (quiescent) power model — the motivation the paper cites from
/// Tuan & Lai for preferring compact designs.
#[derive(Debug, Clone, Copy)]
pub struct StaticPowerModel {
    /// Quiescent power per occupied slice (µW).
    pub uw_per_slice: f64,
}

impl Default for StaticPowerModel {
    fn default() -> Self {
        StaticPowerModel { uw_per_slice: 4.0 }
    }
}

/// An energy report for one co-simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Software (processor) dynamic energy, nJ.
    pub software_nj: f64,
    /// Hardware-peripheral dynamic energy, nJ.
    pub hardware_nj: f64,
    /// Static (quiescent) energy over the run, nJ.
    pub static_nj: f64,
    /// Execution time in µs.
    pub time_us: f64,
}

impl EnergyReport {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.software_nj + self.hardware_nj + self.static_nj
    }

    /// Average power in mW over the run.
    pub fn average_mw(&self) -> f64 {
        if self.time_us <= 0.0 {
            return 0.0;
        }
        self.total_nj() / 1000.0 / (self.time_us / 1000.0)
    }
}

/// Instruction-level software energy from co-simulation statistics.
pub fn software_energy_nj(stats: &CpuStats, model: &InstructionEnergyModel) -> f64 {
    let fsl_ops = stats.fsl_words_sent + stats.fsl_words_received + stats.fsl_nonblocking_misses;
    stats.instructions as f64 * model.base_nj
        + stats.multiplies as f64 * model.multiply_extra_nj
        + stats.mem_reads as f64 * model.load_extra_nj
        + stats.mem_writes as f64 * model.store_extra_nj
        + stats.taken_branches as f64 * model.branch_taken_extra_nj
        + fsl_ops as f64 * model.fsl_extra_nj
        + stats.fsl_stalls() as f64 * model.stall_cycle_nj
}

/// Domain-specific hardware energy for a peripheral occupying
/// `resources`, clocked for `cycles`.
pub fn hardware_energy_nj(resources: Resources, cycles: u64, model: &HardwareEnergyModel) -> f64 {
    let per_cycle_pj = model.activity
        * (resources.slices as f64 * model.slice_pj_per_cycle
            + resources.mult18s as f64 * model.mult18_pj_per_cycle
            + resources.brams as f64 * model.bram_pj_per_cycle);
    per_cycle_pj * cycles as f64 / 1000.0
}

/// Static energy for a whole system occupying `system_resources` for the
/// duration of the run.
pub fn static_energy_nj(
    system_resources: Resources,
    time_us: f64,
    model: &StaticPowerModel,
) -> f64 {
    // µW × µs = pJ.
    system_resources.slices as f64 * model.uw_per_slice * time_us / 1000.0
}

/// Full system energy for a completed co-simulation run.
///
/// `peripheral_resources` is the customized hardware attached (zero for
/// pure-software configurations); `system_resources` the whole design's
/// footprint (from `softsim_resource::estimate_system`).
pub fn cosim_energy(
    sim: &CoSim,
    peripheral_resources: Resources,
    system_resources: Resources,
) -> EnergyReport {
    let stats = sim.cpu_stats();
    let time_us = stats.cycles as f64 / PAPER_CLOCK_HZ * 1e6;
    EnergyReport {
        software_nj: software_energy_nj(&stats, &InstructionEnergyModel::default()),
        hardware_nj: hardware_energy_nj(
            peripheral_resources,
            stats.cycles,
            &HardwareEnergyModel::default(),
        ),
        static_nj: static_energy_nj(system_resources, time_us, &StaticPowerModel::default()),
        time_us,
    }
}

/// Like [`cosim_energy`], but the hardware activity factor is *measured*
/// from the run itself rather than assumed: peripherals whose graphs had
/// switching-activity measurement enabled (`Graph::enable_activity`
/// before the run) contribute their observed toggle rate, averaged
/// across peripherals. Falls back to the default assumption when nothing
/// was measured.
pub fn cosim_energy_measured(
    sim: &CoSim,
    peripheral_resources: Resources,
    system_resources: Resources,
) -> EnergyReport {
    let factors: Vec<f64> =
        sim.peripherals().iter().filter_map(|p| p.graph().activity_factor()).collect();
    let mut hw_model = HardwareEnergyModel::default();
    if !factors.is_empty() {
        hw_model.activity = factors.iter().sum::<f64>() / factors.len() as f64;
    }
    let stats = sim.cpu_stats();
    let time_us = stats.cycles as f64 / PAPER_CLOCK_HZ * 1e6;
    EnergyReport {
        software_nj: software_energy_nj(&stats, &InstructionEnergyModel::default()),
        hardware_nj: hardware_energy_nj(peripheral_resources, stats.cycles, &hw_model),
        static_nj: static_energy_nj(system_resources, time_us, &StaticPowerModel::default()),
        time_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_apps::cordic::hardware::{cordic_peripheral, pipeline_resources};
    use softsim_apps::cordic::reference;
    use softsim_apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
    use softsim_cosim::CoSimStop;
    use softsim_isa::asm::assemble;

    fn batch() -> CordicBatch {
        CordicBatch::new(&[
            (reference::to_fix(1.0), reference::to_fix(0.5)),
            (reference::to_fix(1.5), reference::to_fix(1.2)),
            (reference::to_fix(2.0), reference::to_fix(-1.0)),
            (reference::to_fix(1.25), reference::to_fix(0.8)),
        ])
    }

    #[test]
    fn software_energy_counts_every_class() {
        let stats = CpuStats {
            cycles: 100,
            instructions: 50,
            multiplies: 5,
            mem_reads: 10,
            mem_writes: 8,
            taken_branches: 6,
            fsl_words_sent: 3,
            fsl_words_received: 2,
            fsl_read_stalls: 4,
            ..Default::default()
        };
        let m = InstructionEnergyModel::default();
        let e = software_energy_nj(&stats, &m);
        let expect = 50.0 * m.base_nj
            + 5.0 * m.multiply_extra_nj
            + 10.0 * m.load_extra_nj
            + 8.0 * m.store_extra_nj
            + 6.0 * m.branch_taken_extra_nj
            + 5.0 * m.fsl_extra_nj
            + 4.0 * m.stall_cycle_nj;
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn hardware_energy_scales_with_resources_and_cycles() {
        let m = HardwareEnergyModel::default();
        let small = hardware_energy_nj(Resources::slices(100), 1000, &m);
        let big = hardware_energy_nj(Resources::slices(200), 1000, &m);
        let long = hardware_energy_nj(Resources::slices(100), 2000, &m);
        assert!((big / small - 2.0).abs() < 1e-9);
        assert!((long / small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hw_accelerated_cordic_saves_energy_despite_more_area() {
        // The paper-era argument for offload: the accelerated run finishes
        // so much earlier that total energy drops even though the design
        // is larger and burns peripheral power.
        let b = batch();
        let sw_img = assemble(&sw_program(&b, 24, SwStyle::Compiled)).unwrap();
        let mut sw = CoSim::software_only(&sw_img);
        assert_eq!(sw.run(10_000_000), CoSimStop::Halted);
        let sw_energy = cosim_energy(&sw, Resources::ZERO, Resources::slices(548));

        let hw_img = assemble(&hw_program(&b, 24, 4)).unwrap();
        let mut hw = CoSim::with_peripheral(&hw_img, cordic_peripheral(4));
        assert_eq!(hw.run(10_000_000), CoSimStop::Halted);
        let hw_energy = cosim_energy(&hw, pipeline_resources(4), Resources::slices(819));

        assert!(
            hw_energy.total_nj() < sw_energy.total_nj(),
            "P=4 run should use less energy: {:.1} vs {:.1} nJ",
            hw_energy.total_nj(),
            sw_energy.total_nj()
        );
        assert!(hw_energy.time_us < sw_energy.time_us);
        assert!(hw_energy.hardware_nj > 0.0 && sw_energy.hardware_nj == 0.0);
    }

    #[test]
    fn average_power_is_plausible_for_the_device_class() {
        // Soft-processor systems of this era draw tens to a few hundred mW.
        let b = batch();
        let img = assemble(&hw_program(&b, 24, 4)).unwrap();
        let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(4));
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        let e = cosim_energy(&sim, pipeline_resources(4), Resources::slices(819));
        let mw = e.average_mw();
        assert!((5.0..500.0).contains(&mw), "average power {mw:.1} mW");
    }

    #[test]
    fn measured_activity_drives_hardware_energy() {
        use softsim_cosim::CoSim;
        let img = assemble(&hw_program(&batch(), 24, 4)).unwrap();
        let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(4));
        sim.peripherals_mut()[0].graph_mut().enable_activity();
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

        let res = pipeline_resources(4);
        let assumed = cosim_energy(&sim, res, res);
        let measured = cosim_energy_measured(&sim, res, res);
        let factor = sim.peripherals()[0].graph().activity_factor().unwrap();
        assert!((0.0..1.0).contains(&factor), "plausible toggle rate: {factor}");
        // Hardware energy is linear in the activity factor; software and
        // static terms are untouched by the substitution.
        let expect = assumed.hardware_nj * factor / HardwareEnergyModel::default().activity;
        assert!((measured.hardware_nj - expect).abs() < 1e-6);
        assert_eq!(measured.software_nj, assumed.software_nj);
        assert_eq!(measured.static_nj, assumed.static_nj);
    }

    #[test]
    fn report_arithmetic() {
        let r = EnergyReport { software_nj: 10.0, hardware_nj: 5.0, static_nj: 1.0, time_us: 2.0 };
        assert!((r.total_nj() - 16.0).abs() < 1e-12);
        assert!((r.average_mw() - 8.0).abs() < 1e-9);
        let z = EnergyReport { software_nj: 0.0, hardware_nj: 0.0, static_nj: 0.0, time_us: 0.0 };
        assert_eq!(z.average_mw(), 0.0);
    }
}
