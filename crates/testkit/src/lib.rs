//! # softsim-testkit — deterministic randomized-testing support
//!
//! A tiny, dependency-free stand-in for the `rand`/`proptest` pair used
//! by the randomized tests across the workspace. The build environment is
//! fully offline (`DESIGN.md` §6: no external dependencies), so the
//! randomized invariant tests draw their inputs from this deterministic
//! generator instead.
//!
//! Tests written against it are reproducible by construction: every
//! failure message should carry the case seed, and re-running the same
//! seed replays the identical input.

#![warn(missing_docs)]

/// A small, fast, deterministic PRNG (xorshift64\* with a splitmix64
/// seed scrambler). Not cryptographic; statistics are more than adequate
/// for generating test inputs.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded from `seed` (any value, including 0).
    pub fn new(seed: u64) -> Rng {
        // splitmix64 scramble so nearby seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Multiply-shift bounding; bias is < 2^-32 for test-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo) as u64) as u32
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// A uniform `i16` in `[lo, hi)`.
    pub fn range_i16(&mut self, lo: i16, hi: i16) -> i16 {
        self.range_i64(lo as i64, hi as i64) as i16
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

/// Runs `body` for `n` independently seeded cases (seeds `0..n`).
///
/// The closure receives the case seed (put it in every assertion message
/// so failures replay) and a generator for that case.
pub fn cases(n: u64, mut body: impl FnMut(u64, &mut Rng)) {
    for seed in 0..n {
        let mut rng = Rng::new(seed);
        body(seed, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "nearby seeds diverge");
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = Rng::new(42);
        for _ in 0..10_000 {
            let v = r.range_usize(3, 17);
            assert!((3..17).contains(&v));
            let w = r.range_i64(-50, -10);
            assert!((-50..-10).contains(&w));
            let f = r.range_f64(0.25, 0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((8_000..12_000).contains(&b), "bucket {i} count {b}");
        }
    }

    #[test]
    fn cases_pass_distinct_seeds() {
        let mut seen = Vec::new();
        cases(5, |seed, rng| {
            seen.push((seed, rng.next_u64()));
        });
        assert_eq!(seen.len(), 5);
        let firsts: std::collections::HashSet<u64> = seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(firsts.len(), 5, "each case sees a distinct stream");
    }
}
