//! Golden-vs-trial divergence localization.
//!
//! A fault campaign classifies a trial as *SDC* when its final
//! observables differ from the golden run's — but says nothing about
//! where the corruption started. [`MetricsDiff`] answers that: it
//! aligns the two runs' cycle-windowed series and their raw event
//! timelines and reports the **first cycle window** and the **first
//! architectural event** (register writeback, FIFO word, gateway word,
//! block output) at which they part ways. Fault-injection marker events
//! are excluded from the comparison — the injection itself is the
//! cause, not the divergence.

use crate::window::WindowSeries;
use softsim_trace::TraceEvent;

/// Everything [`MetricsDiff`] needs from one instrumented run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The windowed metrics series (finished).
    pub series: WindowSeries,
    /// The raw event timeline, emission order.
    pub events: Vec<TraceEvent>,
    /// Events the bounded recorder overwrote. Nonzero drops make the
    /// event-level localization unreliable (the diverging event may be
    /// among the lost ones) and are surfaced in the report.
    pub dropped_events: u64,
}

/// The first windowed sample where the two series disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDivergence {
    /// Window index.
    pub index: u64,
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Name of the first differing column in that window.
    pub metric: String,
    /// Golden value of that column.
    pub golden: f64,
    /// Trial value of that column.
    pub trial: f64,
}

/// The first position where the two event timelines disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDivergence {
    /// Index into the (injection-filtered) common timeline.
    pub position: usize,
    /// Cycle stamp of the diverging event (the trial's where both
    /// exist, else whichever stream still has events).
    pub cycle: u64,
    /// Human-readable description of what diverged.
    pub what: String,
    /// The golden run's event at that position, if any.
    pub golden: Option<TraceEvent>,
    /// The trial run's event at that position, if any.
    pub trial: Option<TraceEvent>,
}

/// A full divergence report for one golden/trial pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// First differing cycle window, if the windowed series differ.
    pub window: Option<WindowDivergence>,
    /// First differing architectural event, if the timelines differ.
    pub event: Option<EventDivergence>,
    /// Events dropped by the golden run's recorder.
    pub golden_dropped: u64,
    /// Events dropped by the trial run's recorder.
    pub trial_dropped: u64,
}

impl Divergence {
    /// True when neither the windows nor the timelines differ.
    pub fn is_identical(&self) -> bool {
        self.window.is_none() && self.event.is_none()
    }

    /// True when event-level localization may have missed the true
    /// first divergence because a recorder overwrote events.
    pub fn lossy(&self) -> bool {
        self.golden_dropped > 0 || self.trial_dropped > 0
    }

    /// Multi-line report text.
    pub fn text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        match &self.window {
            Some(w) => {
                let _ = writeln!(
                    s,
                    "first diverging window: #{} (cycles {}..{}) {}: golden {} vs trial {}",
                    w.index, w.start, w.end, w.metric, w.golden, w.trial
                );
            }
            None => {
                let _ = writeln!(s, "windowed series identical");
            }
        }
        match &self.event {
            Some(e) => {
                let _ = writeln!(s, "first diverging event: cycle {}, {}", e.cycle, e.what);
            }
            None => {
                let _ = writeln!(s, "event timelines identical");
            }
        }
        if self.lossy() {
            let _ = writeln!(
                s,
                "warning: recorder dropped events (golden {}, trial {}) — localization may be late",
                self.golden_dropped, self.trial_dropped
            );
        }
        s
    }
}

/// One-line description of an event for divergence reports.
fn describe(e: &TraceEvent) -> String {
    match *e {
        TraceEvent::Retire { pc, class, .. } => {
            format!("retire {} @ pc {pc:#010x}", class.label())
        }
        TraceEvent::StallBegin { cause, .. } => format!("stall begin ({cause:?})"),
        TraceEvent::StallEnd { cause, cycles, .. } => {
            format!("stall end ({cause:?}, {cycles} cycles)")
        }
        TraceEvent::FifoPush { dir, channel, data, .. } => {
            format!("fifo push {}{channel} data {data:#010x}", dir.label())
        }
        TraceEvent::FifoPop { dir, channel, data, .. } => {
            format!("fifo pop {}{channel} data {data:#010x}", dir.label())
        }
        TraceEvent::FifoFull { dir, channel, .. } => {
            format!("fifo full reject {}{channel}", dir.label())
        }
        TraceEvent::FifoEmpty { dir, channel, .. } => {
            format!("fifo empty reject {}{channel}", dir.label())
        }
        TraceEvent::GatewayWord { peripheral, to_hw, data, .. } => format!(
            "gateway p{peripheral} {} data {data:#010x}",
            if to_hw { "to_hw" } else { "from_hw" }
        ),
        TraceEvent::FaultInjected { site, detail, .. } => {
            format!("fault injected ({}, detail {detail:#x})", site.label())
        }
        TraceEvent::RegWrite { reg, value, .. } => {
            format!("register write r{reg} = {value:#010x}")
        }
        TraceEvent::BusTransfer { bus, write, addr, .. } => {
            format!("{} {} @ {addr:#010x}", bus.label(), if write { "store" } else { "load" })
        }
        TraceEvent::BlockActivity { peripheral, firings, toggles, .. } => {
            format!("block p{peripheral} activity ({firings} firings, {toggles} toggles)")
        }
        TraceEvent::FaultDetected { detector, detail, .. } => {
            format!("fault detected ({}, detail {detail:#x})", detector.label())
        }
        TraceEvent::Recovered { checkpoint_cycle, retries, .. } => {
            format!("rollback to checkpoint @ {checkpoint_cycle} (retry {retries})")
        }
        TraceEvent::KernelStep { time_ns, .. } => format!("rtl kernel step @ {time_ns} ns"),
    }
}

/// The windowed-plus-timeline diff engine. Stateless; the struct exists
/// as a namespace for the algorithm and its result types.
pub struct MetricsDiff;

impl MetricsDiff {
    /// Compares a trial run against its golden reference.
    ///
    /// Windowed series are compared row by row, column by column (in
    /// column order), on the aligned window indices; a missing trailing
    /// row (one run outlived the other) counts as a divergence in the
    /// first uncovered window. Event timelines are compared pairwise in
    /// emission order after filtering out [`TraceEvent::FaultInjected`]
    /// markers from both streams.
    ///
    /// # Panics
    /// Panics if the two series were sampled with different window
    /// widths or column sets — records must come from identically
    /// configured collectors to be comparable.
    pub fn diff(golden: &RunRecord, trial: &RunRecord) -> Divergence {
        assert_eq!(
            golden.series.width, trial.series.width,
            "window widths differ; runs are not comparable"
        );
        assert_eq!(
            golden.series.columns, trial.series.columns,
            "column sets differ; runs are not comparable"
        );
        Divergence {
            window: Self::first_window_divergence(&golden.series, &trial.series),
            event: Self::first_event_divergence(&golden.events, &trial.events),
            golden_dropped: golden.dropped_events,
            trial_dropped: trial.dropped_events,
        }
    }

    fn first_window_divergence(g: &WindowSeries, t: &WindowSeries) -> Option<WindowDivergence> {
        let rows = g.rows.len().max(t.rows.len());
        for i in 0..rows {
            match (g.rows.get(i), t.rows.get(i)) {
                (Some(gr), Some(tr)) => {
                    for (c, name) in g.columns.iter().enumerate() {
                        let (gv, tv) = (gr.values[c], tr.values[c]);
                        if gv != tv {
                            return Some(WindowDivergence {
                                index: gr.index,
                                start: gr.start,
                                end: gr.end.max(tr.end),
                                metric: name.to_string(),
                                golden: gv,
                                trial: tv,
                            });
                        }
                    }
                }
                (Some(r), None) | (None, Some(r)) => {
                    return Some(WindowDivergence {
                        index: r.index,
                        start: r.start,
                        end: r.end,
                        metric: "window_count".to_string(),
                        golden: g.rows.len() as f64,
                        trial: t.rows.len() as f64,
                    });
                }
                (None, None) => unreachable!("i < max(len)"),
            }
        }
        None
    }

    fn first_event_divergence(
        golden: &[TraceEvent],
        trial: &[TraceEvent],
    ) -> Option<EventDivergence> {
        let keep = |e: &&TraceEvent| !matches!(e, TraceEvent::FaultInjected { .. });
        let mut g = golden.iter().filter(keep);
        let mut t = trial.iter().filter(keep);
        let mut position = 0;
        loop {
            match (g.next(), t.next()) {
                (Some(ge), Some(te)) if ge == te => position += 1,
                (Some(ge), Some(te)) => {
                    return Some(EventDivergence {
                        position,
                        cycle: te.timestamp(),
                        what: format!("golden {} vs trial {}", describe(ge), describe(te)),
                        golden: Some(*ge),
                        trial: Some(*te),
                    });
                }
                (Some(ge), None) => {
                    return Some(EventDivergence {
                        position,
                        cycle: ge.timestamp(),
                        what: format!(
                            "trial timeline ended; golden continues with {}",
                            describe(ge)
                        ),
                        golden: Some(*ge),
                        trial: None,
                    });
                }
                (None, Some(te)) => {
                    return Some(EventDivergence {
                        position,
                        cycle: te.timestamp(),
                        what: format!(
                            "golden timeline ended; trial continues with {}",
                            describe(te)
                        ),
                        golden: None,
                        trial: Some(*te),
                    });
                }
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WindowRow, WindowSeries};

    fn series(width: u64, rows: Vec<(u64, Vec<f64>)>) -> WindowSeries {
        WindowSeries {
            width,
            columns: vec!["a", "b"],
            rows: rows
                .into_iter()
                .map(|(i, values)| WindowRow {
                    index: i,
                    start: i * width,
                    end: (i + 1) * width,
                    values,
                })
                .collect(),
        }
    }

    fn record(series: WindowSeries, events: Vec<TraceEvent>) -> RunRecord {
        RunRecord { series, events, dropped_events: 0 }
    }

    fn reg_write(cycle: u64, reg: u8, value: u32) -> TraceEvent {
        TraceEvent::RegWrite { cycle, reg, value }
    }

    #[test]
    fn identical_runs_report_no_divergence() {
        let g = record(series(4, vec![(0, vec![1.0, 2.0])]), vec![reg_write(1, 3, 7)]);
        let d = MetricsDiff::diff(&g, &g.clone());
        assert!(d.is_identical());
        assert!(d.text().contains("identical"));
    }

    #[test]
    fn first_differing_window_and_column_reported() {
        let g = record(series(4, vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 4.0])]), vec![]);
        let t = record(series(4, vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 9.0])]), vec![]);
        let w = MetricsDiff::diff(&g, &t).window.expect("diverges");
        assert_eq!(w.index, 1);
        assert_eq!(w.metric, "b");
        assert_eq!((w.golden, w.trial), (4.0, 9.0));
    }

    #[test]
    fn extra_trailing_windows_count_as_divergence() {
        let g = record(series(4, vec![(0, vec![1.0, 2.0])]), vec![]);
        let t = record(series(4, vec![(0, vec![1.0, 2.0]), (1, vec![0.0, 0.0])]), vec![]);
        let w = MetricsDiff::diff(&g, &t).window.expect("diverges");
        assert_eq!(w.metric, "window_count");
        assert_eq!(w.index, 1);
    }

    #[test]
    fn injection_markers_are_not_divergences_but_their_effects_are() {
        let shared = series(4, vec![(0, vec![1.0, 2.0])]);
        let g = record(shared.clone(), vec![reg_write(1, 3, 7), reg_write(2, 4, 8)]);
        let t = record(
            shared,
            vec![
                reg_write(1, 3, 7),
                TraceEvent::FaultInjected {
                    cycle: 2,
                    site: softsim_trace::InjectionSite::Register,
                    detail: 4,
                },
                reg_write(2, 4, 0x8000_0008),
            ],
        );
        let e = MetricsDiff::diff(&g, &t).event.expect("diverges");
        assert_eq!(e.position, 1, "the marker itself is filtered out");
        assert_eq!(e.cycle, 2);
        assert!(e.what.contains("register write r4"), "{}", e.what);
    }

    #[test]
    fn truncated_trial_timeline_is_reported() {
        let s = series(4, vec![(0, vec![0.0, 0.0])]);
        let g = record(s.clone(), vec![reg_write(1, 3, 7)]);
        let t = record(s, vec![]);
        let e = MetricsDiff::diff(&g, &t).event.expect("diverges");
        assert!(e.what.contains("trial timeline ended"));
    }

    #[test]
    fn dropped_events_flag_the_report_as_lossy() {
        let s = series(4, vec![(0, vec![0.0, 0.0])]);
        let mut g = record(s.clone(), vec![]);
        g.dropped_events = 5;
        let d = MetricsDiff::diff(&g, &record(s, vec![]));
        assert!(d.lossy());
        assert!(d.text().contains("dropped events"));
    }
}
