//! The typed metric registry: counters, gauges and fixed-bucket
//! histograms, identified by Prometheus-style names and label sets.
//!
//! The registry is deliberately simple — metric families are registered
//! once up front (or lazily as label values appear), updates go through
//! typed ids so the hot path is a bounds-checked array index, and the
//! whole thing renders to the Prometheus text exposition format.

use std::fmt::Write as _;

/// A label pair attached to a metric, e.g. `("dir", "to_hw")`.
pub type Label = (&'static str, String);

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram. Buckets are defined by strictly increasing
/// upper bounds (Prometheus `le` semantics: an observation lands in the
/// first bucket whose bound is `>=` the value), plus an implicit
/// `+Inf` overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the `+Inf` bucket last. Non-cumulative
    /// internally; the exposition renders cumulative counts.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bucket, `+Inf` last — the exposition view.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// One registered metric: a name, help text, label set and value.
#[derive(Debug, Clone)]
struct Metric {
    name: &'static str,
    help: &'static str,
    labels: Vec<Label>,
    value: MetricValue,
}

/// A registry of named metrics, rendered as Prometheus text exposition.
///
/// Names follow the convention `softsim_<subsystem>_<what>[_<unit>]`
/// and must match `[a-zA-Z_:][a-zA-Z0-9_:]*`; label values distinguish
/// members of a family (e.g. `{dir="to_hw",channel="0"}`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Vec<Metric>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
        value: MetricValue,
    ) -> usize {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            !self.metrics.iter().any(|m| m.name == name && m.labels == labels),
            "duplicate metric: {name} {labels:?}"
        );
        self.metrics.push(Metric { name, help, labels, value });
        self.metrics.len() - 1
    }

    /// Registers a counter (monotonically increasing `u64`).
    pub fn counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> CounterId {
        CounterId(self.register(name, help, labels, MetricValue::Counter(0)))
    }

    /// Registers a gauge (instantaneous `f64`).
    pub fn gauge(&mut self, name: &'static str, help: &'static str, labels: Vec<Label>) -> GaugeId {
        GaugeId(self.register(name, help, labels, MetricValue::Gauge(0.0)))
    }

    /// Registers a fixed-bucket histogram (see [`Histogram::new`]).
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
        bounds: &[f64],
    ) -> HistogramId {
        HistogramId(self.register(
            name,
            help,
            labels,
            MetricValue::Histogram(Histogram::new(bounds)),
        ))
    }

    /// Increments a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(c) => *c += by,
            _ => unreachable!("id type guarantees a counter"),
        }
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Gauge(g) => *g = v,
            _ => unreachable!("id type guarantees a gauge"),
        }
    }

    /// Sets a gauge to the maximum of its current and `v`.
    pub fn set_max(&mut self, id: GaugeId, v: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Gauge(g) => *g = g.max(v),
            _ => unreachable!("id type guarantees a gauge"),
        }
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Histogram(h) => h.observe(v),
            _ => unreachable!("id type guarantees a histogram"),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        match &self.metrics[id.0].value {
            MetricValue::Counter(c) => *c,
            _ => unreachable!("id type guarantees a counter"),
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        match &self.metrics[id.0].value {
            MetricValue::Gauge(g) => *g,
            _ => unreachable!("id type guarantees a gauge"),
        }
    }

    /// Read access to a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        match &self.metrics[id.0].value {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("id type guarantees a histogram"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers once per family,
    /// one sample line per metric, histograms expanded into cumulative
    /// `_bucket{le=…}` samples plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        // Sort by (name, labels) so families are contiguous and the
        // output is deterministic regardless of registration order.
        let mut order: Vec<usize> = (0..self.metrics.len()).collect();
        order.sort_by(|&a, &b| {
            let (ma, mb) = (&self.metrics[a], &self.metrics[b]);
            ma.name.cmp(mb.name).then_with(|| ma.labels.cmp(&mb.labels))
        });
        let mut out = String::new();
        let mut last_name = "";
        for i in order {
            let m = &self.metrics[i];
            if m.name != last_name {
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_name = m.name;
            }
            match &m.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", m.name, labels_text(&m.labels, None), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", m.name, labels_text(&m.labels, None), num(*g));
                }
                MetricValue::Histogram(h) => {
                    let cumulative = h.cumulative();
                    for (b, c) in h.bounds().iter().zip(&cumulative) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            labels_text(&m.labels, Some(&num(*b))),
                            c
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        labels_text(&m.labels, Some("+Inf")),
                        cumulative.last().expect("+Inf bucket")
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        labels_text(&m.labels, None),
                        num(h.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        labels_text(&m.labels, None),
                        h.count()
                    );
                }
            }
        }
        out
    }
}

/// Formats an `f64` as its shortest round-trip decimal (integral values
/// render without a fraction part), valid in both the exposition format
/// and JSON.
pub(crate) fn num(v: f64) -> String {
    format!("{v}")
}

fn labels_text(labels: &[Label], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    // Prometheus text exposition escapes backslash, double quote and
    // newline inside label values (backslash first, so the escapes
    // themselves are not re-escaped).
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let v = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{v}\"")
        })
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges_are_le_inclusive() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // A value exactly on a bound lands in that bucket (le semantics).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(2.5);
        h.observe(100.0); // overflow bucket
        assert_eq!(h.cumulative(), vec![1, 2, 3, 4]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn exposition_groups_families_and_expands_histograms() {
        let mut r = Registry::new();
        let c0 = r.counter("softsim_test_total", "a counter", vec![("dir", "to_hw".into())]);
        let _c1 = r.counter("softsim_test_total", "a counter", vec![("dir", "from_hw".into())]);
        let g = r.gauge("softsim_test_gauge", "a gauge", vec![]);
        let h = r.histogram("softsim_test_hist", "a histogram", vec![], &[1.0, 2.0]);
        r.inc(c0, 3);
        r.set(g, 1.5);
        r.observe(h, 0.5);
        r.observe(h, 9.0);
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE softsim_test_total counter").count(), 1);
        assert!(text.contains("softsim_test_total{dir=\"to_hw\"} 3"));
        assert!(text.contains("softsim_test_gauge 1.5"));
        assert!(text.contains("softsim_test_hist_bucket{le=\"1\"} 1"));
        assert!(text.contains("softsim_test_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("softsim_test_hist_count 2"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_name_and_labels_rejected() {
        let mut r = Registry::new();
        r.counter("softsim_dup_total", "x", vec![]);
        r.counter("softsim_dup_total", "x", vec![]);
    }

    #[test]
    fn exposition_bucket_lines_are_ordered_and_cumulative() {
        let mut r = Registry::new();
        let h = r.histogram("softsim_order_hist", "bucket order", vec![], &[0.5, 1.0, 8.0, 64.0]);
        for v in [0.25, 0.75, 4.0, 4.0, 1000.0] {
            r.observe(h, v);
        }
        let text = r.to_prometheus();
        // Bucket lines appear in strictly increasing bound order, +Inf
        // last, with non-decreasing cumulative counts.
        let lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("softsim_order_hist_bucket")).collect();
        let expected = [
            ("le=\"0.5\"", 1u64),
            ("le=\"1\"", 2),
            ("le=\"8\"", 4),
            ("le=\"64\"", 4),
            ("le=\"+Inf\"", 5),
        ];
        assert_eq!(lines.len(), expected.len(), "{text}");
        for (line, (le, count)) in lines.iter().zip(expected) {
            assert!(line.contains(le), "bucket order wrong: {line} (wanted {le})");
            let sample: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(sample, count, "{line}");
        }
        // The +Inf count equals _count: the histogram is complete.
        assert!(text.contains("softsim_order_hist_count 5"));
    }

    #[test]
    fn every_histogram_exposes_an_inf_bucket_even_when_empty() {
        let mut r = Registry::new();
        r.histogram("softsim_empty_hist", "no observations", vec![], &[1.0]);
        let text = r.to_prometheus();
        assert!(text.contains("softsim_empty_hist_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("softsim_empty_hist_sum 0"));
        assert!(text.contains("softsim_empty_hist_count 0"));
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        let mut r = Registry::new();
        let c = r.counter(
            "softsim_escape_total",
            "label escaping",
            vec![("path", "C:\\dir\"quoted\"\nnext line".into())],
        );
        r.inc(c, 1);
        let text = r.to_prometheus();
        // Backslash → \\, quote → \", newline → the two characters \n —
        // and the sample stays on a single exposition line.
        let line = text
            .lines()
            .find(|l| l.starts_with("softsim_escape_total{"))
            .expect("sample line present");
        assert_eq!(line, "softsim_escape_total{path=\"C:\\\\dir\\\"quoted\\\"\\nnext line\"} 1");
    }

    #[test]
    fn escaping_order_does_not_double_escape() {
        // A value that is exactly a backslash before an `n` must come out
        // as \\n (escaped backslash + literal n), not \n (newline escape).
        let mut r = Registry::new();
        let c = r.counter("softsim_bsn_total", "x", vec![("v", "\\n".into())]);
        r.inc(c, 2);
        let text = r.to_prometheus();
        assert!(text.contains("softsim_bsn_total{v=\"\\\\n\"} 2"), "{text}");
    }
}
