//! # softsim-metrics — cycle-windowed metrics and divergence localization
//!
//! Where `softsim-trace` answers *what happened* (raw cycle-domain
//! events), this crate answers *how much, when, and where two runs part
//! ways*:
//!
//! * [`Registry`] — a typed registry of counters, gauges and
//!   fixed-bucket [`Histogram`]s with Prometheus text exposition
//!   (`Registry::to_prometheus`);
//! * [`MetricsCollector`] — a [`TraceSink`](softsim_trace::TraceSink)
//!   that folds the event stream into the registry *and* into a
//!   cycle-windowed time-series ([`WindowSeries`], exported as compact
//!   JSON) — IPC and stall breakdown from the ISS, per-channel FIFO
//!   occupancy and backpressure from the FSL bank, LMB/OPB bus
//!   utilization, block firings and switching activity;
//! * [`MetricsDiff`] — aligns a golden and a trial run's windowed
//!   series plus their event timelines and reports the first cycle
//!   window and the first architectural event where they diverge, the
//!   engine under the fault campaign's divergence localizer.
//!
//! Metric names follow `softsim_<subsystem>_<what>[_<unit>]` with
//! labels for family members (`dir`, `channel`, `cause`, `bus`,
//! `kind`); windows are half-open cycle ranges `[k·w, (k+1)·w)` with
//! the final window clipped to the run length (see [`window`]).
//!
//! Everything rides the existing tracing plumbing: a simulator with no
//! sink attached pays nothing, and one with a sink pays only the
//! tracing guard it already had — there is no second instrumentation
//! path to keep honest.
//!
//! ```
//! use softsim_metrics::MetricsCollector;
//! use softsim_trace::{InstClass, TraceEvent, TraceSink};
//!
//! let mut m = MetricsCollector::new(1024);
//! m.event(&TraceEvent::Retire {
//!     cycle: 3,
//!     pc: 0x20,
//!     word: 0,
//!     class: InstClass::Alu,
//!     cycles: 1,
//!     read_stalls: 0,
//!     write_stalls: 0,
//! });
//! m.finish(100);
//! assert!(m.to_prometheus().contains("softsim_iss_instructions_total 1"));
//! assert_eq!(m.series().rows.len(), 1);
//! ```

#![warn(missing_docs)]

mod collect;
mod diff;
mod registry;
pub mod telemetry;
pub mod window;

pub use collect::{MetricsCollector, COLUMNS};
pub use diff::{Divergence, EventDivergence, MetricsDiff, RunRecord, WindowDivergence};
pub use registry::{CounterId, GaugeId, Histogram, HistogramId, Label, Registry};
pub use telemetry::{ServeCounters, ServeEvent, SpanKind, SpanRecord, Telemetry, TelemetryConfig};
pub use window::{WindowRow, WindowSeries};
