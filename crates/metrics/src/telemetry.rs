//! Harness telemetry: span-structured wall-clock instrumentation for
//! the execution harness (campaigns, sweeps, durable runs).
//!
//! Where the rest of this crate observes the *guest* (cycle-domain
//! metrics folded from the trace stream), this module observes the
//! *harness*: how long each campaign trial took, which worker ran it,
//! how many sim-cycles it executed, how often fast-forwarding engaged,
//! how many bytes the durable journal wrote. Spans are recorded as
//! closed intervals ([`SpanRecord`]) into a [`Telemetry`] hub that is
//! `Sync` (one mutex-guarded aggregation; workers time locally and pay
//! a single lock per span) and rolls them up into:
//!
//! * per-worker busy time, span counts, sim-cycles and utilization;
//! * whole-run totals (trials, retries, retry wall-time, budget
//!   cancellations, abandons, fast-forward engagements, journal bytes);
//! * a sampled whole-run throughput series (sim-cycles/sec over time);
//! * Prometheus text exposition ([`Telemetry::to_prometheus`]) and a
//!   compact JSON summary ([`Telemetry::to_json`]);
//! * an optional periodic snapshot file (Prometheus text, written
//!   atomically via rename) and an optional stderr progress/ETA
//!   heartbeat for long campaigns.
//!
//! **Determinism boundary.** Everything in this module carries
//! wall-clock data and therefore must never leak into the byte-diffed
//! deterministic artifacts (campaign reports, records, journals).
//! Telemetry is strictly an observer: the harness passes
//! `Option<&Telemetry>` and produces byte-identical outputs whether it
//! is `None`, or `Some` at any worker count — asserted by tests and CI.

use crate::registry::{Label, Registry};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The kind of harness span a [`SpanRecord`] closes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// A whole fault/recovery campaign (golden run + all trials).
    Campaign,
    /// The golden (fault-free) reference run of a campaign.
    Golden,
    /// One campaign trial (all retry attempts of one injection).
    Trial,
    /// A whole `parallel_map`/`parallel_try_map` sweep.
    Sweep,
    /// One item of a sweep.
    SweepItem,
    /// One durable-journal record append (frame build + write).
    JournalAppend,
    /// One `softsim-serve` job, end to end (queue wait excluded; covers
    /// all retry attempts). Like campaigns and sweeps it nests leaf
    /// spans, so it is excluded from worker occupancy.
    Job,
}

impl SpanKind {
    /// The Prometheus label value for this kind.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::Golden => "golden",
            SpanKind::Trial => "trial",
            SpanKind::Sweep => "sweep",
            SpanKind::SweepItem => "sweep_item",
            SpanKind::JournalAppend => "journal_append",
            SpanKind::Job => "job",
        }
    }
}

/// All span kinds, in exposition order.
pub const SPAN_KINDS: [SpanKind; 7] = [
    SpanKind::Campaign,
    SpanKind::Golden,
    SpanKind::Trial,
    SpanKind::Sweep,
    SpanKind::SweepItem,
    SpanKind::JournalAppend,
    SpanKind::Job,
];

/// A `softsim-serve` lifecycle event, counted by the hub and exposed as
/// the `softsim_serve_*` Prometheus families once any is recorded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeEvent {
    /// A job passed admission control into the queue.
    Admitted,
    /// A job was rejected or evicted by admission control / load-shedding.
    Shed,
    /// A job was admitted in reduced-fidelity (degraded) mode.
    Degraded,
    /// A job attempt failed and was retried.
    Retried,
    /// A job exhausted its retries and was quarantined.
    Quarantined,
    /// A job finished successfully.
    Completed,
    /// A job was served from the memoization cache.
    CacheHit,
    /// A cacheable job missed the memoization cache.
    CacheMiss,
    /// A cache entry was evicted (capacity or CRC corruption).
    CacheEvict,
}

/// Rollup of [`ServeEvent`] counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs shed (rejected or evicted).
    pub shed: u64,
    /// Jobs admitted degraded.
    pub degraded: u64,
    /// Retry attempts.
    pub retried: u64,
    /// Jobs quarantined.
    pub quarantined: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
}

/// Point-in-time service gauges, set by the server on every queue
/// transition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct ServeGauges {
    queue_depth: u64,
    queue_capacity: u64,
    jobs_running: u64,
    ready: bool,
}

/// One closed harness span. Workers fill one of these locally (no lock
/// held while the span runs) and hand it to [`Telemetry::record`].
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// What kind of work this span covers.
    pub kind: SpanKind,
    /// The worker that ran it (0 for serial runs).
    pub worker: u32,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// Sim-cycles executed inside the span (0 where not applicable).
    pub sim_cycles: u64,
    /// Retry attempts consumed inside the span.
    pub retries: u64,
    /// Wall-clock time spent on retry attempts (after the first).
    pub retry_wall: Duration,
    /// 1 if the span's trial was budget-cancelled.
    pub budget_cancelled: u64,
    /// 1 if the span's trial was abandoned (harness error).
    pub abandoned: u64,
    /// Fast-forward jumps taken inside the span.
    pub ff_engagements: u64,
    /// Cycles covered by fast-forward jumps inside the span.
    pub ff_skipped_cycles: u64,
    /// Journal bytes written inside the span.
    pub journal_bytes: u64,
}

impl SpanRecord {
    /// A span with every counter zeroed — callers set what applies.
    pub fn new(kind: SpanKind, worker: u32, wall: Duration) -> SpanRecord {
        SpanRecord {
            kind,
            worker,
            wall,
            sim_cycles: 0,
            retries: 0,
            retry_wall: Duration::ZERO,
            budget_cancelled: 0,
            abandoned: 0,
            ff_engagements: 0,
            ff_skipped_cycles: 0,
            journal_bytes: 0,
        }
    }
}

/// Output configuration for a [`Telemetry`] hub. The default is fully
/// in-memory: no heartbeat, no snapshot file.
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// Print a progress/ETA line to stderr at most this often.
    pub heartbeat: Option<Duration>,
    /// Write a Prometheus-text snapshot to this path at most this often
    /// (atomic: written to `<path>.tmp` then renamed).
    pub snapshot: Option<(PathBuf, Duration)>,
}

/// Rollup for one worker id.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Spans recorded by this worker.
    pub spans: u64,
    /// Total wall-clock time this worker spent inside spans.
    pub busy: Duration,
    /// Sim-cycles this worker executed (trial + golden spans).
    pub cycles: u64,
}

/// One point of the whole-run throughput series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Seconds since the hub was created.
    pub at_secs: f64,
    /// Cumulative sim-cycles recorded by then (trial + golden spans).
    pub cycles: u64,
}

/// How often the throughput series samples, independent of the
/// heartbeat (which is display-only).
const SAMPLE_PERIOD: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct Inner {
    started: Instant,
    expected_trials: u64,
    kind_count: [u64; SPAN_KINDS.len()],
    kind_wall: [Duration; SPAN_KINDS.len()],
    workers: Vec<WorkerStats>,
    trial_cycles: u64,
    golden_cycles: u64,
    retries: u64,
    retry_wall: Duration,
    budget_cancelled: u64,
    abandoned: u64,
    ff_engagements: u64,
    ff_skipped_cycles: u64,
    journal_bytes: u64,
    trial_wall_hist: Vec<u64>,
    trial_wall_sum: f64,
    serve: ServeCounters,
    serve_gauges: ServeGauges,
    serve_active: bool,
    series: Vec<ThroughputSample>,
    last_sample: Instant,
    last_heartbeat: Instant,
    last_snapshot: Instant,
}

/// Histogram bucket bounds for per-trial wall time, in seconds.
pub const TRIAL_WALL_BOUNDS: [f64; 6] = [0.0001, 0.001, 0.01, 0.1, 1.0, 10.0];

impl Inner {
    fn new() -> Inner {
        let now = Instant::now();
        Inner {
            started: now,
            expected_trials: 0,
            kind_count: [0; SPAN_KINDS.len()],
            kind_wall: [Duration::ZERO; SPAN_KINDS.len()],
            workers: Vec::new(),
            trial_cycles: 0,
            golden_cycles: 0,
            retries: 0,
            retry_wall: Duration::ZERO,
            budget_cancelled: 0,
            abandoned: 0,
            ff_engagements: 0,
            ff_skipped_cycles: 0,
            journal_bytes: 0,
            trial_wall_hist: vec![0; TRIAL_WALL_BOUNDS.len()],
            trial_wall_sum: 0.0,
            serve: ServeCounters::default(),
            serve_gauges: ServeGauges::default(),
            serve_active: false,
            series: Vec::new(),
            last_sample: now,
            last_heartbeat: now,
            last_snapshot: now,
        }
    }

    fn total_cycles(&self) -> u64 {
        self.trial_cycles + self.golden_cycles
    }
}

/// The harness-telemetry hub: `Sync`, shared by reference across the
/// worker threads of a campaign or sweep. See the module docs for the
/// span model and the determinism boundary.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A hub with the given output configuration.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry { config, inner: Mutex::new(Inner::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Announces `n` upcoming trials (additive — durable resumes
    /// announce only the missing remainder). Drives the heartbeat's
    /// progress percentage and ETA.
    pub fn expect_trials(&self, n: u64) {
        self.lock().expected_trials += n;
    }

    /// Records one closed span: one lock, aggregate, and — when due —
    /// a throughput sample, a heartbeat line and/or a snapshot file.
    pub fn record(&self, rec: SpanRecord) {
        let mut inner = self.lock();
        let k = SPAN_KINDS.iter().position(|&s| s == rec.kind).unwrap();
        inner.kind_count[k] += 1;
        inner.kind_wall[k] += rec.wall;
        let w = rec.worker as usize;
        if inner.workers.len() <= w {
            inner.workers.resize(w + 1, WorkerStats::default());
        }
        // Aggregate spans (campaign, sweep, serve job) cover the whole
        // run and would double-count the leaf spans nested inside them;
        // only leaf spans are worker occupancy.
        if !matches!(rec.kind, SpanKind::Campaign | SpanKind::Sweep | SpanKind::Job) {
            inner.workers[w].spans += 1;
            inner.workers[w].busy += rec.wall;
        }
        inner.retries += rec.retries;
        inner.retry_wall += rec.retry_wall;
        inner.budget_cancelled += rec.budget_cancelled;
        inner.abandoned += rec.abandoned;
        inner.ff_engagements += rec.ff_engagements;
        inner.ff_skipped_cycles += rec.ff_skipped_cycles;
        inner.journal_bytes += rec.journal_bytes;
        match rec.kind {
            SpanKind::Trial => {
                inner.trial_cycles += rec.sim_cycles;
                inner.workers[w].cycles += rec.sim_cycles;
                let secs = rec.wall.as_secs_f64();
                inner.trial_wall_sum += secs;
                for (i, b) in TRIAL_WALL_BOUNDS.iter().enumerate() {
                    if secs <= *b {
                        inner.trial_wall_hist[i] += 1;
                        break;
                    }
                }
            }
            SpanKind::Golden => {
                inner.golden_cycles += rec.sim_cycles;
                inner.workers[w].cycles += rec.sim_cycles;
            }
            _ => {}
        }
        if inner.last_sample.elapsed() >= SAMPLE_PERIOD {
            inner.last_sample = Instant::now();
            let sample = ThroughputSample {
                at_secs: inner.started.elapsed().as_secs_f64(),
                cycles: inner.total_cycles(),
            };
            inner.series.push(sample);
        }
        if let Some(period) = self.config.heartbeat {
            if inner.last_heartbeat.elapsed() >= period {
                inner.last_heartbeat = Instant::now();
                eprintln!("{}", heartbeat_line(&inner));
            }
        }
        if let Some((path, period)) = &self.config.snapshot {
            if inner.last_snapshot.elapsed() >= *period {
                inner.last_snapshot = Instant::now();
                let text = build_prometheus(&inner);
                drop(inner);
                let _ = write_atomic(path, &text);
            }
        }
    }

    /// Flushes the final snapshot (when configured). Call once after
    /// the instrumented run completes so the snapshot file reflects the
    /// finished state, not the last periodic tick.
    pub fn finish(&self) {
        if let Some((path, _)) = &self.config.snapshot {
            let text = self.to_prometheus();
            let _ = write_atomic(path, &text);
        }
    }

    /// Trial spans recorded so far.
    pub fn trial_count(&self) -> u64 {
        let inner = self.lock();
        inner.kind_count[SPAN_KINDS.iter().position(|&s| s == SpanKind::Trial).unwrap()]
    }

    /// Sim-cycles recorded by trial spans.
    pub fn trial_cycles(&self) -> u64 {
        self.lock().trial_cycles
    }

    /// Sim-cycles recorded by golden spans.
    pub fn golden_cycles(&self) -> u64 {
        self.lock().golden_cycles
    }

    /// Journal bytes recorded by journal-append spans.
    pub fn journal_bytes(&self) -> u64 {
        self.lock().journal_bytes
    }

    /// Retry attempts recorded so far.
    pub fn retries(&self) -> u64 {
        self.lock().retries
    }

    /// Wall-clock time recorded as spent on retry attempts.
    pub fn retry_wall(&self) -> Duration {
        self.lock().retry_wall
    }

    /// Fast-forward engagements recorded so far.
    pub fn ff_engagements(&self) -> u64 {
        self.lock().ff_engagements
    }

    /// Per-worker rollups, indexed by worker id.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.lock().workers.clone()
    }

    /// Counts one `softsim-serve` lifecycle event. The first call (or
    /// the first [`Telemetry::set_serve_queue`]) switches the
    /// `softsim_serve_*` families into the exposition — campaign-only
    /// users keep the exact exposition they had before serve existed.
    pub fn serve_event(&self, event: ServeEvent) {
        let mut inner = self.lock();
        inner.serve_active = true;
        let s = &mut inner.serve;
        match event {
            ServeEvent::Admitted => s.admitted += 1,
            ServeEvent::Shed => s.shed += 1,
            ServeEvent::Degraded => s.degraded += 1,
            ServeEvent::Retried => s.retried += 1,
            ServeEvent::Quarantined => s.quarantined += 1,
            ServeEvent::Completed => s.completed += 1,
            ServeEvent::CacheHit => s.cache_hits += 1,
            ServeEvent::CacheMiss => s.cache_misses += 1,
            ServeEvent::CacheEvict => s.cache_evictions += 1,
        }
    }

    /// Sets the serve queue/readiness gauges (call on every admission,
    /// pop and completion).
    pub fn set_serve_queue(&self, depth: u64, capacity: u64, running: u64, ready: bool) {
        let mut inner = self.lock();
        inner.serve_active = true;
        inner.serve_gauges = ServeGauges {
            queue_depth: depth,
            queue_capacity: capacity,
            jobs_running: running,
            ready,
        };
    }

    /// The serve lifecycle counters recorded so far.
    pub fn serve_counters(&self) -> ServeCounters {
        self.lock().serve
    }

    /// The sampled whole-run throughput series.
    pub fn throughput_series(&self) -> Vec<ThroughputSample> {
        self.lock().series.clone()
    }

    /// Prometheus text exposition of the current rollups, rendered
    /// through the crate's [`Registry`] (same escaping, bucket and
    /// ordering rules as the guest metrics).
    pub fn to_prometheus(&self) -> String {
        build_prometheus(&self.lock())
    }

    /// Compact JSON summary of the current rollups (aggregates,
    /// per-worker stats and the throughput series).
    pub fn to_json(&self) -> String {
        build_json(&self.lock())
    }

    /// Human-readable end-of-run summary: run wall time, throughput,
    /// worker count and per-worker utilization, retry wall-time,
    /// fast-forward engagement and journal accounting. This is the
    /// self-describing wall-clock counterpart of the deterministic
    /// `CampaignReport` — it goes to stderr or logs, never into
    /// byte-diffed artifacts.
    pub fn summary(&self) -> String {
        let inner = self.lock();
        let elapsed = inner.started.elapsed().as_secs_f64();
        let cycles = inner.total_cycles();
        let mut out = String::new();
        out.push_str("harness telemetry summary\n");
        out.push_str(&format!(
            "  run: {:.3}s wall, {} sim-cycles, {:.3e} cycles/sec\n",
            elapsed,
            cycles,
            if elapsed > 0.0 { cycles as f64 / elapsed } else { 0.0 },
        ));
        let trial_idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::Trial).unwrap();
        out.push_str(&format!(
            "  trials: {} completed, {} retry attempts ({:.3}s retry wall), {} budget-cancelled, {} abandoned\n",
            inner.kind_count[trial_idx],
            inner.retries,
            inner.retry_wall.as_secs_f64(),
            inner.budget_cancelled,
            inner.abandoned,
        ));
        out.push_str(&format!(
            "  fast-forward: {} engagements, {} cycles skipped\n",
            inner.ff_engagements, inner.ff_skipped_cycles,
        ));
        if inner.journal_bytes > 0 {
            let idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::JournalAppend).unwrap();
            out.push_str(&format!(
                "  journal: {} appends, {} bytes\n",
                inner.kind_count[idx], inner.journal_bytes,
            ));
        }
        out.push_str(&format!("  workers: {}\n", inner.workers.len()));
        for (i, w) in inner.workers.iter().enumerate() {
            let util = if elapsed > 0.0 { w.busy.as_secs_f64() / elapsed * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "    worker {i}: {} spans, {:.3}s busy ({util:.1}% utilization), {} sim-cycles\n",
                w.spans,
                w.busy.as_secs_f64(),
                w.cycles,
            ));
        }
        out
    }
}

/// One stderr progress/ETA heartbeat line.
fn heartbeat_line(inner: &Inner) -> String {
    let trial_idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::Trial).unwrap();
    let done = inner.kind_count[trial_idx];
    let elapsed = inner.started.elapsed().as_secs_f64();
    let cycles = inner.total_cycles();
    let rate = if elapsed > 0.0 { cycles as f64 / elapsed } else { 0.0 };
    let progress = if inner.expected_trials > 0 {
        let pct = done as f64 / inner.expected_trials as f64 * 100.0;
        let eta = if done > 0 {
            elapsed / done as f64 * inner.expected_trials.saturating_sub(done) as f64
        } else {
            f64::NAN
        };
        format!("{done}/{} trials ({pct:.1}%) · ETA {eta:.1}s", inner.expected_trials)
    } else {
        format!("{done} trials")
    };
    format!("[telemetry] {progress} · {cycles} sim-cycles · {rate:.3e} cycles/sec · {elapsed:.1}s elapsed")
}

fn build_prometheus(inner: &Inner) -> String {
    let mut reg = Registry::new();
    let elapsed = inner.started.elapsed().as_secs_f64();
    for (k, kind) in SPAN_KINDS.iter().enumerate() {
        let labels: Vec<Label> = vec![("kind", kind.label().to_string())];
        let c = reg.counter(
            "softsim_harness_spans_total",
            "Closed harness spans by kind.",
            labels.clone(),
        );
        reg.inc(c, inner.kind_count[k]);
        let g = reg.gauge(
            "softsim_harness_span_wall_seconds_total",
            "Wall-clock seconds inside harness spans by kind.",
            labels,
        );
        reg.set(g, inner.kind_wall[k].as_secs_f64());
    }
    let c = reg.counter(
        "softsim_harness_sim_cycles_total",
        "Sim-cycles executed inside harness spans.",
        vec![("kind", "trial".to_string())],
    );
    reg.inc(c, inner.trial_cycles);
    let c = reg.counter(
        "softsim_harness_sim_cycles_total",
        "Sim-cycles executed inside harness spans.",
        vec![("kind", "golden".to_string())],
    );
    reg.inc(c, inner.golden_cycles);
    for (i, w) in inner.workers.iter().enumerate() {
        let labels: Vec<Label> = vec![("worker", i.to_string())];
        let c = reg.counter(
            "softsim_harness_worker_spans_total",
            "Closed spans per worker.",
            labels.clone(),
        );
        reg.inc(c, w.spans);
        let g = reg.gauge(
            "softsim_harness_worker_busy_seconds",
            "Wall-clock seconds each worker spent inside spans.",
            labels.clone(),
        );
        reg.set(g, w.busy.as_secs_f64());
        let c = reg.counter(
            "softsim_harness_worker_sim_cycles_total",
            "Sim-cycles executed per worker.",
            labels.clone(),
        );
        reg.inc(c, w.cycles);
        let g = reg.gauge(
            "softsim_harness_worker_utilization",
            "Fraction of run wall time each worker spent busy.",
            labels,
        );
        reg.set(g, if elapsed > 0.0 { w.busy.as_secs_f64() / elapsed } else { 0.0 });
    }
    let c =
        reg.counter("softsim_harness_retries_total", "Trial retry attempts consumed.", Vec::new());
    reg.inc(c, inner.retries);
    let g = reg.gauge(
        "softsim_harness_retry_wall_seconds",
        "Wall-clock seconds spent on retry attempts.",
        Vec::new(),
    );
    reg.set(g, inner.retry_wall.as_secs_f64());
    let c = reg.counter(
        "softsim_harness_budget_cancelled_total",
        "Trials cancelled by cycle/wall budgets.",
        Vec::new(),
    );
    reg.inc(c, inner.budget_cancelled);
    let c = reg.counter(
        "softsim_harness_abandoned_total",
        "Trials abandoned after repeated harness errors.",
        Vec::new(),
    );
    reg.inc(c, inner.abandoned);
    let c = reg.counter(
        "softsim_harness_ff_engagements_total",
        "Fast-forward jumps taken inside spans.",
        Vec::new(),
    );
    reg.inc(c, inner.ff_engagements);
    let c = reg.counter(
        "softsim_harness_ff_skipped_cycles_total",
        "Cycles covered by fast-forward jumps inside spans.",
        Vec::new(),
    );
    reg.inc(c, inner.ff_skipped_cycles);
    let c = reg.counter(
        "softsim_harness_journal_bytes_total",
        "Durable-journal bytes written inside spans.",
        Vec::new(),
    );
    reg.inc(c, inner.journal_bytes);
    let h = reg.histogram(
        "softsim_harness_trial_wall_seconds",
        "Per-trial wall-clock duration.",
        Vec::new(),
        &TRIAL_WALL_BOUNDS,
    );
    // Replay the pre-bucketed counts through the registry histogram so
    // the exposition (cumulative buckets, +Inf, sum/count) is rendered
    // by the one shared implementation.
    for (i, n) in inner.trial_wall_hist.iter().enumerate() {
        for _ in 0..*n {
            reg.observe(h, TRIAL_WALL_BOUNDS[i]);
        }
    }
    let trial_idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::Trial).unwrap();
    let bucketed: u64 = inner.trial_wall_hist.iter().sum();
    for _ in bucketed..inner.kind_count[trial_idx] {
        reg.observe(h, TRIAL_WALL_BOUNDS[TRIAL_WALL_BOUNDS.len() - 1] + 1.0);
    }
    let g = reg.gauge(
        "softsim_harness_run_wall_seconds",
        "Wall-clock seconds since the telemetry hub was created.",
        Vec::new(),
    );
    reg.set(g, elapsed);
    let g = reg.gauge(
        "softsim_harness_throughput_cycles_per_sec",
        "Whole-run sim-cycles per wall-clock second.",
        Vec::new(),
    );
    reg.set(g, if elapsed > 0.0 { inner.total_cycles() as f64 / elapsed } else { 0.0 });
    let g = reg.gauge(
        "softsim_harness_trials_expected",
        "Trials announced via expect_trials.",
        Vec::new(),
    );
    reg.set(g, inner.expected_trials as f64);
    if inner.serve_active {
        let s = &inner.serve;
        for (state, n) in [
            ("admitted", s.admitted),
            ("shed", s.shed),
            ("degraded", s.degraded),
            ("retried", s.retried),
            ("quarantined", s.quarantined),
            ("completed", s.completed),
        ] {
            let c = reg.counter(
                "softsim_serve_jobs_total",
                "Serve jobs by lifecycle state.",
                vec![("state", state.to_string())],
            );
            reg.inc(c, n);
        }
        for (event, n) in
            [("hit", s.cache_hits), ("miss", s.cache_misses), ("evict", s.cache_evictions)]
        {
            let c = reg.counter(
                "softsim_serve_cache_total",
                "Memoization cache events.",
                vec![("event", event.to_string())],
            );
            reg.inc(c, n);
        }
        let q = inner.serve_gauges;
        let g = reg.gauge("softsim_serve_queue_depth", "Jobs waiting in the queue.", Vec::new());
        reg.set(g, q.queue_depth as f64);
        let g = reg.gauge(
            "softsim_serve_queue_capacity",
            "Admission-control queue capacity.",
            Vec::new(),
        );
        reg.set(g, q.queue_capacity as f64);
        let g = reg.gauge("softsim_serve_jobs_running", "Jobs currently executing.", Vec::new());
        reg.set(g, q.jobs_running as f64);
        let g = reg.gauge(
            "softsim_serve_ready",
            "1 while the server accepts work, 0 once shutdown begins.",
            Vec::new(),
        );
        reg.set(g, if q.ready { 1.0 } else { 0.0 });
    }
    reg.to_prometheus()
}

fn build_json(inner: &Inner) -> String {
    let elapsed = inner.started.elapsed().as_secs_f64();
    let trial_idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::Trial).unwrap();
    let append_idx = SPAN_KINDS.iter().position(|&s| s == SpanKind::JournalAppend).unwrap();
    let mut workers = String::new();
    for (i, w) in inner.workers.iter().enumerate() {
        if i > 0 {
            workers.push(',');
        }
        workers.push_str(&format!(
            "{{\"worker\":{i},\"spans\":{},\"busy_seconds\":{},\"sim_cycles\":{},\"utilization\":{}}}",
            w.spans,
            w.busy.as_secs_f64(),
            w.cycles,
            if elapsed > 0.0 { w.busy.as_secs_f64() / elapsed } else { 0.0 },
        ));
    }
    let mut series = String::new();
    for (i, s) in inner.series.iter().enumerate() {
        if i > 0 {
            series.push(',');
        }
        series.push_str(&format!("{{\"at_secs\":{},\"sim_cycles\":{}}}", s.at_secs, s.cycles));
    }
    format!(
        "{{\"run_wall_seconds\":{},\"trials\":{},\"expected_trials\":{},\"sim_cycles\":{},\
         \"cycles_per_sec\":{},\"retries\":{},\"retry_wall_seconds\":{},\
         \"budget_cancelled\":{},\"abandoned\":{},\"ff_engagements\":{},\
         \"ff_skipped_cycles\":{},\"journal_appends\":{},\"journal_bytes\":{},\
         \"workers\":[{}],\"throughput_series\":[{}]}}",
        elapsed,
        inner.kind_count[trial_idx],
        inner.expected_trials,
        inner.total_cycles(),
        if elapsed > 0.0 { inner.total_cycles() as f64 / elapsed } else { 0.0 },
        inner.retries,
        inner.retry_wall.as_secs_f64(),
        inner.budget_cancelled,
        inner.abandoned,
        inner.ff_engagements,
        inner.ff_skipped_cycles,
        inner.kind_count[append_idx],
        inner.journal_bytes,
        workers,
        series,
    )
}

/// Writes `text` to `<path>.tmp` then renames it over `path`, so a
/// reader never observes a half-written snapshot.
fn write_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(worker: u32, ms: u64, cycles: u64) -> SpanRecord {
        let mut r = SpanRecord::new(SpanKind::Trial, worker, Duration::from_millis(ms));
        r.sim_cycles = cycles;
        r
    }

    #[test]
    fn rollups_reconcile() {
        let t = Telemetry::default();
        t.expect_trials(3);
        let mut g = SpanRecord::new(SpanKind::Golden, 0, Duration::from_millis(2));
        g.sim_cycles = 100;
        t.record(g);
        t.record(trial(0, 5, 1_000));
        t.record(trial(1, 7, 2_000));
        let mut r = trial(0, 11, 4_000);
        r.retries = 2;
        r.retry_wall = Duration::from_millis(6);
        t.record(r);
        assert_eq!(t.trial_count(), 3);
        assert_eq!(t.trial_cycles(), 7_000);
        assert_eq!(t.golden_cycles(), 100);
        assert_eq!(t.retries(), 2);
        assert_eq!(t.retry_wall(), Duration::from_millis(6));
        let workers = t.worker_stats();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].cycles, 5_100);
        assert_eq!(workers[1].cycles, 2_000);
        assert_eq!(workers.iter().map(|w| w.cycles).sum::<u64>(), 7_100);
        assert_eq!(workers[0].spans, 3);
        assert_eq!(workers[0].busy, Duration::from_millis(18));
    }

    #[test]
    fn journal_spans_accumulate_bytes() {
        let t = Telemetry::default();
        let mut r = SpanRecord::new(SpanKind::JournalAppend, 2, Duration::from_micros(30));
        r.journal_bytes = 170;
        t.record(r);
        r.journal_bytes = 30;
        t.record(r);
        assert_eq!(t.journal_bytes(), 200);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let t = Telemetry::default();
        t.record(trial(0, 5, 1_000));
        let text = t.to_prometheus();
        assert!(text.contains("softsim_harness_spans_total{kind=\"trial\"} 1"));
        assert!(text.contains("softsim_harness_sim_cycles_total{kind=\"trial\"} 1000"));
        assert!(text.contains("softsim_harness_worker_sim_cycles_total{worker=\"0\"} 1000"));
        assert!(text.contains("softsim_harness_trial_wall_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("softsim_harness_trial_wall_seconds_count 1"));
        // Buckets are cumulative and ordered: the 0.01 bucket already
        // holds the 5ms trial.
        let b1 = text.find("le=\"0.001\"").unwrap();
        let b2 = text.find("le=\"0.01\"").unwrap();
        assert!(b1 < b2);
        assert!(text.contains("softsim_harness_trial_wall_seconds_bucket{le=\"0.01\"} 1"));
    }

    #[test]
    fn json_summary_is_parseable() {
        let t = Telemetry::default();
        t.expect_trials(2);
        t.record(trial(0, 5, 1_000));
        t.record(trial(1, 5, 2_000));
        let v = softsim_trace::json::parse(&t.to_json()).expect("valid JSON");
        assert_eq!(v.get("trials").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(v.get("sim_cycles").and_then(|x| x.as_f64()), Some(3_000.0));
        assert_eq!(v.get("workers").and_then(|x| x.as_array()).map(|a| a.len()), Some(2));
    }

    #[test]
    fn snapshot_written_atomically_on_finish() {
        let path = std::env::temp_dir()
            .join(format!("softsim_telemetry_snap_{}.prom", std::process::id()));
        let t = Telemetry::new(TelemetryConfig {
            heartbeat: None,
            snapshot: Some((path.clone(), Duration::from_secs(3600))),
        });
        t.record(trial(0, 1, 500));
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("softsim_harness_spans_total{kind=\"trial\"} 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_families_appear_only_once_serve_is_active() {
        let t = Telemetry::default();
        t.record(trial(0, 5, 1_000));
        // A campaign-only hub exposes no serve families at all.
        assert!(!t.to_prometheus().contains("softsim_serve_"));

        t.serve_event(ServeEvent::Admitted);
        t.serve_event(ServeEvent::Admitted);
        t.serve_event(ServeEvent::Shed);
        t.serve_event(ServeEvent::CacheHit);
        t.serve_event(ServeEvent::Completed);
        t.set_serve_queue(3, 8, 2, true);
        let counters = t.serve_counters();
        assert_eq!(counters.admitted, 2);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.cache_hits, 1);
        let text = t.to_prometheus();
        assert!(text.contains("softsim_serve_jobs_total{state=\"admitted\"} 2"), "{text}");
        assert!(text.contains("softsim_serve_jobs_total{state=\"shed\"} 1"));
        assert!(text.contains("softsim_serve_cache_total{event=\"hit\"} 1"));
        assert!(text.contains("softsim_serve_queue_depth 3"));
        assert!(text.contains("softsim_serve_queue_capacity 8"));
        assert!(text.contains("softsim_serve_jobs_running 2"));
        assert!(text.contains("softsim_serve_ready 1"));
    }

    #[test]
    fn job_spans_do_not_count_as_worker_occupancy() {
        let t = Telemetry::default();
        t.record(SpanRecord::new(SpanKind::Job, 0, Duration::from_millis(50)));
        t.record(trial(0, 5, 1_000));
        let workers = t.worker_stats();
        assert_eq!(workers[0].spans, 1, "the job wrapper is not a leaf span");
        assert_eq!(workers[0].busy, Duration::from_millis(5));
        assert!(t.to_prometheus().contains("softsim_harness_spans_total{kind=\"job\"} 1"));
    }

    #[test]
    fn summary_names_workers_and_retry_wall() {
        let t = Telemetry::default();
        let mut r = trial(1, 5, 1_000);
        r.retries = 1;
        r.retry_wall = Duration::from_millis(2);
        t.record(r);
        let s = t.summary();
        assert!(s.contains("workers: 2"));
        assert!(s.contains("retry wall"));
        assert!(s.contains("worker 1:"));
    }
}
