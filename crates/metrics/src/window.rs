//! Cycle-window math and the windowed time-series representation.
//!
//! A run of `n` cycles sampled with window width `w` produces
//! `ceil(n / w)` half-open windows `[k·w, (k+1)·w)`; the last window is
//! clipped to the run length (`[k·w, n)`) when `n` is not a multiple of
//! `w`. A window wider than the whole run yields a single clipped
//! window `[0, n)`.

use crate::registry::num;
use std::fmt::Write as _;

/// Index of the window containing `cycle` under width `width`.
pub fn window_index(cycle: u64, width: u64) -> u64 {
    assert!(width > 0, "window width must be positive");
    cycle / width
}

/// Number of windows a run of `cycles` cycles produces under `width`
/// (0 for an empty run).
pub fn window_count(cycles: u64, width: u64) -> u64 {
    assert!(width > 0, "window width must be positive");
    cycles.div_ceil(width)
}

/// The half-open cycle range `[start, end)` of window `index`, clipped
/// to a run of `cycles` cycles.
pub fn window_bounds(index: u64, width: u64, cycles: u64) -> (u64, u64) {
    let start = index * width;
    (start, (start + width).min(cycles))
}

/// One sampled window: its cycle range and the metric values observed
/// in it, positionally matching [`WindowSeries::columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Window index (`start / width`).
    pub index: u64,
    /// First cycle covered (inclusive).
    pub start: u64,
    /// One past the last cycle covered; `start + width` except for a
    /// clipped final window.
    pub end: u64,
    /// Metric values, one per series column.
    pub values: Vec<f64>,
}

/// A windowed metrics time-series: fixed columns, one row per window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    /// Window width in cycles.
    pub width: u64,
    /// Metric name per value position.
    pub columns: Vec<&'static str>,
    /// Sampled windows in cycle order.
    pub rows: Vec<WindowRow>,
}

impl WindowSeries {
    /// The value of column `name` in `row`, if the column exists.
    pub fn value(&self, row: &WindowRow, name: &str) -> Option<f64> {
        let i = self.columns.iter().position(|&c| c == name)?;
        row.values.get(i).copied()
    }

    /// Renders the series as a compact JSON time-series document
    /// (schema `softsim-metrics/1`): a column list plus one
    /// `{"i":…,"start":…,"end":…,"v":[…]}` object per window.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"softsim-metrics/1\"");
        let _ = write!(out, ",\"window_cycles\":{}", self.width);
        out.push_str(",\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{c}\"");
        }
        out.push_str("],\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ =
                write!(out, "{{\"i\":{},\"start\":{},\"end\":{},\"v\":[", r.index, r.start, r.end);
            for (j, v) in r.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_num(*v));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// JSON-safe float rendering: NaN/±Inf are not JSON, so they render as
/// `null` (they can only arise from degenerate zero-width windows).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        num(v)
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_last_window_is_clipped() {
        // 10 cycles at width 4: [0,4) [4,8) [8,10).
        assert_eq!(window_count(10, 4), 3);
        assert_eq!(window_bounds(0, 4, 10), (0, 4));
        assert_eq!(window_bounds(1, 4, 10), (4, 8));
        assert_eq!(window_bounds(2, 4, 10), (8, 10));
    }

    #[test]
    fn exact_multiple_has_no_empty_tail_window() {
        assert_eq!(window_count(8, 4), 2);
        assert_eq!(window_bounds(1, 4, 8), (4, 8));
    }

    #[test]
    fn window_wider_than_run_yields_single_clipped_window() {
        assert_eq!(window_count(10, 100), 1);
        assert_eq!(window_bounds(0, 100, 10), (0, 10));
    }

    #[test]
    fn empty_run_has_no_windows() {
        assert_eq!(window_count(0, 16), 0);
    }

    #[test]
    fn index_maps_cycles_to_windows() {
        assert_eq!(window_index(0, 4), 0);
        assert_eq!(window_index(3, 4), 0);
        assert_eq!(window_index(4, 4), 1);
    }

    #[test]
    fn series_json_is_compact_and_column_addressable() {
        let s = WindowSeries {
            width: 4,
            columns: vec!["a", "b"],
            rows: vec![WindowRow { index: 0, start: 0, end: 4, values: vec![1.0, 2.5] }],
        };
        let text = s.to_json();
        assert!(text.contains("\"schema\":\"softsim-metrics/1\""));
        assert!(text.contains("\"v\":[1,2.5]"));
        assert_eq!(s.value(&s.rows[0], "b"), Some(2.5));
        assert_eq!(s.value(&s.rows[0], "missing"), None);
    }
}
