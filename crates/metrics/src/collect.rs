//! The metrics collector: a [`TraceSink`] that turns the cycle-domain
//! event stream into a cumulative [`Registry`] and a cycle-windowed
//! [`WindowSeries`].
//!
//! The collector rides the existing tracing plumbing, so enabling
//! metrics costs the simulators nothing beyond the tracing guard they
//! already pay; with no sink attached nothing here runs at all.

use crate::registry::{CounterId, GaugeId, HistogramId, Registry};
use crate::window::{WindowRow, WindowSeries};
use softsim_trace::{BusKind, FifoDir, TraceEvent, TraceSink};

/// Windowed column names, in value order. `data_signature` is a
/// wrapping 32-bit sum of every architectural data word observed in the
/// window (register writebacks, FIFO pushes, gateway words) — two runs
/// with identical control flow but corrupted data differ in it.
pub const COLUMNS: [&str; 19] = [
    "instructions",
    "ipc",
    "read_stall_cycles",
    "write_stall_cycles",
    "fifo_pushes",
    "fifo_pops",
    "fifo_full_rejects",
    "fifo_empty_rejects",
    "occupancy_high_to_hw",
    "occupancy_high_from_hw",
    "gateway_to_hw",
    "gateway_from_hw",
    "opb_transfers",
    "opb_wait_cycles",
    "lmb_transfers",
    "block_firings",
    "block_toggles",
    "reg_writes",
    "data_signature",
];

const C_INSTRUCTIONS: usize = 0;
const C_IPC: usize = 1;
const C_READ_STALL: usize = 2;
const C_WRITE_STALL: usize = 3;
const C_FIFO_PUSHES: usize = 4;
const C_FIFO_POPS: usize = 5;
const C_FIFO_FULL: usize = 6;
const C_FIFO_EMPTY: usize = 7;
const C_OCC_HIGH_TO_HW: usize = 8;
const C_OCC_HIGH_FROM_HW: usize = 9;
const C_GATEWAY_TO_HW: usize = 10;
const C_GATEWAY_FROM_HW: usize = 11;
const C_OPB_TRANSFERS: usize = 12;
const C_OPB_WAIT: usize = 13;
const C_LMB_TRANSFERS: usize = 14;
const C_BLOCK_FIRINGS: usize = 15;
const C_BLOCK_TOGGLES: usize = 16;
const C_REG_WRITES: usize = 17;
const C_DATA_SIGNATURE: usize = 18;

/// FIFO occupancy histogram bounds (FSL depths are small powers of two).
const OCCUPANCY_BOUNDS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
/// FSL stall duration bounds, in cycles.
const STALL_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Per-instruction cycle occupancy bounds.
const INST_BOUNDS: [f64; 7] = [1.0, 2.0, 3.0, 4.0, 8.0, 16.0, 64.0];

struct Ids {
    instructions: CounterId,
    cycles: CounterId,
    stall_read: CounterId,
    stall_write: CounterId,
    reg_writes: CounterId,
    fifo_pushes: CounterId,
    fifo_pops: CounterId,
    fifo_full: CounterId,
    fifo_empty: CounterId,
    gateway_to_hw: CounterId,
    gateway_from_hw: CounterId,
    bus_opb: CounterId,
    bus_lmb: CounterId,
    opb_wait: CounterId,
    block_firings: CounterId,
    block_toggles: CounterId,
    faults: CounterId,
    faults_detected: CounterId,
    recoveries: CounterId,
    kernel_steps: CounterId,
    dropped: GaugeId,
    occupancy_hist: HistogramId,
    stall_hist: HistogramId,
    inst_hist: HistogramId,
    /// Lazily registered per-channel occupancy high-water gauges,
    /// indexed `[dir][channel]`.
    occ_high: [[Option<GaugeId>; 16]; 2],
}

/// Collects the event stream of one run into metrics.
///
/// Attach (usually via `Fanout` alongside a `Recorder`), run, then call
/// [`MetricsCollector::finish`] with the run's final cycle count to
/// close the last (possibly partial) window. Snapshots are available as
/// Prometheus text ([`MetricsCollector::to_prometheus`]) and a compact
/// JSON time-series ([`MetricsCollector::to_json`]).
pub struct MetricsCollector {
    width: u64,
    registry: Registry,
    ids: Ids,
    rows: Vec<WindowRow>,
    cur_start: u64,
    acc: [f64; COLUMNS.len()],
    signature: u32,
    /// One past the largest cycle stamp windowed so far.
    high_t: u64,
    finished: bool,
}

impl MetricsCollector {
    /// A collector sampling over `window_cycles`-wide windows.
    ///
    /// # Panics
    /// Panics if `window_cycles == 0`.
    pub fn new(window_cycles: u64) -> MetricsCollector {
        assert!(window_cycles > 0, "window width must be positive");
        let mut r = Registry::new();
        let ids = Ids {
            instructions: r.counter(
                "softsim_iss_instructions_total",
                "Instructions retired by the soft processor",
                vec![],
            ),
            cycles: r.counter(
                "softsim_iss_cycles_total",
                "Clock cycles attributed to retired instructions",
                vec![],
            ),
            stall_read: r.counter(
                "softsim_iss_stall_cycles_total",
                "Cycles the processor spent stalled on blocking FSL accesses",
                vec![("cause", "fsl_read".into())],
            ),
            stall_write: r.counter(
                "softsim_iss_stall_cycles_total",
                "Cycles the processor spent stalled on blocking FSL accesses",
                vec![("cause", "fsl_write".into())],
            ),
            reg_writes: r.counter(
                "softsim_iss_reg_writes_total",
                "Architectural register writebacks",
                vec![],
            ),
            fifo_pushes: r.counter(
                "softsim_fsl_events_total",
                "FSL FIFO events by kind",
                vec![("kind", "push".into())],
            ),
            fifo_pops: r.counter(
                "softsim_fsl_events_total",
                "FSL FIFO events by kind",
                vec![("kind", "pop".into())],
            ),
            fifo_full: r.counter(
                "softsim_fsl_events_total",
                "FSL FIFO events by kind",
                vec![("kind", "full_reject".into())],
            ),
            fifo_empty: r.counter(
                "softsim_fsl_events_total",
                "FSL FIFO events by kind",
                vec![("kind", "empty_reject".into())],
            ),
            gateway_to_hw: r.counter(
                "softsim_gateway_words_total",
                "Words crossing the HW/SW gateway",
                vec![("dir", "to_hw".into())],
            ),
            gateway_from_hw: r.counter(
                "softsim_gateway_words_total",
                "Words crossing the HW/SW gateway",
                vec![("dir", "from_hw".into())],
            ),
            bus_opb: r.counter(
                "softsim_bus_transfers_total",
                "Data words transferred per memory bus",
                vec![("bus", "opb".into())],
            ),
            bus_lmb: r.counter(
                "softsim_bus_transfers_total",
                "Data words transferred per memory bus",
                vec![("bus", "lmb".into())],
            ),
            opb_wait: r.counter(
                "softsim_bus_wait_cycles_total",
                "Bus wait cycles charged to the processor",
                vec![("bus", "opb".into())],
            ),
            block_firings: r.counter(
                "softsim_blocks_firings_total",
                "Block firings in peripheral graphs (activity measurement on)",
                vec![],
            ),
            block_toggles: r.counter(
                "softsim_blocks_toggles_total",
                "Output-port bit toggles in peripheral graphs",
                vec![],
            ),
            faults: r.counter(
                "softsim_faults_injected_total",
                "Faults injected into the design under test",
                vec![],
            ),
            faults_detected: r.counter(
                "softsim_faults_detected_total",
                "Misbehaviors flagged by recovery-supervisor detectors",
                vec![],
            ),
            recoveries: r.counter(
                "softsim_recoveries_total",
                "Rollback recoveries taken by a recovery supervisor",
                vec![],
            ),
            kernel_steps: r.counter(
                "softsim_rtl_kernel_steps_total",
                "RTL kernel time steps observed",
                vec![],
            ),
            dropped: r.gauge(
                "softsim_trace_dropped_events",
                "Events the bounded trace recorder overwrote (see set_dropped_events)",
                vec![],
            ),
            occupancy_hist: r.histogram(
                "softsim_fsl_occupancy",
                "FSL FIFO occupancy after each push/pop",
                vec![],
                &OCCUPANCY_BOUNDS,
            ),
            stall_hist: r.histogram(
                "softsim_iss_stall_duration_cycles",
                "Duration of blocking FSL stalls",
                vec![],
                &STALL_BOUNDS,
            ),
            inst_hist: r.histogram(
                "softsim_iss_instruction_cycles",
                "Cycle occupancy per retired instruction, stalls included",
                vec![],
                &INST_BOUNDS,
            ),
            occ_high: [[None; 16]; 2],
        };
        MetricsCollector {
            width: window_cycles,
            registry: r,
            ids,
            rows: Vec::new(),
            cur_start: 0,
            acc: [0.0; COLUMNS.len()],
            signature: 0,
            high_t: 0,
            finished: false,
        }
    }

    /// The window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.width
    }

    /// The cumulative registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records how many events the paired bounded recorder dropped, so
    /// data loss in the observability layer is itself observable.
    pub fn set_dropped_events(&mut self, dropped: u64) {
        self.registry.set(self.ids.dropped, dropped as f64);
    }

    /// Closes the current (possibly partial) window at `end_cycle` —
    /// normally the processor's final cycle counter. Call once, after
    /// the run; the collector ignores further events afterwards.
    pub fn finish(&mut self, end_cycle: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end = end_cycle.max(self.high_t);
        while self.cur_start + self.width <= end {
            self.close_window(self.cur_start + self.width);
        }
        if end > self.cur_start {
            self.close_window(end);
        }
    }

    /// The windowed series sampled so far (complete after
    /// [`MetricsCollector::finish`]).
    pub fn series(&self) -> WindowSeries {
        WindowSeries { width: self.width, columns: COLUMNS.to_vec(), rows: self.rows.clone() }
    }

    /// Prometheus text exposition of the cumulative registry.
    pub fn to_prometheus(&self) -> String {
        self.registry.to_prometheus()
    }

    /// Compact JSON time-series of the windowed samples.
    pub fn to_json(&self) -> String {
        self.series().to_json()
    }

    fn close_window(&mut self, end: u64) {
        let start = self.cur_start;
        debug_assert!(end > start);
        let mut values = self.acc;
        values[C_IPC] = values[C_INSTRUCTIONS] / (end - start) as f64;
        values[C_DATA_SIGNATURE] = self.signature as f64;
        self.rows.push(WindowRow {
            index: start / self.width,
            start,
            end,
            values: values.to_vec(),
        });
        self.acc = [0.0; COLUMNS.len()];
        self.signature = 0;
        self.cur_start = end;
    }

    /// Rolls the window state forward so `t` falls inside the current
    /// window, then returns the timestamp clamped into it (events that
    /// arrive stamped before the current window — e.g. a retire for an
    /// instruction that issued before a long stall — count toward the
    /// current window).
    fn roll(&mut self, t: u64) -> u64 {
        while t >= self.cur_start + self.width {
            self.close_window(self.cur_start + self.width);
        }
        let t = t.max(self.cur_start);
        self.high_t = self.high_t.max(t + 1);
        t
    }

    fn occ_high_gauge(&mut self, dir: FifoDir, channel: u8) -> GaugeId {
        let d = match dir {
            FifoDir::ToHw => 0,
            FifoDir::FromHw => 1,
        };
        let slot = &mut self.ids.occ_high[d][channel as usize & 15];
        if let Some(id) = *slot {
            return id;
        }
        let id = self.registry.gauge(
            "softsim_fsl_occupancy_high",
            "High-water FIFO occupancy per channel",
            vec![("dir", dir.label().into()), ("channel", channel.to_string())],
        );
        *slot = Some(id);
        id
    }

    fn fifo_level(&mut self, dir: FifoDir, channel: u8, occupancy: u8) {
        self.registry.observe(self.ids.occupancy_hist, occupancy as f64);
        let id = self.occ_high_gauge(dir, channel);
        self.registry.set_max(id, occupancy as f64);
        let col = match dir {
            FifoDir::ToHw => C_OCC_HIGH_TO_HW,
            FifoDir::FromHw => C_OCC_HIGH_FROM_HW,
        };
        self.acc[col] = self.acc[col].max(occupancy as f64);
    }
}

impl TraceSink for MetricsCollector {
    fn event(&mut self, e: &TraceEvent) {
        if self.finished {
            return;
        }
        match *e {
            TraceEvent::Retire { cycle, cycles, read_stalls, write_stalls, .. } => {
                self.registry.inc(self.ids.instructions, 1);
                self.registry.inc(self.ids.cycles, cycles as u64);
                self.registry.inc(self.ids.stall_read, read_stalls as u64);
                self.registry.inc(self.ids.stall_write, write_stalls as u64);
                self.registry.observe(self.ids.inst_hist, cycles as f64);
                let _ = self.roll(cycle);
                self.acc[C_INSTRUCTIONS] += 1.0;
                self.acc[C_READ_STALL] += read_stalls as f64;
                self.acc[C_WRITE_STALL] += write_stalls as f64;
            }
            TraceEvent::StallBegin { .. } => {}
            TraceEvent::StallEnd { cycle, cycles, .. } => {
                self.registry.observe(self.ids.stall_hist, cycles as f64);
                let _ = self.roll(cycle);
            }
            TraceEvent::FifoPush { cycle, dir, channel, data, occupancy, .. } => {
                self.registry.inc(self.ids.fifo_pushes, 1);
                self.fifo_level(dir, channel, occupancy);
                let _ = self.roll(cycle);
                self.acc[C_FIFO_PUSHES] += 1.0;
                self.signature = self.signature.wrapping_add(data);
            }
            TraceEvent::FifoPop { cycle, dir, channel, occupancy, .. } => {
                self.registry.inc(self.ids.fifo_pops, 1);
                self.fifo_level(dir, channel, occupancy);
                let _ = self.roll(cycle);
                self.acc[C_FIFO_POPS] += 1.0;
            }
            TraceEvent::FifoFull { cycle, .. } => {
                self.registry.inc(self.ids.fifo_full, 1);
                let _ = self.roll(cycle);
                self.acc[C_FIFO_FULL] += 1.0;
            }
            TraceEvent::FifoEmpty { cycle, .. } => {
                self.registry.inc(self.ids.fifo_empty, 1);
                let _ = self.roll(cycle);
                self.acc[C_FIFO_EMPTY] += 1.0;
            }
            TraceEvent::GatewayWord { cycle, to_hw, data, .. } => {
                let (id, col) = if to_hw {
                    (self.ids.gateway_to_hw, C_GATEWAY_TO_HW)
                } else {
                    (self.ids.gateway_from_hw, C_GATEWAY_FROM_HW)
                };
                self.registry.inc(id, 1);
                let _ = self.roll(cycle);
                self.acc[col] += 1.0;
                self.signature = self.signature.wrapping_add(data);
            }
            TraceEvent::FaultInjected { cycle, .. } => {
                self.registry.inc(self.ids.faults, 1);
                let _ = self.roll(cycle);
                // Deliberately no windowed column: the injection itself
                // must not count as a divergence between golden and
                // trial series.
            }
            TraceEvent::FaultDetected { cycle, .. } => {
                self.registry.inc(self.ids.faults_detected, 1);
                let _ = self.roll(cycle);
                // No windowed column, for the same reason as injections:
                // detection bookkeeping must not perturb the windowed
                // golden-vs-trial comparison it exists to serve.
            }
            TraceEvent::Recovered { cycle, .. } => {
                self.registry.inc(self.ids.recoveries, 1);
                let _ = self.roll(cycle);
                // No windowed column (see FaultDetected).
            }
            TraceEvent::RegWrite { cycle, value, .. } => {
                self.registry.inc(self.ids.reg_writes, 1);
                let _ = self.roll(cycle);
                self.acc[C_REG_WRITES] += 1.0;
                self.signature = self.signature.wrapping_add(value);
            }
            TraceEvent::BusTransfer { cycle, bus, wait, .. } => match bus {
                BusKind::Opb => {
                    self.registry.inc(self.ids.bus_opb, 1);
                    self.registry.inc(self.ids.opb_wait, wait as u64);
                    let _ = self.roll(cycle);
                    self.acc[C_OPB_TRANSFERS] += 1.0;
                    self.acc[C_OPB_WAIT] += wait as f64;
                }
                BusKind::Lmb => {
                    self.registry.inc(self.ids.bus_lmb, 1);
                    let _ = self.roll(cycle);
                    self.acc[C_LMB_TRANSFERS] += 1.0;
                }
            },
            TraceEvent::BlockActivity { cycle, firings, toggles, .. } => {
                self.registry.inc(self.ids.block_firings, firings as u64);
                self.registry.inc(self.ids.block_toggles, toggles as u64);
                let _ = self.roll(cycle);
                self.acc[C_BLOCK_FIRINGS] += firings as f64;
                self.acc[C_BLOCK_TOGGLES] += toggles as f64;
            }
            TraceEvent::KernelStep { .. } => {
                // Kernel steps are stamped in nanoseconds, not cycles —
                // they feed the cumulative registry only.
                self.registry.inc(self.ids.kernel_steps, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_trace::InstClass;

    fn retire(cycle: u64, cycles: u32) -> TraceEvent {
        TraceEvent::Retire {
            cycle,
            pc: 0,
            word: 0,
            class: InstClass::Alu,
            cycles,
            read_stalls: 0,
            write_stalls: 0,
        }
    }

    #[test]
    fn windows_partition_the_run_and_ipc_uses_clipped_width() {
        let mut c = MetricsCollector::new(4);
        for cy in 0..10 {
            c.event(&retire(cy, 1));
        }
        c.finish(10);
        let s = c.series();
        assert_eq!(s.rows.len(), 3);
        assert_eq!((s.rows[2].start, s.rows[2].end), (8, 10));
        assert_eq!(s.value(&s.rows[2], "instructions"), Some(2.0));
        assert_eq!(s.value(&s.rows[2], "ipc"), Some(1.0));
        assert!(c.registry().to_prometheus().contains("softsim_iss_instructions_total 10"));
    }

    #[test]
    fn window_wider_than_run_gives_single_partial_row() {
        let mut c = MetricsCollector::new(1024);
        c.event(&retire(0, 1));
        c.event(&retire(5, 1));
        c.finish(6);
        let s = c.series();
        assert_eq!(s.rows.len(), 1);
        assert_eq!((s.rows[0].start, s.rows[0].end), (0, 6));
        assert_eq!(s.value(&s.rows[0], "instructions"), Some(2.0));
    }

    #[test]
    fn quiet_gaps_still_produce_aligned_zero_windows() {
        let mut c = MetricsCollector::new(2);
        c.event(&retire(0, 1));
        c.event(&retire(9, 1));
        c.finish(10);
        let s = c.series();
        assert_eq!(s.rows.len(), 5, "every window present, active or not");
        assert_eq!(s.value(&s.rows[2], "instructions"), Some(0.0));
    }

    #[test]
    fn injected_faults_touch_the_registry_but_no_window_column() {
        let mut c = MetricsCollector::new(8);
        c.event(&TraceEvent::FaultInjected {
            cycle: 3,
            site: softsim_trace::InjectionSite::Register,
            detail: 5,
        });
        c.finish(8);
        assert!(c.to_prometheus().contains("softsim_faults_injected_total 1"));
        assert!(c.series().rows[0].values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn per_channel_high_water_registers_lazily() {
        let mut c = MetricsCollector::new(8);
        c.event(&TraceEvent::FifoPush {
            cycle: 0,
            dir: FifoDir::ToHw,
            channel: 2,
            data: 7,
            control: false,
            occupancy: 3,
        });
        c.finish(4);
        let text = c.to_prometheus();
        assert!(text.contains("softsim_fsl_occupancy_high{dir=\"to_hw\",channel=\"2\"} 3"));
        assert!(!text.contains("channel=\"1\""));
    }
}
