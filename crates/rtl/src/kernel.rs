//! The discrete-event simulation kernel.
//!
//! This is the heart of the "low-level behavioral simulation" baseline —
//! the role ModelSim plays in the paper's Table I/II comparisons. It
//! implements the classic HDL simulation cycle:
//!
//! * **signals** carry word values and generate *events* when they change;
//! * **processes** have sensitivity lists and run whenever a signal they
//!   watch has an event;
//! * assignments are **scheduled transactions**: zero-delay assignments
//!   land in the next *delta cycle* of the same simulation time, timed
//!   assignments in a future time slot;
//! * a time step completes when no more delta cycles are pending.
//!
//! The per-signal-event, per-delta-cycle cost structure is what makes
//! behavioral HDL simulation one to two orders of magnitude slower per
//! simulated clock than the arithmetic-level co-simulation — the effect
//! the paper measures.

use softsim_trace::{SharedSink, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Simulation time in nanoseconds.
pub type Time = u64;

/// Handle to a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub(crate) u32);

/// Handle to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub(crate) u32);

/// Aggregate kernel activity counters (the cost drivers of low-level
/// simulation; reported in the simulation-performance analyses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Signal transactions applied.
    pub transactions: u64,
    /// Signal events (transactions that changed a value).
    pub events: u64,
    /// Process invocations.
    pub process_runs: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Distinct simulation time steps advanced.
    pub time_steps: u64,
}

/// Hardware primitives instantiated during elaboration, used to derive the
/// "actual" resource usage of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Primitives {
    /// Flip-flop bits.
    pub ff_bits: u64,
    /// LUT bits of combinational logic (adders, muxes, comparators).
    pub lut_bits: u64,
    /// Embedded 18×18 multipliers.
    pub mult18s: u32,
    /// Block RAMs.
    pub brams: u32,
}

impl Primitives {
    /// Maps primitive counts onto Virtex-II-Pro slices: two FFs and two
    /// 4-input LUTs per slice, FFs packing behind logic where possible.
    pub fn slices(&self) -> u32 {
        let ff_slices = self.ff_bits.div_ceil(2);
        let lut_slices = self.lut_bits.div_ceil(2);
        // FFs pack into the same slices as preceding logic; the larger of
        // the two populations dominates, plus a 10% unpacked remainder.
        let base = ff_slices.max(lut_slices);
        let minor = ff_slices.min(lut_slices);
        (base + minor / 10) as u32
    }
}

struct Sig {
    name: String,
    width: u8,
    value: u64,
    /// Value before the event in the current delta (for edge detection).
    prev: u64,
    /// Delta stamp of the last event.
    changed_at: u64,
}

struct Proc {
    name: String,
    body: Box<dyn FnMut(&mut ProcCtx)>,
}

#[derive(Clone, Copy)]
struct Txn {
    sig: SignalId,
    value: u64,
}

/// The context handed to a running process: read signals, detect edges,
/// and schedule assignments.
pub struct ProcCtx<'a> {
    signals: &'a [Sig],
    delta_stamp: u64,
    now: Time,
    pending_delta: Vec<Txn>,
    pending_timed: Vec<(Time, Txn)>,
}

impl ProcCtx<'_> {
    /// Current simulation time in nanoseconds.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Reads a signal's current value.
    pub fn get(&self, sig: SignalId) -> u64 {
        self.signals[sig.0 as usize].value
    }

    /// True when `sig` had an event in the delta that woke this process.
    pub fn event(&self, sig: SignalId) -> bool {
        self.signals[sig.0 as usize].changed_at == self.delta_stamp
    }

    /// True on a 0 → 1 transition of `sig` in this delta.
    pub fn rising(&self, sig: SignalId) -> bool {
        let s = &self.signals[sig.0 as usize];
        s.changed_at == self.delta_stamp && s.prev == 0 && s.value != 0
    }

    /// True on a 1 → 0 transition of `sig` in this delta.
    pub fn falling(&self, sig: SignalId) -> bool {
        let s = &self.signals[sig.0 as usize];
        s.changed_at == self.delta_stamp && s.prev != 0 && s.value == 0
    }

    /// Schedules a zero-delay assignment (lands in the next delta cycle).
    pub fn set(&mut self, sig: SignalId, value: u64) {
        self.pending_delta.push(Txn { sig, value });
    }

    /// Schedules an assignment `delay_ns` in the future.
    pub fn set_after(&mut self, sig: SignalId, value: u64, delay_ns: Time) {
        if delay_ns == 0 {
            self.set(sig, value);
        } else {
            self.pending_timed.push((self.now + delay_ns, Txn { sig, value }));
        }
    }
}

/// The discrete-event kernel.
pub struct Kernel {
    signals: Vec<Sig>,
    procs: Vec<Proc>,
    /// Per-signal list of processes sensitive to it.
    watchers: Vec<Vec<u32>>,
    now: Time,
    delta_stamp: u64,
    /// Future transactions by time.
    timed: BTreeMap<Time, Vec<Txn>>,
    /// Transactions for the next delta of the current time.
    next_delta: Vec<Txn>,
    stats: KernelStats,
    primitives: Primitives,
    /// VCD sink, if recording.
    vcd: Option<crate::vcd::VcdWriter>,
    /// Observability sink for per-time-step kernel statistics.
    sink: Option<SharedSink>,
    /// Stats snapshot at the last emitted [`TraceEvent::KernelStep`].
    emitted: KernelStats,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// An empty design at time zero.
    pub fn new() -> Kernel {
        Kernel {
            signals: Vec::new(),
            procs: Vec::new(),
            watchers: Vec::new(),
            now: 0,
            delta_stamp: 0,
            timed: BTreeMap::new(),
            next_delta: Vec::new(),
            stats: KernelStats::default(),
            primitives: Primitives::default(),
            vcd: None,
            sink: None,
            emitted: KernelStats::default(),
        }
    }

    /// Declares a signal of `width` bits (≤ 64), initialized to zero.
    pub fn signal(&mut self, name: impl Into<String>, width: u8) -> SignalId {
        assert!((1..=64).contains(&width), "signal width out of range");
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Sig {
            name: name.into(),
            width,
            value: 0,
            prev: 0,
            changed_at: u64::MAX,
        });
        self.watchers.push(Vec::new());
        id
    }

    /// Declares a signal with a nonzero initial value.
    pub fn signal_init(&mut self, name: impl Into<String>, width: u8, init: u64) -> SignalId {
        let id = self.signal(name, width);
        self.signals[id.0 as usize].value = init & mask(width);
        id
    }

    /// Registers a process with its sensitivity list.
    pub fn process(
        &mut self,
        name: impl Into<String>,
        sensitivity: &[SignalId],
        body: impl FnMut(&mut ProcCtx) + 'static,
    ) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Proc { name: name.into(), body: Box::new(body) });
        for s in sensitivity {
            self.watchers[s.0 as usize].push(id.0);
        }
        id
    }

    /// Records elaborated hardware primitives (for "actual" resources).
    pub fn add_primitives(&mut self, p: Primitives) {
        self.primitives.ff_bits += p.ff_bits;
        self.primitives.lut_bits += p.lut_bits;
        self.primitives.mult18s += p.mult18s;
        self.primitives.brams += p.brams;
    }

    /// Elaborated primitive totals.
    pub fn primitives(&self) -> Primitives {
        self.primitives
    }

    /// Activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Reads a signal value directly (testbench access).
    pub fn peek(&self, sig: SignalId) -> u64 {
        self.signals[sig.0 as usize].value
    }

    /// Schedules an assignment from outside any process (testbench pokes).
    pub fn poke(&mut self, sig: SignalId, value: u64) {
        self.next_delta.push(Txn { sig, value });
    }

    /// Schedules a timed assignment from outside any process.
    pub fn poke_after(&mut self, sig: SignalId, value: u64, delay_ns: Time) {
        self.timed.entry(self.now + delay_ns).or_default().push(Txn { sig, value });
    }

    /// Attaches a VCD writer that records every signal event.
    pub fn record_vcd(&mut self, mut vcd: crate::vcd::VcdWriter) {
        for sig in &self.signals {
            vcd.declare(&sig.name, sig.width);
        }
        vcd.start();
        self.vcd = Some(vcd);
    }

    /// Takes the VCD writer back (e.g. to flush it).
    pub fn take_vcd(&mut self) -> Option<crate::vcd::VcdWriter> {
        self.vcd.take()
    }

    /// Attaches an observability sink: one [`TraceEvent::KernelStep`] is
    /// emitted per simulation time step, carrying the signal events,
    /// delta cycles and process invocations that step cost — the
    /// per-step price of event-driven simulation the paper's speedup
    /// analysis is about.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
        self.emitted = self.stats;
    }

    /// Emits the kernel activity accumulated since the last emission as
    /// one `KernelStep` stamped `time_ns` (skipped when idle).
    fn emit_step(&mut self, time_ns: Time) {
        let Some(sink) = &self.sink else { return };
        let events = self.stats.events - self.emitted.events;
        let delta_cycles = self.stats.delta_cycles - self.emitted.delta_cycles;
        let process_runs = self.stats.process_runs - self.emitted.process_runs;
        if events == 0 && delta_cycles == 0 && process_runs == 0 {
            return;
        }
        sink.borrow_mut().event(&TraceEvent::KernelStep {
            time_ns,
            events,
            delta_cycles,
            process_runs,
        });
        self.emitted = self.stats;
    }

    /// Runs until the event queue is exhausted or `until` is reached.
    /// Returns the time at which simulation stopped.
    pub fn run_until(&mut self, until: Time) -> Time {
        loop {
            // Drain delta cycles at the current time.
            let mut guard = 0u32;
            while !self.next_delta.is_empty() {
                self.one_delta();
                guard += 1;
                assert!(
                    guard < 10_000,
                    "combinational oscillation at t={} (10k delta cycles)",
                    self.now
                );
            }
            // Advance to the next timed transaction.
            match self.timed.keys().next().copied() {
                Some(t) if t <= until => {
                    if self.sink.is_some() {
                        self.emit_step(self.now);
                    }
                    self.now = t;
                    self.stats.time_steps += 1;
                    let txns = self.timed.remove(&t).expect("key exists");
                    self.next_delta.extend(txns);
                }
                _ => {
                    if self.sink.is_some() {
                        self.emit_step(self.now);
                    }
                    self.now =
                        self.now.max(until.min(self.timed.keys().next().copied().unwrap_or(until)));
                    return self.now;
                }
            }
        }
    }

    /// Executes one delta cycle: apply pending transactions, wake and run
    /// sensitive processes, collect their assignments.
    fn one_delta(&mut self) {
        self.delta_stamp += 1;
        self.stats.delta_cycles += 1;
        let txns = std::mem::take(&mut self.next_delta);
        let mut woken: Vec<u32> = Vec::new();
        for txn in txns {
            self.stats.transactions += 1;
            let s = &mut self.signals[txn.sig.0 as usize];
            let value = txn.value & mask(s.width);
            if value != s.value {
                s.prev = s.value;
                s.value = value;
                s.changed_at = self.delta_stamp;
                self.stats.events += 1;
                if let Some(vcd) = &mut self.vcd {
                    vcd.change(self.now, self.delta_stamp, txn.sig.0, value, s.width);
                }
                for &p in &self.watchers[txn.sig.0 as usize] {
                    if !woken.contains(&p) {
                        woken.push(p);
                    }
                }
            }
        }
        // Run woken processes, gathering their scheduled assignments.
        let mut ctx = ProcCtx {
            signals: &self.signals,
            delta_stamp: self.delta_stamp,
            now: self.now,
            pending_delta: Vec::new(),
            pending_timed: Vec::new(),
        };
        for p in woken {
            self.stats.process_runs += 1;
            // Split borrow: the process body may not touch the kernel,
            // only the context.
            let proc_entry = &mut self.procs[p as usize];
            (proc_entry.body)(&mut ctx);
        }
        self.next_delta.extend(ctx.pending_delta);
        for (t, txn) in ctx.pending_timed {
            self.timed.entry(t).or_default().push(txn);
        }
    }

    /// Name of a signal (diagnostics).
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.signals[sig.0 as usize].name
    }

    /// Name of a process (diagnostics).
    pub fn process_name(&self, p: ProcId) -> &str {
        &self.procs[p.0 as usize].name
    }

    /// Number of signals (design-size reporting).
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of processes (design-size reporting).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("signals", &self.signals.len())
            .field("processes", &self.procs.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish()
    }
}

#[inline]
fn mask(width: u8) -> u64 {
    u64::MAX >> (64 - width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_cycles_propagate_combinational_chains() {
        let mut k = Kernel::new();
        let a = k.signal("a", 8);
        let b = k.signal("b", 8);
        let c = k.signal("c", 8);
        // b = a + 1; c = b * 2 — two comb processes chained by deltas.
        k.process("inc", &[a], move |ctx| {
            let v = ctx.get(a) + 1;
            ctx.set(b, v);
        });
        k.process("dbl", &[b], move |ctx| {
            let v = ctx.get(b) * 2;
            ctx.set(c, v);
        });
        k.poke(a, 5);
        k.run_until(10);
        assert_eq!(k.peek(b), 6);
        assert_eq!(k.peek(c), 12);
        assert!(k.stats().delta_cycles >= 3, "chain took several deltas");
    }

    #[test]
    fn clock_generator_toggles() {
        let mut k = Kernel::new();
        let clk = k.signal("clk", 1);
        // 20 ns period (50 MHz): toggle every 10 ns.
        k.process("clkgen", &[clk], move |ctx| {
            let v = ctx.get(clk) ^ 1;
            ctx.set_after(clk, v, 10);
        });
        k.poke(clk, 1); // kick off
        k.run_until(100);
        // Edges at 0(poke),10,20,...,90 → value toggles; at t=100 pending.
        assert_eq!(k.now(), 100);
        let events = k.stats().events;
        assert!((9..=11).contains(&events), "~10 clock events, got {events}");
    }

    #[test]
    fn rising_edge_register() {
        let mut k = Kernel::new();
        let clk = k.signal("clk", 1);
        let d = k.signal("d", 16);
        let q = k.signal("q", 16);
        k.process("clkgen", &[clk], move |ctx| {
            let v = ctx.get(clk) ^ 1;
            ctx.set_after(clk, v, 10);
        });
        k.process("reg", &[clk], move |ctx| {
            if ctx.rising(clk) {
                let v = ctx.get(d);
                ctx.set(q, v);
            }
        });
        k.poke(clk, 1);
        k.poke(d, 42);
        k.run_until(5);
        // d changed but no rising edge since the poke... the initial poke
        // of clk to 1 is itself a rising edge, so q latched 0 or 42
        // depending on delta ordering; both pokes land in the same delta,
        // so the register sees d already at 42.
        assert_eq!(k.peek(q), 42);
        k.poke(d, 77);
        k.run_until(14);
        // Falling edge at t=10 must NOT latch.
        assert_eq!(k.peek(q), 42);
        k.run_until(25);
        // Rising edge at t=20 latches 77.
        assert_eq!(k.peek(q), 77);
    }

    #[test]
    fn no_event_no_process_run() {
        let mut k = Kernel::new();
        let a = k.signal("a", 8);
        let b = k.signal("b", 8);
        k.process("copy", &[a], move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v);
        });
        k.poke(a, 0); // same value: no event
        k.run_until(10);
        assert_eq!(k.stats().process_runs, 0);
        assert_eq!(k.stats().events, 0);
        assert_eq!(k.stats().transactions, 1);
    }

    #[test]
    #[should_panic(expected = "oscillation")]
    fn combinational_loop_detected() {
        let mut k = Kernel::new();
        let a = k.signal("a", 1);
        k.process("osc", &[a], move |ctx| {
            let v = ctx.get(a) ^ 1;
            ctx.set(a, v);
        });
        k.poke(a, 1);
        k.run_until(1);
    }

    #[test]
    fn timed_assignments_order_by_time() {
        let mut k = Kernel::new();
        let s = k.signal("s", 8);
        k.poke_after(s, 3, 30);
        k.poke_after(s, 1, 10);
        k.poke_after(s, 2, 20);
        k.run_until(15);
        assert_eq!(k.peek(s), 1);
        k.run_until(25);
        assert_eq!(k.peek(s), 2);
        k.run_until(35);
        assert_eq!(k.peek(s), 3);
        assert_eq!(k.stats().time_steps, 3);
    }

    #[test]
    fn primitive_slice_mapping() {
        let p = Primitives { ff_bits: 64, lut_bits: 32, mult18s: 3, brams: 1 };
        // 32 FF slices dominate 16 LUT slices; minor/10 adds 1.
        assert_eq!(p.slices(), 33);
    }
}
