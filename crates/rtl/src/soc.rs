//! The full-SoC RTL model: MB32 processor + LMB memory + FSL channels.
//!
//! This is the design a user of the paper's baseline flow would simulate
//! in ModelSim after EDK/System Generator generate the low-level
//! implementation. The processor is modeled at behavioral-VHDL
//! granularity: one clocked master process holds the architectural state
//! machine (exactly the cycle semantics of the high-level simulator —
//! validated by trace-equivalence tests), while the datapath it exercises
//! (decoder, ALU, LMB controllers, register file, FSL FIFO stages) exists
//! as separate event-driven processes whose signals toggle every cycle.
//! The per-cycle event and delta-cycle churn of all these processes is
//! precisely why low-level simulation is slow — the effect Table I and
//! Table II of the paper quantify.
//!
//! # Clocking discipline
//!
//! * Processor-domain processes run on **rising** clock edges.
//! * FSL interface stages (the boundary between the processor's FIFOs and
//!   a customized peripheral) run on **falling** edges, so within one
//!   clock period: CPU put → (falling) peripheral sees word → peripheral
//!   combinational logic settles → (next rising) pipeline registers
//!   latch. This reproduces the same-cycle FIFO visibility of the
//!   high-level co-simulation engine, making cycle counts identical.

use crate::comp::{clock, Clock};
use crate::kernel::{Kernel, Primitives, SignalId};
use softsim_isa::{
    decode, ArithFlags, BarrelOp, CpuConfig, Image, Inst, LogicOp, MemSize, Reg, ShiftOp,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A word in flight on an FSL: data plus the control bit.
pub type FslItem = (u32, bool);

/// Shared FSL FIFO contents (accessed by the CPU master process on rising
/// edges and the peripheral interface stages on falling edges).
pub type SharedFsl = Rc<RefCell<VecDeque<FslItem>>>;

/// Default FSL depth, matching the high-level bus model.
pub const FSL_DEPTH: usize = 16;

/// Why an RTL run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlStop {
    /// The software executed `halt`.
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// The processor model faulted (message mirrors the ISS fault).
    Fault(String),
}

/// HW-side view of a processor → peripheral FSL channel.
#[derive(Debug, Clone, Copy)]
pub struct FslHwIn {
    /// Word popped this cycle (valid when `valid` is high).
    pub data: SignalId,
    /// Control bit of the popped word.
    pub ctrl: SignalId,
    /// High for one cycle per delivered word.
    pub valid: SignalId,
    /// Drive low to defer consumption (initialized high).
    pub ready: SignalId,
}

/// HW-side view of a peripheral → processor FSL channel: the peripheral
/// drives these; the interface stage pushes on each falling edge where
/// `valid` is high.
#[derive(Debug, Clone, Copy)]
pub struct FslHwOut {
    /// Result word.
    pub data: SignalId,
    /// Control bit.
    pub ctrl: SignalId,
    /// Strobe.
    pub valid: SignalId,
}

/// Micro-architectural pipeline state (mirrors the ISS exactly).
enum Pipe {
    Ready,
    Busy { remaining: u32, inst: Inst },
    FslStall { inst: Inst },
}

/// Architectural state of the RTL processor model.
struct Arch {
    config: CpuConfig,
    regs: [u32; 32],
    pc: u32,
    carry: bool,
    imm_latch: Option<u16>,
    delay_target: Option<u32>,
    in_delay_slot: bool,
    redirect: Option<u32>,
    mem: Vec<u8>,
    pipe: Pipe,
    halted: bool,
    fault: Option<String>,
    cycles: u64,
    instructions: u64,
    trace: Vec<(u32, u32)>,
    tracing: bool,
}

impl Arch {
    fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn read_mem(&self, addr: u32, size: MemSize) -> Result<u32, String> {
        let w = size.bytes();
        if !addr.is_multiple_of(w) {
            return Err(format!("misaligned access at {addr:#010x}"));
        }
        if (addr + w) as usize > self.mem.len() {
            return Err(format!("out-of-range access at {addr:#010x}"));
        }
        let i = addr as usize;
        Ok(match size {
            MemSize::Byte => self.mem[i] as u32,
            MemSize::Half => u16::from_be_bytes([self.mem[i], self.mem[i + 1]]) as u32,
            MemSize::Word => {
                u32::from_be_bytes([self.mem[i], self.mem[i + 1], self.mem[i + 2], self.mem[i + 3]])
            }
        })
    }

    fn write_mem(&mut self, addr: u32, size: MemSize, v: u32) -> Result<(), String> {
        let w = size.bytes();
        if !addr.is_multiple_of(w) {
            return Err(format!("misaligned access at {addr:#010x}"));
        }
        if (addr + w) as usize > self.mem.len() {
            return Err(format!("out-of-range access at {addr:#010x}"));
        }
        let i = addr as usize;
        match size {
            MemSize::Byte => self.mem[i] = v as u8,
            MemSize::Half => self.mem[i..i + 2].copy_from_slice(&(v as u16).to_be_bytes()),
            MemSize::Word => self.mem[i..i + 4].copy_from_slice(&v.to_be_bytes()),
        }
        Ok(())
    }
}

/// Observation signals the master process drives so the datapath
/// processes (decoder, ALU, LMB, register file) see real traffic.
struct DatapathSigs {
    pc: SignalId,
    ir: SignalId,
    alu_a: SignalId,
    alu_b: SignalId,
    alu_op: SignalId,
    mem_addr: SignalId,
    mem_wdata: SignalId,
    mem_we: SignalId,
    rd_addr: SignalId,
    rd_data: SignalId,
    rd_we: SignalId,
    carry: SignalId,
    halted: SignalId,
}

/// The elaborated SoC: kernel, clock, processor and FSL state.
pub struct SocRtl {
    /// The discrete-event kernel holding the whole design.
    pub kernel: Kernel,
    /// The 50 MHz system clock.
    pub clock: Clock,
    arch: Rc<RefCell<Arch>>,
    to_hw: Vec<SharedFsl>,
    from_hw: Vec<SharedFsl>,
    halted_sig: SignalId,
}

/// MB32 base-core primitive counts — datasheet-equivalent constants used
/// to derive Table I's "actual" resource column; optional units add on
/// top. Chosen to elaborate to roughly the MicroBlaze v4 footprint on
/// Virtex-II Pro with the era-default options (barrel + multiplier).
const CPU_BASE_PRIMITIVES: Primitives =
    Primitives { ff_bits: 650, lut_bits: 760, mult18s: 0, brams: 0 };
/// The optional barrel shifter (five mux levels across 32 bits).
const BARREL_PRIMITIVES: Primitives =
    Primitives { ff_bits: 10, lut_bits: 160, mult18s: 0, brams: 0 };
/// The optional multiplier (three embedded MULT18X18s plus glue).
const MULT_PRIMITIVES: Primitives = Primitives { ff_bits: 20, lut_bits: 130, mult18s: 3, brams: 0 };
/// The optional serial divider (32-cycle iterative unit).
const DIV_PRIMITIVES: Primitives = Primitives { ff_bits: 110, lut_bits: 240, mult18s: 0, brams: 0 };
/// One LMB interface controller.
const LMB_PRIMITIVES: Primitives = Primitives { ff_bits: 8, lut_bits: 20, mult18s: 0, brams: 0 };

impl SocRtl {
    /// Elaborates the SoC with the default processor configuration.
    pub fn new(image: &Image) -> SocRtl {
        SocRtl::with_config(image, CpuConfig::default())
    }

    /// Elaborates the SoC: processor (with its optional units), LMB
    /// memory, and the 2×8 FSL channels.
    pub fn with_config(image: &Image, config: CpuConfig) -> SocRtl {
        let mut kernel = Kernel::new();
        let clk = clock(&mut kernel, 20); // 50 MHz
        let mem_bytes = config.mem_bytes.max(image.base() + image.len_bytes());
        let mut mem = vec![0u8; mem_bytes as usize];
        let base = image.base() as usize;
        mem[base..base + image.len_bytes() as usize].copy_from_slice(image.bytes());

        kernel.add_primitives(CPU_BASE_PRIMITIVES);
        if config.barrel_shifter {
            kernel.add_primitives(BARREL_PRIMITIVES);
        }
        if config.multiplier {
            kernel.add_primitives(MULT_PRIMITIVES);
        }
        if config.divider {
            kernel.add_primitives(DIV_PRIMITIVES);
        }
        kernel.add_primitives(LMB_PRIMITIVES); // instruction-side controller
        kernel.add_primitives(LMB_PRIMITIVES); // data-side controller
                                               // Program storage BRAMs.
        kernel.add_primitives(Primitives { brams: image.bram_count(), ..Default::default() });

        let arch = Rc::new(RefCell::new(Arch {
            config,
            regs: [0; 32],
            pc: image.entry(),
            carry: false,
            imm_latch: None,
            delay_target: None,
            in_delay_slot: false,
            redirect: None,
            mem,
            pipe: Pipe::Ready,
            halted: false,
            fault: None,
            cycles: 0,
            instructions: 0,
            trace: Vec::new(),
            tracing: false,
        }));

        let to_hw: Vec<SharedFsl> =
            (0..8).map(|_| Rc::new(RefCell::new(VecDeque::new()))).collect();
        let from_hw: Vec<SharedFsl> =
            (0..8).map(|_| Rc::new(RefCell::new(VecDeque::new()))).collect();

        let sigs = DatapathSigs {
            pc: kernel.signal("cpu_pc", 32),
            ir: kernel.signal("cpu_ir", 32),
            alu_a: kernel.signal("cpu_alu_a", 32),
            alu_b: kernel.signal("cpu_alu_b", 32),
            alu_op: kernel.signal("cpu_alu_op", 4),
            mem_addr: kernel.signal("cpu_mem_addr", 32),
            mem_wdata: kernel.signal("cpu_mem_wdata", 32),
            mem_we: kernel.signal("cpu_mem_we", 1),
            rd_addr: kernel.signal("cpu_rd_addr", 5),
            rd_data: kernel.signal("cpu_rd_data", 32),
            rd_we: kernel.signal("cpu_rd_we", 1),
            carry: kernel.signal("cpu_carry", 1),
            halted: kernel.signal("cpu_halted", 1),
        };
        let halted_sig = sigs.halted;

        // --- Datapath processes (event-driven traffic mirrors hardware).
        let imem_word = kernel.signal("lmb_imem_word", 32);
        {
            let arch = Rc::clone(&arch);
            let pc = sigs.pc;
            kernel.process("lmb_ictrl", &[pc], move |ctx| {
                let a = ctx.get(pc) as usize;
                let arch = arch.borrow();
                let w = if a + 4 <= arch.mem.len() {
                    u32::from_be_bytes([
                        arch.mem[a],
                        arch.mem[a + 1],
                        arch.mem[a + 2],
                        arch.mem[a + 3],
                    ])
                } else {
                    0
                };
                ctx.set(imem_word, w as u64);
            });
        }
        let decode_fields = kernel.signal("dec_fields", 32);
        {
            let ir = sigs.ir;
            kernel.process("decoder", &[ir], move |ctx| {
                let w = ctx.get(ir) as u32;
                // opcode | rd | ra | rb packed — pure observation traffic.
                let packed = (w >> 26)
                    | ((w >> 21) & 0x1F) << 6
                    | ((w >> 16) & 0x1F) << 11
                    | ((w >> 11) & 0x1F) << 16;
                ctx.set(decode_fields, packed as u64);
            });
        }
        let alu_y = kernel.signal("alu_y", 32);
        {
            let (a, b, op) = (sigs.alu_a, sigs.alu_b, sigs.alu_op);
            kernel.process("alu", &[a, b, op], move |ctx| {
                let av = ctx.get(a) as u32;
                let bv = ctx.get(b) as u32;
                let y = match ctx.get(op) {
                    0 => av.wrapping_add(bv),
                    1 => bv.wrapping_sub(av),
                    2 => av & bv,
                    3 => av | bv,
                    4 => av ^ bv,
                    5 => av.wrapping_mul(bv),
                    6 => av >> (bv & 31),
                    7 => ((av as i32) >> (bv & 31)) as u32,
                    _ => av.wrapping_shl(bv & 31),
                };
                ctx.set(alu_y, y as u64);
            });
        }
        let mem_rdata = kernel.signal("lmb_dmem_rdata", 32);
        {
            let arch = Rc::clone(&arch);
            let (addr, we) = (sigs.mem_addr, sigs.mem_we);
            kernel.process("lmb_dctrl", &[addr, we], move |ctx| {
                let a = (ctx.get(addr) as usize) & !3;
                let arch = arch.borrow();
                let w = if a + 4 <= arch.mem.len() {
                    u32::from_be_bytes([
                        arch.mem[a],
                        arch.mem[a + 1],
                        arch.mem[a + 2],
                        arch.mem[a + 3],
                    ])
                } else {
                    0
                };
                ctx.set(mem_rdata, w as u64);
            });
        }
        {
            // Register-file write port: shadows architectural writes.
            let (we, ad, dv) = (sigs.rd_we, sigs.rd_addr, sigs.rd_data);
            let clk = clk.clk;
            let mut shadow = [0u32; 32];
            kernel.process("regfile", &[clk], move |ctx| {
                if ctx.rising(clk) && ctx.get(we) != 0 {
                    shadow[(ctx.get(ad) & 31) as usize] = ctx.get(dv) as u32;
                }
            });
        }

        // --- The master process: the processor's cycle-exact state
        // machine, driving the observation signals above.
        {
            let arch = Rc::clone(&arch);
            let to_hw = to_hw.clone();
            let from_hw = from_hw.clone();
            let clk_sig = clk.clk;
            kernel.process("cpu_exec", &[clk_sig], move |ctx| {
                if !ctx.rising(clk_sig) {
                    return;
                }
                let mut a = arch.borrow_mut();
                if a.halted {
                    return;
                }
                a.cycles += 1;
                cpu_cycle(&mut a, &to_hw, &from_hw, ctx, &sigs, imem_word);
            });
        }

        SocRtl { kernel, clock: clk, arch, to_hw, from_hw, halted_sig }
    }

    /// Enables architectural tracing.
    pub fn enable_trace(&mut self) {
        self.arch.borrow_mut().tracing = true;
    }

    /// The collected `(pc, word)` retirement trace.
    pub fn trace(&self) -> Vec<(u32, u32)> {
        self.arch.borrow().trace.clone()
    }

    /// Creates the HW-side input stage for channel `ch` (falling edge):
    /// pops one word per cycle when available and `ready` is high.
    pub fn hw_in(&mut self, ch: usize) -> FslHwIn {
        let k = &mut self.kernel;
        let data = k.signal(format!("fsl{ch}_hw_data"), 32);
        let ctrl = k.signal(format!("fsl{ch}_hw_ctrl"), 1);
        let valid = k.signal(format!("fsl{ch}_hw_valid"), 1);
        let ready = k.signal_init(format!("fsl{ch}_hw_ready"), 1, 1);
        k.add_primitives(Primitives { ff_bits: 70, lut_bits: 40, ..Default::default() });
        let q = Rc::clone(&self.to_hw[ch]);
        let clk = self.clock.clk;
        k.process(format!("fsl{ch}_in_stage"), &[clk], move |ctx| {
            if !ctx.falling(clk) {
                return;
            }
            if ctx.get(ready) != 0 {
                if let Some((d, c)) = q.borrow_mut().pop_front() {
                    ctx.set(data, d as u64);
                    ctx.set(ctrl, c as u64);
                    ctx.set(valid, 1);
                    return;
                }
            }
            ctx.set(valid, 0);
        });
        FslHwIn { data, ctrl, valid, ready }
    }

    /// Creates the HW-side output stage for channel `ch` (falling edge):
    /// pushes the peripheral's word whenever `valid` is high.
    pub fn hw_out(&mut self, ch: usize) -> FslHwOut {
        let k = &mut self.kernel;
        let data = k.signal(format!("fsl{ch}_hwo_data"), 32);
        let ctrl = k.signal(format!("fsl{ch}_hwo_ctrl"), 1);
        let valid = k.signal(format!("fsl{ch}_hwo_valid"), 1);
        k.add_primitives(Primitives { ff_bits: 70, lut_bits: 40, ..Default::default() });
        let q = Rc::clone(&self.from_hw[ch]);
        let clk = self.clock.clk;
        k.process(format!("fsl{ch}_out_stage"), &[clk], move |ctx| {
            if !ctx.falling(clk) {
                return;
            }
            if ctx.get(valid) != 0 {
                let mut q = q.borrow_mut();
                if q.len() < FSL_DEPTH {
                    q.push_back((ctx.get(data) as u32, ctx.get(ctrl) != 0));
                }
            }
        });
        FslHwOut { data, ctrl, valid }
    }

    /// Runs until halt/fault or `max_cycles` clock cycles.
    pub fn run(&mut self, max_cycles: u64) -> RtlStop {
        let period = self.clock.period;
        // Run in slabs, checking the halted flag between them.
        let slab: u64 = 64;
        let mut elapsed = 0;
        while elapsed < max_cycles {
            let n = slab.min(max_cycles - elapsed);
            let target = self.kernel.now() + n * period;
            self.kernel.run_until(target);
            elapsed += n;
            let a = self.arch.borrow();
            if a.halted {
                return match &a.fault {
                    Some(f) => RtlStop::Fault(f.clone()),
                    None => RtlStop::Halted,
                };
            }
        }
        RtlStop::CycleLimit
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.arch.borrow().reg(r)
    }

    /// Reads a word of memory.
    pub fn mem_word(&self, addr: u32) -> u32 {
        self.arch.borrow().read_mem(addr, MemSize::Word).unwrap_or(0)
    }

    /// Clock cycles executed by the processor.
    pub fn cpu_cycles(&self) -> u64 {
        self.arch.borrow().cycles
    }

    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.arch.borrow().instructions
    }

    /// True once the processor halted (also visible on the `cpu_halted`
    /// signal).
    pub fn halted(&self) -> bool {
        self.arch.borrow().halted || self.kernel.peek(self.halted_sig) != 0
    }

    /// HW-side access to a processor→HW FIFO (testbench use).
    pub fn to_hw_fifo(&self, ch: usize) -> SharedFsl {
        Rc::clone(&self.to_hw[ch])
    }

    /// HW-side access to a HW→processor FIFO (testbench use).
    pub fn from_hw_fifo(&self, ch: usize) -> SharedFsl {
        Rc::clone(&self.from_hw[ch])
    }
}

/// One processor clock cycle — the exact ISS state machine, with
/// observation-signal side effects.
fn cpu_cycle(
    a: &mut Arch,
    to_hw: &[SharedFsl],
    from_hw: &[SharedFsl],
    ctx: &mut crate::kernel::ProcCtx,
    sigs: &DatapathSigs,
    _imem_word: SignalId,
) {
    match std::mem::replace(&mut a.pipe, Pipe::Ready) {
        Pipe::Busy { remaining, inst } => {
            if remaining > 1 {
                a.pipe = Pipe::Busy { remaining: remaining - 1, inst };
            } else {
                retire(a, &inst, ctx, sigs);
            }
        }
        Pipe::FslStall { inst } => {
            if exec_fsl(a, &inst, to_hw, from_hw) {
                a.pipe = Pipe::Busy { remaining: 1, inst };
            } else {
                a.pipe = Pipe::FslStall { inst };
            }
        }
        Pipe::Ready => {
            let pc = a.pc;
            ctx.set(sigs.pc, pc as u64);
            let word = match a.read_mem(pc, MemSize::Word) {
                Ok(w) => w,
                Err(e) => {
                    a.halted = true;
                    a.fault = Some(format!("fetch: {e}"));
                    ctx.set(sigs.halted, 1);
                    return;
                }
            };
            ctx.set(sigs.ir, word as u64);
            let inst = match decode(word) {
                Ok(i) => i,
                Err(e) => {
                    a.halted = true;
                    a.fault = Some(format!("decode at {pc:#010x}: {e}"));
                    ctx.set(sigs.halted, 1);
                    return;
                }
            };
            if a.in_delay_slot && (inst.is_branch() || inst.is_imm_prefix() || inst == Inst::Halt) {
                a.halted = true;
                a.fault = Some(format!("illegal delay slot at {pc:#010x}"));
                ctx.set(sigs.halted, 1);
                return;
            }
            let cycles = match execute(a, pc, &inst, to_hw, from_hw, ctx, sigs) {
                Ok(ExecResult::Normal) => inst.base_cycles(),
                Ok(ExecResult::Taken) => inst.base_cycles() + inst.taken_penalty(),
                Ok(ExecResult::Blocked) => {
                    a.pipe = Pipe::FslStall { inst };
                    return;
                }
                Err(e) => {
                    a.halted = true;
                    a.fault = Some(e);
                    ctx.set(sigs.halted, 1);
                    return;
                }
            };
            if cycles > 1 {
                a.pipe = Pipe::Busy { remaining: cycles - 1, inst };
            } else {
                retire(a, &inst, ctx, sigs);
            }
        }
    }
}

enum ExecResult {
    Normal,
    Taken,
    Blocked,
}

fn retire(a: &mut Arch, inst: &Inst, ctx: &mut crate::kernel::ProcCtx, sigs: &DatapathSigs) {
    a.instructions += 1;
    let pc = a.pc;
    if a.tracing {
        a.trace.push((pc, softsim_isa::encode(inst)));
    }
    if a.in_delay_slot {
        a.in_delay_slot = false;
        a.pc = a.delay_target.take().expect("delay slot without target");
    } else if a.delay_target.is_some() && inst.has_delay_slot() {
        a.in_delay_slot = true;
        a.pc = pc.wrapping_add(4);
    } else if let Some(t) = a.redirect.take() {
        a.pc = t;
    } else {
        a.pc = pc.wrapping_add(4);
    }
    ctx.set(sigs.carry, a.carry as u64);
    if *inst == Inst::Halt {
        a.halted = true;
        ctx.set(sigs.halted, 1);
    }
}

fn imm_ext(latch: Option<u16>, imm: i16) -> u32 {
    match latch {
        Some(hi) => ((hi as u32) << 16) | (imm as u16 as u32),
        None => imm as i32 as u32,
    }
}

/// Drives the ALU observation signals for an operation.
fn drive_alu(ctx: &mut crate::kernel::ProcCtx, sigs: &DatapathSigs, op: u64, x: u32, y: u32) {
    ctx.set(sigs.alu_a, x as u64);
    ctx.set(sigs.alu_b, y as u64);
    ctx.set(sigs.alu_op, op);
}

fn drive_wb(ctx: &mut crate::kernel::ProcCtx, sigs: &DatapathSigs, rd: Reg, v: u32) {
    ctx.set(sigs.rd_addr, rd.field() as u64);
    ctx.set(sigs.rd_data, v as u64);
    ctx.set(sigs.rd_we, (!rd.is_zero()) as u64);
}

fn add_flags(a: &mut Arch, rd: Reg, x: u32, y: u32, flags: ArithFlags) -> u32 {
    let cin = if flags.carry_in { a.carry as u64 } else { 0 };
    let wide = x as u64 + y as u64 + cin;
    if !flags.keep {
        a.carry = wide > u32::MAX as u64;
    }
    let v = wide as u32;
    a.set_reg(rd, v);
    v
}

fn rsub_flags(a: &mut Arch, rd: Reg, x: u32, y: u32, flags: ArithFlags) -> u32 {
    let cin = if flags.carry_in { a.carry as u64 } else { 1 };
    let wide = y as u64 + (!x) as u64 + cin;
    if !flags.keep {
        a.carry = wide > u32::MAX as u64;
    }
    let v = wide as u32;
    a.set_reg(rd, v);
    v
}

fn take_branch(a: &mut Arch, pc: u32, target: u32, link: Option<Reg>, delay: bool) -> ExecResult {
    if let Some(rd) = link {
        a.set_reg(rd, pc);
    }
    if delay {
        a.delay_target = Some(target);
    } else {
        a.redirect = Some(target);
    }
    ExecResult::Taken
}

fn execute(
    a: &mut Arch,
    pc: u32,
    inst: &Inst,
    to_hw: &[SharedFsl],
    from_hw: &[SharedFsl],
    ctx: &mut crate::kernel::ProcCtx,
    sigs: &DatapathSigs,
) -> Result<ExecResult, String> {
    let latch = a.imm_latch.take();
    match inst {
        Inst::Mul { .. } | Inst::MulI { .. } if !a.config.multiplier => {
            return Err(format!("disabled multiplier at {pc:#010x}"));
        }
        Inst::Div { .. } if !a.config.divider => {
            return Err(format!("disabled divider at {pc:#010x}"));
        }
        Inst::Barrel { .. } | Inst::BarrelI { .. } if !a.config.barrel_shifter => {
            return Err(format!("disabled barrel shifter at {pc:#010x}"));
        }
        _ => {}
    }
    match *inst {
        Inst::Add { rd, ra, rb, flags } => {
            let (x, y) = (a.reg(ra), a.reg(rb));
            drive_alu(ctx, sigs, 0, x, y);
            let v = add_flags(a, rd, x, y, flags);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::AddI { rd, ra, imm, flags } => {
            let (x, y) = (a.reg(ra), imm_ext(latch, imm));
            drive_alu(ctx, sigs, 0, x, y);
            let v = add_flags(a, rd, x, y, flags);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Rsub { rd, ra, rb, flags } => {
            let (x, y) = (a.reg(ra), a.reg(rb));
            drive_alu(ctx, sigs, 1, x, y);
            let v = rsub_flags(a, rd, x, y, flags);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::RsubI { rd, ra, imm, flags } => {
            let (x, y) = (a.reg(ra), imm_ext(latch, imm));
            drive_alu(ctx, sigs, 1, x, y);
            let v = rsub_flags(a, rd, x, y, flags);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Cmp { rd, ra, rb, unsigned } => {
            let (x, y) = (a.reg(ra), a.reg(rb));
            drive_alu(ctx, sigs, 1, x, y);
            let diff = y.wrapping_sub(x);
            let gt = if unsigned { x > y } else { (x as i32) > (y as i32) };
            let v = (diff & 0x7FFF_FFFF) | ((gt as u32) << 31);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Mul { rd, ra, rb } => {
            let (x, y) = (a.reg(ra), a.reg(rb));
            drive_alu(ctx, sigs, 5, x, y);
            let v = x.wrapping_mul(y);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::MulI { rd, ra, imm } => {
            let (x, y) = (a.reg(ra), imm_ext(latch, imm));
            drive_alu(ctx, sigs, 5, x, y);
            let v = x.wrapping_mul(y);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Div { rd, ra, rb, unsigned } => {
            let (den, num) = (a.reg(ra), a.reg(rb));
            drive_alu(ctx, sigs, 9, num, den);
            let v = if den == 0 {
                0
            } else if unsigned {
                num / den
            } else {
                (num as i32).wrapping_div(den as i32) as u32
            };
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Logic { op, rd, ra, rb } => {
            let (x, y) = (a.reg(ra), a.reg(rb));
            let (code, v) = logic_op(op, x, y);
            drive_alu(ctx, sigs, code, x, y);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::LogicI { op, rd, ra, imm } => {
            let (x, y) = (a.reg(ra), imm_ext(latch, imm));
            let (code, v) = logic_op(op, x, y);
            drive_alu(ctx, sigs, code, x, y);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Shift { op, rd, ra } => {
            let x = a.reg(ra);
            let cout = x & 1 != 0;
            let v = match op {
                ShiftOp::Sra => ((x as i32) >> 1) as u32,
                ShiftOp::Src => (x >> 1) | ((a.carry as u32) << 31),
                ShiftOp::Srl => x >> 1,
            };
            drive_alu(ctx, sigs, 6, x, 1);
            a.carry = cout;
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Sext { rd, ra, half } => {
            let x = a.reg(ra);
            let v = if half { x as u16 as i16 as i32 as u32 } else { x as u8 as i8 as i32 as u32 };
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Barrel { op, rd, ra, rb } => {
            let (x, n) = (a.reg(ra), a.reg(rb) & 31);
            let (code, v) = barrel_op(op, x, n);
            drive_alu(ctx, sigs, code, x, n);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::BarrelI { op, rd, ra, amount } => {
            let (x, n) = (a.reg(ra), amount as u32 & 31);
            let (code, v) = barrel_op(op, x, n);
            drive_alu(ctx, sigs, code, x, n);
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Load { size, rd, ra, rb } => {
            let ea = a.reg(ra).wrapping_add(a.reg(rb));
            ctx.set(sigs.mem_addr, ea as u64);
            ctx.set(sigs.mem_we, 0);
            let v = a.read_mem(ea, size)?;
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::LoadI { size, rd, ra, imm } => {
            let ea = a.reg(ra).wrapping_add(imm_ext(latch, imm));
            ctx.set(sigs.mem_addr, ea as u64);
            ctx.set(sigs.mem_we, 0);
            let v = a.read_mem(ea, size)?;
            a.set_reg(rd, v);
            drive_wb(ctx, sigs, rd, v);
        }
        Inst::Store { size, rd, ra, rb } => {
            let ea = a.reg(ra).wrapping_add(a.reg(rb));
            let v = a.reg(rd);
            ctx.set(sigs.mem_addr, ea as u64);
            ctx.set(sigs.mem_wdata, v as u64);
            ctx.set(sigs.mem_we, 1);
            a.write_mem(ea, size, v)?;
        }
        Inst::StoreI { size, rd, ra, imm } => {
            let ea = a.reg(ra).wrapping_add(imm_ext(latch, imm));
            let v = a.reg(rd);
            ctx.set(sigs.mem_addr, ea as u64);
            ctx.set(sigs.mem_wdata, v as u64);
            ctx.set(sigs.mem_we, 1);
            a.write_mem(ea, size, v)?;
        }
        Inst::Br { rb, link, absolute, delay } => {
            let t = if absolute { a.reg(rb) } else { pc.wrapping_add(a.reg(rb)) };
            return Ok(take_branch(a, pc, t, link, delay));
        }
        Inst::BrI { imm, link, absolute, delay } => {
            let off = imm_ext(latch, imm);
            let t = if absolute { off } else { pc.wrapping_add(off) };
            return Ok(take_branch(a, pc, t, link, delay));
        }
        Inst::Bcc { cond, ra, rb, delay } => {
            if cond.holds(a.reg(ra)) {
                let t = pc.wrapping_add(a.reg(rb));
                return Ok(take_branch(a, pc, t, None, delay));
            }
        }
        Inst::BccI { cond, ra, imm, delay } => {
            if cond.holds(a.reg(ra)) {
                let t = pc.wrapping_add(imm_ext(latch, imm));
                return Ok(take_branch(a, pc, t, None, delay));
            }
        }
        Inst::Rtsd { ra, imm } => {
            let t = a.reg(ra).wrapping_add(imm_ext(latch, imm));
            return Ok(take_branch(a, pc, t, None, true));
        }
        Inst::Imm { imm } => {
            a.imm_latch = Some(imm);
        }
        Inst::Get { .. } | Inst::Put { .. } => {
            return Ok(if exec_fsl(a, inst, to_hw, from_hw) {
                ExecResult::Normal
            } else {
                ExecResult::Blocked
            });
        }
        Inst::Halt => {}
    }
    Ok(ExecResult::Normal)
}

fn logic_op(op: LogicOp, x: u32, y: u32) -> (u64, u32) {
    match op {
        LogicOp::And => (2, x & y),
        LogicOp::Or => (3, x | y),
        LogicOp::Xor => (4, x ^ y),
        LogicOp::Andn => (2, x & !y),
    }
}

fn barrel_op(op: BarrelOp, x: u32, n: u32) -> (u64, u32) {
    match op {
        BarrelOp::Bsll => (8, x.wrapping_shl(n)),
        BarrelOp::Bsrl => (6, x.wrapping_shr(n)),
        BarrelOp::Bsra => (7, ((x as i32).wrapping_shr(n)) as u32),
    }
}

/// Returns true when the transfer completed.
fn exec_fsl(a: &mut Arch, inst: &Inst, to_hw: &[SharedFsl], from_hw: &[SharedFsl]) -> bool {
    match *inst {
        Inst::Get { rd, chan, mode } => {
            let popped = from_hw[chan.index()].borrow_mut().pop_front();
            match popped {
                Some((d, _c)) => {
                    a.set_reg(rd, d);
                    if mode.non_blocking {
                        a.carry = false;
                    }
                    true
                }
                None if mode.non_blocking => {
                    a.carry = true;
                    true
                }
                None => false,
            }
        }
        Inst::Put { ra, chan, mode } => {
            let mut q = to_hw[chan.index()].borrow_mut();
            if q.len() < FSL_DEPTH {
                q.push_back((a.reg(ra), mode.control));
                if mode.non_blocking {
                    a.carry = false;
                }
                true
            } else if mode.non_blocking {
                a.carry = true;
                true
            } else {
                false
            }
        }
        _ => unreachable!("exec_fsl on non-FSL instruction"),
    }
}
