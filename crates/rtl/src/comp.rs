//! Word-level RTL component library.
//!
//! Behavioral-VHDL-granularity building blocks: every component is one or
//! more kernel processes communicating through signals, and registers its
//! hardware primitives for the elaboration-based "actual" resource counts
//! of Table I.

use crate::kernel::{Kernel, Primitives, SignalId, Time};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Two-phase clock signals: `clk` for the processor domain (rising edges)
/// and its inverse view for peripheral domains clocked mid-cycle.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    /// The clock signal.
    pub clk: SignalId,
    /// Clock period in nanoseconds.
    pub period: Time,
}

/// Instantiates a free-running clock generator of the given period.
pub fn clock(k: &mut Kernel, period: Time) -> Clock {
    assert!(period >= 2 && period.is_multiple_of(2), "period must be an even number of ns");
    let clk = k.signal("clk", 1);
    let half = period / 2;
    k.process("clkgen", &[clk], move |ctx| {
        let v = ctx.get(clk) ^ 1;
        ctx.set_after(clk, v, half);
    });
    // Kick off the oscillation with the first rising edge at t = period.
    k.poke_after(clk, 1, period);
    Clock { clk, period }
}

fn sext(v: u64, width: u8) -> i64 {
    let shift = 64 - width as u32;
    ((v << shift) as i64) >> shift
}

/// A D register with optional clock-enable, width ≤ 64.
pub fn register(
    k: &mut Kernel,
    name: &str,
    clk: SignalId,
    d: SignalId,
    q: SignalId,
    en: Option<SignalId>,
    width: u8,
) {
    k.add_primitives(Primitives { ff_bits: width as u64, ..Default::default() });
    k.process(name, &[clk], move |ctx| {
        if ctx.rising(clk) {
            let enabled = en.map(|e| ctx.get(e) != 0).unwrap_or(true);
            if enabled {
                let v = ctx.get(d);
                ctx.set(q, v);
            }
        }
    });
}

/// A combinational adder/subtractor: `y = a ± b` (two's complement,
/// wrapping at `width`). `sub` selects subtraction when high; pass `None`
/// for a fixed adder.
pub fn addsub(
    k: &mut Kernel,
    name: &str,
    a: SignalId,
    b: SignalId,
    sub: Option<SignalId>,
    y: SignalId,
    width: u8,
) {
    k.add_primitives(Primitives { lut_bits: width as u64, ..Default::default() });
    let mut sens = vec![a, b];
    if let Some(s) = sub {
        sens.push(s);
    }
    k.process(name, &sens, move |ctx| {
        let av = ctx.get(a);
        let bv = ctx.get(b);
        let neg = sub.map(|s| ctx.get(s) != 0).unwrap_or(false);
        let r = if neg { av.wrapping_sub(bv) } else { av.wrapping_add(bv) };
        ctx.set(y, r);
    });
}

/// A combinational 2:1 multiplexer.
pub fn mux2(
    k: &mut Kernel,
    name: &str,
    sel: SignalId,
    a0: SignalId,
    a1: SignalId,
    y: SignalId,
    width: u8,
) {
    k.add_primitives(Primitives { lut_bits: width as u64, ..Default::default() });
    k.process(name, &[sel, a0, a1], move |ctx| {
        let v = if ctx.get(sel) == 0 { ctx.get(a0) } else { ctx.get(a1) };
        ctx.set(y, v);
    });
}

/// Sign bit extractor: `y = a[width-1]` — the CORDIC direction bit.
pub fn sign_bit(k: &mut Kernel, name: &str, a: SignalId, y: SignalId, width: u8) {
    k.process(name, &[a], move |ctx| {
        let v = (ctx.get(a) >> (width - 1)) & 1;
        ctx.set(y, v);
    });
}

/// A constant arithmetic right shifter (wiring in hardware, a process in
/// behavioral simulation).
pub fn shift_right_arith(
    k: &mut Kernel,
    name: &str,
    a: SignalId,
    y: SignalId,
    amount: u32,
    width: u8,
) {
    k.process(name, &[a], move |ctx| {
        let v = sext(ctx.get(a), width) >> amount;
        ctx.set(y, v as u64);
    });
}

/// A constant logical right shifter.
pub fn shift_right_logic(k: &mut Kernel, name: &str, a: SignalId, y: SignalId, amount: u32) {
    k.process(name, &[a], move |ctx| {
        let v = ctx.get(a) >> amount;
        ctx.set(y, v);
    });
}

/// A pipelined multiplier mapped to embedded MULT18X18 primitives:
/// `y = a * b` (wrapping at `width`) with `latency ≥ 1` register stages.
#[allow(clippy::too_many_arguments)] // component port lists are what they are
pub fn multiplier(
    k: &mut Kernel,
    name: &str,
    clk: SignalId,
    a: SignalId,
    b: SignalId,
    y: SignalId,
    width: u8,
    latency: usize,
) {
    assert!(latency >= 1, "RTL multiplier needs at least one register stage");
    let tiles = (width as u32).div_ceil(18).pow(2).min(4);
    k.add_primitives(Primitives {
        ff_bits: width as u64 * latency as u64,
        mult18s: tiles,
        ..Default::default()
    });
    let mut pipe: VecDeque<u64> = VecDeque::from(vec![0; latency]);
    k.process(name, &[clk], move |ctx| {
        if ctx.rising(clk) {
            let av = sext(ctx.get(a), width);
            let bv = sext(ctx.get(b), width);
            pipe.push_back(av.wrapping_mul(bv) as u64);
            let out = pipe.pop_front().expect("pipe non-empty");
            ctx.set(y, out);
        }
    });
}

/// Handle to a shared FIFO's state, used by testbenches to pre-load or
/// inspect contents.
pub type SharedFifo = Rc<RefCell<VecDeque<u64>>>;

/// Signals exposed by [`fifo`].
#[derive(Debug, Clone, Copy)]
pub struct FifoPorts {
    /// Write data.
    pub din: SignalId,
    /// Write strobe (sampled on the clock edge).
    pub push: SignalId,
    /// Read strobe (sampled on the clock edge).
    pub pop: SignalId,
    /// Head-of-queue data (valid when `exists`).
    pub dout: SignalId,
    /// Not-empty flag.
    pub exists: SignalId,
    /// Full flag.
    pub full: SignalId,
}

/// A synchronous FIFO clocked on the rising edge of `clk`; `edge_falling`
/// selects the falling edge instead (used to interleave processor and
/// peripheral domains within one clock period).
pub fn fifo(
    k: &mut Kernel,
    name: &str,
    clk: SignalId,
    width: u8,
    depth: usize,
    edge_falling: bool,
) -> (FifoPorts, SharedFifo) {
    let din = k.signal(format!("{name}_din"), width);
    let push = k.signal(format!("{name}_push"), 1);
    let pop = k.signal(format!("{name}_pop"), 1);
    let dout = k.signal(format!("{name}_dout"), width);
    let exists = k.signal(format!("{name}_exists"), 1);
    let full = k.signal(format!("{name}_full"), 1);
    k.add_primitives(Primitives {
        ff_bits: (width as u64) * (depth as u64).min(4) + 8,
        lut_bits: (width as u64 * depth as u64).div_ceil(16) + 8,
        ..Default::default()
    });
    let state: SharedFifo = Rc::new(RefCell::new(VecDeque::with_capacity(depth)));
    let q = Rc::clone(&state);
    let ports = FifoPorts { din, push, pop, dout, exists, full };
    k.process(name, &[clk], move |ctx| {
        let edge = if edge_falling { ctx.falling(clk) } else { ctx.rising(clk) };
        if !edge {
            return;
        }
        let mut q = q.borrow_mut();
        if ctx.get(pop) != 0 {
            q.pop_front();
        }
        if ctx.get(push) != 0 && q.len() < depth {
            q.push_back(ctx.get(din));
        }
        ctx.set(dout, q.front().copied().unwrap_or(0));
        ctx.set(exists, (!q.is_empty()) as u64);
        ctx.set(full, (q.len() >= depth) as u64);
    });
    (ports, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kernel, Clock) {
        let mut k = Kernel::new();
        let c = clock(&mut k, 20);
        (k, c)
    }

    /// Runs `n` clock cycles.
    fn cycles(k: &mut Kernel, c: Clock, n: u64) {
        let target = k.now() + n * c.period;
        k.run_until(target);
    }

    #[test]
    fn register_latches_on_rising_edge() {
        let (mut k, c) = setup();
        let d = k.signal("d", 16);
        let q = k.signal("q", 16);
        register(&mut k, "r", c.clk, d, q, None, 16);
        k.poke(d, 0xBEEF);
        cycles(&mut k, c, 2);
        assert_eq!(k.peek(q), 0xBEEF);
        assert_eq!(k.primitives().ff_bits, 16);
    }

    #[test]
    fn register_enable_gates_updates() {
        let (mut k, c) = setup();
        let d = k.signal("d", 8);
        let q = k.signal("q", 8);
        let en = k.signal("en", 1);
        register(&mut k, "r", c.clk, d, q, Some(en), 8);
        k.poke(d, 5);
        k.poke(en, 0);
        cycles(&mut k, c, 2);
        assert_eq!(k.peek(q), 0);
        k.poke(en, 1);
        cycles(&mut k, c, 2);
        assert_eq!(k.peek(q), 5);
    }

    #[test]
    fn addsub_add_and_sub() {
        let (mut k, _c) = setup();
        let a = k.signal("a", 16);
        let b = k.signal("b", 16);
        let s = k.signal("s", 1);
        let y = k.signal("y", 16);
        addsub(&mut k, "as", a, b, Some(s), y, 16);
        k.poke(a, 100);
        k.poke(b, 30);
        k.run_until(1);
        assert_eq!(k.peek(y), 130);
        k.poke(s, 1);
        k.run_until(2);
        assert_eq!(k.peek(y), 70);
        // Wrapping subtraction stays in-width.
        k.poke(a, 0);
        k.run_until(3);
        assert_eq!(k.peek(y), 0xFFFF - 29);
    }

    #[test]
    fn shifters_are_arithmetic_and_logical() {
        let (mut k, _c) = setup();
        let a = k.signal("a", 16);
        let ya = k.signal("ya", 16);
        let yl = k.signal("yl", 16);
        shift_right_arith(&mut k, "sra", a, ya, 2, 16);
        shift_right_logic(&mut k, "srl", a, yl, 2);
        k.poke(a, 0xFFF0); // -16 in 16 bits
        k.run_until(1);
        assert_eq!(sext(k.peek(ya), 16), -4);
        assert_eq!(k.peek(yl), 0x3FFC);
    }

    #[test]
    fn sign_bit_detects_negative() {
        let (mut k, _c) = setup();
        let a = k.signal("a", 16);
        let y = k.signal("y", 1);
        sign_bit(&mut k, "sb", a, y, 16);
        k.poke(a, 0x8000);
        k.run_until(1);
        assert_eq!(k.peek(y), 1);
        k.poke(a, 0x7FFF);
        k.run_until(2);
        assert_eq!(k.peek(y), 0);
    }

    #[test]
    fn multiplier_latency_and_value() {
        let (mut k, c) = setup();
        let a = k.signal("a", 18);
        let b = k.signal("b", 18);
        let y = k.signal("y", 18);
        multiplier(&mut k, "m", c.clk, a, b, y, 18, 1);
        k.poke(a, 7);
        k.poke(b, (-3i64 as u64) & 0x3FFFF);
        cycles(&mut k, c, 1);
        assert_eq!(k.peek(y), 0, "one stage of latency");
        cycles(&mut k, c, 1);
        assert_eq!(sext(k.peek(y), 18), -21);
        assert_eq!(k.primitives().mult18s, 1);
    }

    #[test]
    fn fifo_push_pop_flags() {
        let (mut k, c) = setup();
        let (p, state) = fifo(&mut k, "f", c.clk, 32, 2, false);
        k.poke(p.din, 11);
        k.poke(p.push, 1);
        cycles(&mut k, c, 1);
        assert_eq!(k.peek(p.exists), 1);
        assert_eq!(k.peek(p.dout), 11);
        k.poke(p.din, 22);
        cycles(&mut k, c, 1);
        assert_eq!(k.peek(p.full), 1);
        k.poke(p.push, 0);
        k.poke(p.pop, 1);
        cycles(&mut k, c, 1);
        assert_eq!(k.peek(p.dout), 22);
        assert_eq!(k.peek(p.full), 0);
        cycles(&mut k, c, 1);
        assert_eq!(k.peek(p.exists), 0);
        assert!(state.borrow().is_empty());
    }

    #[test]
    fn falling_edge_fifo_offsets_half_cycle() {
        let (mut k, c) = setup();
        let (p, state) = fifo(&mut k, "f", c.clk, 32, 4, true);
        state.borrow_mut().push_back(99);
        k.poke(p.pop, 1);
        // Falling edge occurs mid-cycle; after one full period the word
        // has been consumed.
        cycles(&mut k, c, 2);
        assert!(state.borrow().is_empty());
    }
}
