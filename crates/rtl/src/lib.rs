//! # softsim-rtl — event-driven behavioral RTL simulation (the baseline)
//!
//! The low-level simulation substrate the paper compares against: an HDL
//! simulator in the ModelSim mold, with signals, sensitivity-listed
//! processes, delta cycles and an event wheel ([`kernel`]); a word-level
//! component library at behavioral-VHDL granularity ([`comp`]); VCD
//! waveform output ([`vcd`]); and the full-SoC model of the MB32 soft
//! processor with its LMB memory and FSL channels ([`soc`]).
//!
//! Simulating a design here produces exactly the same architectural
//! behavior and cycle counts as the high-level co-simulator (validated by
//! cross-simulator trace-equivalence tests) while paying the per-event,
//! per-delta-cycle costs of low-level simulation — reproducing the
//! performance gap reported in the paper's Tables I and II.

#![warn(missing_docs)]

pub mod comp;
pub mod kernel;
pub mod soc;
pub mod vcd;

pub use comp::{clock, Clock, FifoPorts, SharedFifo};
pub use kernel::{Kernel, KernelStats, Primitives, ProcCtx, ProcId, SignalId, Time};
pub use soc::{FslHwIn, FslHwOut, FslItem, RtlStop, SharedFsl, SocRtl, FSL_DEPTH};
pub use vcd::VcdWriter;

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;
    use softsim_isa::reg::r;

    #[test]
    fn soc_runs_simple_program() {
        let img = assemble(
            "addik r3, r0, 6\n\
             muli r4, r3, 7\n\
             swi r4, r0, 0x100\n\
             halt\n",
        )
        .unwrap();
        let mut soc = SocRtl::new(&img);
        let stop = soc.run(1000);
        assert_eq!(stop, RtlStop::Halted);
        assert_eq!(soc.reg(r(4)), 42);
        assert_eq!(soc.mem_word(0x100), 42);
        // addik(1) + muli(3) + swi(2) + halt(1) = 7 cycles.
        assert_eq!(soc.cpu_cycles(), 7);
        assert_eq!(soc.instructions(), 4);
    }

    #[test]
    fn soc_loop_with_delay_slots() {
        let img = assemble(
            "      addik r3, r0, 5\n\
                   addk r4, r0, r0\n\
             loop: addik r3, r3, -1\n\
                   bneid r3, loop\n\
                   addik r4, r4, 1\n\
                   halt\n",
        )
        .unwrap();
        let mut soc = SocRtl::new(&img);
        assert_eq!(soc.run(1000), RtlStop::Halted);
        assert_eq!(soc.reg(r(4)), 5);
    }

    #[test]
    fn soc_faults_match_iss_classes() {
        let img = assemble(".word 0xFFFFFFFF\n").unwrap();
        let mut soc = SocRtl::new(&img);
        match soc.run(100) {
            RtlStop::Fault(msg) => assert!(msg.contains("decode"), "{msg}"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn fsl_round_trip_through_shared_fifos() {
        // No peripheral: the testbench plays the hardware role.
        let img = assemble(
            "addik r3, r0, 55\n\
             put r3, rfsl0\n\
             get r4, rfsl0\n\
             halt\n",
        )
        .unwrap();
        let mut soc = SocRtl::new(&img);
        // Run until the put lands, then loop the word back.
        soc.run(16);
        let word = soc.to_hw_fifo(0).borrow_mut().pop_front();
        assert_eq!(word, Some((55, false)));
        soc.from_hw_fifo(0).borrow_mut().push_back((56, false));
        assert_eq!(soc.run(1000), RtlStop::Halted);
        assert_eq!(soc.reg(r(4)), 56);
    }

    #[test]
    fn hw_stages_deliver_and_collect_words() {
        let img = assemble(
            "addik r3, r0, 9\n\
             put r3, rfsl0\n\
             get r4, rfsl0\n\
             halt\n",
        )
        .unwrap();
        let mut soc = SocRtl::new(&img);
        let hw_in = soc.hw_in(0);
        let hw_out = soc.hw_out(0);
        // A combinational echo peripheral: out = in + 1, valid follows.
        let one = soc.kernel.signal_init("one", 32, 1);
        let sum = soc.kernel.signal("echo_sum", 32);
        crate::comp::addsub(&mut soc.kernel, "echo_add", hw_in.data, one, None, sum, 32);
        // Wire the echo into the output stage.
        {
            let k = &mut soc.kernel;
            k.process("echo_wire", &[sum, hw_in.valid, hw_in.ctrl], move |ctx| {
                let v = ctx.get(sum);
                let val = ctx.get(hw_in.valid);
                let c = ctx.get(hw_in.ctrl);
                ctx.set(hw_out.data, v);
                ctx.set(hw_out.valid, val);
                ctx.set(hw_out.ctrl, c);
            });
        }
        assert_eq!(soc.run(1000), RtlStop::Halted);
        assert_eq!(soc.reg(r(4)), 10, "echo peripheral added one");
    }

    #[test]
    fn kernel_activity_is_substantial_per_cycle() {
        // The cost-structure claim: the RTL SoC generates many events and
        // delta cycles per simulated clock — that is why low-level
        // simulation is slow.
        let img = assemble(
            "addik r3, r0, 100\n\
             loop: addik r3, r3, -1\n\
             bnei r3, loop\n\
             halt\n",
        )
        .unwrap();
        let mut soc = SocRtl::new(&img);
        assert_eq!(soc.run(100_000), RtlStop::Halted);
        let cycles = soc.cpu_cycles();
        let stats = soc.kernel.stats();
        assert!(stats.process_runs > 4 * cycles, "several process runs per cycle");
        assert!(stats.delta_cycles > 2 * cycles, "several deltas per cycle");
    }

    #[test]
    fn primitives_elaborate_to_plausible_cpu_size() {
        let img = assemble("halt\n").unwrap();
        let soc = SocRtl::new(&img);
        let p = soc.kernel.primitives();
        let slices = p.slices();
        assert!(
            (400..700).contains(&slices),
            "MB32 core should elaborate near the MicroBlaze footprint, got {slices}"
        );
        assert_eq!(p.brams, 1, "one BRAM holds this tiny program");
        assert_eq!(p.mult18s, 3, "MicroBlaze uses three MULT18X18s");
    }
}
