//! Value-change-dump (VCD) recording for the RTL kernel, so waveforms can
//! be inspected with standard viewers (GTKWave etc.).

use std::io::{self, Write};

/// A VCD recorder over any writer.
pub struct VcdWriter {
    out: Box<dyn Write>,
    ids: Vec<String>,
    header_done: bool,
    last_time: Option<(u64, u64)>,
}

impl std::fmt::Debug for VcdWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcdWriter").field("signals", &self.ids.len()).finish()
    }
}

fn code(i: usize) -> String {
    // Printable short identifiers: base-94 over '!'..='~'.
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// Records into any writer (file, buffer, ...).
    pub fn new(out: Box<dyn Write>) -> VcdWriter {
        VcdWriter { out, ids: Vec::new(), header_done: false, last_time: None }
    }

    /// Declares the next signal (called in `SignalId` order by the kernel).
    pub(crate) fn declare(&mut self, name: &str, width: u8) {
        assert!(!self.header_done);
        let id = code(self.ids.len());
        // Sanitize the name for VCD identifiers.
        let clean: String =
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        let _ = writeln!(self.out, "$var wire {width} {id} {clean} $end");
        self.ids.push(id);
    }

    /// Finishes the header.
    pub(crate) fn start(&mut self) {
        let _ = writeln!(self.out, "$timescale 1ns $end\n$enddefinitions $end");
        self.header_done = true;
    }

    /// Records one value change.
    pub(crate) fn change(&mut self, now: u64, delta: u64, sig: u32, value: u64, width: u8) {
        if self.last_time != Some((now, delta)) {
            // VCD has no delta time; fold deltas into the same timestamp
            // (only the final value of each time step is meaningful).
            if self.last_time.map(|(t, _)| t) != Some(now) {
                let _ = writeln!(self.out, "#{now}");
            }
            self.last_time = Some((now, delta));
        }
        let id = &self.ids[sig as usize];
        if width == 1 {
            let _ = writeln!(self.out, "{}{}", value & 1, id);
        } else {
            let _ = writeln!(self.out, "b{value:b} {id}");
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A writer that exposes what was written.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vcd_records_changes() {
        let sink = Shared::default();
        let mut k = crate::kernel::Kernel::new();
        let clk = k.signal("clk", 1);
        let bus = k.signal("data_bus", 16);
        k.record_vcd(VcdWriter::new(Box::new(sink.clone())));
        k.poke(clk, 1);
        k.poke(bus, 0xAB);
        k.run_until(5);
        k.poke_after(clk, 0, 10);
        k.run_until(20);
        let mut vcd = k.take_vcd().unwrap();
        vcd.flush().unwrap();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 16 \" data_bus $end"));
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("#0"));
        assert!(text.contains("b10101011"));
        assert!(text.contains("#15"), "falling edge at t=15: {text}");
    }

    /// Structural well-formedness of a whole dump: declarations strictly
    /// before `$enddefinitions`, timestamps strictly increasing, every
    /// value change referencing a declared identifier, scalar values
    /// limited to 0/1 and vector values to binary digits — the subset
    /// every VCD viewer requires.
    #[test]
    fn vcd_dump_is_well_formed() {
        let sink = Shared::default();
        let mut k = crate::kernel::Kernel::new();
        let clk = k.signal("clk", 1);
        let d = k.signal("d", 8);
        let q = k.signal("q", 8);
        // A clocked register: q <= d on rising clk.
        k.process("dff", &[clk], move |ctx| {
            if ctx.rising(clk) {
                let v = ctx.get(d);
                ctx.set(q, v);
            }
        });
        k.record_vcd(VcdWriter::new(Box::new(sink.clone())));
        for t in 0..8u64 {
            k.poke_after(d, t * 3 + 1, t * 10);
            k.poke_after(clk, 1, t * 10 + 5);
            k.poke_after(clk, 0, t * 10 + 9);
        }
        k.run_until(100);
        let mut vcd = k.take_vcd().unwrap();
        vcd.flush().unwrap();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();

        let mut ids = std::collections::HashSet::new();
        let mut in_header = true;
        let mut last_time: Option<u64> = None;
        let mut changes = 0usize;
        for line in text.lines().filter(|l| !l.is_empty()) {
            if let Some(rest) = line.strip_prefix("$var wire ") {
                assert!(in_header, "declaration after $enddefinitions: {line}");
                let mut parts = rest.split_whitespace();
                let width: u8 = parts.next().unwrap().parse().expect("width");
                assert!((1..=64).contains(&width));
                ids.insert(parts.next().unwrap().to_string());
                assert_eq!(parts.next_back(), Some("$end"));
            } else if line.contains("$enddefinitions") {
                in_header = false;
            } else if line.starts_with("$timescale") {
                assert!(in_header);
            } else if let Some(t) = line.strip_prefix('#') {
                assert!(!in_header, "timestamp inside header");
                let t: u64 = t.parse().expect("timestamp");
                assert!(last_time.is_none_or(|p| t > p), "time must increase: {line}");
                last_time = Some(t);
            } else if let Some(rest) = line.strip_prefix('b') {
                let (value, id) = rest.split_once(' ').expect("vector change");
                assert!(value.chars().all(|c| c == '0' || c == '1'), "{line}");
                assert!(ids.contains(id), "undeclared id in {line}");
                changes += 1;
            } else {
                let (value, id) = line.split_at(1);
                assert!(value == "0" || value == "1", "scalar value in {line}");
                assert!(ids.contains(id), "undeclared id in {line}");
                changes += 1;
            }
        }
        assert_eq!(ids.len(), 3, "three declared signals");
        assert!(changes > 20, "the run must produce real activity, saw {changes}");
        assert!(last_time.is_some(), "at least one timestamp");
    }

    #[test]
    fn short_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(code(i)));
        }
    }
}
