//! # softsim-isa — the MB32 soft-processor instruction set
//!
//! MB32 is a MicroBlaze-style 32-bit RISC instruction set: the ISA of the
//! soft processor simulated throughout `softsim`, the Rust reproduction of
//! Ou & Prasanna, *"MATLAB/Simulink Based Hardware/Software Co-Simulation
//! for Designing Using FPGA Configured Soft Processors"* (IPDPS 2005).
//!
//! The crate provides:
//!
//! * [`inst::Inst`] — the instruction set itself, including the Fast
//!   Simplex Link (`get`/`put`) instructions central to the paper;
//! * [`encode`]/[`decode`] — the 32-bit binary encoding;
//! * [`asm::assemble`] — a two-pass assembler (the `mb-gcc`/`mb-as`
//!   substitute in our tool flow);
//! * [`disasm`] — an `mb-objdump` substitute;
//! * [`image::Image`] — program images including BRAM sizing (§III-C of
//!   the paper).

#![warn(missing_docs)]

pub mod asm;
pub mod config;
pub mod disasm;
mod encode;
pub mod image;
pub mod inst;
pub mod reg;

pub use config::CpuConfig;
pub use encode::{decode, encode, DecodeError};
pub use image::Image;
pub use inst::{ArithFlags, BarrelOp, Cond, FslChan, FslMode, Inst, LogicOp, MemSize, ShiftOp};
pub use reg::Reg;

#[cfg(test)]
mod randomized {
    use crate::asm::assemble;
    use crate::inst::Inst;
    use crate::{decode, encode};
    use softsim_testkit::cases;

    /// Any 32-bit word either fails to decode or round-trips through
    /// decode∘encode∘decode to the same instruction.
    #[test]
    fn decode_encode_is_right_inverse() {
        cases(4_000, |seed, rng| {
            let word = rng.next_u32();
            if let Ok(inst) = decode(word) {
                // Encoding may canonicalize don't-care fields, so compare
                // through a second decode instead of word equality.
                let word2 = encode(&inst);
                let inst2 = decode(word2).expect("encoded word must decode");
                assert_eq!(inst, inst2, "seed {seed} word {word:#010x}");
            }
        });
    }

    /// The assembler accepts the disassembler's canonical syntax for every
    /// decodable instruction and produces the same instruction back.
    #[test]
    fn display_assemble_round_trip() {
        cases(4_000, |seed, rng| {
            let word = rng.next_u32();
            if let Ok(inst) = decode(word) {
                let text = inst.to_string();
                let img =
                    assemble(&text).unwrap_or_else(|e| panic!("`{text}` did not assemble: {e}"));
                let back = decode(img.read_u32(0)).unwrap();
                assert_eq!(back, inst, "seed {seed}: {text}");
            }
        });
    }

    /// `imm`-prefix pairs synthesized by `li` reconstruct every 32-bit
    /// constant.
    #[test]
    fn li_reconstructs_any_constant() {
        cases(2_000, |seed, rng| {
            let value = rng.next_u32() as i32;
            let src = format!("li r5, {value}");
            let img = assemble(&src).unwrap();
            let hi = match decode(img.read_u32(0)).unwrap() {
                Inst::Imm { imm } => imm,
                other => panic!("expected imm prefix, got {other}"),
            };
            let lo = match decode(img.read_u32(4)).unwrap() {
                Inst::AddI { imm, .. } => imm,
                other => panic!("expected addik, got {other}"),
            };
            // The architectural effect: rd = (hi << 16) | (lo as u16).
            let reconstructed = ((hi as u32) << 16) | (lo as u16 as u32);
            assert_eq!(reconstructed, value as u32, "seed {seed}");
        });
    }
}
