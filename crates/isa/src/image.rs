//! Program images: the output of the assembler and the input of the
//! simulators.
//!
//! An [`Image`] is the MB32 analog of the `.elf` file produced by `mb-gcc`
//! in the paper's flow: a byte image loaded into the block-RAM local memory
//! of the soft processor, plus a symbol table. Like MicroBlaze, MB32 is
//! big-endian.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bytes of local data memory provided by one Virtex-II Pro block RAM when
/// used for processor local memory (18 Kbit ≈ 2 KiB of data).
pub const BRAM_BYTES: u32 = 2048;

/// An assembled program image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    /// Load address of the first byte (MB32 programs start at 0).
    base: u32,
    /// Raw big-endian memory contents.
    bytes: Vec<u8>,
    /// Symbol → address map (labels and `.equ` constants alike).
    symbols: BTreeMap<String, u32>,
    /// Names in `symbols` that are *code/data labels* — addresses that
    /// exist in the program text — as opposed to `.equ` constants whose
    /// values merely happen to fit in a `u32`. Profilers roll cycles up
    /// by label; `.equ` constants must not masquerade as code regions.
    labels: BTreeSet<String>,
    /// Entry point (address of the first instruction).
    entry: u32,
}

impl Image {
    /// Creates an empty image based at `base`.
    pub fn new(base: u32) -> Image {
        Image {
            base,
            bytes: Vec::new(),
            symbols: BTreeMap::new(),
            labels: BTreeSet::new(),
            entry: base,
        }
    }

    /// The load address of the image.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the entry point.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// Image size in bytes (from `base` to the last initialized byte).
    pub fn len_bytes(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// True when the image contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw big-endian byte contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of block RAMs needed to hold this image — the paper's
    /// `mb-objdump`-based program sizing (§III-C).
    pub fn bram_count(&self) -> u32 {
        self.len_bytes().div_ceil(BRAM_BYTES).max(1)
    }

    /// Returns the address of a symbol, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in address order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Defines a symbol.
    pub fn define_symbol(&mut self, name: impl Into<String>, addr: u32) {
        self.symbols.insert(name.into(), addr);
    }

    /// Defines a *label*: a symbol naming an address in the program text.
    ///
    /// The assembler calls this for `label:` definitions and
    /// [`define_symbol`](Image::define_symbol) for `.equ` constants, so
    /// observability tooling can roll cycles up by code region without
    /// `.equ` values polluting the region map.
    pub fn define_label(&mut self, name: impl Into<String>, addr: u32) {
        let name = name.into();
        self.labels.insert(name.clone());
        self.symbols.insert(name, addr);
    }

    /// True when `name` was defined as a code/data label.
    pub fn is_label(&self, name: &str) -> bool {
        self.labels.contains(name)
    }

    /// All code/data labels sorted by (address, name) — `.equ` constants
    /// excluded.
    pub fn labels(&self) -> Vec<(&str, u32)> {
        let mut out: Vec<(&str, u32)> = self
            .labels
            .iter()
            .filter_map(|n| self.symbols.get(n).map(|a| (n.as_str(), *a)))
            .collect();
        out.sort_by_key(|&(n, a)| (a, n.to_string()));
        out
    }

    /// Writes one byte at an absolute address, growing the image as needed.
    ///
    /// # Panics
    /// Panics if `addr < base`.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        assert!(addr >= self.base, "write below image base");
        let off = (addr - self.base) as usize;
        if off >= self.bytes.len() {
            self.bytes.resize(off + 1, 0);
        }
        self.bytes[off] = value;
    }

    /// Writes a big-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        for (i, b) in value.to_be_bytes().iter().enumerate() {
            self.write_u8(addr + i as u32, *b);
        }
    }

    /// Writes a big-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_be_bytes().iter().enumerate() {
            self.write_u8(addr + i as u32, *b);
        }
    }

    /// Reads one byte (0 beyond the initialized region).
    pub fn read_u8(&self, addr: u32) -> u8 {
        if addr < self.base {
            return 0;
        }
        self.bytes.get((addr - self.base) as usize).copied().unwrap_or(0)
    }

    /// Reads a big-endian 32-bit word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_be_bytes([
            self.read_u8(addr),
            self.read_u8(addr + 1),
            self.read_u8(addr + 2),
            self.read_u8(addr + 3),
        ])
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "image: base={:#x} size={} bytes entry={:#x} ({} BRAM)",
            self.base,
            self.len_bytes(),
            self.entry,
            self.bram_count()
        )?;
        for (name, addr) in &self.symbols {
            writeln!(f, "  {addr:#010x} {name}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_big_endian() {
        let mut img = Image::new(0);
        img.write_u32(0, 0x1234_5678);
        assert_eq!(img.read_u8(0), 0x12, "MB32 is big-endian like MicroBlaze");
        assert_eq!(img.read_u8(3), 0x78);
        assert_eq!(img.read_u32(0), 0x1234_5678);
    }

    #[test]
    fn reads_beyond_image_are_zero() {
        let img = Image::new(0);
        assert_eq!(img.read_u32(0x1000), 0);
    }

    #[test]
    fn bram_count_rounds_up() {
        let mut img = Image::new(0);
        assert_eq!(img.bram_count(), 1, "empty program still occupies one BRAM");
        img.write_u8(BRAM_BYTES - 1, 1);
        assert_eq!(img.bram_count(), 1);
        img.write_u8(BRAM_BYTES, 1);
        assert_eq!(img.bram_count(), 2);
        img.write_u8(4 * BRAM_BYTES - 1, 1);
        assert_eq!(img.bram_count(), 4);
    }

    #[test]
    fn symbols() {
        let mut img = Image::new(0);
        img.define_symbol("main", 0x40);
        assert_eq!(img.symbol("main"), Some(0x40));
        assert_eq!(img.symbol("missing"), None);
        assert_eq!(img.symbols().count(), 1);
    }

    #[test]
    fn labels_distinguished_from_plain_symbols() {
        let mut img = Image::new(0);
        img.define_symbol("SIZE", 4); // .equ-style constant
        img.define_label("main", 0x40);
        img.define_label("loop", 0x10);
        assert!(img.is_label("main"));
        assert!(!img.is_label("SIZE"));
        assert_eq!(img.symbol("loop"), Some(0x10));
        // Address order, constants excluded.
        assert_eq!(img.labels(), vec![("loop", 0x10), ("main", 0x40)]);
    }

    #[test]
    #[should_panic(expected = "below image base")]
    fn write_below_base_panics() {
        let mut img = Image::new(0x100);
        img.write_u8(0xFF, 1);
    }
}
