//! Binary encoding and decoding of MB32 instructions.
//!
//! The word layout follows MicroBlaze:
//!
//! ```text
//!  31    26 25  21 20  16 15              0
//! +--------+------+------+-----------------+
//! | opcode |  rd  |  ra  |  imm16          |   immediate ("type B") form
//! +--------+------+------+------+----------+
//! | opcode |  rd  |  ra  |  rb  | minor11  |   register ("type A") form
//! +--------+------+------+------+----------+
//! ```
//!
//! Major opcode assignments mirror the MicroBlaze ISA where the instruction
//! exists there (`add` = 0x00, `addik` = 0x0C, `lw` = 0x32, ...). MB32-only
//! conventions (the `halt` opcode and the FSL flag layout) are documented on
//! the corresponding arms.

use crate::inst::{ArithFlags, BarrelOp, Cond, FslChan, FslMode, Inst, LogicOp, MemSize, ShiftOp};
use crate::reg::Reg;
use std::fmt;

/// Error produced when decoding an instruction word fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode is not assigned.
    UnknownOpcode {
        /// The 6-bit major opcode.
        opcode: u8,
        /// The full instruction word.
        word: u32,
    },
    /// The major opcode is valid but a minor field is not.
    BadMinor {
        /// The 6-bit major opcode.
        opcode: u8,
        /// The full instruction word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode, word } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::BadMinor { opcode, word } => {
                write!(f, "invalid minor field for opcode {opcode:#04x} in word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Major opcodes (MicroBlaze-compatible where applicable).
const OP_ADD_BASE: u32 = 0x00; // 0x00..=0x07: add/rsub × {plain,c,k,kc}
const OP_ADDI_BASE: u32 = 0x08; // 0x08..=0x0F: immediate forms
const OP_MUL: u32 = 0x10;
const OP_DIV: u32 = 0x12; // MicroBlaze idiv
const OP_BARREL: u32 = 0x11;
const OP_MULI: u32 = 0x18;
const OP_BARRELI: u32 = 0x19;
const OP_FSL: u32 = 0x1B;
const OP_OR: u32 = 0x20;
const OP_AND: u32 = 0x21;
const OP_XOR: u32 = 0x22;
const OP_ANDN: u32 = 0x23;
const OP_SHIFT: u32 = 0x24;
const OP_BR: u32 = 0x26;
const OP_BCC: u32 = 0x27;
const OP_ORI: u32 = 0x28;
const OP_ANDI: u32 = 0x29;
const OP_XORI: u32 = 0x2A;
const OP_ANDNI: u32 = 0x2B;
const OP_IMM: u32 = 0x2C;
const OP_RTSD: u32 = 0x2D;
const OP_BRI: u32 = 0x2E;
const OP_BCCI: u32 = 0x2F;
const OP_LBU: u32 = 0x30;
const OP_LHU: u32 = 0x31;
const OP_LW: u32 = 0x32;
const OP_SB: u32 = 0x34;
const OP_SH: u32 = 0x35;
const OP_SW: u32 = 0x36;
const OP_HALT: u32 = 0x3B; // MB32 extension: explicit simulation halt.
const OP_LBUI: u32 = 0x38;
const OP_LHUI: u32 = 0x39;
const OP_LWI: u32 = 0x3A;
const OP_SBI: u32 = 0x3C;
const OP_SHI: u32 = 0x3D;
const OP_SWI: u32 = 0x3E;

// Minor codes for opcode 0x24 (shift/sign-extend), MicroBlaze values.
const MINOR_SRA: u32 = 0x0001;
const MINOR_SRC: u32 = 0x0021;
const MINOR_SRL: u32 = 0x0041;
const MINOR_SEXT8: u32 = 0x0060;
const MINOR_SEXT16: u32 = 0x0061;

// cmp/cmpu are rsubk (0x05) with these minor codes, as on MicroBlaze.
const MINOR_CMP: u32 = 0x0001;
const MINOR_CMPU: u32 = 0x0003;

// Branch flag bits stored in the ra field of br/bri.
const BR_FLAG_LINK: u32 = 0x04;
const BR_FLAG_ABS: u32 = 0x08;
const BR_FLAG_DELAY: u32 = 0x10;

// Conditional-branch delay flag stored in the rd field alongside the
// 3-bit condition code.
const BCC_FLAG_DELAY: u32 = 0x10;

// FSL flag bits stored in the imm16 field (MB32 layout).
const FSL_FLAG_PUT: u32 = 0x8000;
const FSL_FLAG_NONBLOCKING: u32 = 0x4000;
const FSL_FLAG_CONTROL: u32 = 0x2000;

#[inline]
fn type_a(op: u32, rd: u32, ra: u32, rb: u32, minor: u32) -> u32 {
    debug_assert!(op < 64 && rd < 32 && ra < 32 && rb < 32 && minor < 2048);
    (op << 26) | (rd << 21) | (ra << 16) | (rb << 11) | minor
}

#[inline]
fn type_b(op: u32, rd: u32, ra: u32, imm: u16) -> u32 {
    debug_assert!(op < 64 && rd < 32 && ra < 32);
    (op << 26) | (rd << 21) | (ra << 16) | imm as u32
}

/// Encodes an instruction to its 32-bit word.
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Add { rd, ra, rb, flags } => {
            type_a(OP_ADD_BASE + (flags.bits() << 1), rd.field(), ra.field(), rb.field(), 0)
        }
        Inst::Rsub { rd, ra, rb, flags } => {
            type_a(OP_ADD_BASE + (flags.bits() << 1) + 1, rd.field(), ra.field(), rb.field(), 0)
        }
        Inst::AddI { rd, ra, imm, flags } => {
            type_b(OP_ADDI_BASE + (flags.bits() << 1), rd.field(), ra.field(), imm as u16)
        }
        Inst::RsubI { rd, ra, imm, flags } => {
            type_b(OP_ADDI_BASE + (flags.bits() << 1) + 1, rd.field(), ra.field(), imm as u16)
        }
        Inst::Cmp { rd, ra, rb, unsigned } => {
            let minor = if unsigned { MINOR_CMPU } else { MINOR_CMP };
            type_a(0x05, rd.field(), ra.field(), rb.field(), minor)
        }
        Inst::Mul { rd, ra, rb } => type_a(OP_MUL, rd.field(), ra.field(), rb.field(), 0),
        Inst::Div { rd, ra, rb, unsigned } => {
            type_a(OP_DIV, rd.field(), ra.field(), rb.field(), (unsigned as u32) << 1)
        }
        Inst::MulI { rd, ra, imm } => type_b(OP_MULI, rd.field(), ra.field(), imm as u16),
        Inst::Logic { op, rd, ra, rb } => {
            let opc = match op {
                LogicOp::Or => OP_OR,
                LogicOp::And => OP_AND,
                LogicOp::Xor => OP_XOR,
                LogicOp::Andn => OP_ANDN,
            };
            type_a(opc, rd.field(), ra.field(), rb.field(), 0)
        }
        Inst::LogicI { op, rd, ra, imm } => {
            let opc = match op {
                LogicOp::Or => OP_ORI,
                LogicOp::And => OP_ANDI,
                LogicOp::Xor => OP_XORI,
                LogicOp::Andn => OP_ANDNI,
            };
            type_b(opc, rd.field(), ra.field(), imm as u16)
        }
        Inst::Shift { op, rd, ra } => {
            let minor = match op {
                ShiftOp::Sra => MINOR_SRA,
                ShiftOp::Src => MINOR_SRC,
                ShiftOp::Srl => MINOR_SRL,
            };
            type_b(OP_SHIFT, rd.field(), ra.field(), minor as u16)
        }
        Inst::Sext { rd, ra, half } => {
            let minor = if half { MINOR_SEXT16 } else { MINOR_SEXT8 };
            type_b(OP_SHIFT, rd.field(), ra.field(), minor as u16)
        }
        Inst::Barrel { op, rd, ra, rb } => {
            type_a(OP_BARREL, rd.field(), ra.field(), rb.field(), barrel_minor(op))
        }
        Inst::BarrelI { op, rd, ra, amount } => {
            debug_assert!(amount < 32);
            let imm = barrel_minor(op) as u16 | (amount as u16 & 0x1F);
            type_b(OP_BARRELI, rd.field(), ra.field(), imm)
        }
        Inst::Load { size, rd, ra, rb } => {
            let opc = match size {
                MemSize::Byte => OP_LBU,
                MemSize::Half => OP_LHU,
                MemSize::Word => OP_LW,
            };
            type_a(opc, rd.field(), ra.field(), rb.field(), 0)
        }
        Inst::LoadI { size, rd, ra, imm } => {
            let opc = match size {
                MemSize::Byte => OP_LBUI,
                MemSize::Half => OP_LHUI,
                MemSize::Word => OP_LWI,
            };
            type_b(opc, rd.field(), ra.field(), imm as u16)
        }
        Inst::Store { size, rd, ra, rb } => {
            let opc = match size {
                MemSize::Byte => OP_SB,
                MemSize::Half => OP_SH,
                MemSize::Word => OP_SW,
            };
            type_a(opc, rd.field(), ra.field(), rb.field(), 0)
        }
        Inst::StoreI { size, rd, ra, imm } => {
            let opc = match size {
                MemSize::Byte => OP_SBI,
                MemSize::Half => OP_SHI,
                MemSize::Word => OP_SWI,
            };
            type_b(opc, rd.field(), ra.field(), imm as u16)
        }
        Inst::Br { rb, link, absolute, delay } => {
            let flags = br_flags(link.is_some(), absolute, delay);
            let rd = link.map(Reg::field).unwrap_or(0);
            type_a(OP_BR, rd, flags, rb.field(), 0)
        }
        Inst::BrI { imm, link, absolute, delay } => {
            let flags = br_flags(link.is_some(), absolute, delay);
            let rd = link.map(Reg::field).unwrap_or(0);
            type_b(OP_BRI, rd, flags, imm as u16)
        }
        Inst::Bcc { cond, ra, rb, delay } => {
            let rd = cond.bits() | if delay { BCC_FLAG_DELAY } else { 0 };
            type_a(OP_BCC, rd, ra.field(), rb.field(), 0)
        }
        Inst::BccI { cond, ra, imm, delay } => {
            let rd = cond.bits() | if delay { BCC_FLAG_DELAY } else { 0 };
            type_b(OP_BCCI, rd, ra.field(), imm as u16)
        }
        Inst::Rtsd { ra, imm } => type_b(OP_RTSD, 0x10, ra.field(), imm as u16),
        Inst::Imm { imm } => type_b(OP_IMM, 0, 0, imm),
        Inst::Get { rd, chan, mode } => {
            let imm = fsl_imm(false, chan, mode);
            type_b(OP_FSL, rd.field(), 0, imm)
        }
        Inst::Put { ra, chan, mode } => {
            let imm = fsl_imm(true, chan, mode);
            type_b(OP_FSL, 0, ra.field(), imm)
        }
        Inst::Halt => type_b(OP_HALT, 0, 0, 0),
    }
}

fn barrel_minor(op: BarrelOp) -> u32 {
    // Bits [10:9]: S (left) and T (arithmetic), MicroBlaze-style.
    match op {
        BarrelOp::Bsrl => 0,
        BarrelOp::Bsra => 1 << 9,
        BarrelOp::Bsll => 1 << 10,
    }
}

fn barrel_from_minor(minor: u32) -> Option<BarrelOp> {
    match (minor >> 9) & 0x3 {
        0 => Some(BarrelOp::Bsrl),
        1 => Some(BarrelOp::Bsra),
        2 => Some(BarrelOp::Bsll),
        _ => None,
    }
}

fn br_flags(link: bool, absolute: bool, delay: bool) -> u32 {
    (if link { BR_FLAG_LINK } else { 0 })
        | (if absolute { BR_FLAG_ABS } else { 0 })
        | (if delay { BR_FLAG_DELAY } else { 0 })
}

fn fsl_imm(put: bool, chan: FslChan, mode: FslMode) -> u16 {
    let mut imm = chan.index() as u32;
    if put {
        imm |= FSL_FLAG_PUT;
    }
    if mode.non_blocking {
        imm |= FSL_FLAG_NONBLOCKING;
    }
    if mode.control {
        imm |= FSL_FLAG_CONTROL;
    }
    imm as u16
}

#[inline]
fn field_rd(word: u32) -> Reg {
    Reg::new(((word >> 21) & 0x1F) as u8)
}

#[inline]
fn field_ra(word: u32) -> Reg {
    Reg::new(((word >> 16) & 0x1F) as u8)
}

#[inline]
fn field_rb(word: u32) -> Reg {
    Reg::new(((word >> 11) & 0x1F) as u8)
}

#[inline]
fn field_imm(word: u32) -> i16 {
    (word & 0xFFFF) as u16 as i16
}

#[inline]
fn field_minor(word: u32) -> u32 {
    word & 0x7FF
}

/// Decodes a 32-bit word into an instruction.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = (word >> 26) & 0x3F;
    let err_minor = DecodeError::BadMinor { opcode: opcode as u8, word };
    let inst = match opcode {
        0x00..=0x07 => {
            let rsub = opcode & 1 != 0;
            let flags = ArithFlags::from_bits((opcode >> 1) & 0x3);
            let (rd, ra, rb) = (field_rd(word), field_ra(word), field_rb(word));
            let minor = field_minor(word);
            if opcode == 0x05 && minor != 0 {
                // rsubk with a comparison minor code: cmp/cmpu.
                let unsigned = match minor {
                    MINOR_CMP => false,
                    MINOR_CMPU => true,
                    _ => return Err(err_minor),
                };
                Inst::Cmp { rd, ra, rb, unsigned }
            } else if minor != 0 {
                return Err(err_minor);
            } else if rsub {
                Inst::Rsub { rd, ra, rb, flags }
            } else {
                Inst::Add { rd, ra, rb, flags }
            }
        }
        0x08..=0x0F => {
            let rsub = opcode & 1 != 0;
            let flags = ArithFlags::from_bits((opcode >> 1) & 0x3);
            let (rd, ra, imm) = (field_rd(word), field_ra(word), field_imm(word));
            if rsub {
                Inst::RsubI { rd, ra, imm, flags }
            } else {
                Inst::AddI { rd, ra, imm, flags }
            }
        }
        OP_MUL => Inst::Mul { rd: field_rd(word), ra: field_ra(word), rb: field_rb(word) },
        OP_DIV => {
            let minor = field_minor(word);
            if minor & !0x2 != 0 {
                return Err(err_minor);
            }
            Inst::Div {
                rd: field_rd(word),
                ra: field_ra(word),
                rb: field_rb(word),
                unsigned: minor & 0x2 != 0,
            }
        }
        OP_MULI => Inst::MulI { rd: field_rd(word), ra: field_ra(word), imm: field_imm(word) },
        OP_BARREL => {
            let op = barrel_from_minor(field_minor(word)).ok_or(err_minor)?;
            Inst::Barrel { op, rd: field_rd(word), ra: field_ra(word), rb: field_rb(word) }
        }
        OP_BARRELI => {
            let imm = word & 0xFFFF;
            let op = barrel_from_minor(imm & 0x7FF).ok_or(err_minor)?;
            Inst::BarrelI { op, rd: field_rd(word), ra: field_ra(word), amount: (imm & 0x1F) as u8 }
        }
        OP_FSL => {
            let imm = word & 0xFFFF;
            let chan = FslChan::new((imm & 0x7) as u8);
            let mode = FslMode {
                non_blocking: imm & FSL_FLAG_NONBLOCKING != 0,
                control: imm & FSL_FLAG_CONTROL != 0,
            };
            if imm & FSL_FLAG_PUT != 0 {
                Inst::Put { ra: field_ra(word), chan, mode }
            } else {
                Inst::Get { rd: field_rd(word), chan, mode }
            }
        }
        OP_OR | OP_AND | OP_XOR | OP_ANDN => {
            let op = match opcode {
                OP_OR => LogicOp::Or,
                OP_AND => LogicOp::And,
                OP_XOR => LogicOp::Xor,
                _ => LogicOp::Andn,
            };
            Inst::Logic { op, rd: field_rd(word), ra: field_ra(word), rb: field_rb(word) }
        }
        OP_ORI | OP_ANDI | OP_XORI | OP_ANDNI => {
            let op = match opcode {
                OP_ORI => LogicOp::Or,
                OP_ANDI => LogicOp::And,
                OP_XORI => LogicOp::Xor,
                _ => LogicOp::Andn,
            };
            Inst::LogicI { op, rd: field_rd(word), ra: field_ra(word), imm: field_imm(word) }
        }
        OP_SHIFT => {
            let (rd, ra) = (field_rd(word), field_ra(word));
            match word & 0xFFFF {
                MINOR_SRA => Inst::Shift { op: ShiftOp::Sra, rd, ra },
                MINOR_SRC => Inst::Shift { op: ShiftOp::Src, rd, ra },
                MINOR_SRL => Inst::Shift { op: ShiftOp::Srl, rd, ra },
                MINOR_SEXT8 => Inst::Sext { rd, ra, half: false },
                MINOR_SEXT16 => Inst::Sext { rd, ra, half: true },
                _ => return Err(err_minor),
            }
        }
        OP_BR | OP_BRI => {
            let flags = field_ra(word).field();
            let link = if flags & BR_FLAG_LINK != 0 { Some(field_rd(word)) } else { None };
            let absolute = flags & BR_FLAG_ABS != 0;
            let delay = flags & BR_FLAG_DELAY != 0;
            if flags & !(BR_FLAG_LINK | BR_FLAG_ABS | BR_FLAG_DELAY) != 0 {
                return Err(err_minor);
            }
            if opcode == OP_BR {
                Inst::Br { rb: field_rb(word), link, absolute, delay }
            } else {
                Inst::BrI { imm: field_imm(word), link, absolute, delay }
            }
        }
        OP_BCC | OP_BCCI => {
            let rd = field_rd(word).field();
            let cond = Cond::from_bits(rd & 0x7).ok_or(err_minor)?;
            let delay = rd & BCC_FLAG_DELAY != 0;
            if rd & !(0x7 | BCC_FLAG_DELAY) != 0 {
                return Err(err_minor);
            }
            if opcode == OP_BCC {
                Inst::Bcc { cond, ra: field_ra(word), rb: field_rb(word), delay }
            } else {
                Inst::BccI { cond, ra: field_ra(word), imm: field_imm(word), delay }
            }
        }
        OP_RTSD => Inst::Rtsd { ra: field_ra(word), imm: field_imm(word) },
        OP_IMM => Inst::Imm { imm: (word & 0xFFFF) as u16 },
        OP_LBU => Inst::Load {
            size: MemSize::Byte,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_LHU => Inst::Load {
            size: MemSize::Half,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_LW => Inst::Load {
            size: MemSize::Word,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_SB => Inst::Store {
            size: MemSize::Byte,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_SH => Inst::Store {
            size: MemSize::Half,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_SW => Inst::Store {
            size: MemSize::Word,
            rd: field_rd(word),
            ra: field_ra(word),
            rb: field_rb(word),
        },
        OP_LBUI => Inst::LoadI {
            size: MemSize::Byte,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_LHUI => Inst::LoadI {
            size: MemSize::Half,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_LWI => Inst::LoadI {
            size: MemSize::Word,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_SBI => Inst::StoreI {
            size: MemSize::Byte,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_SHI => Inst::StoreI {
            size: MemSize::Half,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_SWI => Inst::StoreI {
            size: MemSize::Word,
            rd: field_rd(word),
            ra: field_ra(word),
            imm: field_imm(word),
        },
        OP_HALT => Inst::Halt,
        _ => return Err(DecodeError::UnknownOpcode { opcode: opcode as u8, word }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    /// A representative instruction of every variant/flag combination.
    pub(crate) fn sample_instructions() -> Vec<Inst> {
        let mut v = Vec::new();
        for bits in 0..4 {
            let flags = ArithFlags::from_bits(bits);
            v.push(Inst::Add { rd: r(1), ra: r(2), rb: r(3), flags });
            v.push(Inst::Rsub { rd: r(4), ra: r(5), rb: r(6), flags });
            v.push(Inst::AddI { rd: r(7), ra: r(8), imm: -123, flags });
            v.push(Inst::RsubI { rd: r(9), ra: r(10), imm: 456, flags });
        }
        v.push(Inst::Cmp { rd: r(1), ra: r(2), rb: r(3), unsigned: false });
        v.push(Inst::Cmp { rd: r(1), ra: r(2), rb: r(3), unsigned: true });
        v.push(Inst::Mul { rd: r(11), ra: r(12), rb: r(13) });
        v.push(Inst::Div { rd: r(11), ra: r(12), rb: r(13), unsigned: false });
        v.push(Inst::Div { rd: r(11), ra: r(12), rb: r(13), unsigned: true });
        v.push(Inst::MulI { rd: r(14), ra: r(15), imm: -7 });
        for op in LogicOp::ALL {
            v.push(Inst::Logic { op, rd: r(16), ra: r(17), rb: r(18) });
            v.push(Inst::LogicI { op, rd: r(19), ra: r(20), imm: 0x7F });
        }
        for op in ShiftOp::ALL {
            v.push(Inst::Shift { op, rd: r(21), ra: r(22) });
        }
        v.push(Inst::Sext { rd: r(1), ra: r(2), half: false });
        v.push(Inst::Sext { rd: r(1), ra: r(2), half: true });
        for op in BarrelOp::ALL {
            v.push(Inst::Barrel { op, rd: r(3), ra: r(4), rb: r(5) });
            v.push(Inst::BarrelI { op, rd: r(6), ra: r(7), amount: 17 });
        }
        for size in [MemSize::Byte, MemSize::Half, MemSize::Word] {
            v.push(Inst::Load { size, rd: r(23), ra: r(24), rb: r(25) });
            v.push(Inst::LoadI { size, rd: r(26), ra: r(27), imm: 0x100 });
            v.push(Inst::Store { size, rd: r(28), ra: r(29), rb: r(30) });
            v.push(Inst::StoreI { size, rd: r(31), ra: r(1), imm: -4 });
        }
        for absolute in [false, true] {
            for delay in [false, true] {
                v.push(Inst::Br { rb: r(5), link: None, absolute, delay });
                v.push(Inst::Br { rb: r(5), link: Some(r(15)), absolute, delay });
                v.push(Inst::BrI { imm: -64, link: None, absolute, delay });
                v.push(Inst::BrI { imm: 64, link: Some(r(15)), absolute, delay });
            }
        }
        for cond in Cond::ALL {
            for delay in [false, true] {
                v.push(Inst::Bcc { cond, ra: r(6), rb: r(7), delay });
                v.push(Inst::BccI { cond, ra: r(8), imm: -32, delay });
            }
        }
        v.push(Inst::Rtsd { ra: r(15), imm: 8 });
        v.push(Inst::Imm { imm: 0xDEAD });
        for mode in FslMode::ALL {
            for chan in [0u8, 3, 7] {
                v.push(Inst::Get { rd: r(9), chan: FslChan::new(chan), mode });
                v.push(Inst::Put { ra: r(10), chan: FslChan::new(chan), mode });
            }
        }
        v.push(Inst::Halt);
        v.push(Inst::NOP);
        v
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        for inst in sample_instructions() {
            let word = encode(&inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn encoding_is_injective_over_samples() {
        let insts = sample_instructions();
        let mut seen = std::collections::HashMap::new();
        for inst in insts {
            let word = encode(&inst);
            if let Some(prev) = seen.insert(word, inst) {
                panic!("collision: {prev:?} and {inst:?} both encode to {word:#010x}");
            }
        }
    }

    #[test]
    fn microblaze_compatible_opcodes() {
        // Spot-check that major opcodes match the real MicroBlaze ISA.
        let addk = Inst::Add { rd: r(1), ra: r(2), rb: r(3), flags: ArithFlags::KEEP };
        assert_eq!(encode(&addk) >> 26, 0x04);
        let addik = Inst::AddI { rd: r(1), ra: r(2), imm: 0, flags: ArithFlags::KEEP };
        assert_eq!(encode(&addik) >> 26, 0x0C);
        let lw = Inst::Load { size: MemSize::Word, rd: r(1), ra: r(2), rb: r(3) };
        assert_eq!(encode(&lw) >> 26, 0x32);
        let swi = Inst::StoreI { size: MemSize::Word, rd: r(1), ra: r(2), imm: 0 };
        assert_eq!(encode(&swi) >> 26, 0x3E);
        let imm = Inst::Imm { imm: 0 };
        assert_eq!(encode(&imm) >> 26, 0x2C);
    }

    #[test]
    fn decode_rejects_unknown_opcodes() {
        for opcode in [0x13u32, 0x17, 0x1F, 0x25, 0x33, 0x37, 0x3F] {
            let word = opcode << 26;
            assert!(
                matches!(decode(word), Err(DecodeError::UnknownOpcode { .. })),
                "opcode {opcode:#x} should be unknown"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_minors() {
        // Shift with an unassigned minor code.
        let word = (OP_SHIFT << 26) | 0x0002;
        assert!(matches!(decode(word), Err(DecodeError::BadMinor { .. })));
        // rsubk with a non-comparison minor.
        let word = (0x05 << 26) | 0x0005;
        assert!(matches!(decode(word), Err(DecodeError::BadMinor { .. })));
        // Conditional branch with condition code 7.
        let word = (OP_BCCI << 26) | (7 << 21);
        assert!(matches!(decode(word), Err(DecodeError::BadMinor { .. })));
    }

    #[test]
    fn nop_encodes_to_or_zero() {
        assert_eq!(encode(&Inst::NOP), OP_OR << 26);
    }
}
