//! General-purpose register names for the MB32 ISA.
//!
//! MB32 follows the MicroBlaze register convention: 32 general-purpose
//! registers `r0`..`r31`, with `r0` hard-wired to zero. A handful of
//! registers have ABI roles (stack pointer, return address, ...) which the
//! assembler accepts as aliases.

use std::fmt;

/// A general-purpose register index (`r0`..`r31`).
///
/// `r0` always reads as zero and ignores writes, exactly like MicroBlaze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const R0: Reg = Reg(0);
    /// ABI stack pointer (`r1`).
    pub const SP: Reg = Reg(1);
    /// ABI return-address register for `brlid`/`bralid` calls (`r15`).
    pub const LR: Reg = Reg(15);

    /// Creates a register from an index.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "register index out of range");
        Reg(n)
    }

    /// Creates a register from an index, returning `None` when out of range.
    #[inline]
    pub const fn try_new(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// The register index, in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The register index as the 5-bit field used in instruction encodings.
    #[inline]
    pub const fn field(self) -> u32 {
        self.0 as u32
    }

    /// True for the hard-wired zero register `r0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parses a register name: `r0`..`r31` or an ABI alias (`sp`, `lr`).
    pub fn parse(name: &str) -> Option<Reg> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "sp" => return Some(Reg::SP),
            "lr" => return Some(Reg::LR),
            _ => {}
        }
        let rest = lower.strip_prefix('r')?;
        // Reject forms like "r01" so each register has one canonical name.
        if rest.len() > 1 && rest.starts_with('0') {
            return None;
        }
        let n: u8 = rest.parse().ok()?;
        Reg::try_new(n)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenience constructor used throughout tests and program builders.
#[inline]
pub const fn r(n: u8) -> Reg {
    Reg::new(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_all_registers() {
        for n in 0..32u8 {
            let reg = Reg::new(n);
            assert_eq!(Reg::parse(&reg.to_string()), Some(reg));
        }
    }

    #[test]
    fn parse_accepts_aliases_case_insensitively() {
        assert_eq!(Reg::parse("SP"), Some(Reg::SP));
        assert_eq!(Reg::parse("lr"), Some(Reg::LR));
        assert_eq!(Reg::parse("R17"), Some(r(17)));
    }

    #[test]
    fn parse_rejects_bad_names() {
        for bad in ["r32", "r-1", "x0", "r", "", "r01", "r001", "r1x"] {
            assert_eq!(Reg::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!r(1).is_zero());
    }
}
