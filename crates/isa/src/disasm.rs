//! Disassembly of program images — the MB32 analog of `mb-objdump`, which
//! the paper uses to size software programs for BRAM allocation (§III-C).

use crate::encode::decode;
use crate::image::Image;
use std::fmt::Write as _;

/// One disassembled line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Word address.
    pub addr: u32,
    /// Raw instruction word.
    pub word: u32,
    /// Canonical assembly text, or `.word`-style raw data when the word
    /// does not decode.
    pub text: String,
    /// Labels defined at this address.
    pub labels: Vec<String>,
}

/// Disassembles every word of an image.
///
/// Words that fail to decode (data sections) are rendered as `.word`.
pub fn disassemble(image: &Image) -> Vec<DisasmLine> {
    let mut lines = Vec::with_capacity(image.len_bytes() as usize / 4);
    let end = image.base() + image.len_bytes();
    let mut addr = image.base();
    while addr < end {
        let word = image.read_u32(addr);
        let text = match decode(word) {
            Ok(inst) => inst.to_string(),
            Err(_) => format!(".word {word:#010x}"),
        };
        let labels =
            image.symbols().filter(|(_, a)| *a == addr).map(|(n, _)| n.to_string()).collect();
        lines.push(DisasmLine { addr, word, text, labels });
        addr += 4;
    }
    lines
}

/// Renders a full listing, objdump-style.
pub fn listing(image: &Image) -> String {
    let mut out = String::new();
    for line in disassemble(image) {
        for label in &line.labels {
            let _ = writeln!(out, "{label}:");
        }
        let _ = writeln!(out, "  {:#010x}:  {:08x}    {}", line.addr, line.word, line.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_shows_labels_and_text() {
        let img = assemble(
            "main: addik r3, r0, 5\n\
             loop: addik r3, r3, -1\n\
                   bneid r3, loop\n\
                   nop\n\
                   halt\n",
        )
        .unwrap();
        let text = listing(&img);
        assert!(text.contains("main:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("addik r3, r0, 5"));
        assert!(text.contains("bneid r3, -4"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn data_words_render_as_word_directives() {
        let img = assemble(".word 0xffffffff\n").unwrap();
        let lines = disassemble(&img);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].text.starts_with(".word"));
    }

    #[test]
    fn round_trip_disassemble_reassemble() {
        let src = "start: addk r3, r4, r5\n\
                   muli r6, r3, 100\n\
                   put r6, rfsl0\n\
                   get r7, rfsl0\n\
                   halt\n";
        let img = assemble(src).unwrap();
        // Re-assemble the disassembly and compare words.
        let relisted: String = disassemble(&img).iter().map(|l| format!("{}\n", l.text)).collect();
        let img2 = assemble(&relisted).unwrap();
        assert_eq!(img.bytes(), img2.bytes());
    }
}
