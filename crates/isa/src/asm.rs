//! The MB32 two-pass assembler.
//!
//! This plays the role of `mb-gcc`/`mb-as` in the paper's tool flow: it
//! turns textual programs into [`Image`]s that the instruction-set
//! simulator (and the RTL processor model) execute.
//!
//! # Syntax
//!
//! * One statement per line; `#`, `;` and `//` start comments.
//! * `label:` (one or more) may prefix a statement.
//! * Directives: `.org ADDR`, `.word E[, E]*`, `.half E[, E]*`,
//!   `.byte E[, E]*`, `.space N`, `.align N`, `.equ NAME, E`.
//! * Operands are registers (`r0`..`r31`, `sp`, `lr`), FSL channels
//!   (`rfsl0`..`rfsl7`), or constant expressions over integers, labels and
//!   `.equ` symbols with `+`, `-`, `*` and parentheses.
//! * Branch targets written as expressions are labels: relative branches
//!   (`bri`, `beqi`, ...) assemble the displacement `target - pc`
//!   automatically; absolute branches (`brai`, `bralid`, ...) use the
//!   address itself.
//! * Pseudo-instructions: `nop`; `li rd, expr32` and `la rd, label`
//!   (each exactly two words: `imm` + `addik`); `halt`.
//!
//! # Example
//!
//! ```
//! use softsim_isa::asm::assemble;
//! let img = assemble(r"
//!     .equ N, 10
//!         addik r3, r0, N      # counter
//!         addk  r4, r0, r0     # sum = 0
//! loop:   addk  r4, r4, r3
//!         addik r3, r3, -1
//!         bneid r3, loop
//!         or    r0, r0, r0     # delay slot
//!         halt
//! ").unwrap();
//! assert_eq!(img.symbol("loop"), Some(8));
//! ```

use crate::encode::encode;
use crate::image::Image;
use crate::inst::{ArithFlags, BarrelOp, Cond, FslChan, FslMode, Inst, LogicOp, MemSize, ShiftOp};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// One assembler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Assembly failed; all collected diagnostics are reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Every error found (the assembler does not stop at the first).
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "assembly failed with {} error(s):", self.diagnostics.len())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AsmError {}

/// A constant expression over numbers and symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    Num(i64),
    Sym(String),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    /// True when the expression contains no symbols (a pure constant).
    fn is_constant(&self) -> bool {
        match self {
            Expr::Num(_) => true,
            Expr::Sym(_) => false,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.is_constant() && b.is_constant()
            }
            Expr::Neg(a) => a.is_constant(),
        }
    }

    fn eval(&self, syms: &BTreeMap<String, i64>) -> Result<i64, String> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Sym(s) => *syms.get(s).ok_or_else(|| format!("undefined symbol `{s}`"))?,
            Expr::Add(a, b) => a.eval(syms)?.wrapping_add(b.eval(syms)?),
            Expr::Sub(a, b) => a.eval(syms)?.wrapping_sub(b.eval(syms)?),
            Expr::Mul(a, b) => a.eval(syms)?.wrapping_mul(b.eval(syms)?),
            Expr::Neg(a) => a.eval(syms)?.wrapping_neg(),
        })
    }
}

/// How the immediate expression of a pending instruction is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ImmKind {
    /// Signed 16-bit constant.
    Plain,
    /// Unsigned 16-bit constant (the `imm` prefix).
    Unsigned16,
    /// PC-relative branch displacement (`target - pc`).
    Relative,
    /// Absolute branch target address.
    Absolute,
    /// 5-bit barrel-shift amount.
    Shift5,
}

/// A parsed statement waiting for pass 2.
#[derive(Debug, Clone)]
enum Item {
    /// One machine instruction; `imm` (if any) patches the prototype.
    Inst {
        proto: Inst,
        imm: Option<(Expr, ImmKind)>,
    },
    /// `li`/`la` pseudo: always two words (`imm` + `addik`).
    LoadImm32 {
        rd: Reg,
        expr: Expr,
    },
    Word(Vec<Expr>),
    Half(Vec<Expr>),
    Byte(Vec<Expr>),
    Space(u32),
    Align(u32),
}

impl Item {
    fn size(&self) -> u32 {
        match self {
            Item::Inst { .. } => 4,
            Item::LoadImm32 { .. } => 8,
            Item::Word(es) => 4 * es.len() as u32,
            Item::Half(es) => 2 * es.len() as u32,
            Item::Byte(es) => es.len() as u32,
            Item::Space(n) => *n,
            Item::Align(_) => 0, // handled specially during layout
        }
    }
}

struct Assembler {
    items: Vec<(usize, u32, Item)>, // (line, addr, item)
    symbols: BTreeMap<String, i64>,
    /// Names defined with `label:` syntax (a subset of `symbols` keys);
    /// the rest are `.equ` constants. The image records the distinction.
    label_names: std::collections::BTreeSet<String>,
    diagnostics: Vec<Diagnostic>,
    pc: u32,
    org_set: bool,
    base: u32,
}

/// Assembles MB32 source text into an [`Image`].
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let mut asm = Assembler {
        items: Vec::new(),
        symbols: BTreeMap::new(),
        label_names: std::collections::BTreeSet::new(),
        diagnostics: Vec::new(),
        pc: 0,
        org_set: false,
        base: 0,
    };
    asm.pass1(source);
    asm.pass2()
}

impl Assembler {
    fn error(&mut self, line: usize, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic { line, message: message.into() });
    }

    fn pass1(&mut self, source: &str) {
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let mut text = strip_comment(raw_line).trim();
            // Labels (possibly several per line).
            while let Some(colon) = find_label_colon(text) {
                let label = text[..colon].trim();
                if !is_ident(label) {
                    self.error(line_no, format!("invalid label name `{label}`"));
                } else if self.symbols.contains_key(label) {
                    self.error(line_no, format!("duplicate label `{label}`"));
                } else {
                    self.symbols.insert(label.to_string(), self.pc as i64);
                    self.label_names.insert(label.to_string());
                }
                text = text[colon + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            match self.parse_statement(line_no, text) {
                Ok(Some(item)) => {
                    if let Item::Align(n) = item {
                        if n.is_power_of_two() {
                            self.pc = self.pc.next_multiple_of(n);
                        } else {
                            self.error(line_no, ".align argument must be a power of two");
                        }
                        continue;
                    }
                    let size = item.size();
                    self.items.push((line_no, self.pc, item));
                    self.pc += size;
                }
                Ok(None) => {}
                Err(msg) => self.error(line_no, msg),
            }
        }
    }

    fn parse_statement(&mut self, line: usize, text: &str) -> Result<Option<Item>, String> {
        let (head, rest) = split_mnemonic(text);
        let operands = split_operands(rest);
        if let Some(directive) = head.strip_prefix('.') {
            return self.parse_directive(line, directive, &operands);
        }
        parse_instruction(head, &operands).map(Some)
    }

    fn parse_directive(
        &mut self,
        line: usize,
        directive: &str,
        ops: &[&str],
    ) -> Result<Option<Item>, String> {
        match directive {
            "org" => {
                let [op] = ops else { return Err(".org takes one operand".into()) };
                let expr = parse_expr(op)?;
                let addr = expr
                    .eval(&self.symbols)
                    .map_err(|e| format!(".org operand must be constant: {e}"))?;
                let addr = u32::try_from(addr).map_err(|_| ".org address out of range")?;
                if !self.org_set && self.items.is_empty() {
                    self.base = addr;
                    self.org_set = true;
                } else if addr < self.pc {
                    return Err(".org may not move backwards".into());
                }
                self.pc = addr;
                Ok(None)
            }
            "equ" => {
                let [name, value] = ops else { return Err(".equ takes `name, value`".into()) };
                if !is_ident(name) {
                    return Err(format!("invalid symbol name `{name}`"));
                }
                let v = parse_expr(value)?
                    .eval(&self.symbols)
                    .map_err(|e| format!(".equ value must be constant: {e}"))?;
                if self.symbols.insert(name.to_string(), v).is_some() {
                    self.error(line, format!("duplicate symbol `{name}`"));
                }
                Ok(None)
            }
            "word" | "half" | "byte" => {
                if ops.is_empty() {
                    return Err(format!(".{directive} needs at least one value"));
                }
                let exprs = ops.iter().map(|o| parse_expr(o)).collect::<Result<Vec<_>, _>>()?;
                Ok(Some(match directive {
                    "word" => Item::Word(exprs),
                    "half" => Item::Half(exprs),
                    _ => Item::Byte(exprs),
                }))
            }
            "space" => {
                let [op] = ops else { return Err(".space takes one operand".into()) };
                let n = parse_expr(op)?
                    .eval(&self.symbols)
                    .map_err(|e| format!(".space size must be constant: {e}"))?;
                let n = u32::try_from(n).map_err(|_| ".space size out of range")?;
                Ok(Some(Item::Space(n)))
            }
            "align" => {
                let [op] = ops else { return Err(".align takes one operand".into()) };
                let n = parse_expr(op)?
                    .eval(&self.symbols)
                    .map_err(|e| format!(".align operand must be constant: {e}"))?;
                let n = u32::try_from(n).map_err(|_| ".align out of range")?;
                Ok(Some(Item::Align(n)))
            }
            _ => Err(format!("unknown directive `.{directive}`")),
        }
    }

    fn pass2(mut self) -> Result<Image, AsmError> {
        let mut image = Image::new(self.base);
        let items = std::mem::take(&mut self.items);
        for (line, addr, item) in &items {
            if let Err(msg) = self.emit(&mut image, *addr, item) {
                self.error(*line, msg);
            }
        }
        for (name, value) in &self.symbols {
            if let Ok(addr) = u32::try_from(*value) {
                if self.label_names.contains(name) {
                    image.define_label(name.clone(), addr);
                } else {
                    image.define_symbol(name.clone(), addr);
                }
            }
        }
        if !self.diagnostics.is_empty() {
            return Err(AsmError { diagnostics: self.diagnostics });
        }
        image.set_entry(self.base);
        Ok(image)
    }

    fn emit(&self, image: &mut Image, addr: u32, item: &Item) -> Result<(), String> {
        match item {
            Item::Inst { proto, imm } => {
                let inst = match imm {
                    None => *proto,
                    Some((expr, kind)) => {
                        let value = expr.eval(&self.symbols)?;
                        let value = match kind {
                            ImmKind::Relative => value - addr as i64,
                            _ => value,
                        };
                        patch_imm(*proto, value, *kind)?
                    }
                };
                image.write_u32(addr, encode(&inst));
            }
            Item::LoadImm32 { rd, expr } => {
                let value = expr.eval(&self.symbols)?;
                let value = i64_to_u32(value)
                    .ok_or_else(|| format!("li value {value} does not fit in 32 bits"))?;
                let hi = (value >> 16) as u16;
                let lo = (value & 0xFFFF) as i16;
                image.write_u32(addr, encode(&Inst::Imm { imm: hi }));
                image.write_u32(
                    addr + 4,
                    encode(&Inst::AddI { rd: *rd, ra: Reg::R0, imm: lo, flags: ArithFlags::KEEP }),
                );
            }
            Item::Word(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    let v = e.eval(&self.symbols)?;
                    let v = i64_to_u32(v)
                        .ok_or_else(|| format!(".word value {v} does not fit in 32 bits"))?;
                    image.write_u32(addr + 4 * i as u32, v);
                }
            }
            Item::Half(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    let v = e.eval(&self.symbols)?;
                    if !(-0x8000..=0xFFFF).contains(&v) {
                        return Err(format!(".half value {v} does not fit in 16 bits"));
                    }
                    image.write_u16(addr + 2 * i as u32, v as u16);
                }
            }
            Item::Byte(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    let v = e.eval(&self.symbols)?;
                    if !(-0x80..=0xFF).contains(&v) {
                        return Err(format!(".byte value {v} does not fit in 8 bits"));
                    }
                    image.write_u8(addr + i as u32, v as u8);
                }
            }
            Item::Space(n) => {
                if *n > 0 {
                    image.write_u8(addr + n - 1, 0);
                }
            }
            Item::Align(_) => unreachable!("alignment handled in pass 1"),
        }
        Ok(())
    }
}

fn i64_to_u32(v: i64) -> Option<u32> {
    if (0..=u32::MAX as i64).contains(&v) {
        Some(v as u32)
    } else if (i32::MIN as i64..0).contains(&v) {
        Some(v as i32 as u32)
    } else {
        None
    }
}

fn patch_imm(proto: Inst, value: i64, kind: ImmKind) -> Result<Inst, String> {
    match kind {
        ImmKind::Unsigned16 => {
            if !(-0x8000..=0xFFFF).contains(&value) {
                return Err(format!("imm value {value} does not fit in 16 bits"));
            }
            return Ok(Inst::Imm { imm: value as u16 });
        }
        ImmKind::Shift5 => {
            if !(0..=31).contains(&value) {
                return Err(format!("shift amount {value} out of range 0..=31"));
            }
            if let Inst::BarrelI { op, rd, ra, .. } = proto {
                return Ok(Inst::BarrelI { op, rd, ra, amount: value as u8 });
            }
            unreachable!("Shift5 only used with BarrelI");
        }
        _ => {}
    }
    if !(-0x8000..=0x7FFF).contains(&value) {
        return Err(match kind {
            ImmKind::Relative => format!(
                "branch displacement {value} does not fit in 16 bits; move the target closer"
            ),
            _ => format!("immediate {value} does not fit in 16 bits; use `li`"),
        });
    }
    let imm = value as i16;
    Ok(match proto {
        Inst::AddI { rd, ra, flags, .. } => Inst::AddI { rd, ra, imm, flags },
        Inst::RsubI { rd, ra, flags, .. } => Inst::RsubI { rd, ra, imm, flags },
        Inst::MulI { rd, ra, .. } => Inst::MulI { rd, ra, imm },
        Inst::LogicI { op, rd, ra, .. } => Inst::LogicI { op, rd, ra, imm },
        Inst::LoadI { size, rd, ra, .. } => Inst::LoadI { size, rd, ra, imm },
        Inst::StoreI { size, rd, ra, .. } => Inst::StoreI { size, rd, ra, imm },
        Inst::BrI { link, absolute, delay, .. } => Inst::BrI { imm, link, absolute, delay },
        Inst::BccI { cond, ra, delay, .. } => Inst::BccI { cond, ra, imm, delay },
        Inst::Rtsd { ra, .. } => Inst::Rtsd { ra, imm },
        other => unreachable!("no immediate slot in {other:?}"),
    })
}

// ---------------------------------------------------------------------------
// Line-level lexing helpers
// ---------------------------------------------------------------------------

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == '#' || c == ';' {
            end = i;
            break;
        }
        if c == '/' && line[i..].starts_with("//") {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let candidate = text[..colon].trim();
    if is_ident(candidate) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with('.')
}

fn split_mnemonic(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    }
}

fn split_operands(rest: &str) -> Vec<&str> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(str::trim).collect()
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence: unary -, then *, then + -)
// ---------------------------------------------------------------------------

fn parse_expr(text: &str) -> Result<Expr, String> {
    let tokens = tokenize_expr(text)?;
    let mut pos = 0;
    let expr = parse_additive(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("unexpected `{}` in expression `{text}`", tokens[pos]));
    }
    Ok(expr)
}

fn tokenize_expr(text: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            c if c.is_whitespace() => {}
            '+' | '-' | '*' | '(' | ')' => tokens.push(c.to_string()),
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut end = i + c.len_utf8();
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(text[i..end].to_string());
            }
            other => return Err(format!("unexpected character `{other}` in expression")),
        }
    }
    if tokens.is_empty() {
        return Err("empty expression".into());
    }
    Ok(tokens)
}

fn parse_additive(tokens: &[String], pos: &mut usize) -> Result<Expr, String> {
    let mut lhs = parse_multiplicative(tokens, pos)?;
    while *pos < tokens.len() {
        match tokens[*pos].as_str() {
            "+" => {
                *pos += 1;
                lhs = Expr::Add(Box::new(lhs), Box::new(parse_multiplicative(tokens, pos)?));
            }
            "-" => {
                *pos += 1;
                lhs = Expr::Sub(Box::new(lhs), Box::new(parse_multiplicative(tokens, pos)?));
            }
            _ => break,
        }
    }
    Ok(lhs)
}

fn parse_multiplicative(tokens: &[String], pos: &mut usize) -> Result<Expr, String> {
    let mut lhs = parse_unary(tokens, pos)?;
    while *pos < tokens.len() && tokens[*pos] == "*" {
        *pos += 1;
        lhs = Expr::Mul(Box::new(lhs), Box::new(parse_unary(tokens, pos)?));
    }
    Ok(lhs)
}

fn parse_unary(tokens: &[String], pos: &mut usize) -> Result<Expr, String> {
    if *pos >= tokens.len() {
        return Err("expression ends unexpectedly".into());
    }
    match tokens[*pos].as_str() {
        "-" => {
            *pos += 1;
            Ok(Expr::Neg(Box::new(parse_unary(tokens, pos)?)))
        }
        "+" => {
            *pos += 1;
            parse_unary(tokens, pos)
        }
        "(" => {
            *pos += 1;
            let inner = parse_additive(tokens, pos)?;
            if *pos >= tokens.len() || tokens[*pos] != ")" {
                return Err("missing `)`".into());
            }
            *pos += 1;
            Ok(inner)
        }
        tok => {
            *pos += 1;
            if let Some(num) = parse_number(tok) {
                Ok(Expr::Num(num))
            } else if is_ident(tok) {
                Ok(Expr::Sym(tok.to_string()))
            } else {
                Err(format!("cannot parse `{tok}`"))
            }
        }
    }
}

fn parse_number(tok: &str) -> Option<i64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = tok.strip_prefix("0b").or_else(|| tok.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()
    } else if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        tok.parse().ok()
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Instruction parsing
// ---------------------------------------------------------------------------

fn reg_operand(op: &str) -> Result<Reg, String> {
    Reg::parse(op).ok_or_else(|| format!("expected register, found `{op}`"))
}

fn fsl_operand(op: &str) -> Result<FslChan, String> {
    let lower = op.to_ascii_lowercase();
    let digits = lower.strip_prefix("rfsl").unwrap_or(&lower);
    let n: u8 = digits.parse().map_err(|_| format!("expected FSL channel, found `{op}`"))?;
    FslChan::try_new(n).ok_or_else(|| format!("FSL channel `{op}` out of range 0..=7"))
}

/// rd, ra, rb
fn three_regs(ops: &[&str]) -> Result<(Reg, Reg, Reg), String> {
    let [a, b, c] = ops else { return Err("expected `rd, ra, rb`".into()) };
    Ok((reg_operand(a)?, reg_operand(b)?, reg_operand(c)?))
}

/// rd, ra, imm-expr
fn two_regs_imm(ops: &[&str]) -> Result<(Reg, Reg, Expr), String> {
    let [a, b, e] = ops else { return Err("expected `rd, ra, imm`".into()) };
    Ok((reg_operand(a)?, reg_operand(b)?, parse_expr(e)?))
}

fn two_regs(ops: &[&str]) -> Result<(Reg, Reg), String> {
    let [a, b] = ops else { return Err("expected `rd, ra`".into()) };
    Ok((reg_operand(a)?, reg_operand(b)?))
}

fn inst_item(proto: Inst) -> Item {
    Item::Inst { proto, imm: None }
}

fn imm_item(proto: Inst, expr: Expr, kind: ImmKind) -> Item {
    Item::Inst { proto, imm: Some((expr, kind)) }
}

fn parse_instruction(mnemonic: &str, ops: &[&str]) -> Result<Item, String> {
    let m = mnemonic.to_ascii_lowercase();
    // add/rsub families (with c/k/kc suffixes and optional `i`).
    if let Some(item) = parse_arith(&m, ops)? {
        return Ok(item);
    }
    if let Some(item) = parse_branch(&m, ops)? {
        return Ok(item);
    }
    if let Some(item) = parse_fsl(&m, ops)? {
        return Ok(item);
    }
    let placeholder = 0i16;
    Ok(match m.as_str() {
        "cmp" | "cmpu" => {
            let (rd, ra, rb) = three_regs(ops)?;
            inst_item(Inst::Cmp { rd, ra, rb, unsigned: m == "cmpu" })
        }
        "mul" => {
            let (rd, ra, rb) = three_regs(ops)?;
            inst_item(Inst::Mul { rd, ra, rb })
        }
        "idiv" | "idivu" => {
            let (rd, ra, rb) = three_regs(ops)?;
            inst_item(Inst::Div { rd, ra, rb, unsigned: m == "idivu" })
        }
        "muli" => {
            let (rd, ra, e) = two_regs_imm(ops)?;
            imm_item(Inst::MulI { rd, ra, imm: placeholder }, e, ImmKind::Plain)
        }
        "or" | "and" | "xor" | "andn" => {
            let op = logic_op(&m);
            let (rd, ra, rb) = three_regs(ops)?;
            inst_item(Inst::Logic { op, rd, ra, rb })
        }
        "ori" | "andi" | "xori" | "andni" => {
            let op = logic_op(&m[..m.len() - 1]);
            let (rd, ra, e) = two_regs_imm(ops)?;
            imm_item(Inst::LogicI { op, rd, ra, imm: placeholder }, e, ImmKind::Plain)
        }
        "sra" | "src" | "srl" => {
            let op = match m.as_str() {
                "sra" => ShiftOp::Sra,
                "src" => ShiftOp::Src,
                _ => ShiftOp::Srl,
            };
            let (rd, ra) = two_regs(ops)?;
            inst_item(Inst::Shift { op, rd, ra })
        }
        "sext8" | "sext16" => {
            let (rd, ra) = two_regs(ops)?;
            inst_item(Inst::Sext { rd, ra, half: m == "sext16" })
        }
        "bsll" | "bsrl" | "bsra" => {
            let op = barrel_op(&m);
            let (rd, ra, rb) = three_regs(ops)?;
            inst_item(Inst::Barrel { op, rd, ra, rb })
        }
        "bslli" | "bsrli" | "bsrai" => {
            let op = barrel_op(&m[..m.len() - 1]);
            let (rd, ra, e) = two_regs_imm(ops)?;
            imm_item(Inst::BarrelI { op, rd, ra, amount: 0 }, e, ImmKind::Shift5)
        }
        "lbu" | "lhu" | "lw" | "sb" | "sh" | "sw" => {
            let (size, store) = mem_op(&m);
            let (rd, ra, rb) = three_regs(ops)?;
            if store {
                inst_item(Inst::Store { size, rd, ra, rb })
            } else {
                inst_item(Inst::Load { size, rd, ra, rb })
            }
        }
        "lbui" | "lhui" | "lwi" | "sbi" | "shi" | "swi" => {
            let (size, store) = mem_op(&m[..m.len() - 1]);
            let (rd, ra, e) = two_regs_imm(ops)?;
            let proto = if store {
                Inst::StoreI { size, rd, ra, imm: placeholder }
            } else {
                Inst::LoadI { size, rd, ra, imm: placeholder }
            };
            imm_item(proto, e, ImmKind::Plain)
        }
        "rtsd" => {
            let [a, e] = ops else { return Err("expected `rtsd ra, imm`".into()) };
            imm_item(
                Inst::Rtsd { ra: reg_operand(a)?, imm: placeholder },
                parse_expr(e)?,
                ImmKind::Plain,
            )
        }
        "imm" => {
            let [e] = ops else { return Err("expected `imm value`".into()) };
            imm_item(Inst::Imm { imm: 0 }, parse_expr(e)?, ImmKind::Unsigned16)
        }
        "li" | "la" => {
            let [a, e] = ops else { return Err(format!("expected `{m} rd, value`")) };
            Item::LoadImm32 { rd: reg_operand(a)?, expr: parse_expr(e)? }
        }
        "nop" => {
            if !ops.is_empty() {
                return Err("nop takes no operands".into());
            }
            inst_item(Inst::NOP)
        }
        "halt" => {
            if !ops.is_empty() {
                return Err("halt takes no operands".into());
            }
            inst_item(Inst::Halt)
        }
        _ => return Err(format!("unknown mnemonic `{mnemonic}`")),
    })
}

fn logic_op(base: &str) -> LogicOp {
    match base {
        "or" => LogicOp::Or,
        "and" => LogicOp::And,
        "xor" => LogicOp::Xor,
        _ => LogicOp::Andn,
    }
}

fn barrel_op(base: &str) -> BarrelOp {
    match base {
        "bsll" => BarrelOp::Bsll,
        "bsrl" => BarrelOp::Bsrl,
        _ => BarrelOp::Bsra,
    }
}

fn mem_op(base: &str) -> (MemSize, bool) {
    match base {
        "lbu" => (MemSize::Byte, false),
        "lhu" => (MemSize::Half, false),
        "lw" => (MemSize::Word, false),
        "sb" => (MemSize::Byte, true),
        "sh" => (MemSize::Half, true),
        _ => (MemSize::Word, true),
    }
}

fn parse_arith(m: &str, ops: &[&str]) -> Result<Option<Item>, String> {
    let (base, rest) = if let Some(r) = m.strip_prefix("addi") {
        ("addi", r)
    } else if let Some(r) = m.strip_prefix("add") {
        ("add", r)
    } else if let Some(r) = m.strip_prefix("rsubi") {
        ("rsubi", r)
    } else if let Some(r) = m.strip_prefix("rsub") {
        ("rsub", r)
    } else {
        return Ok(None);
    };
    let flags = match rest {
        "" => ArithFlags::PLAIN,
        "c" => ArithFlags { carry_in: true, keep: false },
        "k" => ArithFlags::KEEP,
        "kc" | "ck" => ArithFlags { carry_in: true, keep: true },
        _ => return Ok(None),
    };
    let rsub = base.starts_with("rsub");
    let item = if base.ends_with('i') {
        let (rd, ra, e) = two_regs_imm(ops)?;
        let proto = if rsub {
            Inst::RsubI { rd, ra, imm: 0, flags }
        } else {
            Inst::AddI { rd, ra, imm: 0, flags }
        };
        imm_item(proto, e, ImmKind::Plain)
    } else {
        let (rd, ra, rb) = three_regs(ops)?;
        if rsub {
            inst_item(Inst::Rsub { rd, ra, rb, flags })
        } else {
            inst_item(Inst::Add { rd, ra, rb, flags })
        }
    };
    Ok(Some(item))
}

fn parse_branch(m: &str, ops: &[&str]) -> Result<Option<Item>, String> {
    // Conditional branches: beq[i][d] etc.
    for (name, cond) in [
        ("beq", Cond::Eq),
        ("bne", Cond::Ne),
        ("blt", Cond::Lt),
        ("ble", Cond::Le),
        ("bgt", Cond::Gt),
        ("bge", Cond::Ge),
    ] {
        let Some(rest) = m.strip_prefix(name) else { continue };
        let (has_imm, delay) = match rest {
            "" => (false, false),
            "d" => (false, true),
            "i" => (true, false),
            "id" => (true, true),
            _ => continue,
        };
        let [a, t] = ops else { return Err(format!("expected `{m} ra, target`")) };
        let ra = reg_operand(a)?;
        return if has_imm {
            let expr = parse_expr(t)?;
            // A constant expression is a raw displacement, a symbolic one
            // a label target.
            let kind = if expr.is_constant() { ImmKind::Plain } else { ImmKind::Relative };
            Ok(Some(imm_item(Inst::BccI { cond, ra, imm: 0, delay }, expr, kind)))
        } else {
            Ok(Some(inst_item(Inst::Bcc { cond, ra, rb: reg_operand(t)?, delay })))
        };
    }
    // Unconditional branches: br[a][l][i][d] in MicroBlaze spelling order:
    // br, brd, brld, bra, brad, brald, bri, brid, brlid, brai, braid, bralid
    // (plus the no-delay link forms brl/brli/bral/brali for completeness).
    let Some(rest) = m.strip_prefix("br") else { return Ok(None) };
    let mut link = false;
    let mut absolute = false;
    let mut has_imm = false;
    let mut delay = false;
    let mut chars = rest.chars().peekable();
    if chars.peek() == Some(&'a') {
        absolute = true;
        chars.next();
    }
    if chars.peek() == Some(&'l') {
        link = true;
        chars.next();
    }
    if chars.peek() == Some(&'i') {
        has_imm = true;
        chars.next();
    }
    if chars.peek() == Some(&'d') {
        delay = true;
        chars.next();
    }
    if chars.next().is_some() {
        return Ok(None);
    }
    let (link_reg, target) = if link {
        let [l, t] = ops else { return Err(format!("expected `{m} rd, target`")) };
        (Some(reg_operand(l)?), *t)
    } else {
        let [t] = ops else { return Err(format!("expected `{m} target`")) };
        (None, *t)
    };
    let item = if has_imm {
        let expr = parse_expr(target)?;
        // A constant expression in a relative branch is a raw displacement
        // (matches hand-written MicroBlaze idiom `bri 0`); absolute
        // branches always take the value as the target address.
        let kind = if absolute {
            ImmKind::Absolute
        } else if expr.is_constant() {
            ImmKind::Plain
        } else {
            ImmKind::Relative
        };
        imm_item(Inst::BrI { imm: 0, link: link_reg, absolute, delay }, expr, kind)
    } else {
        inst_item(Inst::Br { rb: reg_operand(target)?, link: link_reg, absolute, delay })
    };
    Ok(Some(item))
}

fn parse_fsl(m: &str, ops: &[&str]) -> Result<Option<Item>, String> {
    let (rest, mode) = if let Some(r) = m.strip_prefix("nc") {
        (r, FslMode::NONBLOCKING_CONTROL)
    } else if let Some(r) = m.strip_prefix('n') {
        (r, FslMode::NONBLOCKING_DATA)
    } else if let Some(r) = m.strip_prefix('c') {
        (r, FslMode::BLOCKING_CONTROL)
    } else {
        (m, FslMode::BLOCKING_DATA)
    };
    let get = match rest {
        "get" => true,
        "put" => false,
        _ => return Ok(None),
    };
    let [r, ch] = ops else { return Err(format!("expected `{m} reg, rfslN`")) };
    let reg = reg_operand(r)?;
    let chan = fsl_operand(ch)?;
    Ok(Some(inst_item(if get {
        Inst::Get { rd: reg, chan, mode }
    } else {
        Inst::Put { ra: reg, chan, mode }
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use crate::reg::r;

    fn one(src: &str) -> Inst {
        let img = assemble(src).expect(src);
        decode(img.read_u32(0)).unwrap()
    }

    #[test]
    fn assembles_basic_instructions() {
        assert_eq!(
            one("addk r3, r4, r5"),
            Inst::Add { rd: r(3), ra: r(4), rb: r(5), flags: ArithFlags::KEEP }
        );
        assert_eq!(
            one("addik r1, r1, -28"),
            Inst::AddI { rd: r(1), ra: r(1), imm: -28, flags: ArithFlags::KEEP }
        );
        assert_eq!(one("mul r5, r6, r7"), Inst::Mul { rd: r(5), ra: r(6), rb: r(7) });
        assert_eq!(
            one("lwi r3, r1, 8"),
            Inst::LoadI { size: MemSize::Word, rd: r(3), ra: r(1), imm: 8 }
        );
        assert_eq!(
            one("bsrai r4, r4, 14"),
            Inst::BarrelI { op: BarrelOp::Bsra, rd: r(4), ra: r(4), amount: 14 }
        );
        assert_eq!(one("halt"), Inst::Halt);
        assert_eq!(one("nop"), Inst::NOP);
    }

    #[test]
    fn assembles_fsl_instructions() {
        assert_eq!(
            one("put r3, rfsl0"),
            Inst::Put { ra: r(3), chan: FslChan::new(0), mode: FslMode::BLOCKING_DATA }
        );
        assert_eq!(
            one("ncget r9, rfsl5"),
            Inst::Get { rd: r(9), chan: FslChan::new(5), mode: FslMode::NONBLOCKING_CONTROL }
        );
        assert_eq!(
            one("cput r2, rfsl1"),
            Inst::Put { ra: r(2), chan: FslChan::new(1), mode: FslMode::BLOCKING_CONTROL }
        );
    }

    #[test]
    fn label_branches_are_relative() {
        let img = assemble(
            "start: addk r3, r0, r0\n\
             loop:  addik r3, r3, 1\n\
                    bneid r3, loop\n\
                    nop\n\
                    halt\n",
        )
        .unwrap();
        // bneid is the third instruction, at address 8; loop is at 4.
        let inst = decode(img.read_u32(8)).unwrap();
        assert_eq!(inst, Inst::BccI { cond: Cond::Ne, ra: r(3), imm: -4, delay: true });
    }

    #[test]
    fn forward_references_resolve() {
        let img = assemble(
            "bri done\n\
             nop\n\
             done: halt\n",
        )
        .unwrap();
        let inst = decode(img.read_u32(0)).unwrap();
        assert_eq!(inst, Inst::BrI { imm: 8, link: None, absolute: false, delay: false });
    }

    #[test]
    fn numeric_relative_branch_is_raw_displacement() {
        // Hand-written MicroBlaze idiom: `bri 0` spins in place.
        let inst = one("bri 0");
        assert_eq!(inst, Inst::BrI { imm: 0, link: None, absolute: false, delay: false });
    }

    #[test]
    fn call_and_return() {
        let img = assemble(
            "      brlid r15, func\n\
                   nop\n\
                   halt\n\
             func: rtsd r15, 8\n\
                   nop\n",
        )
        .unwrap();
        assert_eq!(
            decode(img.read_u32(0)).unwrap(),
            Inst::BrI { imm: 12, link: Some(r(15)), absolute: false, delay: true }
        );
        assert_eq!(decode(img.read_u32(12)).unwrap(), Inst::Rtsd { ra: r(15), imm: 8 });
    }

    #[test]
    fn li_expands_to_imm_addik() {
        let img = assemble("li r5, 0x12345678").unwrap();
        assert_eq!(decode(img.read_u32(0)).unwrap(), Inst::Imm { imm: 0x1234 });
        assert_eq!(
            decode(img.read_u32(4)).unwrap(),
            Inst::AddI { rd: r(5), ra: r(0), imm: 0x5678, flags: ArithFlags::KEEP }
        );
        // Negative low half must still reconstruct correctly through the
        // imm-prefix mechanism: 0x0001_8000 = imm 0x0001 ; addik 0x8000.
        let img = assemble("li r5, 0x18000").unwrap();
        assert_eq!(decode(img.read_u32(0)).unwrap(), Inst::Imm { imm: 0x0001 });
        assert_eq!(
            decode(img.read_u32(4)).unwrap(),
            Inst::AddI { rd: r(5), ra: r(0), imm: -0x8000, flags: ArithFlags::KEEP }
        );
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            ".equ SIZE, 4\n\
             table: .word 1, 2, 3, SIZE\n\
             bytes: .byte 0xFF, -1\n\
             halfs: .half 0x1234, -2\n\
             gap:   .space 6\n\
                    .align 4\n\
             end:   .word end\n",
        )
        .unwrap();
        assert_eq!(img.read_u32(0), 1);
        assert_eq!(img.read_u32(12), 4);
        assert_eq!(img.read_u8(16), 0xFF);
        assert_eq!(img.read_u8(17), 0xFF);
        assert_eq!(img.read_u32(18) >> 16, 0x1234);
        let end = img.symbol("end").unwrap();
        assert_eq!(end % 4, 0);
        assert_eq!(img.read_u32(end), end);
    }

    #[test]
    fn equ_and_expressions() {
        let img = assemble(
            ".equ BASE, 0x100\n\
             .equ COUNT, 8\n\
             addik r3, r0, BASE + COUNT * 4 - 1\n",
        )
        .unwrap();
        let inst = decode(img.read_u32(0)).unwrap();
        assert_eq!(inst, Inst::AddI { rd: r(3), ra: r(0), imm: 0x11F, flags: ArithFlags::KEEP });
    }

    #[test]
    fn errors_are_collected_with_line_numbers() {
        let err = assemble(
            "addk r3, r4\n\
             bogus r1, r2\n\
             addik r1, r0, 99999\n",
        )
        .unwrap_err();
        assert_eq!(err.diagnostics.len(), 3);
        assert_eq!(err.diagnostics[0].line, 1);
        assert!(err.diagnostics[1].message.contains("unknown mnemonic"));
        assert!(err.diagnostics[2].message.contains("does not fit"));
    }

    #[test]
    fn labels_recorded_as_labels_but_equ_is_not() {
        let img = assemble(
            ".equ NSAMPLES, 4\n\
             start: addik r3, r0, NSAMPLES\n\
             loop:  bri loop\n",
        )
        .unwrap();
        assert!(img.is_label("start"));
        assert!(img.is_label("loop"));
        assert!(!img.is_label("NSAMPLES"), ".equ constants are not code labels");
        // Both are still visible as symbols.
        assert_eq!(img.symbol("NSAMPLES"), Some(4));
        assert_eq!(img.labels(), vec![("start", 0), ("loop", 4)]);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(err.diagnostics[0].message.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("bri nowhere\n").unwrap_err();
        assert!(err.diagnostics[0].message.contains("undefined symbol"));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let src = format!("bri far\n.space {}\nfar: halt\n", 0x10000);
        let err = assemble(&src).unwrap_err();
        assert!(err.diagnostics[0].message.contains("displacement"));
    }

    #[test]
    fn org_sets_base() {
        let img = assemble(".org 0x200\nentry: halt\n").unwrap();
        assert_eq!(img.base(), 0x200);
        assert_eq!(img.symbol("entry"), Some(0x200));
        assert_eq!(img.entry(), 0x200);
    }

    #[test]
    fn comments_all_styles() {
        let img = assemble(
            "nop # hash\n\
             nop ; semi\n\
             nop // slashes\n",
        )
        .unwrap();
        assert_eq!(img.len_bytes(), 12);
    }
}
