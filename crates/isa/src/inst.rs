//! The MB32 instruction set.
//!
//! MB32 is a 32-bit RISC instruction set modeled closely on Xilinx
//! MicroBlaze (the soft processor used in the paper): 32 general-purpose
//! registers, a machine-status register with a carry flag, an `imm` prefix
//! instruction for 32-bit immediates, delay-slot branches, and the eight
//! input / eight output Fast Simplex Link (FSL) channels with blocking /
//! non-blocking and data / control-word transfer variants.
//!
//! The enum in this module is the single source of truth: the encoder,
//! decoder, assembler, disassembler, instruction-set simulator and the RTL
//! processor model all consume [`Inst`].

use crate::reg::Reg;
use std::fmt;

/// Arithmetic flavor shared by `add*`/`rsub*` families.
///
/// MicroBlaze spells these as suffixes: `c` = use carry-in, `k` = keep
/// (do not update) the carry flag. `addk rd, ra, rb` is the plain
/// non-flag-writing addition; `add` writes carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArithFlags {
    /// Add the MSR carry bit into the sum.
    pub carry_in: bool,
    /// Keep MSR carry unchanged (do not write carry-out).
    pub keep: bool,
}

impl ArithFlags {
    /// Plain flag-writing arithmetic (`add` / `rsub`).
    pub const PLAIN: ArithFlags = ArithFlags { carry_in: false, keep: false };
    /// Carry-keeping arithmetic (`addk` / `rsubk`).
    pub const KEEP: ArithFlags = ArithFlags { carry_in: false, keep: true };

    /// The two-bit `{carry_in, keep}` encoding used in opcodes.
    pub const fn bits(self) -> u32 {
        (self.carry_in as u32) | ((self.keep as u32) << 1)
    }

    /// Inverse of [`ArithFlags::bits`].
    pub const fn from_bits(bits: u32) -> ArithFlags {
        ArithFlags { carry_in: bits & 1 != 0, keep: bits & 2 != 0 }
    }

    fn suffix(self) -> &'static str {
        match (self.carry_in, self.keep) {
            (false, false) => "",
            (true, false) => "c",
            (false, true) => "k",
            (true, true) => "kc",
        }
    }
}

/// Bitwise logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Bitwise XOR.
    Xor,
    /// AND with complement of the second operand (`ra & !rb`).
    Andn,
}

impl LogicOp {
    /// All logic operations, for exhaustive tests.
    pub const ALL: [LogicOp; 4] = [LogicOp::Or, LogicOp::And, LogicOp::Xor, LogicOp::Andn];

    fn mnemonic(self) -> &'static str {
        match self {
            LogicOp::Or => "or",
            LogicOp::And => "and",
            LogicOp::Xor => "xor",
            LogicOp::Andn => "andn",
        }
    }
}

/// Single-bit right-shift variants (`sra`, `src`, `srl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Arithmetic shift right: bit 31 replicated, bit 0 → carry.
    Sra,
    /// Shift right through carry: carry → bit 31, bit 0 → carry.
    Src,
    /// Logical shift right: 0 → bit 31, bit 0 → carry.
    Srl,
}

impl ShiftOp {
    /// All one-bit shifts, for exhaustive tests.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Sra, ShiftOp::Src, ShiftOp::Srl];

    fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sra => "sra",
            ShiftOp::Src => "src",
            ShiftOp::Srl => "srl",
        }
    }
}

/// Barrel-shift variants (`bsll`, `bsrl`, `bsra`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrelOp {
    /// Barrel shift left logical.
    Bsll,
    /// Barrel shift right logical.
    Bsrl,
    /// Barrel shift right arithmetic.
    Bsra,
}

impl BarrelOp {
    /// All barrel shifts, for exhaustive tests.
    pub const ALL: [BarrelOp; 3] = [BarrelOp::Bsll, BarrelOp::Bsrl, BarrelOp::Bsra];

    fn mnemonic(self) -> &'static str {
        match self {
            BarrelOp::Bsll => "bsll",
            BarrelOp::Bsrl => "bsrl",
            BarrelOp::Bsra => "bsra",
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// Byte (loads zero-extend).
    Byte,
    /// Half-word, 16 bits (loads zero-extend; address must be 2-aligned).
    Half,
    /// Word, 32 bits (address must be 4-aligned).
    Word,
}

impl MemSize {
    /// Access width in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
        }
    }

    fn load_mnemonic(self) -> &'static str {
        match self {
            MemSize::Byte => "lbu",
            MemSize::Half => "lhu",
            MemSize::Word => "lw",
        }
    }

    fn store_mnemonic(self) -> &'static str {
        match self {
            MemSize::Byte => "sb",
            MemSize::Half => "sh",
            MemSize::Word => "sw",
        }
    }
}

/// Conditions for conditional branches.
///
/// As on MicroBlaze, conditional branches test a single register `ra`
/// against zero (there is no condition-code comparison in the branch
/// itself; `cmp`/`cmpu` produce a sign bit that the branch then tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if `ra == 0`.
    Eq,
    /// Branch if `ra != 0`.
    Ne,
    /// Branch if `ra < 0` (signed).
    Lt,
    /// Branch if `ra <= 0` (signed).
    Le,
    /// Branch if `ra > 0` (signed).
    Gt,
    /// Branch if `ra >= 0` (signed).
    Ge,
}

impl Cond {
    /// All branch conditions, for exhaustive tests.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// 3-bit encoding used in the `rd` field of branch instructions.
    pub const fn bits(self) -> u32 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
        }
    }

    /// Inverse of [`Cond::bits`].
    pub const fn from_bits(bits: u32) -> Option<Cond> {
        Some(match bits {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            _ => return None,
        })
    }

    /// Evaluates the condition against a register value.
    pub fn holds(self, value: u32) -> bool {
        let v = value as i32;
        match self {
            Cond::Eq => v == 0,
            Cond::Ne => v != 0,
            Cond::Lt => v < 0,
            Cond::Le => v <= 0,
            Cond::Gt => v > 0,
            Cond::Ge => v >= 0,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }
}

/// FSL channel index (0..=7). MicroBlaze supports eight input and eight
/// output Fast Simplex Links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslChan(u8);

impl FslChan {
    /// Number of FSL channels in each direction.
    pub const COUNT: usize = 8;

    /// Creates a channel index; panics if `n >= 8`.
    pub const fn new(n: u8) -> FslChan {
        assert!(n < 8, "FSL channel out of range");
        FslChan(n)
    }

    /// Creates a channel index, returning `None` when out of range.
    pub const fn try_new(n: u8) -> Option<FslChan> {
        if n < 8 {
            Some(FslChan(n))
        } else {
            None
        }
    }

    /// Channel index in `0..8`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FslChan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rfsl{}", self.0)
    }
}

/// FSL transfer mode flags shared by `get`/`put` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslMode {
    /// Non-blocking (`n` prefix): never stalls; sets carry to 1 when the
    /// transfer could not complete.
    pub non_blocking: bool,
    /// Control word (`c` prefix): transfers with the control bit set, used
    /// by the applications in the paper to mark configuration words.
    pub control: bool,
}

impl FslMode {
    /// Blocking data transfer.
    pub const BLOCKING_DATA: FslMode = FslMode { non_blocking: false, control: false };
    /// Blocking control-word transfer.
    pub const BLOCKING_CONTROL: FslMode = FslMode { non_blocking: false, control: true };
    /// Non-blocking data transfer.
    pub const NONBLOCKING_DATA: FslMode = FslMode { non_blocking: true, control: false };
    /// Non-blocking control-word transfer.
    pub const NONBLOCKING_CONTROL: FslMode = FslMode { non_blocking: true, control: true };

    /// All four transfer modes, for exhaustive tests.
    pub const ALL: [FslMode; 4] = [
        FslMode::BLOCKING_DATA,
        FslMode::BLOCKING_CONTROL,
        FslMode::NONBLOCKING_DATA,
        FslMode::NONBLOCKING_CONTROL,
    ];

    fn prefix(self) -> &'static str {
        match (self.non_blocking, self.control) {
            (false, false) => "",
            (false, true) => "c",
            (true, false) => "n",
            (true, true) => "nc",
        }
    }
}

/// A decoded MB32 instruction.
///
/// Field naming follows MicroBlaze uniformly across all variants: `rd` is
/// the destination register, `ra`/`rb` are sources, and `imm` is a 16-bit
/// immediate extended to 32 bits (sign-extended unless an [`Inst::Imm`]
/// prefix supplied the upper half) — so the per-variant doc comments
/// describe semantics and the fields are not re-documented individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `add/addc/addk/addkc rd, ra, rb` — rd = ra + rb (+ carry).
    Add { rd: Reg, ra: Reg, rb: Reg, flags: ArithFlags },
    /// `addi/... rd, ra, imm` — rd = ra + imm.
    AddI { rd: Reg, ra: Reg, imm: i16, flags: ArithFlags },
    /// `rsub/... rd, ra, rb` — rd = rb - ra (MicroBlaze reverse subtract).
    Rsub { rd: Reg, ra: Reg, rb: Reg, flags: ArithFlags },
    /// `rsubi/... rd, ra, imm` — rd = imm - ra.
    RsubI { rd: Reg, ra: Reg, imm: i16, flags: ArithFlags },
    /// `cmp/cmpu rd, ra, rb` — rd = rb - ra with bit 31 forced to the
    /// result of the (signed/unsigned) comparison `ra > rb`.
    Cmp { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// `mul rd, ra, rb` — 32×32→32 multiply; 3 cycles on MicroBlaze.
    Mul { rd: Reg, ra: Reg, rb: Reg },
    /// `idiv/idivu rd, ra, rb` — rd = rb ÷ ra (MicroBlaze reverse operand
    /// order, like `rsub`); requires the optional hardware divider and
    /// takes 32 cycles. Division by zero yields 0.
    Div { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// `muli rd, ra, imm`.
    MulI { rd: Reg, ra: Reg, imm: i16 },
    /// `or/and/xor/andn rd, ra, rb`.
    Logic { op: LogicOp, rd: Reg, ra: Reg, rb: Reg },
    /// `ori/andi/xori/andni rd, ra, imm`.
    LogicI { op: LogicOp, rd: Reg, ra: Reg, imm: i16 },
    /// `sra/src/srl rd, ra` — one-bit right shifts through carry.
    Shift { op: ShiftOp, rd: Reg, ra: Reg },
    /// `sext8/sext16 rd, ra` — sign extension.
    Sext { rd: Reg, ra: Reg, half: bool },
    /// `bsll/bsrl/bsra rd, ra, rb` — barrel shift by `rb[4:0]`.
    Barrel { op: BarrelOp, rd: Reg, ra: Reg, rb: Reg },
    /// `bslli/bsrli/bsrai rd, ra, amount` — barrel shift by constant.
    BarrelI { op: BarrelOp, rd: Reg, ra: Reg, amount: u8 },
    /// `lbu/lhu/lw rd, ra, rb` — load from `ra + rb`.
    Load { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// `lbui/lhui/lwi rd, ra, imm` — load from `ra + imm`.
    LoadI { size: MemSize, rd: Reg, ra: Reg, imm: i16 },
    /// `sb/sh/sw rd, ra, rb` — store rd to `ra + rb`.
    Store { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// `sbi/shi/swi rd, ra, imm` — store rd to `ra + imm`.
    StoreI { size: MemSize, rd: Reg, ra: Reg, imm: i16 },
    /// `br/brd/brld/bra/brad/brald [rd,] rb` — unconditional branch to
    /// `pc + rb` (relative) or `rb` (absolute), optionally linking the
    /// current PC into `rd`, optionally with a delay slot.
    Br { rb: Reg, link: Option<Reg>, absolute: bool, delay: bool },
    /// `bri/brid/brlid/brai/braid/bralid [rd,] imm` — immediate form.
    BrI { imm: i16, link: Option<Reg>, absolute: bool, delay: bool },
    /// `beq/bne/blt/ble/bgt/bge[d] ra, rb` — branch to `pc + rb` when the
    /// condition holds for `ra`.
    Bcc { cond: Cond, ra: Reg, rb: Reg, delay: bool },
    /// `beqi/.../bgei[d] ra, imm` — immediate conditional branch.
    BccI { cond: Cond, ra: Reg, imm: i16, delay: bool },
    /// `rtsd ra, imm` — return: `pc = ra + imm`, always with a delay slot.
    Rtsd { ra: Reg, imm: i16 },
    /// `imm imm16` — prefix latching the upper 16 bits for the immediate of
    /// the next instruction (the pair is indivisible).
    Imm { imm: u16 },
    /// `get/nget/cget/ncget rd, rfslN` — read a word from FSL input
    /// channel N into rd.
    Get { rd: Reg, chan: FslChan, mode: FslMode },
    /// `put/nput/cput/ncput ra, rfslN` — write ra to FSL output channel N.
    Put { ra: Reg, chan: FslChan, mode: FslMode },
    /// `halt` — simulator convention for end-of-program (MicroBlaze
    /// programs spin on `bri 0`; an explicit halt keeps simulation finite).
    Halt,
}

impl Inst {
    /// Canonical no-op (`or r0, r0, r0`).
    pub const NOP: Inst = Inst::Logic { op: LogicOp::Or, rd: Reg::R0, ra: Reg::R0, rb: Reg::R0 };

    /// True for instructions that redirect control flow.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. }
                | Inst::BrI { .. }
                | Inst::Bcc { .. }
                | Inst::BccI { .. }
                | Inst::Rtsd { .. }
        )
    }

    /// True for branches that execute the following instruction in a delay
    /// slot before the branch takes effect.
    pub fn has_delay_slot(&self) -> bool {
        match self {
            Inst::Br { delay, .. } | Inst::BrI { delay, .. } => *delay,
            Inst::Bcc { delay, .. } | Inst::BccI { delay, .. } => *delay,
            Inst::Rtsd { .. } => true,
            _ => false,
        }
    }

    /// True for the `imm` prefix instruction.
    pub fn is_imm_prefix(&self) -> bool {
        matches!(self, Inst::Imm { .. })
    }

    /// Base cycle cost on the MB32 timing model (MicroBlaze three-stage
    /// pipeline as characterized in the paper and the MicroBlaze reference
    /// guide). Branch costs here assume *not taken*; taken branches add a
    /// pipeline-flush penalty accounted by the simulator. FSL costs assume
    /// the transfer completes immediately; blocking stalls are added by the
    /// simulator.
    pub fn base_cycles(&self) -> u32 {
        match self {
            // The paper: "the multiplication instruction requires three
            // clock cycles to complete".
            Inst::Mul { .. } | Inst::MulI { .. } => 3,
            // The optional serial divider iterates one bit per cycle.
            Inst::Div { .. } => 32,
            // Loads and stores over LMB complete with one wait state.
            Inst::Load { .. } | Inst::LoadI { .. } => 2,
            Inst::Store { .. } | Inst::StoreI { .. } => 2,
            // FSL accesses take two cycles when the channel is ready.
            Inst::Get { .. } | Inst::Put { .. } => 2,
            _ => 1,
        }
    }

    /// Extra cycles paid when a branch is taken (pipeline flush). Delay-slot
    /// branches hide one of the flushed slots.
    pub fn taken_penalty(&self) -> u32 {
        match self {
            Inst::Br { delay, .. } | Inst::BrI { delay, .. } => {
                if *delay {
                    1
                } else {
                    2
                }
            }
            Inst::Bcc { delay, .. } | Inst::BccI { delay, .. } => {
                if *delay {
                    1
                } else {
                    2
                }
            }
            Inst::Rtsd { .. } => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for Inst {
    /// Renders canonical assembly syntax (accepted back by the assembler).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn link_of(link: &Option<Reg>) -> String {
            link.map(|r| format!("{r}, ")).unwrap_or_default()
        }
        match self {
            Inst::Add { rd, ra, rb, flags } => {
                write!(f, "add{} {rd}, {ra}, {rb}", flags.suffix())
            }
            Inst::AddI { rd, ra, imm, flags } => {
                let s = flags.suffix();
                // MicroBlaze spells the immediate forms addi/addic/addik/addikc.
                write!(f, "addi{s} {rd}, {ra}, {imm}")
            }
            Inst::Rsub { rd, ra, rb, flags } => {
                write!(f, "rsub{} {rd}, {ra}, {rb}", flags.suffix())
            }
            Inst::RsubI { rd, ra, imm, flags } => {
                write!(f, "rsubi{} {rd}, {ra}, {imm}", flags.suffix())
            }
            Inst::Cmp { rd, ra, rb, unsigned } => {
                write!(f, "cmp{} {rd}, {ra}, {rb}", if *unsigned { "u" } else { "" })
            }
            Inst::Mul { rd, ra, rb } => write!(f, "mul {rd}, {ra}, {rb}"),
            Inst::Div { rd, ra, rb, unsigned } => {
                write!(f, "idiv{} {rd}, {ra}, {rb}", if *unsigned { "u" } else { "" })
            }
            Inst::MulI { rd, ra, imm } => write!(f, "muli {rd}, {ra}, {imm}"),
            Inst::Logic { op, rd, ra, rb } => write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic()),
            Inst::LogicI { op, rd, ra, imm } => {
                write!(f, "{}i {rd}, {ra}, {imm}", op.mnemonic())
            }
            Inst::Shift { op, rd, ra } => write!(f, "{} {rd}, {ra}", op.mnemonic()),
            Inst::Sext { rd, ra, half } => {
                write!(f, "sext{} {rd}, {ra}", if *half { "16" } else { "8" })
            }
            Inst::Barrel { op, rd, ra, rb } => write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic()),
            Inst::BarrelI { op, rd, ra, amount } => {
                write!(f, "{}i {rd}, {ra}, {amount}", op.mnemonic())
            }
            Inst::Load { size, rd, ra, rb } => {
                write!(f, "{} {rd}, {ra}, {rb}", size.load_mnemonic())
            }
            Inst::LoadI { size, rd, ra, imm } => {
                write!(f, "{}i {rd}, {ra}, {imm}", size.load_mnemonic())
            }
            Inst::Store { size, rd, ra, rb } => {
                write!(f, "{} {rd}, {ra}, {rb}", size.store_mnemonic())
            }
            Inst::StoreI { size, rd, ra, imm } => {
                write!(f, "{}i {rd}, {ra}, {imm}", size.store_mnemonic())
            }
            Inst::Br { rb, link, absolute, delay } => {
                let mn = match (link.is_some(), *absolute, *delay) {
                    (false, false, false) => "br",
                    (false, false, true) => "brd",
                    (false, true, false) => "bra",
                    (false, true, true) => "brad",
                    (true, false, true) => "brld",
                    (true, true, true) => "brald",
                    (true, false, false) => "brl",
                    (true, true, false) => "bral",
                };
                write!(f, "{mn} {}{rb}", link_of(link))
            }
            Inst::BrI { imm, link, absolute, delay } => {
                let mn = match (link.is_some(), *absolute, *delay) {
                    (false, false, false) => "bri",
                    (false, false, true) => "brid",
                    (false, true, false) => "brai",
                    (false, true, true) => "braid",
                    (true, false, true) => "brlid",
                    (true, true, true) => "bralid",
                    (true, false, false) => "brli",
                    (true, true, false) => "brali",
                };
                write!(f, "{mn} {}{imm}", link_of(link))
            }
            Inst::Bcc { cond, ra, rb, delay } => {
                write!(f, "{}{} {ra}, {rb}", cond.mnemonic(), if *delay { "d" } else { "" })
            }
            Inst::BccI { cond, ra, imm, delay } => {
                write!(f, "{}i{} {ra}, {imm}", cond.mnemonic(), if *delay { "d" } else { "" })
            }
            Inst::Rtsd { ra, imm } => write!(f, "rtsd {ra}, {imm}"),
            Inst::Imm { imm } => write!(f, "imm {}", *imm as i32),
            Inst::Get { rd, chan, mode } => write!(f, "{}get {rd}, {chan}", mode.prefix()),
            Inst::Put { ra, chan, mode } => write!(f, "{}put {ra}, {chan}", mode.prefix()),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn cond_bits_round_trip() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_bits(cond.bits()), Some(cond));
        }
        assert_eq!(Cond::from_bits(6), None);
        assert_eq!(Cond::from_bits(7), None);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.holds(0));
        assert!(!Cond::Eq.holds(1));
        assert!(Cond::Ne.holds(u32::MAX));
        assert!(Cond::Lt.holds(0x8000_0000));
        assert!(!Cond::Lt.holds(0));
        assert!(Cond::Le.holds(0));
        assert!(Cond::Gt.holds(1));
        assert!(!Cond::Gt.holds(0x8000_0000));
        assert!(Cond::Ge.holds(0));
        assert!(Cond::Ge.holds(0x7fff_ffff));
    }

    #[test]
    fn arith_flags_round_trip() {
        for bits in 0..4 {
            assert_eq!(ArithFlags::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn timing_model_matches_paper() {
        let mul = Inst::Mul { rd: r(1), ra: r(2), rb: r(3) };
        assert_eq!(mul.base_cycles(), 3, "paper: multiplication takes 3 cycles");
        let add = Inst::Add { rd: r(1), ra: r(2), rb: r(3), flags: ArithFlags::KEEP };
        assert_eq!(add.base_cycles(), 1);
        let lw = Inst::LoadI { size: MemSize::Word, rd: r(1), ra: r(2), imm: 0 };
        assert_eq!(lw.base_cycles(), 2);
    }

    #[test]
    fn delay_slot_classification() {
        let b = Inst::BccI { cond: Cond::Ne, ra: r(3), imm: -8, delay: true };
        assert!(b.is_branch());
        assert!(b.has_delay_slot());
        assert_eq!(b.taken_penalty(), 1);
        let b = Inst::BrI { imm: 16, link: None, absolute: false, delay: false };
        assert!(!b.has_delay_slot());
        assert_eq!(b.taken_penalty(), 2);
        let r = Inst::Rtsd { ra: Reg::LR, imm: 8 };
        assert!(r.has_delay_slot());
    }

    #[test]
    fn display_formats_canonically() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::Add { rd: r(3), ra: r(4), rb: r(5), flags: ArithFlags::PLAIN },
                "add r3, r4, r5",
            ),
            (
                Inst::AddI { rd: r(3), ra: r(4), imm: -2, flags: ArithFlags::KEEP },
                "addik r3, r4, -2",
            ),
            (Inst::Cmp { rd: r(1), ra: r(2), rb: r(3), unsigned: true }, "cmpu r1, r2, r3"),
            (
                Inst::Get { rd: r(7), chan: FslChan::new(0), mode: FslMode::NONBLOCKING_DATA },
                "nget r7, rfsl0",
            ),
            (
                Inst::Put { ra: r(7), chan: FslChan::new(2), mode: FslMode::BLOCKING_CONTROL },
                "cput r7, rfsl2",
            ),
            (
                Inst::BrI { imm: -4, link: Some(Reg::LR), absolute: false, delay: true },
                "brlid r15, -4",
            ),
            (Inst::NOP, "or r0, r0, r0"),
            (Inst::Halt, "halt"),
        ];
        for (inst, text) in cases {
            assert_eq!(inst.to_string(), text);
        }
    }
}
