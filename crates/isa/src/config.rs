//! Soft-processor configuration options.
//!
//! The paper's motivation (a): "there are many possible configurations of
//! soft processors". Like MicroBlaze, MB32 makes the barrel shifter, the
//! multiplier and the divider optional units: instructions that need an
//! absent unit do not exist on that configuration (the simulators fault),
//! and each option costs FPGA resources.

/// Default local-memory size (64 KiB).
pub const DEFAULT_MEM_BYTES: u32 = 64 * 1024;

/// Configuration of the MB32 soft processor's optional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Local memory size in bytes.
    pub mem_bytes: u32,
    /// Barrel shifter present (`bsll`/`bsrl`/`bsra` and immediates).
    pub barrel_shifter: bool,
    /// Hardware multiplier present (`mul`/`muli`, 3 cycles).
    pub multiplier: bool,
    /// Hardware divider present (`idiv`/`idivu`, 32 cycles).
    pub divider: bool,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        // The MicroBlaze default of the paper's era: barrel shifter and
        // multiplier on, divider off.
        CpuConfig {
            mem_bytes: DEFAULT_MEM_BYTES,
            barrel_shifter: true,
            multiplier: true,
            divider: false,
        }
    }
}

impl CpuConfig {
    /// A configuration with every optional unit, including the divider.
    pub fn full() -> CpuConfig {
        CpuConfig { divider: true, ..CpuConfig::default() }
    }

    /// A minimal configuration: no optional units at all.
    pub fn minimal() -> CpuConfig {
        CpuConfig {
            barrel_shifter: false,
            multiplier: false,
            divider: false,
            ..CpuConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = CpuConfig::default();
        assert!(d.barrel_shifter && d.multiplier && !d.divider);
        assert!(CpuConfig::full().divider);
        let m = CpuConfig::minimal();
        assert!(!m.barrel_shifter && !m.multiplier && !m.divider);
        assert_eq!(m.mem_bytes, DEFAULT_MEM_BYTES);
    }
}
