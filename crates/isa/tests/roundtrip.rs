//! `encode → disassemble → assemble → encode` over the full MB32
//! instruction space.
//!
//! The existing randomized tests sample decodable words one at a time;
//! this test goes the other way: it *constructs* every structural form
//! of every [`Inst`] variant (all flag/op/cond/mode/channel
//! combinations, every barrel-shift amount, boundary and random
//! immediates, rotating registers), encodes them into an image,
//! disassembles the image to a listing, reassembles the listing, and
//! demands the same words byte for byte. Any asymmetry between the
//! encoder, the disassembler's canonical syntax and the assembler's
//! grammar fails loudly with the offending instruction named.

use softsim_isa::asm::assemble;
use softsim_isa::disasm::disassemble;
use softsim_isa::inst::{ArithFlags, BarrelOp, Cond, FslChan, FslMode, LogicOp, MemSize, ShiftOp};
use softsim_isa::{decode, encode, Image, Inst, Reg};
use softsim_testkit::{cases, Rng};

/// All four arithmetic flag combinations.
const FLAGS: [ArithFlags; 4] = [
    ArithFlags { carry_in: false, keep: false },
    ArithFlags { carry_in: true, keep: false },
    ArithFlags { carry_in: false, keep: true },
    ArithFlags { carry_in: true, keep: true },
];

/// Rotating register supply: every call advances, so over a program the
/// whole register file shows up in every operand position.
struct Regs(u8);

impl Regs {
    fn next(&mut self) -> Reg {
        self.0 = (self.0 + 1) % 32;
        Reg::new(self.0)
    }
}

/// Boundary immediates plus one random draw per call.
fn imms(rng: &mut Rng) -> [i16; 4] {
    [i16::MIN, -1, i16::MAX, rng.range_i16(i16::MIN, i16::MAX)]
}

/// Every structural form of the instruction set, with registers rotated
/// and immediates drawn from `rng`.
fn full_instruction_space(rng: &mut Rng) -> Vec<Inst> {
    let mut r = Regs(rng.below(32) as u8);
    let mut out = Vec::new();

    for flags in FLAGS {
        out.push(Inst::Add { rd: r.next(), ra: r.next(), rb: r.next(), flags });
        out.push(Inst::Rsub { rd: r.next(), ra: r.next(), rb: r.next(), flags });
        for imm in imms(rng) {
            out.push(Inst::AddI { rd: r.next(), ra: r.next(), imm, flags });
            out.push(Inst::RsubI { rd: r.next(), ra: r.next(), imm, flags });
        }
    }
    for unsigned in [false, true] {
        out.push(Inst::Cmp { rd: r.next(), ra: r.next(), rb: r.next(), unsigned });
        out.push(Inst::Div { rd: r.next(), ra: r.next(), rb: r.next(), unsigned });
    }
    out.push(Inst::Mul { rd: r.next(), ra: r.next(), rb: r.next() });
    for imm in imms(rng) {
        out.push(Inst::MulI { rd: r.next(), ra: r.next(), imm });
    }
    for op in LogicOp::ALL {
        out.push(Inst::Logic { op, rd: r.next(), ra: r.next(), rb: r.next() });
        for imm in imms(rng) {
            out.push(Inst::LogicI { op, rd: r.next(), ra: r.next(), imm });
        }
    }
    for op in ShiftOp::ALL {
        out.push(Inst::Shift { op, rd: r.next(), ra: r.next() });
    }
    for half in [false, true] {
        out.push(Inst::Sext { rd: r.next(), ra: r.next(), half });
    }
    for op in BarrelOp::ALL {
        out.push(Inst::Barrel { op, rd: r.next(), ra: r.next(), rb: r.next() });
        for amount in 0..32 {
            out.push(Inst::BarrelI { op, rd: r.next(), ra: r.next(), amount });
        }
    }
    for size in [MemSize::Byte, MemSize::Half, MemSize::Word] {
        out.push(Inst::Load { size, rd: r.next(), ra: r.next(), rb: r.next() });
        out.push(Inst::Store { size, rd: r.next(), ra: r.next(), rb: r.next() });
        for imm in imms(rng) {
            out.push(Inst::LoadI { size, rd: r.next(), ra: r.next(), imm });
            out.push(Inst::StoreI { size, rd: r.next(), ra: r.next(), imm });
        }
    }
    for link in [None, Some(r.next())] {
        for absolute in [false, true] {
            for delay in [false, true] {
                out.push(Inst::Br { rb: r.next(), link, absolute, delay });
                for imm in imms(rng) {
                    out.push(Inst::BrI { imm, link, absolute, delay });
                }
            }
        }
    }
    for cond in Cond::ALL {
        for delay in [false, true] {
            out.push(Inst::Bcc { cond, ra: r.next(), rb: r.next(), delay });
            for imm in imms(rng) {
                out.push(Inst::BccI { cond, ra: r.next(), imm, delay });
            }
        }
    }
    for imm in imms(rng) {
        out.push(Inst::Rtsd { ra: r.next(), imm });
    }
    // The `imm` prefix carries an unsigned upper half: cover both halves
    // of its range (rendered as a plain integer by the disassembler).
    for imm in [0u16, 1, 0x7fff, 0x8000, 0xffff, rng.next_u32() as u16] {
        out.push(Inst::Imm { imm });
    }
    for chan in 0..FslChan::COUNT as u8 {
        for mode in FslMode::ALL {
            out.push(Inst::Get { rd: r.next(), chan: FslChan::new(chan), mode });
            out.push(Inst::Put { ra: r.next(), chan: FslChan::new(chan), mode });
        }
    }
    out.push(Inst::Halt);
    out
}

#[test]
fn encode_disasm_asm_encode_round_trips_the_full_space() {
    cases(25, |seed, rng| {
        let program = full_instruction_space(rng);
        // Encode the canonical words into an image.
        let mut image = Image::new(0);
        for (i, inst) in program.iter().enumerate() {
            image.write_u32(4 * i as u32, encode(inst));
        }

        // Disassemble the image and reassemble the listing.
        let lines = disassemble(&image);
        assert_eq!(lines.len(), program.len(), "seed {seed}: one line per word");
        let listing: String = lines.iter().map(|l| format!("{}\n", l.text)).collect();
        let reassembled = assemble(&listing)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical listing must assemble: {e}"));

        // Every word survives the round trip exactly.
        assert_eq!(reassembled.len_bytes(), image.len_bytes(), "seed {seed}");
        for (i, inst) in program.iter().enumerate() {
            let addr = 4 * i as u32;
            let (before, after) = (image.read_u32(addr), reassembled.read_u32(addr));
            assert_eq!(
                before, after,
                "seed {seed}: `{inst}` at {addr:#x} encoded {before:#010x}, \
                 came back as {after:#010x} (`{}`)",
                lines[i].text
            );
        }
    });
}

#[test]
fn data_words_survive_the_listing_round_trip() {
    // Undecodable words disassemble as `.word` directives, which the
    // assembler reproduces bit for bit — so mixed code/data images also
    // round-trip.
    let mut image = Image::new(0);
    image.write_u32(0, encode(&Inst::Halt));
    image.write_u32(4, 0xffff_ffff);
    assert!(decode(0xffff_ffff).is_err(), "0xffffffff must stay reserved");
    let listing: String = disassemble(&image).iter().map(|l| format!("{}\n", l.text)).collect();
    assert!(listing.contains(".word 0xffffffff"), "{listing}");
    let back = assemble(&listing).unwrap();
    assert_eq!(back.bytes(), image.bytes());
}
