//! Per-channel FIFO occupancy time series.

use crate::event::{FifoDir, TraceEvent};
use crate::sink::TraceSink;
use std::collections::BTreeMap;

/// One occupancy series: `(cycle, occupancy-after-the-event)` samples,
/// appended only when the occupancy changes.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<(u64, u32)>,
    high_water: u32,
}

impl Series {
    /// The recorded `(cycle, occupancy)` samples.
    pub fn samples(&self) -> &[(u64, u32)] {
        &self.samples
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    fn push(&mut self, cycle: u64, occupancy: u32) {
        self.high_water = self.high_water.max(occupancy);
        self.samples.push((cycle, occupancy));
    }
}

/// Collects FIFO occupancy timelines keyed by `(direction, channel)`,
/// for CSV export and high-water analysis (the paper sizes data batches
/// to FIFO capacity; these series show how close a design point gets).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    series: BTreeMap<(bool, u8), Series>,
}

impl Timeline {
    /// An empty timeline collector.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// The series for one FIFO, if it ever saw traffic.
    pub fn fifo(&self, dir: FifoDir, channel: u8) -> Option<&Series> {
        self.series.get(&(matches!(dir, FifoDir::ToHw), channel))
    }

    /// Highest occupancy observed on any channel in `dir`.
    pub fn high_water(&self, dir: FifoDir) -> u32 {
        let want = matches!(dir, FifoDir::ToHw);
        self.series
            .iter()
            .filter(|((d, _), _)| *d == want)
            .map(|(_, s)| s.high_water)
            .max()
            .unwrap_or(0)
    }

    /// Renders every series as CSV rows `cycle,fifo,occupancy`, sorted by
    /// cycle (then by FIFO name for simultaneous events).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(u64, String, u32)> = Vec::new();
        for ((to_hw, ch), series) in &self.series {
            let dir = if *to_hw { FifoDir::ToHw } else { FifoDir::FromHw };
            for &(cycle, occ) in &series.samples {
                rows.push((cycle, format!("{}{}", dir.label(), ch), occ));
            }
        }
        rows.sort();
        let mut out = String::from("cycle,fifo,occupancy\n");
        for (cycle, name, occ) in rows {
            let _ = writeln!(out, "{cycle},{name},{occ}");
        }
        out
    }
}

impl TraceSink for Timeline {
    fn event(&mut self, e: &TraceEvent) {
        let (cycle, dir, channel, occupancy) = match *e {
            TraceEvent::FifoPush { cycle, dir, channel, occupancy, .. }
            | TraceEvent::FifoPop { cycle, dir, channel, occupancy, .. } => {
                (cycle, dir, channel, occupancy)
            }
            _ => return,
        };
        self.series
            .entry((matches!(dir, FifoDir::ToHw), channel))
            .or_default()
            .push(cycle, occupancy as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(cycle: u64, ch: u8, occ: u8) -> TraceEvent {
        TraceEvent::FifoPush {
            cycle,
            dir: FifoDir::ToHw,
            channel: ch,
            data: 0,
            control: false,
            occupancy: occ,
        }
    }

    #[test]
    fn tracks_high_water_per_channel() {
        let mut t = Timeline::new();
        t.event(&push(1, 0, 1));
        t.event(&push(2, 0, 2));
        t.event(&TraceEvent::FifoPop {
            cycle: 3,
            dir: FifoDir::ToHw,
            channel: 0,
            data: 0,
            control: false,
            occupancy: 1,
        });
        t.event(&push(4, 1, 5));
        assert_eq!(t.fifo(FifoDir::ToHw, 0).unwrap().high_water(), 2);
        assert_eq!(t.fifo(FifoDir::ToHw, 1).unwrap().high_water(), 5);
        assert_eq!(t.high_water(FifoDir::ToHw), 5);
        assert_eq!(t.high_water(FifoDir::FromHw), 0);
    }

    #[test]
    fn csv_is_sorted_by_cycle() {
        let mut t = Timeline::new();
        t.event(&push(7, 1, 1));
        t.event(&push(2, 0, 1));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,fifo,occupancy");
        assert_eq!(lines[1], "2,to_hw0,1");
        assert_eq!(lines[2], "7,to_hw1,1");
    }
}
