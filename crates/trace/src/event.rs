//! The cycle-domain event model.

/// Why the processor is stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Blocking FSL `get` waiting on the `exists` flag.
    FslRead,
    /// Blocking FSL `put` waiting on the `full` flag.
    FslWrite,
}

/// Direction of an FSL FIFO relative to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FifoDir {
    /// Processor → hardware (the CPU `put` side).
    ToHw,
    /// Hardware → processor (the CPU `get` side).
    FromHw,
}

impl FifoDir {
    /// Short label used in timelines and trace names.
    pub fn label(self) -> &'static str {
        match self {
            FifoDir::ToHw => "to_hw",
            FifoDir::FromHw => "from_hw",
        }
    }
}

/// Coarse instruction classification for mix and cycle-breakdown
/// reporting. The mapping from a concrete ISA lives with the simulator;
/// this crate only aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU / compare / sign-extend.
    Alu,
    /// Multiply (3-cycle on the modeled pipeline).
    Mul,
    /// Serial divide.
    Div,
    /// Shift / barrel shift.
    Shift,
    /// Bitwise logic.
    Logic,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch / return.
    Branch,
    /// `imm` prefix.
    Imm,
    /// FSL read (`get` family).
    FslGet,
    /// FSL write (`put` family).
    FslPut,
    /// `halt`.
    Halt,
    /// Anything else.
    Other,
}

impl InstClass {
    /// All classes, in report order.
    pub const ALL: [InstClass; 13] = [
        InstClass::Alu,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Shift,
        InstClass::Logic,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Imm,
        InstClass::FslGet,
        InstClass::FslPut,
        InstClass::Halt,
        InstClass::Other,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        InstClass::ALL.iter().position(|&c| c == self).expect("class in ALL")
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Mul => "mul",
            InstClass::Div => "div",
            InstClass::Shift => "shift",
            InstClass::Logic => "logic",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Imm => "imm",
            InstClass::FslGet => "fsl_get",
            InstClass::FslPut => "fsl_put",
            InstClass::Halt => "halt",
            InstClass::Other => "other",
        }
    }
}

/// Where a fault-injection campaign perturbed the simulated design.
/// Mirrors the injector's fault kinds coarsely — the trace only needs
/// enough to attribute downstream misbehavior to an upset site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionSite {
    /// A CPU general-purpose register bit flip.
    Register,
    /// An LMB memory bit flip.
    Memory,
    /// A bit flip in a word sitting in an FSL FIFO.
    FifoWord,
    /// A protocol upset: dropped/duplicated word or stuck flag.
    Protocol,
    /// A bit flip in the sequential state of a hardware block.
    Block,
    /// A deliberate harness-side crash-test fault (no design state is
    /// touched; the injector panics instead).
    Harness,
}

impl InjectionSite {
    /// Short label used in reports and trace names.
    pub fn label(self) -> &'static str {
        match self {
            InjectionSite::Register => "register",
            InjectionSite::Memory => "memory",
            InjectionSite::FifoWord => "fifo_word",
            InjectionSite::Protocol => "protocol",
            InjectionSite::Block => "block",
            InjectionSite::Harness => "harness",
        }
    }
}

/// Which mechanism noticed a fault. Detection is decoupled from
/// injection: a campaign knows where it *put* an upset, a detector only
/// knows how the misbehavior *surfaced*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// The liveness watchdog diagnosed a deadlock/livelock.
    Watchdog,
    /// The FSL SEC-DED codec flagged an uncorrectable (double-bit) word.
    Ecc,
    /// A TMR voter observed replica divergence.
    Tmr,
    /// A windowed metrics signature diverged from the golden run.
    Signature,
    /// Architectural observables differed from the golden run at halt.
    Observable,
    /// The processor raised an architectural fault.
    Fault,
}

impl DetectorKind {
    /// Short label used in reports and trace names.
    pub fn label(self) -> &'static str {
        match self {
            DetectorKind::Watchdog => "watchdog",
            DetectorKind::Ecc => "ecc",
            DetectorKind::Tmr => "tmr",
            DetectorKind::Signature => "signature",
            DetectorKind::Observable => "observable",
            DetectorKind::Fault => "fault",
        }
    }
}

/// Which shared bus a word transfer crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// The On-chip Peripheral Bus (shared, fixed per-transfer latency).
    Opb,
    /// The Local Memory Bus (single-cycle, point-to-point).
    Lmb,
}

impl BusKind {
    /// Short label used in metric names and trace labels.
    pub fn label(self) -> &'static str {
        match self {
            BusKind::Opb => "opb",
            BusKind::Lmb => "lmb",
        }
    }
}

/// One cycle-domain observation from somewhere in the co-simulation
/// stack. Every event is stamped with the clock cycle (or, for the RTL
/// kernel, simulation time) at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction retired. `cycle` is the cycle the instruction
    /// *issued* on; `cycles` is its total occupancy including stalls, so
    /// summing `cycles` over a halted run reproduces the processor's
    /// cycle counter exactly.
    Retire {
        /// Issue cycle (0-based).
        cycle: u64,
        /// Instruction address.
        pc: u32,
        /// Raw instruction word.
        word: u32,
        /// Coarse classification.
        class: InstClass,
        /// Total cycles from issue to retire, stalls included.
        cycles: u32,
        /// Cycles of this instruction spent stalled on FSL reads.
        read_stalls: u32,
        /// Cycles of this instruction spent stalled on FSL writes.
        write_stalls: u32,
    },
    /// A blocking FSL access began stalling the processor.
    StallBegin {
        /// First stalled cycle.
        cycle: u64,
        /// PC of the stalled instruction.
        pc: u32,
        /// Read- or write-side stall.
        cause: StallCause,
    },
    /// A blocking FSL access completed after stalling.
    StallEnd {
        /// Cycle on which the transfer finally completed.
        cycle: u64,
        /// PC of the stalled instruction.
        pc: u32,
        /// Read- or write-side stall.
        cause: StallCause,
        /// Number of stalled cycles.
        cycles: u64,
    },
    /// A word entered an FSL FIFO.
    FifoPush {
        /// Cycle stamp.
        cycle: u64,
        /// FIFO direction.
        dir: FifoDir,
        /// Channel number.
        channel: u8,
        /// Payload.
        data: u32,
        /// Control bit.
        control: bool,
        /// Occupancy *after* the push.
        occupancy: u8,
    },
    /// A word left an FSL FIFO.
    FifoPop {
        /// Cycle stamp.
        cycle: u64,
        /// FIFO direction.
        dir: FifoDir,
        /// Channel number.
        channel: u8,
        /// Payload.
        data: u32,
        /// Control bit.
        control: bool,
        /// Occupancy *after* the pop.
        occupancy: u8,
    },
    /// A push was rejected: the FIFO's `full` flag was raised.
    FifoFull {
        /// Cycle stamp.
        cycle: u64,
        /// FIFO direction.
        dir: FifoDir,
        /// Channel number.
        channel: u8,
    },
    /// A pop found nothing: the FIFO's `exists` flag was low.
    FifoEmpty {
        /// Cycle stamp.
        cycle: u64,
        /// FIFO direction.
        dir: FifoDir,
        /// Channel number.
        channel: u8,
    },
    /// A word crossed a gateway between the bus models and a hardware
    /// peripheral (FSL binding or OPB adapter).
    GatewayWord {
        /// Cycle stamp.
        cycle: u64,
        /// Peripheral index (attachment order).
        peripheral: u8,
        /// `true` when the word traveled processor → hardware.
        to_hw: bool,
        /// Payload.
        data: u32,
    },
    /// A fault-injection campaign perturbed the design under test.
    FaultInjected {
        /// Cycle stamp at which the upset was applied.
        cycle: u64,
        /// Coarse location of the upset.
        site: InjectionSite,
        /// Site-specific detail word (register index, address, channel…).
        detail: u32,
    },
    /// A general-purpose register was written (architectural writeback).
    /// Writes to r0 are discarded by the register file and not reported.
    RegWrite {
        /// Cycle stamp.
        cycle: u64,
        /// Destination register index (1..32).
        reg: u8,
        /// Value written.
        value: u32,
    },
    /// A data word crossed one of the memory buses.
    BusTransfer {
        /// Cycle stamp (issue cycle of the memory instruction).
        cycle: u64,
        /// Which bus carried the transfer.
        bus: BusKind,
        /// `true` for a store, `false` for a load.
        write: bool,
        /// Byte address of the access.
        addr: u32,
        /// Extra bus wait cycles charged (0 on the single-cycle LMB).
        wait: u32,
    },
    /// One peripheral block graph advanced a cycle with switching
    /// activity measurement enabled. Emitted once per peripheral per
    /// co-simulation step, only while the graph measures activity.
    BlockActivity {
        /// Cycle stamp.
        cycle: u64,
        /// Peripheral index (attachment order).
        peripheral: u8,
        /// Blocks fired this cycle (every node fires in the synchronous
        /// dataflow model, so this is the node count).
        firings: u32,
        /// Output-port bit toggles this cycle.
        toggles: u32,
    },
    /// A recovery supervisor's detector flagged misbehavior in the
    /// design under test.
    FaultDetected {
        /// Cycle stamp at which the detector fired.
        cycle: u64,
        /// Which detector noticed.
        detector: DetectorKind,
        /// Detector-specific detail word (channel, miscompare count…).
        detail: u32,
    },
    /// A recovery supervisor rolled the simulation back to a checkpoint
    /// after a detection.
    Recovered {
        /// Cycle stamp at which the rollback was taken.
        cycle: u64,
        /// Cycle of the checkpoint the simulation resumed from.
        checkpoint_cycle: u64,
        /// Rollbacks taken so far in this run, this one included.
        retries: u32,
    },
    /// The event-driven RTL kernel advanced one simulation time step.
    /// Counters are cumulative kernel totals at that instant.
    KernelStep {
        /// Simulation time in nanoseconds.
        time_ns: u64,
        /// Cumulative signal events.
        events: u64,
        /// Cumulative delta cycles.
        delta_cycles: u64,
        /// Cumulative process invocations.
        process_runs: u64,
    },
}

impl TraceEvent {
    /// The event's time stamp: clock cycle, or nanoseconds for
    /// [`TraceEvent::KernelStep`].
    pub fn timestamp(&self) -> u64 {
        match *self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::StallBegin { cycle, .. }
            | TraceEvent::StallEnd { cycle, .. }
            | TraceEvent::FifoPush { cycle, .. }
            | TraceEvent::FifoPop { cycle, .. }
            | TraceEvent::FifoFull { cycle, .. }
            | TraceEvent::FifoEmpty { cycle, .. }
            | TraceEvent::GatewayWord { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::RegWrite { cycle, .. }
            | TraceEvent::BusTransfer { cycle, .. }
            | TraceEvent::BlockActivity { cycle, .. }
            | TraceEvent::FaultDetected { cycle, .. }
            | TraceEvent::Recovered { cycle, .. } => cycle,
            TraceEvent::KernelStep { time_ns, .. } => time_ns,
        }
    }
}
