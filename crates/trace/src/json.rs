//! A minimal JSON reader.
//!
//! The build environment is fully offline, so the trace exporters are
//! schema-checked with this small recursive-descent parser instead of an
//! external JSON crate. It accepts standard JSON (RFC 8259); it is meant
//! for validating our own exports, not for hostile input.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-UTF8 \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our exporters;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => return Err(format!("bad escape `\\{}`", c as char)),
                },
                c if c < 0x20 => return Err("raw control character in string".into()),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 lead byte".into()),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8 sequence")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"s":"x\ny","t":true,"n":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse(r#""café — ünïcode""#).unwrap();
        assert_eq!(v.as_str(), Some("café — ünïcode"));
    }
}
