//! The sink trait and sharing plumbing.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::rc::Rc;

/// An observer of cycle-domain events.
///
/// Simulator components hold an `Option<SharedSink>`; when none is
/// attached the only cost on the hot path is one well-predicted branch.
pub trait TraceSink {
    /// Observes one event.
    fn event(&mut self, e: &TraceEvent);
}

/// A sink shared between the processor, the FSL bank, the co-simulator
/// and user code. The simulation stack is single-threaded, so plain
/// `Rc<RefCell<..>>` sharing is sufficient (and keeps the untraced path
/// free of atomics).
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// Wraps a concrete sink for sharing. Keep a second `Rc` clone of the
/// concrete type to read results back after the run:
///
/// ```
/// use softsim_trace::{shared, Profile};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let profile = Rc::new(RefCell::new(Profile::new()));
/// let sink = shared(profile.clone());
/// drop(sink); // would be attached to a Cpu / CoSim
/// assert_eq!(profile.borrow().total_instructions(), 0);
/// ```
pub fn shared<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> SharedSink {
    sink
}

/// A sink that discards everything: the "tracing enabled, nothing
/// listening" configuration used by the overhead guard.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _e: &TraceEvent) {}
}

/// Broadcasts every event to several sinks (e.g. a [`crate::Recorder`]
/// for raw export plus a [`crate::Profile`] for the report, in one run).
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<SharedSink>,
}

impl Fanout {
    /// An empty fanout.
    pub fn new() -> Fanout {
        Fanout::default()
    }

    /// Adds a downstream sink; returns `self` for chaining.
    pub fn with(mut self, sink: SharedSink) -> Fanout {
        self.sinks.push(sink);
        self
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }
}

impl TraceSink for Fanout {
    fn event(&mut self, e: &TraceEvent) {
        for s in &self.sinks {
            s.borrow_mut().event(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Rc::new(RefCell::new(Recorder::new(8)));
        let b = Rc::new(RefCell::new(Recorder::new(8)));
        let mut fan = Fanout::new().with(shared(a.clone())).with(shared(b.clone()));
        fan.event(&TraceEvent::GatewayWord { cycle: 1, peripheral: 0, to_hw: true, data: 7 });
        assert_eq!(a.borrow().events().len(), 1);
        assert_eq!(b.borrow().events().len(), 1);
    }
}
