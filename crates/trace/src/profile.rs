//! Stall attribution and hot-spot profiling.

use crate::event::{InstClass, TraceEvent};
use crate::sink::TraceSink;
use std::collections::HashMap;

/// Per-PC execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcStat {
    /// Times an instruction at this PC retired.
    pub retires: u64,
    /// Cycles attributed to this PC (stalls included).
    pub cycles: u64,
}

/// Where a run's cycles went. `compute` is everything that is not an
/// FSL stall (memory cycles are a subset of compute, broken out
/// separately), so
/// `compute + fsl_read_stall + fsl_write_stall == total` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Total cycles attributed to retired instructions.
    pub total: u64,
    /// Non-stall cycles.
    pub compute: u64,
    /// Cycles stalled on blocking FSL reads.
    pub fsl_read_stall: u64,
    /// Cycles stalled on blocking FSL writes.
    pub fsl_write_stall: u64,
    /// Cycles of load/store instructions (subset of `compute`).
    pub memory: u64,
}

/// Aggregating profiler: consumes [`TraceEvent`]s and produces the
/// textual profile report — hot-PC histogram, instruction mix and the
/// cycle breakdown of the paper's communication-overhead analysis.
///
/// Every retire event carries its instruction's full cycle occupancy,
/// so for a run that executed to `halt` the profile's
/// [`total_cycles`](Profile::total_cycles) equals the processor's own
/// cycle counter *exactly* — asserted by the integration tests.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pcs: HashMap<u32, PcStat>,
    class_retires: [u64; InstClass::ALL.len()],
    class_cycles: [u64; InstClass::ALL.len()],
    total_cycles: u64,
    instructions: u64,
    read_stall_cycles: u64,
    write_stall_cycles: u64,
    memory_cycles: u64,
    fifo_pushes: u64,
    fifo_pops: u64,
    fifo_full_rejections: u64,
    fifo_empty_rejections: u64,
    gateway_to_hw: u64,
    gateway_from_hw: u64,
    kernel_steps: u64,
    kernel_events: u64,
    kernel_delta_cycles: u64,
    faults_injected: u64,
    faults_detected: u64,
    recoveries: u64,
    reg_writes: u64,
    opb_transfers: u64,
    opb_wait_cycles: u64,
    lmb_transfers: u64,
    block_firings: u64,
    block_toggles: u64,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Total cycles attributed to retired instructions.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles stalled on blocking FSL reads.
    pub fn read_stall_cycles(&self) -> u64 {
        self.read_stall_cycles
    }

    /// Cycles stalled on blocking FSL writes.
    pub fn write_stall_cycles(&self) -> u64 {
        self.write_stall_cycles
    }

    /// Gateway words that traveled processor → hardware.
    pub fn gateway_words_to_hw(&self) -> u64 {
        self.gateway_to_hw
    }

    /// Gateway words that traveled hardware → processor.
    pub fn gateway_words_from_hw(&self) -> u64 {
        self.gateway_from_hw
    }

    /// Faults injected into the design under test.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Misbehaviors flagged by a recovery supervisor's detectors.
    pub fn faults_detected(&self) -> u64 {
        self.faults_detected
    }

    /// Rollback recoveries taken by a recovery supervisor.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Architectural register writebacks observed.
    pub fn reg_writes(&self) -> u64 {
        self.reg_writes
    }

    /// Word transfers over the OPB and the wait cycles they cost.
    pub fn opb_traffic(&self) -> (u64, u64) {
        (self.opb_transfers, self.opb_wait_cycles)
    }

    /// Word transfers over the single-cycle LMB.
    pub fn lmb_transfers(&self) -> u64 {
        self.lmb_transfers
    }

    /// Block firings and output toggles reported by peripheral graphs
    /// (only populated while a graph measures switching activity).
    pub fn block_activity(&self) -> (u64, u64) {
        (self.block_firings, self.block_toggles)
    }

    /// Per-PC counters.
    pub fn pc_stats(&self) -> &HashMap<u32, PcStat> {
        &self.pcs
    }

    /// Retire count for one instruction class.
    pub fn class_retires(&self, class: InstClass) -> u64 {
        self.class_retires[class.index()]
    }

    /// The cycle breakdown.
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            total: self.total_cycles,
            compute: self.total_cycles - self.read_stall_cycles - self.write_stall_cycles,
            fsl_read_stall: self.read_stall_cycles,
            fsl_write_stall: self.write_stall_cycles,
            memory: self.memory_cycles,
        }
    }

    /// The `n` hottest PCs by attributed cycles, descending (PC breaks
    /// ties so the order is deterministic).
    pub fn hot_pcs(&self, n: usize) -> Vec<(u32, PcStat)> {
        let mut v: Vec<(u32, PcStat)> = self.pcs.iter().map(|(&pc, &s)| (pc, s)).collect();
        v.sort_by_key(|&(pc, s)| (std::cmp::Reverse(s.cycles), pc));
        v.truncate(n);
        v
    }

    /// The instruction mix sorted by retire count, descending.
    pub fn mix(&self) -> Vec<(InstClass, u64, u64)> {
        let mut v: Vec<(InstClass, u64, u64)> = InstClass::ALL
            .iter()
            .map(|&c| (c, self.class_retires[c.index()], self.class_cycles[c.index()]))
            .filter(|&(_, retires, _)| retires > 0)
            .collect();
        v.sort_by_key(|&(c, retires, _)| (std::cmp::Reverse(retires), c.index()));
        v
    }

    /// Renders the textual profile report: cycle breakdown, top-`top_n`
    /// instruction mix and hot-PC histogram.
    pub fn report(&self, top_n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let b = self.breakdown();
        let pct = |part: u64| {
            if b.total == 0 {
                0.0
            } else {
                100.0 * part as f64 / b.total as f64
            }
        };
        let _ = writeln!(
            out,
            "cycle breakdown ({} cycles, {} instructions)",
            b.total, self.instructions
        );
        let _ = writeln!(out, "  compute          {:>10}  {:5.1}%", b.compute, pct(b.compute));
        let _ = writeln!(out, "    of which mem   {:>10}  {:5.1}%", b.memory, pct(b.memory));
        let _ = writeln!(
            out,
            "  fsl read stall   {:>10}  {:5.1}%",
            b.fsl_read_stall,
            pct(b.fsl_read_stall)
        );
        let _ = writeln!(
            out,
            "  fsl write stall  {:>10}  {:5.1}%",
            b.fsl_write_stall,
            pct(b.fsl_write_stall)
        );
        if self.fifo_pushes + self.fifo_pops > 0 {
            let _ = writeln!(
                out,
                "fsl traffic: {} pushes, {} pops, {} full-rejects, {} empty-rejects",
                self.fifo_pushes,
                self.fifo_pops,
                self.fifo_full_rejections,
                self.fifo_empty_rejections
            );
        }
        if self.gateway_to_hw + self.gateway_from_hw > 0 {
            let _ = writeln!(
                out,
                "gateway words: {} to hw, {} from hw",
                self.gateway_to_hw, self.gateway_from_hw
            );
        }
        if self.opb_transfers + self.lmb_transfers > 0 {
            let _ = writeln!(
                out,
                "bus traffic: {} lmb transfers, {} opb transfers ({} wait cycles)",
                self.lmb_transfers, self.opb_transfers, self.opb_wait_cycles
            );
        }
        if self.block_firings > 0 {
            let _ = writeln!(
                out,
                "block activity: {} firings, {} output toggles",
                self.block_firings, self.block_toggles
            );
        }
        if self.faults_injected > 0 {
            let _ = writeln!(out, "faults injected: {}", self.faults_injected);
        }
        if self.faults_detected > 0 {
            let _ = writeln!(out, "faults detected: {}", self.faults_detected);
        }
        if self.recoveries > 0 {
            let _ = writeln!(out, "rollback recoveries: {}", self.recoveries);
        }
        if self.kernel_steps > 0 {
            let _ = writeln!(
                out,
                "rtl kernel: {} time steps, {} events, {} delta cycles",
                self.kernel_steps, self.kernel_events, self.kernel_delta_cycles
            );
        }
        let _ = writeln!(out, "instruction mix (top {top_n}):");
        for (class, retires, cycles) in self.mix().into_iter().take(top_n) {
            let _ = writeln!(
                out,
                "  {:<9} {:>10} retired  {:>10} cycles  {:5.1}%",
                class.label(),
                retires,
                cycles,
                pct(cycles)
            );
        }
        let _ = writeln!(out, "hot PCs (top {top_n}):");
        for (pc, s) in self.hot_pcs(top_n) {
            let _ = writeln!(
                out,
                "  {:#010x} {:>10} cycles  {:>10} retires  {:5.1}%",
                pc,
                s.cycles,
                s.retires,
                pct(s.cycles)
            );
        }
        out
    }
}

impl TraceSink for Profile {
    fn event(&mut self, e: &TraceEvent) {
        match *e {
            TraceEvent::Retire { pc, class, cycles, read_stalls, write_stalls, .. } => {
                let s = self.pcs.entry(pc).or_default();
                s.retires += 1;
                s.cycles += cycles as u64;
                self.class_retires[class.index()] += 1;
                self.class_cycles[class.index()] += cycles as u64;
                self.total_cycles += cycles as u64;
                self.instructions += 1;
                self.read_stall_cycles += read_stalls as u64;
                self.write_stall_cycles += write_stalls as u64;
                if matches!(class, InstClass::Load | InstClass::Store) {
                    self.memory_cycles += cycles as u64;
                }
            }
            TraceEvent::FifoPush { .. } => self.fifo_pushes += 1,
            TraceEvent::FifoPop { .. } => self.fifo_pops += 1,
            TraceEvent::FifoFull { .. } => self.fifo_full_rejections += 1,
            TraceEvent::FifoEmpty { .. } => self.fifo_empty_rejections += 1,
            TraceEvent::GatewayWord { to_hw, .. } => {
                if to_hw {
                    self.gateway_to_hw += 1;
                } else {
                    self.gateway_from_hw += 1;
                }
            }
            TraceEvent::KernelStep { events, delta_cycles, .. } => {
                self.kernel_steps += 1;
                self.kernel_events = events;
                self.kernel_delta_cycles = delta_cycles;
            }
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::FaultDetected { .. } => self.faults_detected += 1,
            TraceEvent::Recovered { .. } => self.recoveries += 1,
            TraceEvent::RegWrite { .. } => self.reg_writes += 1,
            TraceEvent::BusTransfer { bus, wait, .. } => match bus {
                crate::event::BusKind::Opb => {
                    self.opb_transfers += 1;
                    self.opb_wait_cycles += wait as u64;
                }
                crate::event::BusKind::Lmb => self.lmb_transfers += 1,
            },
            TraceEvent::BlockActivity { firings, toggles, .. } => {
                self.block_firings += firings as u64;
                self.block_toggles += toggles as u64;
            }
            TraceEvent::StallBegin { .. } | TraceEvent::StallEnd { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(pc: u32, class: InstClass, cycles: u32, rs: u32, ws: u32) -> TraceEvent {
        TraceEvent::Retire {
            cycle: 0,
            pc,
            word: 0,
            class,
            cycles,
            read_stalls: rs,
            write_stalls: ws,
        }
    }

    #[test]
    fn breakdown_reconciles_by_construction() {
        let mut p = Profile::new();
        p.event(&retire(0x0, InstClass::Alu, 1, 0, 0));
        p.event(&retire(0x4, InstClass::FslGet, 7, 5, 0));
        p.event(&retire(0x8, InstClass::FslPut, 4, 0, 2));
        p.event(&retire(0xC, InstClass::Load, 2, 0, 0));
        let b = p.breakdown();
        assert_eq!(b.total, 14);
        assert_eq!(b.compute + b.fsl_read_stall + b.fsl_write_stall, b.total);
        assert_eq!(b.fsl_read_stall, 5);
        assert_eq!(b.fsl_write_stall, 2);
        assert_eq!(b.memory, 2);
    }

    #[test]
    fn hot_pcs_sorted_by_cycles() {
        let mut p = Profile::new();
        p.event(&retire(0x10, InstClass::Alu, 1, 0, 0));
        p.event(&retire(0x20, InstClass::Mul, 3, 0, 0));
        p.event(&retire(0x20, InstClass::Mul, 3, 0, 0));
        let hot = p.hot_pcs(2);
        assert_eq!(hot[0].0, 0x20);
        assert_eq!(hot[0].1.cycles, 6);
        assert_eq!(hot[1].0, 0x10);
    }

    #[test]
    fn report_mentions_every_section() {
        let mut p = Profile::new();
        p.event(&retire(0x0, InstClass::Alu, 1, 0, 0));
        let r = p.report(5);
        assert!(r.contains("cycle breakdown"));
        assert!(r.contains("instruction mix"));
        assert!(r.contains("hot PCs"));
    }
}
