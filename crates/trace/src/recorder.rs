//! A bounded ring-buffer event recorder.

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Records raw events into a bounded ring buffer: when the buffer is
/// full, the oldest events are overwritten (and counted), so memory use
/// is fixed no matter how long the simulation runs.
#[derive(Debug, Clone)]
pub struct Recorder {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Recorder {
    /// A recorder keeping at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Recorder {
        assert!(capacity > 0, "Recorder capacity must be positive");
        Recorder { buf: Vec::with_capacity(capacity.min(4096)), capacity, head: 0, dropped: 0 }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of events overwritten after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl TraceSink for Recorder {
    fn event(&mut self, e: &TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(*e);
        } else {
            self.buf[self.head] = *e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::GatewayWord { cycle, peripheral: 0, to_hw: true, data: cycle as u32 }
    }

    #[test]
    fn stays_bounded_and_keeps_newest() {
        let mut r = Recorder::new(4);
        for c in 0..10 {
            r.event(&ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.timestamp()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn order_preserved_before_wrap() {
        let mut r = Recorder::new(8);
        for c in 0..5 {
            r.event(&ev(c));
        }
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.timestamp()).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }
}
