//! Guest-program profiling: exact per-PC cycle attribution and FSL
//! channel utilization, collected from the cycle-domain event stream.
//!
//! [`crate::Profile`] aggregates by instruction *class*; [`GuestProfile`]
//! keeps the per-address resolution the paper's partitioning question
//! needs ("which software regions should move into FPGA peripherals?").
//! The analysis layers — basic-block discovery, label rollup, flamegraph
//! export, the partition advisor — live in `softsim-profile`, which
//! consumes this collector; this crate stays dependency-free and knows
//! nothing about images or ISAs.

use crate::event::{FifoDir, TraceEvent};
use crate::sink::TraceSink;
use std::collections::BTreeMap;

/// Exact cycle attribution for one guest PC.
///
/// Every cycle the processor spends on an instruction lands in exactly
/// one bucket: the issue (fetch/decode) cycle, FSL stall cycles, or
/// execute cycles. `fetch + execute + read/write stalls == cycles`, and
/// summing `cycles` over all PCs of a halted run reproduces the
/// processor's own cycle counter exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcAttribution {
    /// Times an instruction at this PC retired.
    pub retires: u64,
    /// Total cycles charged to this PC (issue + execute + stalls).
    pub cycles: u64,
    /// Cycles stalled on blocking FSL reads.
    pub read_stalls: u64,
    /// Cycles stalled on blocking FSL writes.
    pub write_stalls: u64,
}

impl PcAttribution {
    /// Issue (fetch/decode) cycles: exactly one per retire on the
    /// modeled single-issue pipeline.
    pub fn fetch(&self) -> u64 {
        self.retires
    }

    /// Execute cycles: total occupancy minus the issue cycle and FSL
    /// stalls (multi-cycle ALU/memory/branch-flush occupancy).
    pub fn execute(&self) -> u64 {
        self.cycles - self.read_stalls - self.write_stalls - self.retires
    }

    /// Merges another attribution record into this one.
    pub fn merge(&mut self, other: &PcAttribution) {
        self.retires += other.retires;
        self.cycles += other.cycles;
        self.read_stalls += other.read_stalls;
        self.write_stalls += other.write_stalls;
    }
}

/// Per-PC cycle attribution plus windowed FSL utilization, collected
/// live from the trace stream.
///
/// All internal maps are ordered, so iteration — and everything derived
/// from it — is deterministic across runs.
#[derive(Debug, Clone)]
pub struct GuestProfile {
    /// Per-PC attribution, keyed by instruction address.
    pcs: BTreeMap<u32, PcAttribution>,
    /// (direction index, channel) → cycle-window index → words pushed.
    fsl_windows: BTreeMap<(u8, u8), BTreeMap<u64, u64>>,
    /// Cycle-window size for the FSL utilization heatmap.
    window: u64,
    /// Highest window index observed on any channel.
    last_window: u64,
    total_cycles: u64,
    total_retires: u64,
}

/// Default FSL heatmap window: 1024 cycles ≈ 20 µs at the paper's 50 MHz.
pub const DEFAULT_FSL_WINDOW: u64 = 1024;

impl Default for GuestProfile {
    fn default() -> Self {
        GuestProfile::new()
    }
}

impl GuestProfile {
    /// A collector with the default FSL heatmap window.
    pub fn new() -> GuestProfile {
        GuestProfile::with_window(DEFAULT_FSL_WINDOW)
    }

    /// A collector bucketing FSL traffic into `window`-cycle windows.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_window(window: u64) -> GuestProfile {
        assert!(window > 0, "FSL heatmap window must be non-zero");
        GuestProfile {
            pcs: BTreeMap::new(),
            fsl_windows: BTreeMap::new(),
            window,
            last_window: 0,
            total_cycles: 0,
            total_retires: 0,
        }
    }

    /// Per-PC attribution in address order.
    pub fn pc_stats(&self) -> impl Iterator<Item = (u32, &PcAttribution)> {
        self.pcs.iter().map(|(pc, s)| (*pc, s))
    }

    /// Attribution for one PC, if any instruction there retired.
    pub fn pc_stat(&self, pc: u32) -> Option<&PcAttribution> {
        self.pcs.get(&pc)
    }

    /// Total cycles attributed across all PCs.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total instructions retired.
    pub fn total_retires(&self) -> u64 {
        self.total_retires
    }

    /// The heatmap window size in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Words pushed into the `(dir, channel)` FIFO per cycle window, in
    /// window order. Windows without traffic are absent.
    pub fn fsl_window_counts(&self, dir: FifoDir, channel: u8) -> Vec<(u64, u64)> {
        self.fsl_windows
            .get(&(dir_index(dir), channel))
            .map(|m| m.iter().map(|(w, c)| (*w, *c)).collect())
            .unwrap_or_default()
    }

    /// Channels that saw traffic, as (direction, channel) pairs in
    /// deterministic order.
    pub fn fsl_channels(&self) -> Vec<(FifoDir, u8)> {
        self.fsl_windows
            .keys()
            .map(|&(d, c)| (if d == 0 { FifoDir::ToHw } else { FifoDir::FromHw }, c))
            .collect()
    }

    /// An ASCII heatmap of FSL channel utilization over cycle windows:
    /// one row per (direction, channel), one cell per window, shaded by
    /// words-per-window relative to the busiest cell.
    pub fn heatmap_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.fsl_windows.is_empty() {
            out.push_str("no FSL traffic\n");
            return out;
        }
        let peak =
            self.fsl_windows.values().flat_map(|m| m.values()).copied().max().unwrap_or(1).max(1);
        let _ = writeln!(
            out,
            "FSL utilization ({}-cycle windows, {} windows, peak {} words/window)",
            self.window,
            self.last_window + 1,
            peak
        );
        const SHADES: [char; 5] = ['.', '-', '+', '*', '#'];
        for (&(d, c), windows) in &self.fsl_windows {
            let dir = if d == 0 { FifoDir::ToHw } else { FifoDir::FromHw };
            let mut row = String::new();
            for w in 0..=self.last_window {
                let count = windows.get(&w).copied().unwrap_or(0);
                let shade = if count == 0 {
                    ' '
                } else {
                    // 1..=peak maps onto the five shades.
                    let idx = ((count - 1) * SHADES.len() as u64 / peak) as usize;
                    SHADES[idx.min(SHADES.len() - 1)]
                };
                row.push(shade);
            }
            let _ = writeln!(out, "  {:>7} ch{c} |{row}|", dir.label());
        }
        out
    }

    /// Folds the attribution of an instruction still in flight when the
    /// run stopped (the ISS exposes it as `Cpu::in_flight`), so totals
    /// reconcile exactly even for cycle-limited runs.
    pub fn add_in_flight(&mut self, pc: u32, cycles: u32, read_stalls: u32, write_stalls: u32) {
        let s = self.pcs.entry(pc).or_default();
        s.cycles += cycles as u64;
        s.read_stalls += read_stalls as u64;
        s.write_stalls += write_stalls as u64;
        self.total_cycles += cycles as u64;
    }
}

fn dir_index(dir: FifoDir) -> u8 {
    match dir {
        FifoDir::ToHw => 0,
        FifoDir::FromHw => 1,
    }
}

impl TraceSink for GuestProfile {
    fn event(&mut self, e: &TraceEvent) {
        match *e {
            TraceEvent::Retire { pc, cycles, read_stalls, write_stalls, .. } => {
                let s = self.pcs.entry(pc).or_default();
                s.retires += 1;
                s.cycles += cycles as u64;
                s.read_stalls += read_stalls as u64;
                s.write_stalls += write_stalls as u64;
                self.total_cycles += cycles as u64;
                self.total_retires += 1;
            }
            TraceEvent::FifoPush { cycle, dir, channel, .. } => {
                let w = cycle / self.window;
                self.last_window = self.last_window.max(w);
                *self
                    .fsl_windows
                    .entry((dir_index(dir), channel))
                    .or_default()
                    .entry(w)
                    .or_default() += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(pc: u32, cycles: u32, read: u32, write: u32) -> TraceEvent {
        TraceEvent::Retire {
            cycle: 0,
            pc,
            word: 0,
            class: crate::event::InstClass::Alu,
            cycles,
            read_stalls: read,
            write_stalls: write,
        }
    }

    #[test]
    fn attribution_buckets_sum_to_cycles() {
        let mut g = GuestProfile::new();
        g.event(&retire(0x10, 7, 2, 1));
        g.event(&retire(0x10, 1, 0, 0));
        let s = *g.pc_stat(0x10).unwrap();
        assert_eq!(s.retires, 2);
        assert_eq!(s.cycles, 8);
        assert_eq!(s.fetch() + s.execute() + s.read_stalls + s.write_stalls, s.cycles);
        assert_eq!(g.total_cycles(), 8);
        assert_eq!(g.total_retires(), 2);
    }

    #[test]
    fn fsl_windows_bucket_by_cycle() {
        let mut g = GuestProfile::with_window(100);
        for cycle in [5, 50, 150, 250, 255] {
            g.event(&TraceEvent::FifoPush {
                cycle,
                dir: FifoDir::ToHw,
                channel: 0,
                data: 0,
                control: false,
                occupancy: 1,
            });
        }
        assert_eq!(g.fsl_window_counts(FifoDir::ToHw, 0), vec![(0, 2), (1, 1), (2, 2)]);
        assert_eq!(g.fsl_channels(), vec![(FifoDir::ToHw, 0)]);
        let map = g.heatmap_text();
        assert!(map.contains("to_hw ch0"), "{map}");
    }

    #[test]
    fn in_flight_attribution_folds_in() {
        let mut g = GuestProfile::new();
        g.event(&retire(0x0, 3, 0, 0));
        g.add_in_flight(0x4, 9, 9, 0);
        assert_eq!(g.total_cycles(), 12);
        let s = g.pc_stat(0x4).unwrap();
        assert_eq!(s.retires, 0, "in-flight instruction has not retired");
        assert_eq!(s.cycles, 9);
    }
}
