//! Chrome trace-event JSON export.
//!
//! Produces the JSON object format of the Trace Event spec, loadable in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`. One simulated
//! clock cycle maps to one microsecond of trace time (`ts`/`dur` are in
//! microseconds per the spec), so a 50 MHz run visualizes with cycle
//! resolution.
//!
//! Track layout:
//!
//! * `tid 1` — retired instructions as complete (`X`) slices, named by
//!   instruction class, with PC and raw word in `args`;
//! * `tid 2` — FSL stall intervals as begin/end (`B`/`E`) pairs;
//! * counter (`C`) tracks per FSL FIFO carrying occupancy, and one per
//!   RTL-kernel statistic;
//! * instant (`i`) events for FIFO flag rejections and gateway words.

use crate::event::{StallCause, TraceEvent};

/// The process id used for all cycle-domain tracks.
const PID: u32 = 1;

fn esc(s: &str) -> String {
    // The strings we emit are generated labels; escape defensively anyway.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stall_name(cause: StallCause) -> &'static str {
    match cause {
        StallCause::FslRead => "fsl read stall",
        StallCause::FslWrite => "fsl write stall",
    }
}

/// Renders `events` as a Chrome trace-event JSON document.
///
/// Events are sorted by timestamp so `ts` is non-decreasing — some
/// viewers require it, and the exporter tests assert it.
pub fn to_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.timestamp());
    let mut rows: Vec<String> = Vec::with_capacity(sorted.len());
    for e in sorted {
        let row = match *e {
            TraceEvent::Retire { cycle, pc, word, class, cycles, read_stalls, write_stalls } => {
                format!(
                    concat!(
                        r#"{{"name":"{}","cat":"cpu","ph":"X","ts":{},"dur":{},"pid":{},"tid":1,"#,
                        r#""args":{{"pc":"{:#010x}","word":"{:#010x}","read_stalls":{},"write_stalls":{}}}}}"#
                    ),
                    esc(class.label()),
                    cycle,
                    cycles,
                    PID,
                    pc,
                    word,
                    read_stalls,
                    write_stalls
                )
            }
            TraceEvent::StallBegin { cycle, pc, cause } => format!(
                r#"{{"name":"{}","cat":"stall","ph":"B","ts":{},"pid":{},"tid":2,"args":{{"pc":"{:#010x}"}}}}"#,
                stall_name(cause),
                cycle,
                PID,
                pc
            ),
            TraceEvent::StallEnd { cycle, pc, cause, cycles } => format!(
                r#"{{"name":"{}","cat":"stall","ph":"E","ts":{},"pid":{},"tid":2,"args":{{"pc":"{:#010x}","cycles":{}}}}}"#,
                stall_name(cause),
                cycle,
                PID,
                pc,
                cycles
            ),
            TraceEvent::FifoPush { cycle, dir, channel, occupancy, .. }
            | TraceEvent::FifoPop { cycle, dir, channel, occupancy, .. } => format!(
                r#"{{"name":"fsl {}{}","cat":"fifo","ph":"C","ts":{},"pid":{},"args":{{"occupancy":{}}}}}"#,
                dir.label(),
                channel,
                cycle,
                PID,
                occupancy
            ),
            TraceEvent::FifoFull { cycle, dir, channel } => format!(
                r#"{{"name":"fsl {}{} full","cat":"fifo","ph":"i","ts":{},"pid":{},"tid":3,"s":"t"}}"#,
                dir.label(),
                channel,
                cycle,
                PID
            ),
            TraceEvent::FifoEmpty { cycle, dir, channel } => format!(
                r#"{{"name":"fsl {}{} empty","cat":"fifo","ph":"i","ts":{},"pid":{},"tid":3,"s":"t"}}"#,
                dir.label(),
                channel,
                cycle,
                PID
            ),
            TraceEvent::GatewayWord { cycle, peripheral, to_hw, data } => format!(
                r#"{{"name":"gateway p{} {}","cat":"gateway","ph":"i","ts":{},"pid":{},"tid":4,"s":"t","args":{{"data":"{:#010x}"}}}}"#,
                peripheral,
                if to_hw { "to hw" } else { "from hw" },
                cycle,
                PID,
                data
            ),
            TraceEvent::FaultInjected { cycle, site, detail } => format!(
                r#"{{"name":"fault {}","cat":"fault","ph":"i","ts":{},"pid":{},"tid":5,"s":"t","args":{{"detail":"{:#010x}"}}}}"#,
                site.label(),
                cycle,
                PID,
                detail
            ),
            TraceEvent::FaultDetected { cycle, detector, detail } => format!(
                r#"{{"name":"detect {}","cat":"fault","ph":"i","ts":{},"pid":{},"tid":5,"s":"t","args":{{"detail":"{:#010x}"}}}}"#,
                detector.label(),
                cycle,
                PID,
                detail
            ),
            TraceEvent::Recovered { cycle, checkpoint_cycle, retries } => format!(
                r#"{{"name":"rollback","cat":"fault","ph":"i","ts":{},"pid":{},"tid":5,"s":"t","args":{{"checkpoint_cycle":{},"retries":{}}}}}"#,
                cycle, PID, checkpoint_cycle, retries
            ),
            TraceEvent::RegWrite { cycle, reg, value } => format!(
                r#"{{"name":"r{} write","cat":"cpu","ph":"i","ts":{},"pid":{},"tid":6,"s":"t","args":{{"value":"{:#010x}"}}}}"#,
                reg, cycle, PID, value
            ),
            TraceEvent::BusTransfer { cycle, bus, write, addr, wait } => format!(
                r#"{{"name":"{} {}","cat":"bus","ph":"i","ts":{},"pid":{},"tid":7,"s":"t","args":{{"addr":"{:#010x}","wait":{}}}}}"#,
                bus.label(),
                if write { "write" } else { "read" },
                cycle,
                PID,
                addr,
                wait
            ),
            TraceEvent::BlockActivity { cycle, peripheral, firings, toggles } => format!(
                r#"{{"name":"block p{} activity","cat":"blocks","ph":"C","ts":{},"pid":{},"args":{{"firings":{},"toggles":{}}}}}"#,
                peripheral, cycle, PID, firings, toggles
            ),
            TraceEvent::KernelStep { time_ns, events, delta_cycles, process_runs } => format!(
                r#"{{"name":"rtl kernel","cat":"rtl","ph":"C","ts":{},"pid":2,"args":{{"events":{},"delta_cycles":{},"process_runs":{}}}}}"#,
                time_ns, events, delta_cycles, process_runs
            ),
        };
        rows.push(row);
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&rows.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FifoDir;
    use crate::json;

    #[test]
    fn export_is_valid_json_with_sorted_ts() {
        let events = vec![
            TraceEvent::FifoPush {
                cycle: 9,
                dir: FifoDir::ToHw,
                channel: 0,
                data: 1,
                control: false,
                occupancy: 1,
            },
            TraceEvent::Retire {
                cycle: 2,
                pc: 0x10,
                word: 0xdead_beef,
                class: crate::InstClass::Alu,
                cycles: 1,
                read_stalls: 0,
                write_stalls: 0,
            },
        ];
        let text = to_json(&events);
        let v = json::parse(&text).expect("valid JSON");
        let rows = v.get("traceEvents").and_then(json::Value::as_array).expect("traceEvents");
        assert_eq!(rows.len(), 2);
        let ts: Vec<f64> =
            rows.iter().map(|r| r.get("ts").and_then(json::Value::as_f64).unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts non-decreasing: {ts:?}");
    }
}
