//! # softsim-trace — cycle-domain observability for the co-simulation stack
//!
//! The paper's co-simulation environment exists to answer *where do the
//! cycles go?* — how much of an application's time is compute, how much
//! is spent stalled on the Fast Simplex Links, how deep the FIFOs
//! actually fill (§IV's communication-overhead analysis). This crate is
//! the instrumentation layer that extracts those answers from a run
//! without changing its simulated behavior:
//!
//! * [`TraceEvent`] — the cycle-domain event model: instruction retires
//!   with stall attribution, FSL pushes/pops/flag rejections per channel,
//!   gateway word transfers, and discrete-event kernel activity;
//! * [`TraceSink`] — the observer trait every simulator component emits
//!   into; sinks are attached explicitly and the untraced path stays a
//!   single predictable branch;
//! * [`Recorder`] — a bounded ring buffer of raw events;
//! * [`Timeline`] — per-channel FIFO occupancy time series with
//!   high-water marks, exported as CSV;
//! * [`Profile`] — hot-PC histogram, instruction mix and the
//!   compute / FSL-read-stall / FSL-write-stall / memory cycle
//!   breakdown, with totals that reconcile *exactly* against the
//!   processor's own [`cycles`](Profile::total_cycles) counter;
//! * [`GuestProfile`] — per-PC cycle and stall attribution plus windowed
//!   FSL channel utilization, the raw material for basic-block hotspot
//!   analysis and flamegraphs (the analysis lives in `softsim-profile`);
//! * [`chrome`] — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`);
//! * [`json`] — a minimal JSON reader so exports can be schema-checked
//!   in tests without external dependencies.
//!
//! The crate is intentionally dependency-free (std only) and knows
//! nothing about the simulators; they depend on it, never the reverse.
//!
//! # Attaching
//!
//! Sinks are shared between the processor, the FSL bank and the
//! co-simulator through [`SharedSink`] (`Rc<RefCell<dyn TraceSink>>`):
//!
//! ```
//! use softsim_trace::{Profile, SharedSink, TraceEvent, TraceSink};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let profile = Rc::new(RefCell::new(Profile::new()));
//! let sink: SharedSink = profile.clone();
//! sink.borrow_mut().event(&TraceEvent::GatewayWord {
//!     cycle: 3,
//!     peripheral: 0,
//!     to_hw: true,
//!     data: 42,
//! });
//! assert_eq!(profile.borrow().gateway_words_to_hw(), 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
mod event;
mod guest;
pub mod json;
mod profile;
mod recorder;
mod sink;
mod timeline;

pub use event::{BusKind, DetectorKind, FifoDir, InjectionSite, InstClass, StallCause, TraceEvent};
pub use guest::{GuestProfile, PcAttribution, DEFAULT_FSL_WINDOW};
pub use profile::{CycleBreakdown, PcStat, Profile};
pub use recorder::Recorder;
pub use sink::{shared, Fanout, NullSink, SharedSink, TraceSink};
pub use timeline::Timeline;
