//! Microbenchmarks of the simulation substrates themselves: per-cycle
//! cost of the block-graph scheduler as the pipeline deepens, and
//! per-event cost of the discrete-event kernel — the "analysis of
//! simulation performance" behind the paper's Table II (the co-simulation
//! speed is set by its slowest component, and the RTL baseline pays per
//! event and per delta cycle).

use softsim_apps::cordic::hardware::cordic_graph;
use softsim_bench::harness::Harness;
use softsim_blocks::block::bit;
use softsim_blocks::{Fix, FixFmt};
use softsim_rtl::{clock, Kernel};
use std::hint::black_box;

const CYCLES: u64 = 50_000;

fn main() {
    let mut h = Harness::new();
    h.samples(5);

    for p in [1usize, 4, 8, 16] {
        h.bench(format!("block_scheduler/cordic_pipeline/{p}"), || {
            let mut g = cordic_graph(p);
            let data = g.input_handle("fsl0_data").unwrap();
            let valid = g.input_handle("fsl0_valid").unwrap();
            let ctrl = g.input_handle("fsl0_ctrl").unwrap();
            let word = Fix::from_int(0x1234, FixFmt::INT32);
            for i in 0..CYCLES {
                g.set_input_fast(data, word);
                g.set_input_fast(valid, bit(i % 3 != 0));
                g.set_input_fast(ctrl, bit(false));
                g.step();
            }
            black_box(g.cycles());
        });
    }

    // A chain of n combinational processes toggled by a clock: measures
    // event dispatch + delta-cycle propagation cost.
    for n in [4usize, 16, 64] {
        h.bench(format!("event_kernel/comb_chain/{n}"), || {
            let mut k = Kernel::new();
            let clk = clock(&mut k, 20);
            let mut sigs = vec![k.signal("s0", 32)];
            for i in 1..=n {
                sigs.push(k.signal(format!("s{i}"), 32));
            }
            // Driver: increment s0 every rising edge.
            let s0 = sigs[0];
            k.process("drv", &[clk.clk], move |ctx| {
                if ctx.rising(clk.clk) {
                    let v = ctx.get(s0).wrapping_add(1);
                    ctx.set(s0, v);
                }
            });
            for i in 0..n {
                let (a, y) = (sigs[i], sigs[i + 1]);
                k.process(format!("p{i}"), &[a], move |ctx| {
                    let v = ctx.get(a).wrapping_add(1);
                    ctx.set(y, v);
                });
            }
            k.run_until(CYCLES * 20);
            black_box(k.stats().events);
        });
    }
    h.finish();
}
