//! Figure 7 bench: co-simulating block matrix multiplication across the
//! (N, block-size) design space of the paper's second application.

use softsim_bench::harness::Harness;
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new();
    h.samples(5);
    // N = 32 takes seconds per iteration; bench the small/medium points.
    for n in [4usize, 8, 16] {
        for nb in [0usize, 2, 4] {
            if nb != 0 && n % nb != 0 {
                continue;
            }
            h.bench(format!("fig7_matmul_cosim/N{n}_blk{nb}"), || {
                let mut sim = workloads::matmul_cosim(n, (nb > 0).then_some(nb));
                assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                black_box(sim.cpu_stats().cycles);
            });
        }
    }
    h.finish();
}
