//! Figure 7 bench: co-simulating block matrix multiplication across the
//! (N, block-size) design space of the paper's second application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_matmul_cosim");
    group.sample_size(10);
    // N = 32 takes seconds per iteration; bench the small/medium points.
    for n in [4usize, 8, 16] {
        for nb in [0usize, 2, 4] {
            if nb != 0 && n % nb != 0 {
                continue;
            }
            let label = format!("N{n}_blk{nb}");
            group.bench_function(BenchmarkId::from_parameter(label), |bench| {
                bench.iter(|| {
                    let mut sim = workloads::matmul_cosim(n, (nb > 0).then_some(nb));
                    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                    black_box(sim.cpu_stats().cycles)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
