//! Table I (simulation-time columns) bench: the same simulated workload
//! through the high-level co-simulator and through the low-level
//! event-driven RTL baseline. The ratio of the two reproduces the paper's
//! headline 5.6×–19.4× simulation speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use softsim_rtl::RtlStop;
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sim_time");
    group.sample_size(10);
    for p in workloads::CORDIC_PS {
        group.bench_function(BenchmarkId::new("cosim_cordic24", format!("P{p}")), |b| {
            b.iter(|| {
                let mut sim = workloads::cordic_cosim_long(24, Some(p));
                assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                black_box(sim.cpu_stats().cycles)
            });
        });
        group.bench_function(BenchmarkId::new("rtl_cordic24", format!("P{p}")), |b| {
            b.iter(|| {
                let mut soc = workloads::cordic_rtl_long(24, Some(p));
                assert_eq!(soc.run(u64::MAX / 4), RtlStop::Halted);
                black_box(soc.cpu_cycles())
            });
        });
    }
    for nb in [2usize, 4] {
        let n = workloads::MATMUL_TABLE_N;
        group.bench_function(BenchmarkId::new("cosim_matmul16", format!("blk{nb}")), |b| {
            b.iter(|| {
                let mut sim = workloads::matmul_cosim(n, Some(nb));
                assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                black_box(sim.cpu_stats().cycles)
            });
        });
        group.bench_function(BenchmarkId::new("rtl_matmul16", format!("blk{nb}")), |b| {
            b.iter(|| {
                let mut soc = workloads::matmul_rtl_sys(n, Some(nb));
                assert_eq!(soc.run(u64::MAX / 4), RtlStop::Halted);
                black_box(soc.cpu_cycles())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
