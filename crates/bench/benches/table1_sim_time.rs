//! Table I (simulation-time columns) bench: the same simulated workload
//! through the high-level co-simulator and through the low-level
//! event-driven RTL baseline. The ratio of the two reproduces the paper's
//! headline 5.6×–19.4× simulation speedups.

use softsim_bench::harness::Harness;
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use softsim_rtl::RtlStop;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new();
    h.samples(5);
    for p in workloads::CORDIC_PS {
        h.bench(format!("table1_sim_time/cosim_cordic24/P{p}"), || {
            let mut sim = workloads::cordic_cosim_long(24, Some(p));
            assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
            black_box(sim.cpu_stats().cycles);
        });
        h.bench(format!("table1_sim_time/rtl_cordic24/P{p}"), || {
            let mut soc = workloads::cordic_rtl_long(24, Some(p));
            assert_eq!(soc.run(u64::MAX / 4), RtlStop::Halted);
            black_box(soc.cpu_cycles());
        });
    }
    for nb in [2usize, 4] {
        let n = workloads::MATMUL_TABLE_N;
        h.bench(format!("table1_sim_time/cosim_matmul16/blk{nb}"), || {
            let mut sim = workloads::matmul_cosim(n, Some(nb));
            assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
            black_box(sim.cpu_stats().cycles);
        });
        h.bench(format!("table1_sim_time/rtl_matmul16/blk{nb}"), || {
            let mut soc = workloads::matmul_rtl_sys(n, Some(nb));
            assert_eq!(soc.run(u64::MAX / 4), RtlStop::Halted);
            black_box(soc.cpu_cycles());
        });
    }
    h.finish();
}
