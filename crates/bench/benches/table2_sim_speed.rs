//! Table II bench: raw per-cycle speed of each component simulator —
//! instruction-set simulator alone, block simulator alone, the combined
//! co-simulation and the RTL baseline (the paper's 1.9e5 / 1.4e4 / 2.3e3
//! cycles-per-second ordering).

use softsim_bench::harness::Harness;
use softsim_bench::workloads;
use softsim_blocks::{Fix, FixFmt};
use softsim_bus::FslBank;
use softsim_cosim::CoSimStop;
use softsim_iss::{Cpu, StopReason};
use softsim_rtl::RtlStop;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new();
    h.samples(10);

    // Instruction simulator alone: pure-software CORDIC image.
    let img = workloads::cordic_sw_image(24);
    h.bench("table2_sim_speed/iss_alone", || {
        let mut cpu = Cpu::with_default_memory(&img);
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, u64::MAX / 2), StopReason::Halted);
        black_box(cpu.stats().cycles);
    });

    // Block simulator alone: the 4-PE pipeline, 100k clocks.
    const HW_CYCLES: u64 = 100_000;
    h.bench("table2_sim_speed/blocks_alone", || {
        let mut g = softsim_apps::cordic::hardware::cordic_graph(4);
        let data = Fix::from_int(0x1234, FixFmt::INT32);
        let on = Fix::from_int(1, FixFmt::BOOL);
        let off = Fix::zero(FixFmt::BOOL);
        let hd = g.input_handle("fsl0_data").unwrap();
        let hv = g.input_handle("fsl0_valid").unwrap();
        let hc = g.input_handle("fsl0_ctrl").unwrap();
        for i in 0..HW_CYCLES {
            g.set_input_fast(hd, data);
            g.set_input_fast(hv, if i % 3 != 0 { on } else { off });
            g.set_input_fast(hc, off);
            g.step();
        }
        black_box(g.cycles());
    });

    // Full co-simulation and the RTL baseline on the same workload.
    h.bench("table2_sim_speed/cosim", || {
        let mut sim = workloads::cordic_cosim_long(24, Some(4));
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        black_box(sim.cpu_stats().cycles);
    });
    h.bench("table2_sim_speed/rtl_baseline", || {
        let mut soc = workloads::cordic_rtl_long(24, Some(4));
        assert_eq!(soc.run(u64::MAX / 4), RtlStop::Halted);
        black_box(soc.cpu_cycles());
    });
    h.finish();
}
