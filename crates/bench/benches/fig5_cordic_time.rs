//! Figure 5 bench: co-simulating the CORDIC divider across every
//! (iterations, P) design point. The *application* cycle counts printed
//! by `tables --fig5` are deterministic; this bench measures how fast the
//! co-simulation environment explores each design point — the whole value
//! proposition of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_cordic_cosim");
    group.sample_size(20);
    for iters in workloads::CORDIC_ITERS {
        for p in std::iter::once(0usize).chain(workloads::CORDIC_PS) {
            let label = format!("iters{iters}_P{p}");
            group.bench_function(BenchmarkId::from_parameter(label), |bench| {
                bench.iter(|| {
                    let mut sim = workloads::cordic_cosim(iters, (p > 0).then_some(p));
                    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                    black_box(sim.cpu_stats().cycles)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
