//! Figure 5 bench: co-simulating the CORDIC divider across every
//! (iterations, P) design point. The *application* cycle counts printed
//! by `tables --fig5` are deterministic; this bench measures how fast the
//! co-simulation environment explores each design point — the whole value
//! proposition of the paper.

use softsim_bench::harness::Harness;
use softsim_bench::workloads;
use softsim_cosim::CoSimStop;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new();
    h.samples(5);
    for iters in workloads::CORDIC_ITERS {
        for p in std::iter::once(0usize).chain(workloads::CORDIC_PS) {
            h.bench(format!("fig5_cordic_cosim/iters{iters}_P{p}"), || {
                let mut sim = workloads::cordic_cosim(iters, (p > 0).then_some(p));
                assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                black_box(sim.cpu_stats().cycles);
            });
        }
    }
    h.finish();
}
