//! Tracing-overhead guard: the observability layer must be free when it
//! is off. The untraced configuration (no sink attached — the default
//! for every workload in the repo) runs the Table II ISS workload
//! against the instrumented-but-null configuration (a `NullSink`
//! attached, every event constructed and dispatched) and asserts the
//! untraced path is not measurably slower — within 2% of the null-sink
//! path even though it does strictly less work.
//!
//! The metrics layer rides the same plumbing, so the guard extends to
//! it: a configuration with a `MetricsCollector` instantiated but *not*
//! attached (metrics off — the default) must also stay within 2% of the
//! null-sink path. The new metric-feeding events (register writebacks,
//! bus transfers, block activity) sit behind the same single tracing
//! guard, so metrics-off costs nothing the guard would catch.
//!
//! The FSL hardening layer gets the same treatment: with the SEC-DED
//! codec disabled (the default), every push/pop pays one predictable
//! branch on the codec flag and nothing else, so a full ECC-off
//! co-simulation does strictly less work than the identical ECC-on run
//! and must not be measurably slower than it — hardening you did not
//! ask for is free.
//!
//! The guest profiler follows the same contract: with profiling off
//! (the default — `CoSim::set_profiling` never called or called with
//! `false`), no sink is wired and stall fast-forwarding stays engaged,
//! so a profiler-off co-simulation does strictly less work than the
//! identical profiler-on run and must stay within 2% of it.
//!
//! Harness telemetry gets the same contract: a plain campaign
//! (telemetry off — every `Option<&Telemetry>` is `None`, one
//! predictable branch per trial) sweeps the same seeded plan as an
//! instrumented run that additionally records a span per trial into an
//! in-memory telemetry aggregator. The off run does strictly less work
//! and must stay within 2% of the on run, and the two reports are
//! asserted byte-identical first.
//!
//! Campaign journaling gets the same guard: a plain in-memory campaign
//! (journaling off — the default `run_campaign` path) sweeps the same
//! seeded plan as the durable journaled runner, which additionally
//! encodes and appends every trial to an `SSJL` journal. The plain run
//! does strictly less work and must stay within 2% of the journaled
//! one — durability costs nothing when you do not ask for it — and the
//! two reports are asserted byte-identical first.
//!
//! The simulation service is the last guard: running a campaign
//! directly (serve off — the default for everything else in the repo)
//! must stay within 2% of submitting the identical campaign through an
//! in-process `softsim_serve::Server` (cache bypassed, non-durable),
//! whose admission queue, worker hand-off and result plumbing wrap the
//! same simulation. The served report is asserted equal to the direct
//! run's first, line for line.
//!
//! Samples are interleaved (A,B,A,B,...) so frequency scaling and cache
//! warm-up hit both configurations equally, and minima are compared
//! (minimum wall time is the standard low-noise estimator for
//! same-machine A/B timing).

use softsim_bus::FslBank;
use softsim_cosim::CoSimStop;
use softsim_iss::{Cpu, StopReason};
use softsim_metrics::MetricsCollector;
use softsim_trace::{shared, NullSink};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::{Duration, Instant};

const SAMPLES: usize = 15;

fn run_untraced(img: &softsim_isa::Image) -> Duration {
    let mut cpu = Cpu::with_default_memory(img);
    let mut fsl = FslBank::default();
    let start = Instant::now();
    assert_eq!(cpu.run(&mut fsl, u64::MAX / 2), StopReason::Halted);
    let wall = start.elapsed();
    black_box(cpu.stats().cycles);
    wall
}

fn run_null_traced(img: &softsim_isa::Image) -> Duration {
    let mut cpu = Cpu::with_default_memory(img);
    let mut fsl = FslBank::default();
    let sink = shared(Rc::new(RefCell::new(NullSink)));
    cpu.attach_trace(sink.clone());
    fsl.attach_trace(sink);
    let start = Instant::now();
    assert_eq!(cpu.run(&mut fsl, u64::MAX / 2), StopReason::Halted);
    let wall = start.elapsed();
    black_box(cpu.stats().cycles);
    wall
}

fn run_metrics_off(img: &softsim_isa::Image) -> Duration {
    // Metrics off: the collector exists (registry built, windows ready)
    // but no sink is attached, so the hot path is identical to the
    // untraced configuration — one predictable branch per emit site.
    let collector = MetricsCollector::new(256);
    let mut cpu = Cpu::with_default_memory(img);
    let mut fsl = FslBank::default();
    let start = Instant::now();
    assert_eq!(cpu.run(&mut fsl, u64::MAX / 2), StopReason::Halted);
    let wall = start.elapsed();
    black_box(cpu.stats().cycles);
    black_box(collector.to_prometheus().len());
    wall
}

fn run_cosim_ecc(ecc: bool) -> Duration {
    // The FSL-heavy hardware-accelerated workload: every batch word
    // crosses the codec-guarded push/pop paths in both directions.
    let mut sim = softsim_bench::workloads::cordic_cosim_long(24, Some(4));
    sim.set_fsl_ecc(ecc);
    let start = Instant::now();
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
    let wall = start.elapsed();
    black_box(sim.cpu_stats().cycles);
    wall
}

fn run_cosim_profiling(on: bool) -> Duration {
    // Profiler off is the default; on attaches the per-PC collector and
    // (like any sink) disengages stall fast-forwarding, so the off
    // configuration does strictly less work than the on one.
    let mut sim = softsim_bench::workloads::cordic_cosim_long(24, Some(4));
    sim.set_profiling(on);
    let start = Instant::now();
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
    let wall = start.elapsed();
    black_box(sim.cpu_stats().cycles);
    if on {
        black_box(sim.guest_profile().expect("profiling on").total_cycles());
    }
    wall
}

fn run_campaign_plain() -> Duration {
    // Journaling off: the default in-memory campaign over the durable
    // bench's seeded plan. Plan construction is included on both sides,
    // so the ratio isolates the journaling delta.
    use softsim_bench::faults::{cordic_campaign, REPORT_SEED};
    let start = Instant::now();
    let report = cordic_campaign(REPORT_SEED, softsim_bench::durable::DURABLE_TRIALS);
    let wall = start.elapsed();
    black_box(report.trials.len());
    wall
}

fn run_campaign_telemetry() -> Duration {
    // Telemetry on, in-memory only: spans aggregate under a mutex, no
    // heartbeat or snapshot I/O. The report must equal the plain run's.
    use softsim_bench::faults::{cordic_campaign_telemetry, REPORT_SEED};
    use softsim_metrics::telemetry::{Telemetry, TelemetryConfig};
    let t = Telemetry::new(TelemetryConfig::default());
    let start = Instant::now();
    let report =
        cordic_campaign_telemetry(REPORT_SEED, softsim_bench::durable::DURABLE_TRIALS, Some(&t));
    let wall = start.elapsed();
    black_box(report.trials.len());
    black_box(t.trial_cycles());
    wall
}

fn run_campaign_journaled(journal: &std::path::Path) -> Duration {
    let start = Instant::now();
    let report = softsim_bench::durable::durable_cordic_campaign(journal, false, 1);
    let wall = start.elapsed();
    black_box(report.trials.len());
    wall
}

const SERVE_SEED: u64 = 0x00FF_10AD;
const SERVE_TRIALS: u32 = 12;

fn serve_spec() -> softsim_serve::JobSpec {
    softsim_serve::JobSpec {
        kind: softsim_serve::JobKind::Campaign,
        workload: softsim_serve::Workload::Cordic { iterations: 8, p: 2 },
        seed: SERVE_SEED,
        trials: SERVE_TRIALS,
        durable: false,
        use_cache: false,
        ..softsim_serve::JobSpec::default()
    }
}

fn serve_off_campaign() -> softsim_resilience::CampaignReport {
    // Serve off: the same plan, simulator and runner the service's
    // catalog wires up, invoked directly with no queue, no worker
    // hand-off and no result plumbing.
    use softsim_serve::catalog;
    let spec = serve_spec();
    let plan = catalog::campaign_plan(spec.workload, spec.seed, spec.trials);
    let (base, n) = catalog::observe_window(spec.workload);
    softsim_resilience::run_campaign_parallel_with_telemetry(
        || catalog::build_sim(spec.workload, false),
        &plan,
        move |s| catalog::observe_words(s, base, n),
        softsim_resilience::CampaignConfig {
            fast_forward: true,
            ..softsim_resilience::CampaignConfig::default()
        },
        1,
        None,
    )
}

fn run_serve_off() -> Duration {
    let start = Instant::now();
    let report = serve_off_campaign();
    let wall = start.elapsed();
    black_box(report.trials.len());
    wall
}

fn run_serve_on(server: &softsim_serve::Server) -> Duration {
    let start = Instant::now();
    let result = server.run(serve_spec()).expect("campaign admitted");
    let wall = start.elapsed();
    assert_eq!(result.state, softsim_serve::JobState::Done);
    black_box(result.report.len());
    wall
}

fn main() {
    let img = softsim_bench::workloads::cordic_sw_image(24);
    let journal =
        std::env::temp_dir().join(format!("softsim_overhead_{}.ssjl", std::process::id()));
    // Warm-up all paths.
    run_untraced(&img);
    run_null_traced(&img);
    run_metrics_off(&img);
    run_cosim_ecc(false);
    run_cosim_ecc(true);
    run_cosim_profiling(false);
    run_cosim_profiling(true);
    run_campaign_plain();
    run_campaign_telemetry();
    run_campaign_journaled(&journal);
    // The journaled report must be the plain report, byte for byte —
    // the overhead comparison is only meaningful between equal runs.
    assert_eq!(
        softsim_bench::faults::cordic_campaign(
            softsim_bench::faults::REPORT_SEED,
            softsim_bench::durable::DURABLE_TRIALS,
        ),
        softsim_bench::durable::durable_cordic_campaign(&journal, false, 1),
        "plain and journaled campaigns must agree bit for bit"
    );
    // The served campaign must be the direct campaign, line for line —
    // the service wraps the simulation, it must never change it.
    let serve_server = softsim_serve::Server::start(softsim_serve::ServeConfig {
        workers: 1,
        spool: std::env::temp_dir().join(format!("softsim_overhead_serve_{}", std::process::id())),
        ..softsim_serve::ServeConfig::default()
    })
    .expect("serve starts");
    {
        let served = serve_server.run(serve_spec()).expect("served campaign");
        let direct = serve_off_campaign();
        let mut expected = format!(
            "campaign cordic iters=8 p=2 seed={SERVE_SEED:#x} trials={SERVE_TRIALS} \
             golden_cycles={}\n",
            direct.golden_cycles
        );
        let cov = direct.coverage();
        expected.push_str(&format!(
            "coverage completed={} budget={} abandoned={} retried={}\n",
            cov.completed, cov.budget, cov.abandoned, cov.retried
        ));
        for (i, t) in direct.trials.iter().enumerate() {
            expected.push_str(&format!(
                "trial {i}: cycle={} outcome={}\n",
                t.injection.cycle,
                t.outcome.label()
            ));
        }
        assert_eq!(
            served.report, expected,
            "served campaign must match the direct run line for line"
        );
    }
    // Same for the instrumented run — telemetry must never leak into
    // the deterministic report.
    {
        use softsim_metrics::telemetry::{Telemetry, TelemetryConfig};
        let t = Telemetry::new(TelemetryConfig::default());
        assert_eq!(
            softsim_bench::faults::cordic_campaign(
                softsim_bench::faults::REPORT_SEED,
                softsim_bench::durable::DURABLE_TRIALS,
            ),
            softsim_bench::faults::cordic_campaign_telemetry(
                softsim_bench::faults::REPORT_SEED,
                softsim_bench::durable::DURABLE_TRIALS,
                Some(&t),
            ),
            "plain and instrumented campaigns must agree bit for bit"
        );
    }
    let mut untraced = Vec::with_capacity(SAMPLES);
    let mut nulled = Vec::with_capacity(SAMPLES);
    let mut metrics_off = Vec::with_capacity(SAMPLES);
    let mut ecc_off = Vec::with_capacity(SAMPLES);
    let mut ecc_on = Vec::with_capacity(SAMPLES);
    let mut prof_off = Vec::with_capacity(SAMPLES);
    let mut prof_on = Vec::with_capacity(SAMPLES);
    let mut journal_off = Vec::with_capacity(SAMPLES);
    let mut journal_on = Vec::with_capacity(SAMPLES);
    let mut telemetry_on = Vec::with_capacity(SAMPLES);
    let mut serve_off = Vec::with_capacity(SAMPLES);
    let mut serve_on = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        untraced.push(run_untraced(&img));
        nulled.push(run_null_traced(&img));
        metrics_off.push(run_metrics_off(&img));
        ecc_off.push(run_cosim_ecc(false));
        ecc_on.push(run_cosim_ecc(true));
        prof_off.push(run_cosim_profiling(false));
        prof_on.push(run_cosim_profiling(true));
        journal_off.push(run_campaign_plain());
        telemetry_on.push(run_campaign_telemetry());
        journal_on.push(run_campaign_journaled(&journal));
        serve_off.push(run_serve_off());
        serve_on.push(run_serve_on(&serve_server));
    }
    let _ = std::fs::remove_file(&journal);
    let best_untraced = *untraced.iter().min().unwrap();
    let best_nulled = *nulled.iter().min().unwrap();
    let best_metrics_off = *metrics_off.iter().min().unwrap();
    let ratio = best_untraced.as_secs_f64() / best_nulled.as_secs_f64();
    println!(
        "trace overhead guard: untraced {best_untraced:?}, null-sink {best_nulled:?}, \
         untraced/null ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "tracing-off path must stay within 2% of the null-sink path \
         (untraced {best_untraced:?} vs null {best_nulled:?}, ratio {ratio:.4})"
    );
    println!("ok: tracing-off overhead within 2%");
    let ratio = best_metrics_off.as_secs_f64() / best_nulled.as_secs_f64();
    println!(
        "metrics overhead guard: metrics-off {best_metrics_off:?}, null-sink {best_nulled:?}, \
         metrics-off/null ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "metrics-off path must stay within 2% of the null-sink path \
         (metrics-off {best_metrics_off:?} vs null {best_nulled:?}, ratio {ratio:.4})"
    );
    println!("ok: metrics-off overhead within 2%");
    let best_ecc_off = *ecc_off.iter().min().unwrap();
    let best_ecc_on = *ecc_on.iter().min().unwrap();
    let ratio = best_ecc_off.as_secs_f64() / best_ecc_on.as_secs_f64();
    println!(
        "hardening overhead guard: ecc-off {best_ecc_off:?}, ecc-on {best_ecc_on:?}, \
         off/on ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "hardening-off co-simulation must stay within 2% of the ECC-on run \
         (ecc-off {best_ecc_off:?} vs ecc-on {best_ecc_on:?}, ratio {ratio:.4})"
    );
    println!("ok: hardening-off overhead within 2%");
    let best_prof_off = *prof_off.iter().min().unwrap();
    let best_prof_on = *prof_on.iter().min().unwrap();
    let ratio = best_prof_off.as_secs_f64() / best_prof_on.as_secs_f64();
    println!(
        "profiler overhead guard: profiler-off {best_prof_off:?}, profiler-on {best_prof_on:?}, \
         off/on ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "profiler-off co-simulation must stay within 2% of the profiler-on run \
         (off {best_prof_off:?} vs on {best_prof_on:?}, ratio {ratio:.4})"
    );
    println!("ok: profiler-off overhead within 2%");
    let best_journal_off = *journal_off.iter().min().unwrap();
    let best_telemetry_on = *telemetry_on.iter().min().unwrap();
    let ratio = best_journal_off.as_secs_f64() / best_telemetry_on.as_secs_f64();
    println!(
        "telemetry overhead guard: telemetry-off {best_journal_off:?}, \
         telemetry-on {best_telemetry_on:?}, off/on ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "telemetry-off campaign must stay within 2% of the instrumented run \
         (off {best_journal_off:?} vs on {best_telemetry_on:?}, ratio {ratio:.4})"
    );
    println!("ok: telemetry-off overhead within 2%");
    let best_journal_on = *journal_on.iter().min().unwrap();
    let ratio = best_journal_off.as_secs_f64() / best_journal_on.as_secs_f64();
    println!(
        "journaling overhead guard: journaling-off {best_journal_off:?}, \
         journaled {best_journal_on:?}, off/on ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "journaling-off campaign must stay within 2% of the journaled run \
         (off {best_journal_off:?} vs journaled {best_journal_on:?}, ratio {ratio:.4})"
    );
    println!("ok: journaling-off overhead within 2%");
    let best_serve_off = *serve_off.iter().min().unwrap();
    let best_serve_on = *serve_on.iter().min().unwrap();
    let ratio = best_serve_off.as_secs_f64() / best_serve_on.as_secs_f64();
    println!(
        "serve overhead guard: serve-off {best_serve_off:?}, served {best_serve_on:?}, \
         off/on ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "direct campaign must stay within 2% of the served run \
         (off {best_serve_off:?} vs served {best_serve_on:?}, ratio {ratio:.4})"
    );
    println!("ok: serve-off overhead within 2%");
}
