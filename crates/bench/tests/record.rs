//! The committed deterministic record must match fresh output.
//!
//! `tables_output.txt` holds every cycle-exact section of the
//! evaluation (figures, claims, profile, fault campaigns, ablations,
//! metrics) and no wall-clock numbers, so it is reproducible on any
//! machine. This test regenerates it in-process and compares byte for
//! byte — the record can never silently go stale again.

#[test]
fn committed_record_matches_fresh_output() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tables_output.txt");
    let committed = std::fs::read_to_string(path).expect("tables_output.txt must be committed");
    let fresh = softsim_bench::tables::record_text();
    if committed != fresh {
        let mismatch = committed
            .lines()
            .zip(fresh.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: {a:?} vs fresh {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: committed {} vs fresh {}",
                    committed.lines().count(),
                    fresh.lines().count()
                )
            });
        panic!(
            "tables_output.txt is stale — regenerate with \
             `cargo run --release -p softsim-bench --bin tables -- --record`\n{mismatch}"
        );
    }
}

/// `BENCH_0006.json` is the one committed benchmark record whose every
/// number is cycle-exact (no wall clock anywhere), so — unlike
/// `BENCH_0003`/`BENCH_0004` — it must match a fresh derivation byte
/// for byte on any machine.
#[test]
fn committed_hotspot_record_matches_fresh_output() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0006.json");
    let committed = std::fs::read_to_string(path).expect("BENCH_0006.json must be committed");
    assert_eq!(
        committed,
        softsim_bench::hotspots::hotspots_json(),
        "BENCH_0006.json is stale — regenerate with \
         `cargo run --release -p softsim-bench --bin tables -- --hotspots`"
    );
}

/// `BENCH_0007.json` records the durable-campaign invariants
/// (interrupt-and-resume identity, worker invariance, trial isolation)
/// with cycle-exact numbers only, so it too must match a fresh
/// derivation byte for byte on any machine and at any
/// `SOFTSIM_SWEEP_WORKERS` value.
#[test]
fn committed_durable_record_matches_fresh_output() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0007.json");
    let committed = std::fs::read_to_string(path).expect("BENCH_0007.json must be committed");
    assert_eq!(
        committed,
        softsim_bench::durable::durable_json(),
        "BENCH_0007.json is stale — regenerate with \
         `cargo run --release -p softsim-bench --bin tables -- --durable-json`"
    );
}
