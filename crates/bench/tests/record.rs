//! The committed deterministic record must match fresh output.
//!
//! `tables_output.txt` holds every cycle-exact section of the
//! evaluation (figures, claims, profile, fault campaigns, ablations,
//! metrics) and no wall-clock numbers, so it is reproducible on any
//! machine. This test regenerates it in-process and compares byte for
//! byte — the record can never silently go stale again.

#[test]
fn committed_record_matches_fresh_output() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tables_output.txt");
    let committed = std::fs::read_to_string(path).expect("tables_output.txt must be committed");
    let fresh = softsim_bench::tables::record_text();
    if committed != fresh {
        let mismatch = committed
            .lines()
            .zip(fresh.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: {a:?} vs fresh {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: committed {} vs fresh {}",
                    committed.lines().count(),
                    fresh.lines().count()
                )
            });
        panic!(
            "tables_output.txt is stale — regenerate with \
             `cargo run --release -p softsim-bench --bin tables -- --record`\n{mismatch}"
        );
    }
}
