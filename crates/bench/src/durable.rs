//! Durable-campaign benchmarks: the `BENCH_0007` record and the
//! `--journal` / `--resume` report plumbing.
//!
//! Exercises the crash-resumable execution layer end to end on the
//! CORDIC workload: run a journaled campaign, "interrupt" it by tearing
//! the journal at a record boundary (plus a few torn-tail bytes, the
//! shape a real crash leaves), resume, and assert the merged report is
//! byte-identical to the uninterrupted run — then prove the same
//! independence of the worker count. Everything reported here is
//! cycle-exact and machine-independent (counts, journal record sizes,
//! the plan hash), so the record is byte-reproducible and CI can `cmp`
//! it across `SOFTSIM_SWEEP_WORKERS` values.

use crate::faults::{default_workers, observe_words, CORDIC_ITERS, CORDIC_P, REPORT_SEED};
use crate::recover::{cordic_sim, report_policy, HARDENINGS};
use softsim_resilience::{
    resume_from_journal, resume_recovery_from_journal, run_campaign_durable_parallel,
    run_recovery_campaign_durable_parallel, CampaignConfig, CampaignReport, FaultKind, Injection,
    RecoveryReport,
};
use std::path::{Path, PathBuf};

/// Trials in the durable fault campaign (smaller than the `--faults`
/// report's 120: the campaign runs three times — uninterrupted,
/// interrupted + resumed, and once more for worker invariance).
pub const DURABLE_TRIALS: usize = 96;
/// Trials in the durable recovery campaign (supervised trials cost a
/// golden capture's worth of work each; a smaller plan keeps the
/// record quick while still crossing every outcome class).
pub const DURABLE_RECOVERY_TRIALS: usize = 40;
/// Record index at which the interrupt simulation tears the journal.
const INTERRUPT_AT: usize = DURABLE_TRIALS / 3;

/// Journal header length of the `SSJL` format (magic + version + kind
/// + plan hash + trial count + CRC), used to walk record frames.
const HEADER_LEN: usize = 25;

/// Runs the seeded CORDIC fault campaign durably, journaling to
/// `journal`. With `resume` set, trials already in the journal are
/// loaded instead of re-run.
pub fn durable_cordic_campaign(journal: &Path, resume: bool, workers: usize) -> CampaignReport {
    let (plan, base, n) = crate::faults::cordic_plan(REPORT_SEED, DURABLE_TRIALS);
    run_campaign_durable_parallel(
        || crate::workloads::cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)),
        &plan,
        move |s| observe_words(s, base, n),
        CampaignConfig::default(),
        journal,
        resume,
        workers,
    )
    .expect("durable campaign journal I/O")
}

/// Runs the seeded fully-hardened (ecc+tmr) CORDIC recovery campaign
/// durably, journaling to `journal`.
pub fn durable_cordic_recovery(journal: &Path, resume: bool, workers: usize) -> RecoveryReport {
    let (plan, base, n) = crate::recover::cordic_plan(REPORT_SEED, DURABLE_RECOVERY_TRIALS);
    let h = HARDENINGS[3];
    run_recovery_campaign_durable_parallel(
        || cordic_sim(h),
        &plan,
        move |s| observe_words(s, base, n),
        report_policy(),
        journal,
        resume,
        workers,
    )
    .expect("durable recovery journal I/O")
}

/// Byte offsets of every record frame in a journal (walking the
/// documented `len | payload | crc` framing from outside the
/// resilience crate — the format is a public contract).
fn frame_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = HEADER_LEN;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        offsets.push(pos);
        pos += 8 + len;
    }
    offsets
}

/// Tears `journal` the way a crash would: keep the first `records`
/// frames, then a few bytes of the next frame as a torn tail.
fn interrupt_journal(journal: &Path, records: usize) -> (usize, u64) {
    let bytes = std::fs::read(journal).expect("journal readable");
    let offsets = frame_offsets(&bytes);
    assert!(records < offsets.len(), "interrupt point must be mid-campaign");
    let cut = offsets[records] + 5; // 5 bytes into the torn frame
    std::fs::write(journal, &bytes[..cut]).expect("journal writable");
    (records, (cut - offsets[records]) as u64)
}

/// A scratch journal path unique to this process and `tag`.
fn scratch_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("softsim_{}_{}.ssjl", tag, std::process::id()))
}

/// Everything the `--durable` record section and `BENCH_0007` report:
/// the uninterrupted campaign, the interrupt-and-resume equivalence,
/// worker invariance, the trial-isolation demo, and the recovery-side
/// resume — all computed once.
struct DurableRun {
    report: CampaignReport,
    records: usize,
    journal_bytes: u64,
    plan_hash: u64,
    resumed_records: usize,
    torn_bytes: u64,
    resumed_identical: bool,
    workers_invariant: bool,
    demo: CampaignReport,
    recovery: RecoveryReport,
    recovery_records: usize,
    recovery_resumed_identical: bool,
}

fn run_durable() -> DurableRun {
    let workers = default_workers();

    // Uninterrupted durable run.
    let journal = scratch_journal("durable_faults");
    let report = durable_cordic_campaign(&journal, false, workers);
    let scan = resume_from_journal(&journal).expect("journal scans");
    assert_eq!(scan.done(), DURABLE_TRIALS, "every trial journaled");
    let journal_bytes = std::fs::metadata(&journal).expect("journal exists").len();
    let (records, plan_hash) = (scan.records, scan.plan_hash);

    // Interrupt at a record boundary + torn tail, then resume.
    let (resumed_records, torn_bytes) = interrupt_journal(&journal, INTERRUPT_AT);
    let resumed = durable_cordic_campaign(&journal, true, workers);
    let resumed_identical = resumed == report;
    assert!(resumed_identical, "resumed report must be byte-identical to the uninterrupted run");

    // Worker invariance: a fresh serial run agrees with the pool run.
    let serial_journal = scratch_journal("durable_faults_serial");
    let serial = durable_cordic_campaign(&serial_journal, false, 1);
    let workers_invariant = serial == report;
    assert!(workers_invariant, "durable report must not depend on the worker count");

    // Trial isolation demo: the seeded plan plus one deliberate
    // harness panic and a tight per-trial cycle budget — the panic is
    // caught ([`HarnessError`]), runaway trials are cancelled
    // ([`Budget`]), and every sibling still classifies.
    let (mut plan, base, n) = crate::faults::cordic_plan(REPORT_SEED, 23);
    plan.push(Injection { cycle: plan[0].cycle, kind: FaultKind::HarnessPanic });
    let demo_journal = scratch_journal("durable_demo");
    let demo = run_campaign_durable_parallel(
        || crate::workloads::cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)),
        &plan,
        move |s| observe_words(s, base, n),
        CampaignConfig { trial_cycle_budget: Some(64), ..CampaignConfig::default() },
        &demo_journal,
        false,
        workers,
    )
    .expect("durable demo journal I/O");
    assert_eq!(demo.trials.len(), 24, "sibling trials all completed");

    // Recovery-side resume over the supervised campaign.
    let rec_journal = scratch_journal("durable_recovery");
    let recovery = durable_cordic_recovery(&rec_journal, false, workers);
    let rec_scan = resume_recovery_from_journal(&rec_journal).expect("recovery journal scans");
    let recovery_records = rec_scan.records;
    interrupt_journal(&rec_journal, DURABLE_RECOVERY_TRIALS / 2);
    let rec_resumed = durable_cordic_recovery(&rec_journal, true, workers);
    let recovery_resumed_identical = rec_resumed == recovery;
    assert!(recovery_resumed_identical, "resumed recovery report must be byte-identical");

    for p in [journal, serial_journal, demo_journal, rec_journal] {
        let _ = std::fs::remove_file(p);
    }
    DurableRun {
        report,
        records,
        journal_bytes,
        plan_hash,
        resumed_records,
        torn_bytes,
        resumed_identical,
        workers_invariant,
        demo,
        recovery,
        recovery_records,
        recovery_resumed_identical,
    }
}

/// The `--durable` report: journaled execution, interrupt-and-resume
/// equivalence, worker invariance, and trial isolation, as one
/// deterministic text section.
///
/// # Panics
/// Panics if any resumed or re-run report differs from the reference —
/// the determinism regressions CI gates on.
pub fn durable_text() -> String {
    use std::fmt::Write;
    let run = run_durable();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "durable campaigns: journaled CORDIC sweep \
         (seed {REPORT_SEED:#x}, {DURABLE_TRIALS} trials)"
    );
    s.push_str(
        &run.report
            .text(&format!("cordic divider, P={CORDIC_P}, {CORDIC_ITERS} iterations (journaled)")),
    );
    let _ = writeln!(
        s,
        "  journal: {} records, {} bytes, plan hash {:#018x}",
        run.records, run.journal_bytes, run.plan_hash
    );
    let _ = writeln!(
        s,
        "  interrupt-and-resume: torn after {} records (+{} torn bytes) \
         -> resumed report byte-identical: {}",
        run.resumed_records, run.torn_bytes, run.resumed_identical
    );
    let _ =
        writeln!(s, "  worker invariance: serial rerun byte-identical: {}", run.workers_invariant);
    let demo_cov = run.demo.coverage();
    let _ = writeln!(
        s,
        "  isolation demo ({} trials, 1 deliberate panic, 64-cycle trial budget): \
         {} budget-cancelled, {} harness-abandoned, {} completed",
        run.demo.trials.len(),
        demo_cov.budget,
        demo_cov.abandoned,
        demo_cov.completed
    );
    let (clean, rec, unrec) = run.recovery.counts();
    let _ = writeln!(
        s,
        "  recovery resume ({DURABLE_RECOVERY_TRIALS} supervised trials, ecc+tmr): \
         {clean}c/{rec}r/{unrec}u, {} records, resumed byte-identical: {}",
        run.recovery_records, run.recovery_resumed_identical
    );
    s
}

/// The machine-readable `BENCH_0007` record as a JSON string. Every
/// number is cycle-exact and machine-independent — the record is
/// byte-reproducible at any worker count.
///
/// # Panics
/// Panics if any resumed or re-run report differs from the reference.
pub fn durable_json() -> String {
    let run = run_durable();
    let (m, sdc, d, f) = run.report.counts();
    let cov = run.report.coverage();
    let demo_cov = run.demo.coverage();
    let (clean, rec, unrec) = run.recovery.counts();
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0007\",\
         \"description\":\"durable journaled campaign execution: interrupt-and-resume determinism\",\
         \"seed\":{REPORT_SEED},\"trials\":{DURABLE_TRIALS},\
         \"campaign\":{{\"masked\":{m},\"sdc\":{sdc},\"deadlock\":{d},\"fault\":{f},\
         \"coverage\":{{\"completed\":{},\"budget\":{},\"abandoned\":{},\"retried\":{}}},\
         \"journal_records\":{},\"journal_bytes\":{},\"plan_hash\":\"{:#018x}\"}},\
         \"resume\":{{\"interrupted_at_records\":{},\"torn_bytes\":{},\
         \"report_identical\":{}}},\
         \"workers_invariant\":{},\
         \"isolation\":{{\"trials\":{},\"budget_cancelled\":{},\"harness_abandoned\":{},\
         \"completed\":{}}},\
         \"recovery\":{{\"trials\":{DURABLE_RECOVERY_TRIALS},\"clean\":{clean},\
         \"recovered\":{rec},\"unrecoverable\":{unrec},\"journal_records\":{},\
         \"resumed_identical\":{}}}}}\n",
        cov.completed,
        cov.budget,
        cov.abandoned,
        cov.retried,
        run.records,
        run.journal_bytes,
        run.plan_hash,
        run.resumed_records,
        run.torn_bytes,
        run.resumed_identical,
        run.workers_invariant,
        run.demo.trials.len(),
        demo_cov.budget,
        demo_cov.abandoned,
        demo_cov.completed,
        run.recovery_records,
        run.recovery_resumed_identical,
    )
}

/// Writes [`durable_json`] to `path`.
pub fn write_durable_json(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, durable_json())
}

/// The `--faults --journal PATH` report: the seeded CORDIC campaign
/// run durably against a user-supplied journal. With `resume`, trials
/// already journaled are loaded; the trailing lines account for what
/// the journal contributed.
pub fn durable_faults_text(journal: &Path, resume: bool) -> String {
    use std::fmt::Write;
    let prior = if resume {
        resume_from_journal(journal).ok().map(|scan| (scan.done(), scan.torn_bytes))
    } else {
        None
    };
    let report = durable_cordic_campaign(journal, resume, default_workers());
    let mut s = report.text(&format!(
        "cordic divider, P={CORDIC_P}, {CORDIC_ITERS} iterations \
         (seed {REPORT_SEED:#x}, journaled)"
    ));
    match prior {
        Some((done, torn)) => {
            let _ = writeln!(
                s,
                "  journal: resumed with {done} of {DURABLE_TRIALS} trials on file \
                 ({torn} torn bytes dropped), {} re-run",
                DURABLE_TRIALS - done
            );
        }
        None => {
            let _ = writeln!(s, "  journal: fresh run, {DURABLE_TRIALS} trials appended");
        }
    }
    let _ = writeln!(s, "  journal file: {}", journal.display());
    s
}

/// The `--recovery --journal PATH` report: the fully-hardened CORDIC
/// recovery campaign run durably against a user-supplied journal.
pub fn durable_recovery_text(journal: &Path, resume: bool) -> String {
    use std::fmt::Write;
    let prior = if resume {
        resume_recovery_from_journal(journal).ok().map(|scan| (scan.done(), scan.torn_bytes))
    } else {
        None
    };
    let report = durable_cordic_recovery(journal, resume, default_workers());
    let mut s = report.text(&format!(
        "cordic divider, ecc+tmr, P={CORDIC_P}, {CORDIC_ITERS} iterations \
         (seed {REPORT_SEED:#x}, journaled)"
    ));
    match prior {
        Some((done, torn)) => {
            let _ = writeln!(
                s,
                "  journal: resumed with {done} of {DURABLE_RECOVERY_TRIALS} trials on file \
                 ({torn} torn bytes dropped), {} re-run",
                DURABLE_RECOVERY_TRIALS - done
            );
        }
        None => {
            let _ = writeln!(s, "  journal: fresh run, {DURABLE_RECOVERY_TRIALS} trials appended");
        }
    }
    let _ = writeln!(s, "  journal file: {}", journal.display());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("softsim_test_{}_{}.ssjl", tag, std::process::id()))
    }

    #[test]
    fn durable_json_is_well_formed_and_identical_flags_hold() {
        use softsim_trace::json::Value;
        let doc = softsim_trace::json::parse(&durable_json()).expect("valid json");
        assert_eq!(doc.get("bench_id").unwrap().as_str().unwrap(), "BENCH_0007");
        let resume = doc.get("resume").unwrap();
        assert_eq!(resume.get("report_identical").unwrap(), &Value::Bool(true));
        assert_eq!(doc.get("workers_invariant").unwrap(), &Value::Bool(true));
        let isolation = doc.get("isolation").unwrap();
        assert_eq!(isolation.get("harness_abandoned").unwrap().as_f64().unwrap() as u64, 1);
        let recovery = doc.get("recovery").unwrap();
        assert_eq!(recovery.get("resumed_identical").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn faults_journal_text_reports_resume_accounting() {
        let journal = test_journal("faults_text");
        let fresh = durable_faults_text(&journal, false);
        assert!(fresh.contains("fresh run"), "{fresh}");
        // Tear the journal and resume through the text path.
        interrupt_journal(&journal, 10);
        let resumed = durable_faults_text(&journal, true);
        assert!(resumed.contains("resumed with 10 of"), "{resumed}");
        let _ = std::fs::remove_file(journal);
    }
}
