//! Recovery-campaign benchmarks: the `BENCH_0005` record and the
//! `--recovery` report section.
//!
//! Sweeps the same seeded SEU/protocol fault plan over a hardening
//! matrix — unhardened, FSL SEC-DED ECC, TMR peripheral, and both —
//! for the CORDIC divider and the block matmul. Each workload ×
//! hardening pair is run twice over the identical plan:
//!
//! 1. **unsupervised** ([`run_campaign`]): classifies what every fault
//!    *does* — masked, silent data corruption, deadlock, or an
//!    architectural fault;
//! 2. **supervised** ([`run_recovery_campaign`]): measures what the
//!    rollback supervisor *undoes* — clean, recovered (with detection
//!    latency and replayed work), or unrecoverable.
//!
//! The headline number is the conversion rate: of the trials that
//! damage the unsupervised run (everything but masked), what fraction
//! does the supervisor land at a bit-exact halt? The campaigns are
//! fully deterministic; `tables --recovery` runs the hardened CORDIC
//! sweep both serially and on the parallel runner and asserts the two
//! reports agree bit for bit — the same check CI gates on.

use crate::faults::{
    default_workers, golden_cycles, observe_words, CORDIC_ITERS, CORDIC_P, MATMUL_N, MATMUL_NB,
    REPORT_SEED,
};
use crate::tables::json_f64;
use softsim_cosim::CoSim;
use softsim_resilience::{
    random_plan_hardware, run_campaign, run_recovery_campaign, run_recovery_campaign_parallel,
    CampaignConfig, CampaignReport, Injection, Outcome, RecoveryOutcome, RecoveryPolicy,
    RecoveryReport,
};

/// One hardening configuration of the recovery matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hardening {
    /// Display name for reports.
    pub name: &'static str,
    /// SEC-DED (39,33) codec on every FSL channel.
    pub ecc: bool,
    /// Triple-modular-redundant hardware peripheral.
    pub tmr: bool,
}

/// The hardening matrix swept by the `--recovery` report.
pub const HARDENINGS: [Hardening; 4] = [
    Hardening { name: "unhardened", ecc: false, tmr: false },
    Hardening { name: "ecc", ecc: true, tmr: false },
    Hardening { name: "tmr", ecc: false, tmr: true },
    Hardening { name: "ecc+tmr", ecc: true, tmr: true },
];

/// Trials per workload × hardening row in the committed report — the
/// acceptance campaign size.
pub const RECOVERY_TRIALS: usize = 200;

/// Supervisor policy of the recovery benches. The Table I workloads
/// halt within a few thousand cycles, so the default 1024-cycle
/// checkpoint cadence would give them only a couple of signature
/// windows and the default 10k-cycle watchdog would dominate every
/// hang's wall-clock; both are tightened to the workload scale.
pub fn report_policy() -> RecoveryPolicy {
    RecoveryPolicy { checkpoint_every: 256, watchdog_threshold: 2_000, ..RecoveryPolicy::default() }
}

/// One row of the recovery matrix: a workload × hardening pair with the
/// unsupervised classification and the supervised recovery report of
/// the *same* injection plan, trial for trial.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Workload label (`"cordic"` / `"matmul"`).
    pub workload: &'static str,
    /// The hardening configuration of this row.
    pub hardening: Hardening,
    /// What the faults do without the supervisor.
    pub baseline: CampaignReport,
    /// What the supervisor turns them into.
    pub supervised: RecoveryReport,
}

impl RecoveryRow {
    /// Trials whose unsupervised outcome damages the run: SDC, deadlock
    /// or architectural fault — everything except masked.
    pub fn damaging(&self) -> usize {
        self.baseline.trials.iter().filter(|t| t.outcome != Outcome::Masked).count()
    }

    /// Damaging trials the supervisor converted to a bit-exact halt
    /// (supervised outcome `Clean` or `Recovered`).
    pub fn converted(&self) -> usize {
        self.baseline
            .trials
            .iter()
            .zip(&self.supervised.trials)
            .filter(|(b, s)| {
                b.outcome != Outcome::Masked && s.outcome != RecoveryOutcome::Unrecoverable
            })
            .count()
    }

    /// `converted / damaging`; `1.0` when no trial was damaging.
    pub fn recovery_rate(&self) -> f64 {
        let damaging = self.damaging();
        if damaging == 0 {
            return 1.0;
        }
        self.converted() as f64 / damaging as f64
    }

    /// Mean supervised work per trial relative to the golden run — the
    /// cost of checkpointing plus rollback replays, as a ratio (1.0 =
    /// no overhead).
    pub fn work_overhead(&self) -> f64 {
        let golden = self.supervised.golden_cycles.max(1) as f64;
        let n = self.supervised.trials.len().max(1) as f64;
        let work: u64 = self.supervised.trials.iter().map(|t| t.work_cycles).sum();
        work as f64 / (golden * n)
    }
}

/// The hardened CORDIC co-simulator of one matrix row.
pub(crate) fn cordic_sim(h: Hardening) -> CoSim {
    crate::workloads::cordic_cosim_hardened(CORDIC_ITERS, CORDIC_P, h.ecc, h.tmr)
}

/// The hardened matmul co-simulator of one matrix row.
fn matmul_sim(h: Hardening) -> CoSim {
    crate::workloads::matmul_cosim_hardened(MATMUL_N, MATMUL_NB, h.ecc, h.tmr)
}

/// The CORDIC recovery plan plus its observable window. The window is
/// derived from the *unhardened* golden run so all four hardenings
/// sweep the identical fault schedule and the conversion rates compare
/// like for like.
pub(crate) fn cordic_plan(seed: u64, trials: usize) -> (Vec<Injection>, u32, usize) {
    let img = crate::workloads::cordic_hw_image(CORDIC_ITERS, CORDIC_P);
    let base = img.symbol("z_data").expect("cordic result label");
    let n = crate::workloads::cordic_batch().len();
    let golden = golden_cycles(cordic_sim(HARDENINGS[0]));
    let plan =
        random_plan_hardware(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0]);
    (plan, base, n)
}

/// The matmul recovery plan plus its observable window.
fn matmul_plan(seed: u64, trials: usize) -> (Vec<Injection>, u32, usize) {
    let img = crate::workloads::matmul_image(MATMUL_N, Some(MATMUL_NB));
    let base = img.symbol("c_data").expect("matmul result label");
    let golden = golden_cycles(matmul_sim(HARDENINGS[0]));
    let plan =
        random_plan_hardware(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0]);
    (plan, base, MATMUL_N * MATMUL_N)
}

/// Runs one matrix row: baseline classification then supervised
/// recovery, each on a fresh co-simulator over the same plan.
fn run_row(
    workload: &'static str,
    h: Hardening,
    make_sim: impl Fn() -> CoSim,
    plan: &[Injection],
    base: u32,
    n: usize,
) -> RecoveryRow {
    let mut sim = make_sim();
    let baseline =
        run_campaign(&mut sim, plan, |s| observe_words(s, base, n), CampaignConfig::default());
    let mut sim = make_sim();
    let supervised =
        run_recovery_campaign(&mut sim, plan, |s| observe_words(s, base, n), report_policy());
    RecoveryRow { workload, hardening: h, baseline, supervised }
}

/// All four hardenings of the CORDIC workload over one seeded plan.
pub fn cordic_recovery_rows(seed: u64, trials: usize) -> Vec<RecoveryRow> {
    let (plan, base, n) = cordic_plan(seed, trials);
    HARDENINGS.iter().map(|&h| run_row("cordic", h, || cordic_sim(h), &plan, base, n)).collect()
}

/// All four hardenings of the matmul workload over one seeded plan.
pub fn matmul_recovery_rows(seed: u64, trials: usize) -> Vec<RecoveryRow> {
    let (plan, base, n) = matmul_plan(seed, trials);
    HARDENINGS.iter().map(|&h| run_row("matmul", h, || matmul_sim(h), &plan, base, n)).collect()
}

/// The supervised fully-hardened (ecc+tmr) CORDIC campaign on `workers`
/// threads. Byte-identical to the corresponding serial row with the
/// same seed and trial count — the determinism check the report and CI
/// gate on.
pub fn cordic_recovery_parallel(seed: u64, trials: usize, workers: usize) -> RecoveryReport {
    let (plan, base, n) = cordic_plan(seed, trials);
    let h = HARDENINGS[3];
    run_recovery_campaign_parallel(
        || cordic_sim(h),
        &plan,
        move |s| observe_words(s, base, n),
        report_policy(),
        workers,
    )
}

/// Formats the matrix rows of one workload as an aligned table body.
fn rows_text(rows: &[RecoveryRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for row in rows {
        let (m, sdc, d, f) = row.baseline.counts();
        let (clean, rec, unrec) = row.supervised.counts();
        let (lat, rep) = row.supervised.recovery_means();
        let _ = writeln!(
            s,
            "  {:<7} {:<11} {:>4}m/{:<3}s/{:<3}d/{:<3}f  {:>5}c/{:<4}r/{:<3}u  \
             {:>4}/{:<4} = {:>5.1}%  {:>7.1}  {:>8.1}  {:>5.2}x",
            row.workload,
            row.hardening.name,
            m,
            sdc,
            d,
            f,
            clean,
            rec,
            unrec,
            row.converted(),
            row.damaging(),
            100.0 * row.recovery_rate(),
            lat,
            rep,
            row.work_overhead(),
        );
    }
    s
}

/// The `--recovery` report: the full hardening matrix for both
/// workloads, with the fully-hardened CORDIC row re-run on the parallel
/// engine to prove the supervised campaign is schedule-independent.
///
/// # Panics
/// Panics if the serial and parallel supervised runs disagree anywhere.
pub fn recovery_text() -> String {
    use std::fmt::Write;
    let cordic = cordic_recovery_rows(REPORT_SEED, RECOVERY_TRIALS);
    let matmul = matmul_recovery_rows(REPORT_SEED, RECOVERY_TRIALS);
    let par = cordic_recovery_parallel(REPORT_SEED, RECOVERY_TRIALS, default_workers());
    assert_eq!(
        cordic[3].supervised, par,
        "serial and parallel recovery campaigns must agree bit for bit"
    );

    let mut s = String::new();
    let _ = writeln!(
        s,
        "recovery benches: rollback supervisor x hardening matrix \
         (seed {REPORT_SEED:#x}, {RECOVERY_TRIALS} trials/row)"
    );
    let _ = writeln!(
        s,
        "  cordic: P={CORDIC_P}, {CORDIC_ITERS} iterations; \
         matmul: N={MATMUL_N}, NB={MATMUL_NB}; identical plan across hardenings"
    );
    let _ = writeln!(
        s,
        "  columns: unsupervised masked/sdc/deadlock/fault | supervised \
         clean/recovered/unrecoverable |"
    );
    let _ = writeln!(
        s,
        "           converted/damaging = rate | mean detection latency | \
         mean replayed cycles | work overhead"
    );
    s.push_str(&rows_text(&cordic));
    s.push_str(&rows_text(&matmul));
    s.push_str("  determinism: serial and parallel supervised sweeps agreed on every trial\n");
    s
}

/// One matrix row as a `BENCH_0005` JSON object.
fn row_json(row: &RecoveryRow) -> String {
    let (m, sdc, d, f) = row.baseline.counts();
    let (clean, rec, unrec) = row.supervised.counts();
    let (lat, rep) = row.supervised.recovery_means();
    format!(
        "{{\"workload\":\"{}\",\"hardening\":\"{}\",\"ecc\":{},\"tmr\":{},\
         \"trials\":{},\"golden_cycles\":{},\
         \"baseline\":{{\"masked\":{m},\"sdc\":{sdc},\"deadlock\":{d},\"fault\":{f}}},\
         \"supervised\":{{\"clean\":{clean},\"recovered\":{rec},\"unrecoverable\":{unrec}}},\
         \"damaging\":{},\"converted\":{},\"recovery_rate\":{},\
         \"mean_detection_latency\":{},\"mean_replayed_cycles\":{},\"work_overhead\":{}}}",
        row.workload,
        row.hardening.name,
        row.hardening.ecc,
        row.hardening.tmr,
        row.supervised.trials.len(),
        row.supervised.golden_cycles,
        row.damaging(),
        row.converted(),
        json_f64(row.recovery_rate()),
        json_f64(lat),
        json_f64(rep),
        json_f64(row.work_overhead()),
    )
}

/// The machine-readable `BENCH_0005` record as a JSON string: the full
/// hardening matrix, with the serial-vs-parallel equivalence asserted
/// before anything is emitted. Unlike `BENCH_0003`/`BENCH_0004` every
/// number here is cycle-exact and machine-independent — the record is
/// byte-reproducible.
///
/// # Panics
/// Panics if the serial and parallel supervised CORDIC runs disagree.
pub fn recovery_json() -> String {
    let workers = default_workers();
    let cordic = cordic_recovery_rows(REPORT_SEED, RECOVERY_TRIALS);
    let matmul = matmul_recovery_rows(REPORT_SEED, RECOVERY_TRIALS);
    let par = cordic_recovery_parallel(REPORT_SEED, RECOVERY_TRIALS, workers);
    assert_eq!(
        cordic[3].supervised, par,
        "serial and parallel recovery campaigns must agree bit for bit"
    );
    let rows: Vec<String> = cordic.iter().chain(&matmul).map(row_json).collect();
    // No worker count in the record: the report is independent of the
    // thread pool, and CI proves it by byte-diffing this file across
    // SOFTSIM_SWEEP_WORKERS values.
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0005\",\
         \"description\":\"rollback-recovery supervisor across FSL-ECC/TMR hardening variants\",\
         \"seed\":{REPORT_SEED},\"trials_per_row\":{RECOVERY_TRIALS},\
         \"reports_identical\":true,\
         \"rows\":[{}]}}\n",
        rows.join(","),
    )
}

/// Writes [`recovery_json`] to `path`.
pub fn write_recovery_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, recovery_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_matrix_and_classify_every_trial() {
        let rows = cordic_recovery_rows(21, 10);
        assert_eq!(rows.len(), HARDENINGS.len());
        for row in &rows {
            assert_eq!(row.baseline.trials.len(), 10);
            assert_eq!(row.supervised.trials.len(), 10);
            let (m, s, d, f) = row.baseline.counts();
            assert_eq!(m + s + d + f, 10);
            let (c, r, u) = row.supervised.counts();
            assert_eq!(c + r + u, 10);
            assert!(row.converted() <= row.damaging());
            assert!((0.0..=1.0).contains(&row.recovery_rate()));
        }
    }

    #[test]
    fn hardening_never_lowers_the_conversion_rate_floor() {
        // The fully-hardened row must convert at least as many damaging
        // trials as it leaves unrecoverable — the small-sample shadow
        // of the >= 70% acceptance gate CI applies to the full record.
        let rows = cordic_recovery_rows(REPORT_SEED, 24);
        let full = &rows[3];
        assert_eq!(full.hardening.name, "ecc+tmr");
        let (_, _, unrec) = full.supervised.counts();
        assert!(
            full.converted() >= unrec,
            "converted {} vs unrecoverable {unrec}",
            full.converted()
        );
    }

    #[test]
    fn parallel_supervised_campaign_matches_serial() {
        let rows = cordic_recovery_rows(13, 9);
        for workers in [1, 3, 8] {
            let par = cordic_recovery_parallel(13, 9, workers);
            assert_eq!(rows[3].supervised, par, "workers={workers}");
        }
    }

    #[test]
    fn matmul_rows_run_and_are_deterministic() {
        let a = matmul_recovery_rows(17, 6);
        let b = matmul_recovery_rows(17, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), HARDENINGS.len());
    }

    #[test]
    fn row_json_is_well_formed() {
        let rows = cordic_recovery_rows(29, 4);
        let doc = softsim_trace::json::parse(&row_json(&rows[0])).expect("valid json");
        assert_eq!(doc.get("workload").unwrap().as_str().unwrap(), "cordic");
        assert_eq!(doc.get("hardening").unwrap().as_str().unwrap(), "unhardened");
        let rate = doc.get("recovery_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&rate));
        for key in ["baseline", "supervised"] {
            assert!(doc.get(key).is_some(), "{key} section present");
        }
    }
}
