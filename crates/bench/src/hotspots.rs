//! The guest-program hotspot record (`BENCH_0006`).
//!
//! Profiles the canonical workloads through the `softsim-profile`
//! pipeline — per-PC attribution, basic-block rollup, partition advice —
//! and renders both the deterministic text section of
//! `tables_output.txt` and the machine-readable `BENCH_0006.json`.
//! Every number is cycle-exact: profiles reconcile against the ISS's
//! own counters before anything is emitted, and the record is
//! byte-reproducible on any machine and any worker count (the runs are
//! swept with [`crate::sweep::parallel_map`], which merges in input
//! order).

use crate::sweep::{default_workers, parallel_map};
use crate::tables::json_f64;
use crate::workloads;
use softsim_cosim::{CoSim, CoSimStop, PAPER_CLOCK_HZ};
use softsim_profile::{advise, GuestReport, OffloadCandidate};
use std::fmt::Write as _;

/// Hot blocks reported per workload.
pub const HOT_BLOCKS_PER_WORKLOAD: usize = 5;

/// Offload candidates reported per workload.
pub const ADVICE_PER_WORKLOAD: usize = 3;

/// One hot basic block of a profiled workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotBlock {
    /// Deterministic block name (`region` or `region+0xOFF`).
    pub name: String,
    /// Enclosing label region.
    pub region: String,
    /// First instruction address.
    pub start: u32,
    /// One past the last instruction address.
    pub end: u32,
    /// Cycles spent in the block (stalls included).
    pub cycles: u64,
    /// Times the block was entered.
    pub visits: u64,
    /// FSL read + write stall cycles inside the block.
    pub fsl_stalls: u64,
}

/// The profile of one canonical workload.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotRow {
    /// Workload name (stable record key).
    pub name: &'static str,
    /// Total application cycles (reconciled against [`CoSim`]'s CPU
    /// counters).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Discovered basic blocks in the image.
    pub blocks: usize,
    /// The hottest blocks, most cycles first.
    pub hot: Vec<HotBlock>,
    /// The partition advisor's top candidates, best score first.
    pub advice: Vec<OffloadCandidate>,
}

/// The profiled workload grid: the paper's two applications, each in
/// its pure-software and FSL-accelerated form.
#[derive(Debug, Clone, Copy)]
enum Spec {
    CordicSw(u32),
    CordicHw(u32, usize),
    MatmulSw(usize),
    MatmulHw(usize, usize),
}

fn spec_grid() -> Vec<Spec> {
    vec![Spec::CordicSw(24), Spec::CordicHw(24, 4), Spec::MatmulSw(16), Spec::MatmulHw(16, 4)]
}

fn run_spec(spec: Spec) -> HotspotRow {
    let (name, image, mut sim) = match spec {
        Spec::CordicSw(iters) => {
            let image = workloads::cordic_sw_image(iters);
            let sim = CoSim::software_only(&image);
            ("cordic_24iter_sw", image, sim)
        }
        Spec::CordicHw(iters, p) => {
            let image = workloads::cordic_hw_image(iters, p);
            let sim = CoSim::with_peripheral(&image, workloads::cordic_peripheral(p));
            ("cordic_24iter_p4", image, sim)
        }
        Spec::MatmulSw(n) => {
            let image = workloads::matmul_image(n, None);
            let sim = CoSim::software_only(&image);
            ("matmul_16x16_sw", image, sim)
        }
        Spec::MatmulHw(n, nb) => {
            let image = workloads::matmul_image(n, Some(nb));
            let sim = CoSim::with_peripheral(
                &image,
                softsim_apps::matmul::hardware::matmul_peripheral(nb),
            );
            ("matmul_16x16_nb4", image, sim)
        }
    };
    sim.set_profiling(true);
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted, "{name} must halt");
    let profile = sim.guest_profile().expect("profiling on");
    let stats = sim.cpu_stats();
    assert_eq!(profile.total_cycles(), stats.cycles, "{name}: profile must reconcile");
    assert_eq!(profile.total_retires(), stats.instructions);
    let report = GuestReport::build(&image, &profile);
    assert_eq!(report.unmapped_cycles(), 0, "{name}: every cycle maps to a block");
    let hot = report
        .hot_blocks(HOT_BLOCKS_PER_WORKLOAD)
        .into_iter()
        .map(|b| HotBlock {
            name: b.name.clone(),
            region: b.block.region.clone(),
            start: b.block.start,
            end: b.block.end,
            cycles: b.cycles,
            visits: b.visits,
            fsl_stalls: b.read_stalls + b.write_stalls,
        })
        .collect();
    let mut advice = advise(&report);
    advice.truncate(ADVICE_PER_WORKLOAD);
    HotspotRow {
        name,
        cycles: stats.cycles,
        instructions: stats.instructions,
        blocks: report.blocks().len(),
        hot,
        advice,
    }
}

/// Profiles every canonical workload, swept on the default worker pool.
pub fn hotspot_rows() -> Vec<HotspotRow> {
    hotspot_rows_with(default_workers())
}

/// [`hotspot_rows`] with an explicit worker count; results are
/// identical for every count (CI byte-diffs the record to prove it).
pub fn hotspot_rows_with(workers: usize) -> Vec<HotspotRow> {
    parallel_map(spec_grid(), workers, run_spec)
}

/// Formats the hotspot profiles as deterministic text (the
/// `tables_output.txt` section).
pub fn hotspots_text() -> String {
    let mut out = String::from(
        "Hotspots: guest-program profiles (per-PC attribution rolled up\n\
         onto basic blocks; partition advisor score = cycles - 2*comm_words)\n",
    );
    for row in hotspot_rows() {
        let _ = writeln!(
            out,
            "\n{}: {} cycles ({:.2} us), {} instructions, {} blocks",
            row.name,
            row.cycles,
            row.cycles as f64 / PAPER_CLOCK_HZ * 1e6,
            row.instructions,
            row.blocks
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>8}..{:<8} {:>9} {:>7} {:>10}",
            "hot block", "start", "end", "cycles", "visits", "fsl_stalls"
        );
        for b in &row.hot {
            let _ = writeln!(
                out,
                "  {:<16} {:>8x}..{:<8x} {:>9} {:>7} {:>10}",
                b.name, b.start, b.end, b.cycles, b.visits, b.fsl_stalls
            );
        }
        let _ = writeln!(out, "  offload advice (top {}):", row.advice.len());
        for c in &row.advice {
            let _ = writeln!(
                out,
                "    {:<12} score {:>8}  ({} cycles, {} comm words, {:.1} nJ)",
                c.region, c.score, c.cycles, c.comm_words, c.software_nj
            );
        }
    }
    out
}

fn block_json(b: &HotBlock) -> String {
    format!(
        "{{\"name\":\"{}\",\"region\":\"{}\",\"start\":{},\"end\":{},\
         \"cycles\":{},\"visits\":{},\"fsl_stalls\":{}}}",
        b.name, b.region, b.start, b.end, b.cycles, b.visits, b.fsl_stalls
    )
}

fn advice_json(c: &OffloadCandidate) -> String {
    format!(
        "{{\"region\":\"{}\",\"start\":{},\"cycles\":{},\"visits\":{},\
         \"comm_words\":{},\"est_comm_cycles\":{},\"score\":{},\
         \"software_nj\":{},\"est_extra_slices\":{}}}",
        c.region,
        c.start,
        c.cycles,
        c.visits,
        c.comm_words,
        c.est_comm_cycles,
        c.score,
        json_f64(c.software_nj),
        c.est_extra_slices
    )
}

fn row_json(row: &HotspotRow) -> String {
    format!(
        "{{\"name\":\"{}\",\"cycles\":{},\"instructions\":{},\"blocks\":{},\
         \"hot_blocks\":[{}],\"advice\":[{}]}}",
        row.name,
        row.cycles,
        row.instructions,
        row.blocks,
        row.hot.iter().map(block_json).collect::<Vec<_>>().join(","),
        row.advice.iter().map(advice_json).collect::<Vec<_>>().join(","),
    )
}

/// The machine-readable `BENCH_0006` record as a JSON string. Every
/// number is cycle-exact and machine-independent, so — like
/// `BENCH_0005` — the committed file is byte-reproducible; CI re-derives
/// it across `SOFTSIM_SWEEP_WORKERS` values and byte-diffs.
pub fn hotspots_json() -> String {
    let rows: Vec<String> = hotspot_rows().iter().map(row_json).collect();
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0006\",\
         \"description\":\"guest-program hotspot profiles and partition advice\",\
         \"clock_hz\":{},\"hot_blocks_per_workload\":{HOT_BLOCKS_PER_WORKLOAD},\
         \"workloads\":[{}]}}\n",
        json_f64(PAPER_CLOCK_HZ),
        rows.join(","),
    )
}

/// Writes [`hotspots_json`] to `path`.
pub fn write_hotspots_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, hotspots_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cordic_sw_hot_block_is_the_inner_loop() {
        let rows = hotspot_rows_with(1);
        let sw = rows.iter().find(|r| r.name == "cordic_24iter_sw").unwrap();
        assert_eq!(
            sw.hot[0].region, "join",
            "the compiled CORDIC kernel's hottest block is the inner-loop tail"
        );
        assert!(
            ["iter", "ypos", "join"].contains(&sw.advice[0].region.as_str()),
            "advisor must point at the inner loop, got {}",
            sw.advice[0].region
        );
        // The pure-software matmul burns everything in the k-loop; the
        // accelerated build's residue is the FSL marshalling itself.
        let mm_sw = rows.iter().find(|r| r.name == "matmul_16x16_sw").unwrap();
        assert_eq!(mm_sw.hot[0].region, "kloop");
        let mm_hw = rows.iter().find(|r| r.name == "matmul_16x16_nb4").unwrap();
        assert!(
            mm_hw.hot[0].region.starts_with("fsl_"),
            "after offload the hot path is communication, got {}",
            mm_hw.hot[0].region
        );
    }

    #[test]
    fn record_is_identical_across_worker_counts() {
        let serial = hotspot_rows_with(1);
        for workers in [2, 3, 8] {
            assert_eq!(serial, hotspot_rows_with(workers), "workers={workers}");
        }
    }

    #[test]
    fn hotspots_json_is_well_formed_with_required_keys() {
        let text = hotspots_json();
        let doc = softsim_trace::json::parse(&text).expect("BENCH_0006 must be valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("softsim-bench/1"));
        assert_eq!(doc.get("bench_id").unwrap().as_str(), Some("BENCH_0006"));
        let workloads = doc.get("workloads").unwrap().as_array().unwrap();
        assert_eq!(workloads.len(), 4, "two CORDIC + two matmul configurations");
        for w in workloads {
            assert!(w.get("name").unwrap().as_str().is_some());
            assert!(w.get("cycles").unwrap().as_f64().unwrap() > 0.0);
            let hot = w.get("hot_blocks").unwrap().as_array().unwrap();
            assert!(!hot.is_empty() && hot.len() <= HOT_BLOCKS_PER_WORKLOAD);
            for b in hot {
                assert!(b.get("region").unwrap().as_str().is_some());
                assert!(b.get("cycles").unwrap().as_f64().unwrap() > 0.0);
            }
            for c in w.get("advice").unwrap().as_array().unwrap() {
                assert!(c.get("score").unwrap().as_f64().is_some());
                assert!(c.get("software_nj").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
    }
}
