//! Fault-injection campaigns over the paper's workloads.
//!
//! Sweeps seeded SEU and protocol faults across the CORDIC divider and
//! block-matmul co-simulations and classifies every trial (masked /
//! SDC / deadlock / fault). The campaigns are fully deterministic —
//! `tables --faults` runs the CORDIC sweep twice and asserts the two
//! reports agree bit for bit, the same check CI gates on.

use crate::workloads::{cordic_cosim, cordic_hw_image, matmul_cosim, matmul_image};
use softsim_cosim::CoSim;
use softsim_resilience::{random_plan, run_campaign, CampaignConfig, CampaignReport};

/// CORDIC iterations used by the fault campaigns (Figure 5's short
/// configuration — enough cycles for a meaningful injection window).
pub const CORDIC_ITERS: u32 = 8;
/// CORDIC PE count used by the fault campaigns.
pub const CORDIC_P: usize = 2;
/// Matmul size used by the fault campaigns.
pub const MATMUL_N: usize = 4;
/// Matmul block size used by the fault campaigns.
pub const MATMUL_NB: usize = 2;

/// Reads `n` observable result words starting at `label` in `sim`'s
/// local memory.
fn observe_words(sim: &CoSim, base: u32, n: usize) -> Vec<u32> {
    (0..n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap()).collect()
}

/// Cycles the fault-free workload takes to halt (used to place the
/// injection window inside the live part of the run).
fn golden_cycles(mut sim: CoSim) -> u64 {
    let stop = sim.run(10_000_000);
    assert_eq!(stop, softsim_cosim::CoSimStop::Halted, "workload must halt: {stop}");
    sim.cpu().stats().cycles
}

/// Runs a seeded fault campaign over the CORDIC divider (P =
/// [`CORDIC_P`], hardware-accelerated) with `trials` injections.
pub fn cordic_campaign(seed: u64, trials: usize) -> CampaignReport {
    let img = cordic_hw_image(CORDIC_ITERS, CORDIC_P);
    let base = img.symbol("z_data").expect("cordic result label");
    let n = crate::workloads::cordic_batch().len();
    let golden = golden_cycles(cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)));
    let plan = random_plan(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0, 1]);
    let mut sim = cordic_cosim(CORDIC_ITERS, Some(CORDIC_P));
    run_campaign(&mut sim, &plan, |s| observe_words(s, base, n), CampaignConfig::default())
}

/// Runs a seeded fault campaign over the block matmul (N =
/// [`MATMUL_N`], NB = [`MATMUL_NB`]) with `trials` injections.
pub fn matmul_campaign(seed: u64, trials: usize) -> CampaignReport {
    let img = matmul_image(MATMUL_N, Some(MATMUL_NB));
    let base = img.symbol("c_data").expect("matmul result label");
    let golden = golden_cycles(matmul_cosim(MATMUL_N, Some(MATMUL_NB)));
    let plan = random_plan(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0, 1]);
    let mut sim = matmul_cosim(MATMUL_N, Some(MATMUL_NB));
    run_campaign(
        &mut sim,
        &plan,
        |s| observe_words(s, base, MATMUL_N * MATMUL_N),
        CampaignConfig::default(),
    )
}

/// Seed used by the `--faults` report and the CI smoke job.
pub const REPORT_SEED: u64 = 0x5EED_FA17;
/// Trials per workload in the `--faults` report.
pub const REPORT_TRIALS: usize = 120;

/// The `--faults` report: both campaigns, with the CORDIC sweep run
/// twice to prove injector determinism (identical seed and schedule ⇒
/// identical classification of every trial).
///
/// # Panics
/// Panics if the two CORDIC runs disagree anywhere — the determinism
/// regression CI gates on.
pub fn faults_text() -> String {
    let cordic_a = cordic_campaign(REPORT_SEED, REPORT_TRIALS);
    let cordic_b = cordic_campaign(REPORT_SEED, REPORT_TRIALS);
    assert_eq!(cordic_a, cordic_b, "fault campaign must be deterministic");
    let matmul = matmul_campaign(REPORT_SEED, REPORT_TRIALS);
    let mut s = String::new();
    s.push_str(&cordic_a.text(&format!(
        "cordic divider, P={CORDIC_P}, {CORDIC_ITERS} iterations (seed {REPORT_SEED:#x})"
    )));
    s.push_str("  determinism: two identically-seeded sweeps agreed on every trial\n");
    s.push('\n');
    s.push_str(
        &matmul
            .text(&format!("block matmul, N={MATMUL_N}, NB={MATMUL_NB} (seed {REPORT_SEED:#x})")),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_resilience::Outcome;

    #[test]
    fn cordic_campaign_classifies_every_trial() {
        let report = cordic_campaign(7, 24);
        assert_eq!(report.trials.len(), 24);
        for t in &report.trials {
            // Every stop maps to exactly one class; a bare CycleLimit
            // folds into Deadlock and keeps the stall context.
            let _ = t.outcome;
        }
        let (m, s, d, f) = report.counts();
        assert_eq!(m + s + d + f, 24);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = cordic_campaign(3, 12);
        let b = cordic_campaign(3, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_campaign_runs() {
        let report = matmul_campaign(11, 12);
        assert_eq!(report.trials.len(), 12);
        // The golden run must be reproduced by at least one masked or
        // classified trial set summing to the total.
        let (m, s, d, f) = report.counts();
        assert_eq!(m + s + d + f, 12);
        let _ = Outcome::Masked;
    }
}
