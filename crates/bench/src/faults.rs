//! Fault-injection campaigns over the paper's workloads.
//!
//! Sweeps seeded SEU and protocol faults across the CORDIC divider and
//! block-matmul co-simulations and classifies every trial (masked /
//! SDC / deadlock / fault). The campaigns are fully deterministic —
//! `tables --faults` runs the CORDIC sweep twice and asserts the two
//! reports agree bit for bit, the same check CI gates on.

use crate::workloads::{cordic_cosim, cordic_hw_image, matmul_cosim, matmul_image};
use softsim_cosim::CoSim;
use softsim_metrics::telemetry::Telemetry;
use softsim_resilience::{
    random_plan, run_campaign, run_campaign_parallel, run_campaign_parallel_with_telemetry,
    run_campaign_with_telemetry, CampaignConfig, CampaignReport, FaultKind, Injection,
};

/// CORDIC iterations used by the fault campaigns (Figure 5's short
/// configuration — enough cycles for a meaningful injection window).
pub const CORDIC_ITERS: u32 = 8;
/// CORDIC PE count used by the fault campaigns.
pub const CORDIC_P: usize = 2;
/// Matmul size used by the fault campaigns.
pub const MATMUL_N: usize = 4;
/// Matmul block size used by the fault campaigns.
pub const MATMUL_NB: usize = 2;

/// Reads `n` observable result words starting at `label` in `sim`'s
/// local memory.
pub(crate) fn observe_words(sim: &CoSim, base: u32, n: usize) -> Vec<u32> {
    (0..n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap()).collect()
}

/// Cycles the fault-free workload takes to halt (used to place the
/// injection window inside the live part of the run).
pub(crate) fn golden_cycles(mut sim: CoSim) -> u64 {
    let stop = sim.run(10_000_000);
    assert_eq!(stop, softsim_cosim::CoSimStop::Halted, "workload must halt: {stop}");
    sim.cpu().stats().cycles
}

/// The CORDIC campaign's injection plan plus the observable window
/// (result base address, word count) — shared by the serial and
/// parallel runners so both sweep the identical schedule.
pub(crate) fn cordic_plan(seed: u64, trials: usize) -> (Vec<Injection>, u32, usize) {
    let img = cordic_hw_image(CORDIC_ITERS, CORDIC_P);
    let base = img.symbol("z_data").expect("cordic result label");
    let n = crate::workloads::cordic_batch().len();
    let golden = golden_cycles(cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)));
    let plan = random_plan(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0, 1]);
    (plan, base, n)
}

/// Runs a seeded fault campaign over the CORDIC divider (P =
/// [`CORDIC_P`], hardware-accelerated) with `trials` injections.
pub fn cordic_campaign(seed: u64, trials: usize) -> CampaignReport {
    cordic_campaign_with(seed, trials, CampaignConfig::default())
}

/// [`cordic_campaign`] with explicit tuning knobs — the speedup bench
/// uses this to compare fast-forwarding on against off.
pub fn cordic_campaign_with(seed: u64, trials: usize, config: CampaignConfig) -> CampaignReport {
    let (plan, base, n) = cordic_plan(seed, trials);
    let mut sim = cordic_cosim(CORDIC_ITERS, Some(CORDIC_P));
    run_campaign(&mut sim, &plan, |s| observe_words(s, base, n), config)
}

/// [`cordic_campaign`] with optional harness telemetry — byte-identical
/// report either way (the overhead guard in `trace_overhead` times this
/// against the plain runner).
pub fn cordic_campaign_telemetry(
    seed: u64,
    trials: usize,
    telemetry: Option<&Telemetry>,
) -> CampaignReport {
    let (plan, base, n) = cordic_plan(seed, trials);
    let mut sim = cordic_cosim(CORDIC_ITERS, Some(CORDIC_P));
    run_campaign_with_telemetry(
        &mut sim,
        &plan,
        |s| observe_words(s, base, n),
        CampaignConfig::default(),
        telemetry,
    )
}

/// The CORDIC campaign on `workers` threads. Byte-identical report to
/// [`cordic_campaign`] with the same seed and trial count.
pub fn cordic_campaign_parallel(seed: u64, trials: usize, workers: usize) -> CampaignReport {
    cordic_campaign_parallel_telemetry(seed, trials, workers, None)
}

/// [`cordic_campaign_parallel`] with optional harness telemetry.
pub fn cordic_campaign_parallel_telemetry(
    seed: u64,
    trials: usize,
    workers: usize,
    telemetry: Option<&Telemetry>,
) -> CampaignReport {
    let (plan, base, n) = cordic_plan(seed, trials);
    run_campaign_parallel_with_telemetry(
        || cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)),
        &plan,
        move |s| observe_words(s, base, n),
        CampaignConfig::default(),
        workers,
        telemetry,
    )
}

pub use crate::sweep::default_workers;

/// An FSL-stall-heavy CORDIC campaign: every injection sticks a channel
/// 0 handshake flag early in the run, so (almost) every trial ends
/// blocked on an FSL transfer and burns the full watchdog threshold
/// before it is declared dead. This is the workload stall
/// fast-forwarding targets — nearly all of the serial runner's
/// wall-clock goes into stepping stalled cycles in which nothing can
/// change. The plan is a fixed deterministic stride, no RNG needed.
pub fn cordic_stuck_plan(trials: usize) -> Vec<Injection> {
    let golden = golden_cycles(cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)));
    let lo = golden / 10;
    let span = (golden / 2).saturating_sub(lo).max(1);
    (0..trials)
        .map(|i| {
            let cycle = lo + (i as u64 * 7919) % span;
            let kind = if i % 2 == 0 {
                FaultKind::StuckEmpty { channel: 0 }
            } else {
                FaultKind::StuckFull { channel: 0 }
            };
            Injection { cycle, kind }
        })
        .collect()
}

/// Runs [`cordic_stuck_plan`] serially under `config`.
pub fn cordic_stuck_campaign(trials: usize, config: CampaignConfig) -> CampaignReport {
    let img = cordic_hw_image(CORDIC_ITERS, CORDIC_P);
    let base = img.symbol("z_data").expect("cordic result label");
    let n = crate::workloads::cordic_batch().len();
    let plan = cordic_stuck_plan(trials);
    let mut sim = cordic_cosim(CORDIC_ITERS, Some(CORDIC_P));
    run_campaign(&mut sim, &plan, |s| observe_words(s, base, n), config)
}

/// Runs [`cordic_stuck_plan`] on `workers` threads with the default
/// configuration. Byte-identical report to the serial runner's.
pub fn cordic_stuck_campaign_parallel(trials: usize, workers: usize) -> CampaignReport {
    let img = cordic_hw_image(CORDIC_ITERS, CORDIC_P);
    let base = img.symbol("z_data").expect("cordic result label");
    let n = crate::workloads::cordic_batch().len();
    let plan = cordic_stuck_plan(trials);
    run_campaign_parallel(
        || cordic_cosim(CORDIC_ITERS, Some(CORDIC_P)),
        &plan,
        move |s| observe_words(s, base, n),
        CampaignConfig::default(),
        workers,
    )
}

/// Runs a seeded fault campaign over the block matmul (N =
/// [`MATMUL_N`], NB = [`MATMUL_NB`]) with `trials` injections.
pub fn matmul_campaign(seed: u64, trials: usize) -> CampaignReport {
    let img = matmul_image(MATMUL_N, Some(MATMUL_NB));
    let base = img.symbol("c_data").expect("matmul result label");
    let golden = golden_cycles(matmul_cosim(MATMUL_N, Some(MATMUL_NB)));
    let plan = random_plan(seed, trials, (golden / 10, golden), img.bytes().len() as u32, &[0, 1]);
    let mut sim = matmul_cosim(MATMUL_N, Some(MATMUL_NB));
    run_campaign(
        &mut sim,
        &plan,
        |s| observe_words(s, base, MATMUL_N * MATMUL_N),
        CampaignConfig::default(),
    )
}

/// Seed used by the `--faults` report and the CI smoke job.
pub const REPORT_SEED: u64 = 0x5EED_FA17;
/// Trials per workload in the `--faults` report.
pub const REPORT_TRIALS: usize = 120;

/// The `--faults` report: both campaigns, with the CORDIC sweep run
/// twice — once serial, once on the parallel runner — to prove both
/// injector determinism (identical seed and schedule ⇒ identical
/// classification of every trial) and that the parallel engine merges
/// to a byte-identical report.
///
/// # Panics
/// Panics if the serial and parallel CORDIC runs disagree anywhere —
/// the determinism regression CI gates on.
pub fn faults_text() -> String {
    faults_text_with_telemetry(None)
}

/// [`faults_text`] with optional harness telemetry on the parallel
/// CORDIC sweep. The returned text — and the assertion that serial and
/// instrumented-parallel reports agree bit for bit — is the live proof
/// that telemetry never touches the deterministic record.
pub fn faults_text_with_telemetry(telemetry: Option<&Telemetry>) -> String {
    let cordic_a = cordic_campaign(REPORT_SEED, REPORT_TRIALS);
    let cordic_b = cordic_campaign_parallel_telemetry(
        REPORT_SEED,
        REPORT_TRIALS,
        default_workers(),
        telemetry,
    );
    assert_eq!(cordic_a, cordic_b, "serial and parallel campaigns must agree bit for bit");
    let matmul = matmul_campaign(REPORT_SEED, REPORT_TRIALS);
    let mut s = String::new();
    s.push_str(&cordic_a.text(&format!(
        "cordic divider, P={CORDIC_P}, {CORDIC_ITERS} iterations (seed {REPORT_SEED:#x})"
    )));
    s.push_str("  determinism: two identically-seeded sweeps agreed on every trial\n");
    s.push('\n');
    s.push_str(
        &matmul
            .text(&format!("block matmul, N={MATMUL_N}, NB={MATMUL_NB} (seed {REPORT_SEED:#x})")),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_resilience::Outcome;

    #[test]
    fn cordic_campaign_classifies_every_trial() {
        let report = cordic_campaign(7, 24);
        assert_eq!(report.trials.len(), 24);
        for t in &report.trials {
            // Every stop maps to exactly one class; a bare CycleLimit
            // folds into Deadlock and keeps the stall context.
            let _ = t.outcome;
        }
        let (m, s, d, f) = report.counts();
        assert_eq!(m + s + d + f, 24);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = cordic_campaign(3, 12);
        let b = cordic_campaign(3, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let serial = cordic_campaign(5, 16);
        for workers in [1, 3, 8] {
            let parallel = cordic_campaign_parallel(5, 16, workers);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn fast_forward_off_matches_on() {
        let on = cordic_campaign(9, 12);
        let off = cordic_campaign_with(
            9,
            12,
            CampaignConfig { fast_forward: false, ..CampaignConfig::default() },
        );
        assert_eq!(on, off);
    }

    #[test]
    fn matmul_campaign_runs() {
        let report = matmul_campaign(11, 12);
        assert_eq!(report.trials.len(), 12);
        // The golden run must be reproduced by at least one masked or
        // classified trial set summing to the total.
        let (m, s, d, f) = report.counts();
        assert_eq!(m + s + d + f, 12);
        let _ = Outcome::Masked;
    }
}
