//! Wall-clock measurement of the simulators, for the simulation-time and
//! simulation-speed comparisons (Table I right columns, Table II).

use softsim_blocks::{Fix, FixFmt, Graph};
use softsim_bus::FslBank;
use softsim_cosim::{CoSim, CoSimStop};
use softsim_isa::Image;
use softsim_iss::{Cpu, StopReason};
use softsim_rtl::{RtlStop, SocRtl};
use std::time::{Duration, Instant};

/// A wall-clock measurement of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimTiming {
    /// Wall-clock time spent simulating.
    pub wall: Duration,
    /// Clock cycles simulated.
    pub sim_cycles: u64,
}

impl SimTiming {
    /// Simulated clock cycles per wall-clock second — Table II's metric.
    pub fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Wall seconds.
    pub fn seconds(&self) -> f64 {
        self.wall.as_secs_f64()
    }
}

/// Runs a co-simulation to completion `repeats` times, timing the whole.
pub fn time_cosim(mut make: impl FnMut() -> CoSim, repeats: u32) -> SimTiming {
    let mut cycles = 0;
    let start = Instant::now();
    for _ in 0..repeats {
        let mut sim = make();
        let stop = sim.run(u64::MAX / 2);
        assert_eq!(stop, CoSimStop::Halted, "workload must halt");
        cycles += sim.cpu_stats().cycles;
    }
    SimTiming { wall: start.elapsed(), sim_cycles: cycles }
}

/// Runs a low-level RTL simulation to completion `repeats` times.
pub fn time_rtl(mut make: impl FnMut() -> SocRtl, repeats: u32) -> SimTiming {
    let mut cycles = 0;
    let start = Instant::now();
    for _ in 0..repeats {
        let mut soc = make();
        let stop = soc.run(u64::MAX / 4);
        assert_eq!(stop, RtlStop::Halted, "workload must halt");
        cycles += soc.cpu_cycles();
    }
    SimTiming { wall: start.elapsed(), sim_cycles: cycles }
}

/// Times the instruction-set simulator alone (Table II row 1): the pure
/// software image with no hardware attached.
pub fn time_iss_alone(image: &Image, repeats: u32) -> SimTiming {
    let mut cycles = 0;
    let start = Instant::now();
    for _ in 0..repeats {
        let mut cpu = Cpu::with_default_memory(image);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, u64::MAX / 2);
        assert_eq!(stop, StopReason::Halted);
        cycles += cpu.stats().cycles;
    }
    SimTiming { wall: start.elapsed(), sim_cycles: cycles }
}

/// Times the block simulator alone (Table II row 2): the peripheral graph
/// driven with a continuous input stream for `cycles` clocks.
pub fn time_blocks_alone(mut graph: Graph, cycles: u64) -> SimTiming {
    let data = Fix::from_int(0x1234, FixFmt::INT32);
    let on = Fix::from_int(1, FixFmt::BOOL);
    let start = Instant::now();
    for i in 0..cycles {
        // Alternate data/idle to exercise realistic activity.
        let _ = graph.set_input("fsl0_data", data);
        let _ =
            graph.set_input("fsl0_valid", if i % 3 != 0 { on } else { Fix::zero(FixFmt::BOOL) });
        let _ = graph.set_input("fsl0_ctrl", Fix::zero(FixFmt::BOOL));
        graph.step();
    }
    SimTiming { wall: start.elapsed(), sim_cycles: cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn cosim_timing_counts_cycles() {
        let t = time_cosim(|| workloads::cordic_cosim(8, Some(4)), 2);
        assert!(t.sim_cycles > 100);
        assert!(t.cycles_per_sec() > 0.0);
    }

    #[test]
    fn rtl_timing_counts_cycles() {
        let t = time_rtl(|| workloads::cordic_rtl(8, Some(2)), 1);
        assert!(t.sim_cycles > 100);
    }

    #[test]
    fn iss_alone_is_fastest_component() {
        // Table II's ordering: instruction simulator ≫ block simulator
        // (per simulated cycle), both ≫ RTL. Checked loosely here with
        // tiny runs; the bench harness measures it properly.
        let img = workloads::cordic_sw_image(24);
        let iss = time_iss_alone(&img, 5);
        let rtl = time_rtl(|| workloads::cordic_rtl(24, None), 1);
        assert!(
            iss.cycles_per_sec() > rtl.cycles_per_sec(),
            "ISS {} c/s vs RTL {} c/s",
            iss.cycles_per_sec(),
            rtl.cycles_per_sec()
        );
    }
}
