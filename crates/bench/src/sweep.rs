//! The deterministic parallel sweep engine.
//!
//! Design-space exploration sweeps (Figure 5's iteration × P grid,
//! Figure 7's N × NB grid) and fault-campaign trials evaluate many
//! independent points, each on its own co-simulator. [`parallel_map`]
//! spreads those points over scoped worker threads and returns results
//! **in input order**, so any text or table rendered from them is
//! byte-identical to a serial evaluation — the property the committed
//! `tables_output.txt` record and its CI gate rely on. No work items
//! are shared between threads; determinism follows from each point
//! being a pure function of its input plus the merge order being the
//! input order, independent of thread scheduling.
//!
//! Panics are isolated per item: a point whose evaluation panics does
//! not tear down its worker or discard the rest of the plan.
//! [`parallel_try_map`] surfaces each panic as a typed `Err` alongside
//! every other item's result; [`parallel_map`] finishes the whole sweep
//! first and only then re-raises the first panic.

use softsim_metrics::telemetry::{SpanKind, SpanRecord, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Best-effort string rendering of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates `f` over `items` on up to `workers` scoped threads and
/// returns the results in input order.
///
/// Items are dealt to workers in contiguous chunks; each worker writes
/// its results straight into the matching output slots, so the merge is
/// position-preserving by construction. `workers` is clamped to
/// `1..=items.len()`; with one worker (or one item) this degenerates to
/// a plain serial map on the calling thread.
///
/// # Panics
/// If `f` panics on any item, every *other* item still completes (each
/// evaluation is isolated with `catch_unwind`), and the first panic is
/// re-raised on the calling thread once the sweep has drained — not
/// mid-plan, and never as a worker-thread abort that silently drops the
/// remaining slice. Callers that want the surviving results instead use
/// [`parallel_try_map`].
pub fn parallel_map<T, R>(items: Vec<T>, workers: usize, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    parallel_map_with_telemetry(items, workers, f, None)
}

/// [`parallel_map`] with optional harness telemetry: one sweep span for
/// the whole call plus one sweep-item span per item (worker ids follow
/// chunk order). Results are byte-identical whether `telemetry` is
/// `None` or `Some`.
pub fn parallel_map_with_telemetry<T, R>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(T) -> R + Sync,
    telemetry: Option<&Telemetry>,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let results = parallel_try_map_with_telemetry(items, workers, f, telemetry);
    let mut out = Vec::with_capacity(results.len());
    let mut first_panic = None;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(msg) => {
                first_panic.get_or_insert(msg);
            }
        }
    }
    if let Some(msg) = first_panic {
        panic!("sweep item panicked: {msg}");
    }
    out
}

/// [`parallel_map`] with per-item panic isolation surfaced to the
/// caller: each result is `Ok(f(item))`, or `Err(panic_message)` when
/// evaluating that item panicked. All items are always evaluated, in
/// input order, whatever any of them does.
pub fn parallel_try_map<T, R>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(T) -> R + Sync,
) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
{
    parallel_try_map_with_telemetry(items, workers, f, None)
}

/// [`parallel_try_map`] with optional harness telemetry; see
/// [`parallel_map_with_telemetry`] for the span set.
pub fn parallel_try_map_with_telemetry<T, R>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(T) -> R + Sync,
    telemetry: Option<&Telemetry>,
) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
{
    let sweep_start = telemetry.map(|_| Instant::now());
    let item_span = |worker: u32, start: Option<Instant>| {
        if let (Some(t), Some(s)) = (telemetry, start) {
            t.record(SpanRecord::new(SpanKind::SweepItem, worker, s.elapsed()));
        }
    };
    let guarded = |item: T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(panic_message);
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    let out = if workers == 1 {
        items
            .into_iter()
            .map(|item| {
                let start = telemetry.map(|_| Instant::now());
                let r = guarded(item);
                item_span(0, start);
                r
            })
            .collect()
    } else {
        let chunk = n.div_ceil(workers);
        let mut out: Vec<Option<Result<R, String>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        let mut items = items;
        std::thread::scope(|scope| {
            let guarded = &guarded;
            let item_span = &item_span;
            let mut slots = out.as_mut_slice();
            let mut worker_id: u32 = 0;
            while !slots.is_empty() {
                let take = chunk.min(slots.len());
                let (slot_chunk, slot_rest) = slots.split_at_mut(take);
                slots = slot_rest;
                let chunk_items: Vec<T> = items.drain(..take).collect();
                let worker = worker_id;
                worker_id += 1;
                scope.spawn(move || {
                    for (slot, item) in slot_chunk.iter_mut().zip(chunk_items) {
                        let start = telemetry.map(|_| Instant::now());
                        *slot = Some(guarded(item));
                        item_span(worker, start);
                    }
                });
            }
        });
        out.into_iter().map(|r| r.expect("worker filled every slot")).collect()
    };
    if let (Some(t), Some(start)) = (telemetry, sweep_start) {
        t.record(SpanRecord::new(SpanKind::Sweep, 0, start.elapsed()));
    }
    out
}

/// The environment variable overriding the sweep worker count.
pub const SWEEP_WORKERS_ENV: &str = "SOFTSIM_SWEEP_WORKERS";

/// A malformed [`SWEEP_WORKERS_ENV`] value. An unparseable worker
/// count used to fall back silently to the machine default — which
/// turned a CI typo into a wrong-but-green byte-diff. Now it is a
/// typed configuration error surfaced before any work runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkersEnvError {
    /// The rejected value, verbatim.
    pub value: String,
}

impl std::fmt::Display for WorkersEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {SWEEP_WORKERS_ENV}={:?}: expected a positive integer \
             (unset the variable for the machine default)",
            self.value
        )
    }
}

impl std::error::Error for WorkersEnvError {}

/// Reads [`SWEEP_WORKERS_ENV`]: `Ok(None)` when unset, `Ok(Some(n))`
/// for a positive integer, and a typed error for anything else
/// (including `0`).
pub fn sweep_workers_from_env() -> Result<Option<usize>, WorkersEnvError> {
    match std::env::var(SWEEP_WORKERS_ENV) {
        Err(_) => Ok(None),
        Ok(value) => parse_workers(&value).map(Some),
    }
}

/// Parses one [`SWEEP_WORKERS_ENV`] value: a positive integer, with
/// surrounding whitespace tolerated.
pub fn parse_workers(value: &str) -> Result<usize, WorkersEnvError> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(WorkersEnvError { value: value.to_string() }),
    }
}

/// Worker-thread count for the parallel runners: the machine's
/// available parallelism, capped so small CI runners are not
/// oversubscribed. The `SOFTSIM_SWEEP_WORKERS` environment variable
/// overrides it (CI sets it to 1 to produce the serial record it diffs
/// the parallel one against).
///
/// # Panics
/// Panics on a malformed override; entry points that want an orderly
/// exit validate [`sweep_workers_from_env`] eagerly instead.
pub fn default_workers() -> usize {
    match sweep_workers_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
        Err(e) => panic!("configuration error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_env_parsing_is_strict() {
        assert_eq!(parse_workers(" 3 "), Ok(3));
        assert_eq!(parse_workers("1"), Ok(1));
        for bad in ["0", "banana", "-2", "2.5", ""] {
            let err = parse_workers(bad).expect_err(bad);
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains(SWEEP_WORKERS_ENV), "{msg}");
            assert!(msg.contains("positive integer"), "{msg}");
        }
    }

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 5, 64] {
            let squares = parallel_map(items.clone(), workers, |x| x * x);
            assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 8, |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![9], 8, |x| x + 1), vec![10]);
    }

    #[test]
    fn mid_plan_panic_still_yields_every_other_item() {
        let items: Vec<u64> = (0..23).collect();
        for workers in [1, 3, 8] {
            let results = parallel_try_map(items.clone(), workers, |x| {
                assert!(x != 11, "poison item");
                x * 2
            });
            assert_eq!(results.len(), items.len(), "no item was dropped");
            for (i, r) in results.iter().enumerate() {
                if i == 11 {
                    let msg = r.as_ref().expect_err("poison item surfaces its panic");
                    assert!(msg.contains("poison item"), "panic message preserved: {msg}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn parallel_map_reraises_after_draining() {
        let evaluated = std::sync::atomic::AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..16u32).collect(), 4, |x| {
                evaluated.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                assert!(x != 3, "boom");
                x
            })
        }));
        assert!(result.is_err(), "the panic still propagates");
        assert_eq!(
            evaluated.load(std::sync::atomic::Ordering::SeqCst),
            16,
            "every item was evaluated before the re-raise"
        );
    }
}
