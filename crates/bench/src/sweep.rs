//! The deterministic parallel sweep engine.
//!
//! Design-space exploration sweeps (Figure 5's iteration × P grid,
//! Figure 7's N × NB grid) and fault-campaign trials evaluate many
//! independent points, each on its own co-simulator. [`parallel_map`]
//! spreads those points over scoped worker threads and returns results
//! **in input order**, so any text or table rendered from them is
//! byte-identical to a serial evaluation — the property the committed
//! `tables_output.txt` record and its CI gate rely on. No work items
//! are shared between threads; determinism follows from each point
//! being a pure function of its input plus the merge order being the
//! input order, independent of thread scheduling.

/// Evaluates `f` over `items` on up to `workers` scoped threads and
/// returns the results in input order.
///
/// Items are dealt to workers in contiguous chunks; each worker writes
/// its results straight into the matching output slots, so the merge is
/// position-preserving by construction. `workers` is clamped to
/// `1..=items.len()`; with one worker (or one item) this degenerates to
/// a plain serial map on the calling thread.
pub fn parallel_map<T, R>(items: Vec<T>, workers: usize, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut items = items;
    std::thread::scope(|scope| {
        let f = &f;
        let mut slots = out.as_mut_slice();
        while !slots.is_empty() {
            let take = chunk.min(slots.len());
            let (slot_chunk, slot_rest) = slots.split_at_mut(take);
            slots = slot_rest;
            let chunk_items: Vec<T> = items.drain(..take).collect();
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// Worker-thread count for the parallel runners: the machine's
/// available parallelism, capped so small CI runners are not
/// oversubscribed. The `SOFTSIM_SWEEP_WORKERS` environment variable
/// overrides it (CI sets it to 1 to produce the serial record it diffs
/// the parallel one against).
pub fn default_workers() -> usize {
    if let Some(n) =
        std::env::var("SOFTSIM_SWEEP_WORKERS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 5, 64] {
            let squares = parallel_map(items.clone(), workers, |x| x * x);
            assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 8, |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![9], 8, |x| x + 1), vec![10]);
    }
}
