//! The `BENCH_0009` translated-execution record: the basic-block ISS
//! fast path against the stepped interpreter.
//!
//! Two compute-heavy software workloads — the pure-software block
//! matmul image on the bare ISS, and the repeated-batch software CORDIC
//! program under the co-simulation engine — are each run to completion
//! with translation off and with translation on, timed wall-clock.
//! Before any number is recorded, one run of each variant is compared
//! on every architectural observable (statistics, registers, full
//! simulation state), so every speedup in the JSON is backed by an
//! equivalence check, not just a stopwatch. The throughputs are
//! machine-dependent (like `BENCH_0003.json`); the result equality and
//! the CI floor (translated ≥ 2x interpreted on these workloads) are
//! not.

use crate::measure::{time_cosim, time_iss_alone, SimTiming};
use crate::tables::json_f64;
use crate::workloads;
use softsim_bus::FslBank;
use softsim_cosim::{CoSim, CoSimStop};
use softsim_isa::Image;
use softsim_iss::{Cpu, StopReason};
use std::time::Instant;

/// Completion runs per timed ISS measurement.
const ISS_REPEATS: u32 = 20;

/// Completion runs per timed co-simulation measurement.
const COSIM_REPEATS: u32 = 8;

/// Times the ISS with translated basic-block execution enabled —
/// [`time_iss_alone`] with the fast path on.
pub fn time_iss_translated(image: &Image, repeats: u32) -> SimTiming {
    let mut cycles = 0;
    let start = Instant::now();
    for _ in 0..repeats {
        let mut cpu = Cpu::with_default_memory(image);
        cpu.set_translation(true);
        let mut fsl = FslBank::default();
        let stop = cpu.run(&mut fsl, u64::MAX / 2);
        assert_eq!(stop, StopReason::Halted);
        cycles += cpu.stats().cycles;
    }
    SimTiming { wall: start.elapsed(), sim_cycles: cycles }
}

/// Runs `image` on the bare ISS interpreted and translated, asserting
/// bit-identical results, and returns the shared cycle count.
fn assert_iss_equivalent(image: &Image) -> u64 {
    let run = |translate: bool| {
        let mut cpu = Cpu::with_default_memory(image);
        cpu.set_translation(translate);
        let mut fsl = FslBank::default();
        assert_eq!(cpu.run(&mut fsl, u64::MAX / 2), StopReason::Halted);
        let regs: Vec<u32> = (0..32).map(|r| cpu.reg(softsim_isa::Reg::new(r))).collect();
        (cpu.stats(), cpu.pc(), cpu.carry(), regs, cpu.translation_stats().block_dispatches)
    };
    let interp = run(false);
    let xlate = run(true);
    assert_eq!(
        (&interp.0, interp.1, interp.2, &interp.3),
        (&xlate.0, xlate.1, xlate.2, &xlate.3),
        "translation must not change the ISS run"
    );
    assert!(xlate.4 > 0, "the fast path never engaged on the ISS workload");
    interp.0.cycles
}

/// Runs the co-simulation workload interpreted and translated,
/// asserting bit-identical results, and returns the shared cycle count.
fn assert_cosim_equivalent(make: impl Fn() -> CoSim) -> u64 {
    let run = |translate: bool| {
        let mut sim = make();
        sim.set_translation(translate);
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let dispatches = sim.cpu().translation_stats().block_dispatches;
        (sim.cpu_stats(), sim.hw_stats(), sim.save_state(), dispatches)
    };
    let interp = run(false);
    let xlate = run(true);
    assert_eq!(
        (&interp.0, &interp.1, &interp.2),
        (&xlate.0, &xlate.1, &xlate.2),
        "translation must not change the co-simulation run"
    );
    assert!(xlate.3 > 0, "the fast path never engaged on the co-sim workload");
    interp.0.cycles
}

/// The machine-readable `BENCH_0009` record as a JSON string.
///
/// # Panics
/// Panics if any translated run differs from its interpreted twin on
/// any observable — wall-clock without equivalence is meaningless here.
pub fn translate_json() -> String {
    // ISS alone: the paper's Table II row 1 workload family, software
    // block matmul at the headline size.
    let iss_image = workloads::matmul_image(workloads::MATMUL_TABLE_N, None);
    let iss_cycles = assert_iss_equivalent(&iss_image);
    let iss_interp = time_iss_alone(&iss_image, ISS_REPEATS);
    let iss_xlate = time_iss_translated(&iss_image, ISS_REPEATS);

    // Co-simulation: the long software CORDIC batch (no peripheral —
    // the CPU is the bottleneck, which is what translation targets).
    let make = || workloads::cordic_cosim_long(24, None);
    let cosim_cycles = assert_cosim_equivalent(make);
    let cosim_interp = time_cosim(make, COSIM_REPEATS);
    let cosim_xlate = time_cosim(
        || {
            let mut sim = make();
            sim.set_translation(true);
            sim
        },
        COSIM_REPEATS,
    );

    let iss_speedup = iss_xlate.cycles_per_sec() / iss_interp.cycles_per_sec().max(1e-12);
    let cosim_speedup = cosim_xlate.cycles_per_sec() / cosim_interp.cycles_per_sec().max(1e-12);
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0009\",\
         \"description\":\"translated basic-block execution vs the stepped interpreter, equivalence-checked\",\
         \"iss\":{{\"workload\":\"matmul N={} software image, ISS alone\",\"cycles_per_run\":{iss_cycles},\"repeats\":{ISS_REPEATS},\
         \"interpreter\":{{\"wall_seconds\":{},\"cycles_per_sec\":{}}},\
         \"translated\":{{\"wall_seconds\":{},\"cycles_per_sec\":{}}},\
         \"speedup\":{},\"results_identical\":true}},\
         \"cosim\":{{\"workload\":\"cordic 24-iteration software batch x{}, co-simulation\",\"cycles_per_run\":{cosim_cycles},\"repeats\":{COSIM_REPEATS},\
         \"interpreter\":{{\"wall_seconds\":{},\"cycles_per_sec\":{}}},\
         \"translated\":{{\"wall_seconds\":{},\"cycles_per_sec\":{}}},\
         \"speedup\":{},\"results_identical\":true}},\
         \"best_speedup\":{}}}\n",
        workloads::MATMUL_TABLE_N,
        json_f64(iss_interp.seconds()),
        json_f64(iss_interp.cycles_per_sec()),
        json_f64(iss_xlate.seconds()),
        json_f64(iss_xlate.cycles_per_sec()),
        json_f64(iss_speedup),
        workloads::TIMING_REPS,
        json_f64(cosim_interp.seconds()),
        json_f64(cosim_interp.cycles_per_sec()),
        json_f64(cosim_xlate.seconds()),
        json_f64(cosim_xlate.cycles_per_sec()),
        json_f64(cosim_speedup),
        json_f64(iss_speedup.max(cosim_speedup)),
    )
}

/// Writes [`translate_json`] to `path`.
pub fn write_translate_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, translate_json())
}

#[cfg(test)]
mod tests {
    use softsim_trace::json::parse;

    #[test]
    fn translate_json_is_well_formed_with_required_keys() {
        let doc = parse(&super::translate_json()).expect("valid json");
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), "softsim-bench/1");
        assert_eq!(doc.get("bench_id").unwrap().as_str().unwrap(), "BENCH_0009");
        for section in ["iss", "cosim"] {
            let s = doc.get(section).unwrap();
            for key in ["interpreter", "translated"] {
                let side = s.get(key).unwrap();
                assert!(side.get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);
                assert!(side.get("cycles_per_sec").unwrap().as_f64().unwrap() > 0.0);
            }
            assert!(s.get("speedup").unwrap().as_f64().unwrap() > 0.0);
            assert!(s.get("cycles_per_run").unwrap().as_f64().unwrap() > 0.0);
        }
        assert!(doc.get("best_speedup").unwrap().as_f64().unwrap() > 0.0);
    }
}
