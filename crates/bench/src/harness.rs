//! A minimal, dependency-free benchmark runner: the `criterion`
//! replacement for the fully offline build (`DESIGN.md` §6).
//!
//! Each `cargo bench` target constructs a [`Harness`], registers named
//! closures, and calls [`Harness::finish`]. Every closure is warmed up
//! once, then timed for a fixed number of samples; the report prints the
//! median, minimum, and mean per-iteration time. `--quick` (or the
//! `SOFTSIM_BENCH_QUICK` environment variable) cuts the sample count for
//! smoke runs, and a name prefix given on the command line filters which
//! benchmarks execute — mirroring the criterion CLI just enough for
//! `cargo bench <filter>` to keep working.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: u32 = 10;

/// One timed benchmark result.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Benchmark name (group/label).
    pub name: String,
    /// Per-sample wall-clock durations, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Sampled {
    /// Median per-iteration time.
    pub fn median(&self) -> Duration {
        self.samples[self.samples.len() / 2]
    }

    /// Minimum per-iteration time.
    pub fn min(&self) -> Duration {
        self.samples[0]
    }

    /// Mean per-iteration time.
    pub fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// The benchmark runner: registers and times named closures.
pub struct Harness {
    filter: Option<String>,
    samples: u32,
    results: Vec<Sampled>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness configured from the process arguments (`cargo bench`
    /// passes `--bench`; an extra positional argument becomes a name
    /// filter; `--quick` reduces sampling).
    pub fn new() -> Harness {
        let mut filter = None;
        let mut samples = DEFAULT_SAMPLES;
        if std::env::var_os("SOFTSIM_BENCH_QUICK").is_some() {
            samples = 3;
        }
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--quick" => samples = 3,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Harness { filter, samples, results: Vec::new() }
    }

    /// Overrides the per-benchmark sample count.
    pub fn samples(&mut self, n: u32) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `body` (one full iteration per call) under `name`, unless
    /// the command-line filter excludes it.
    pub fn bench(&mut self, name: impl Into<String>, mut body: impl FnMut()) -> &mut Self {
        let name = name.into();
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }
        body(); // warm-up: page in code and data, fill allocator pools
        let mut samples = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            body();
            samples.push(start.elapsed());
        }
        samples.sort();
        let r = Sampled { name, samples };
        println!(
            "{:<44} median {:>12?}  min {:>12?}  mean {:>12?}",
            r.name,
            r.median(),
            r.min(),
            r.mean()
        );
        self.results.push(r);
        self
    }

    /// All results timed so far.
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }

    /// Prints a footer and consumes the harness.
    pub fn finish(&mut self) {
        println!("{} benchmark(s) timed, {} samples each", self.results.len(), self.samples);
    }
}
