//! The service benchmark (`BENCH_0010.json`, `tables --serve-json`).
//!
//! Drives the in-process [`softsim_serve::Server`] through a synthetic
//! overload burst with the pool held, so admission is deterministic:
//! the queue fills to capacity, the jobs past the degrade watermark are
//! admitted reduced-fidelity, and the overflow is shed with typed
//! rejections. The pool is then released and every admitted campaign
//! runs to completion (jobs/sec is the one machine-dependent number);
//! finally the identical burst is resubmitted and must be served
//! entirely from the memoization cache — byte-identical reports, zero
//! re-simulated trials — before anything is written. The admission
//! counts, hit rate and shed rate are machine-independent; the
//! trajectory record floors jobs/sec and the cache hit rate.

use crate::tables::json_f64;
use softsim_serve::{
    CacheStatus, JobKind, JobSpec, JobState, QueueConfig, ServeConfig, Server, Workload,
};
use std::path::Path;
use std::time::Instant;

/// Jobs in the synthetic overload burst.
pub const BURST_JOBS: usize = 12;
/// Admission queue capacity during the burst.
pub const BURST_CAPACITY: usize = 8;
/// Degrade watermark during the burst.
pub const BURST_WATERMARK: usize = 6;
/// Trials per burst campaign.
pub const BURST_TRIALS: u32 = 16;

/// The measured burst, with its deterministic admission counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Jobs submitted in the burst.
    pub burst_jobs: usize,
    /// Jobs admitted (== queue capacity).
    pub admitted: usize,
    /// Jobs shed with a typed rejection.
    pub shed: usize,
    /// Admitted jobs flagged reduced-fidelity by the watermark.
    pub degraded: usize,
    /// Completed jobs per wall-clock second (machine-dependent).
    pub jobs_per_sec: f64,
    /// Cache hits / (hits + misses) across both rounds.
    pub cache_hit_rate: f64,
    /// Shed jobs / submitted jobs in the burst.
    pub shed_rate: f64,
}

fn burst_spec(i: usize) -> JobSpec {
    JobSpec {
        kind: JobKind::Campaign,
        workload: Workload::Cordic { iterations: 8, p: 2 },
        seed: 0x5E54_0000 + i as u64,
        trials: BURST_TRIALS,
        durable: false,
        ..JobSpec::default()
    }
}

/// Runs the burst.
///
/// # Panics
/// Panics if admission deviates from the deterministic counts, if any
/// admitted job fails, or if the resubmitted round is not served
/// byte-identically from the cache — rates without equivalence are
/// meaningless here.
pub fn serve_run() -> ServeRun {
    let spool = std::env::temp_dir().join(format!("softsim-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let server = Server::start(ServeConfig {
        workers: 2,
        hold: true,
        queue: QueueConfig { capacity: BURST_CAPACITY, degrade_watermark: BURST_WATERMARK },
        spool,
        ..ServeConfig::default()
    })
    .expect("server starts");

    // Burst while the pool is held: admission is purely queue-driven.
    let mut admitted_ids = Vec::new();
    let mut shed = 0usize;
    for i in 0..BURST_JOBS {
        match server.submit(burst_spec(i)) {
            Ok(id) => admitted_ids.push((i, id)),
            Err(_) => shed += 1,
        }
    }
    assert_eq!(admitted_ids.len(), BURST_CAPACITY, "burst admits exactly the queue capacity");
    assert_eq!(shed, BURST_JOBS - BURST_CAPACITY, "the overflow is shed");

    let start = Instant::now();
    server.release();
    let mut first_reports = Vec::new();
    let mut degraded = 0usize;
    for &(i, id) in &admitted_ids {
        let r = server.wait(id, std::time::Duration::from_secs(600)).expect("job finishes");
        assert_eq!(r.state, JobState::Done, "burst job {i}: {r:?}");
        assert_eq!(r.cache, CacheStatus::Miss, "first round populates the cache");
        if r.degraded {
            degraded += 1;
        }
        first_reports.push((i, r.report));
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let jobs_per_sec = admitted_ids.len() as f64 / elapsed;
    assert_eq!(
        degraded,
        BURST_CAPACITY - BURST_WATERMARK,
        "jobs admitted past the watermark run degraded"
    );

    // Identical resubmission: everything must come from the cache,
    // byte-identical, with nothing re-simulated.
    for (i, first_report) in &first_reports {
        let r = server.run(burst_spec(*i)).expect("resubmission admitted");
        assert_eq!(r.cache, CacheStatus::Hit, "resubmitted job {i} must hit the cache");
        assert_eq!(r.executed_trials, 0, "cache hit re-simulated trials");
        assert_eq!(&r.report, first_report, "cached report diverged for job {i}");
    }
    let counters = server.telemetry().serve_counters();
    let probes = counters.cache_hits + counters.cache_misses;
    let cache_hit_rate = counters.cache_hits as f64 / probes.max(1) as f64;
    let shed_rate = shed as f64 / BURST_JOBS as f64;

    ServeRun {
        burst_jobs: BURST_JOBS,
        admitted: admitted_ids.len(),
        shed,
        degraded,
        jobs_per_sec,
        cache_hit_rate,
        shed_rate,
    }
}

/// The machine-readable `BENCH_0010` record as a JSON string.
pub fn serve_json() -> String {
    let run = serve_run();
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0010\",\
         \"description\":\"simulation service under a synthetic overload burst: admission, \
         shedding, watermark degradation, memoization\",\
         \"burst_jobs\":{},\"queue_capacity\":{BURST_CAPACITY},\
         \"degrade_watermark\":{BURST_WATERMARK},\"trials_per_job\":{BURST_TRIALS},\
         \"admitted\":{},\"shed\":{},\"degraded\":{},\
         \"jobs_per_sec\":{},\"cache_hit_rate\":{},\"shed_rate\":{}}}\n",
        run.burst_jobs,
        run.admitted,
        run.shed,
        run.degraded,
        json_f64(run.jobs_per_sec),
        json_f64(run.cache_hit_rate),
        json_f64(run.shed_rate),
    )
}

/// Writes [`serve_json`] to `path`.
pub fn write_serve_json(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, serve_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_counts_and_rates_are_deterministic() {
        let run = serve_run();
        assert_eq!(run.admitted, BURST_CAPACITY);
        assert_eq!(run.shed, BURST_JOBS - BURST_CAPACITY);
        assert_eq!(run.degraded, BURST_CAPACITY - BURST_WATERMARK);
        assert!((run.cache_hit_rate - 0.5).abs() < 1e-12, "{}", run.cache_hit_rate);
        assert!((run.shed_rate - 4.0 / 12.0).abs() < 1e-12, "{}", run.shed_rate);
        assert!(run.jobs_per_sec > 0.0);
    }
}
