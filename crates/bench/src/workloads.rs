//! Canonical workloads for the paper's experiments — the exact
//! configurations behind Figure 5, Figure 7, Table I and Table II.

use softsim_apps::cordic::reference as cordic_ref;
use softsim_apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
use softsim_apps::matmul::reference::Matrix;
use softsim_apps::matmul::software as mm_sw;
use softsim_cosim::{CoSim, Peripheral};
use softsim_isa::asm::assemble;
use softsim_isa::Image;
use softsim_rtl::SocRtl;

/// The CORDIC data batch used throughout: eight `(a, b)` pairs spanning
/// the convergence domain (2·8 = 16 result words exactly fill the output
/// FSL FIFO — the paper's "size of each set of data is selected
/// carefully").
pub fn cordic_batch() -> CordicBatch {
    let pairs: Vec<(i32, i32)> = [
        (1.0, 0.5),
        (1.5, 1.2),
        (2.0, -1.0),
        (1.25, 0.8),
        (3.0, 2.5),
        (1.1, -0.3),
        (2.75, 1.9),
        (1.9, 0.05),
    ]
    .iter()
    .map(|&(a, b)| (cordic_ref::to_fix(a), cordic_ref::to_fix(b)))
    .collect();
    CordicBatch::new(&pairs)
}

/// The P values of Figure 5 / Table I.
pub const CORDIC_PS: [usize; 4] = [2, 4, 6, 8];

/// The iteration counts of Figure 5.
pub const CORDIC_ITERS: [u32; 2] = [8, 24];

/// Assembled pure-software CORDIC image (`P = 0`).
pub fn cordic_sw_image(iterations: u32) -> Image {
    assemble(&sw_program(&cordic_batch(), iterations, SwStyle::Compiled))
        .expect("cordic sw assembles")
}

/// Assembled HW-accelerated CORDIC image for `p` PEs.
pub fn cordic_hw_image(iterations: u32, p: usize) -> Image {
    assemble(&hw_program(&cordic_batch(), iterations, p)).expect("cordic hw assembles")
}

/// Batch repetitions used by the timing rows so each run simulates tens
/// of thousands of cycles (the paper times ~1.5 ms ≈ 75k cycles at
/// 50 MHz).
pub const TIMING_REPS: u32 = 40;

/// Long-running co-simulator for the timing comparisons: the batch is
/// processed [`TIMING_REPS`] times within one program.
pub fn cordic_cosim_long(iterations: u32, p: Option<usize>) -> CoSim {
    use softsim_apps::cordic::software::{hw_program_repeated, sw_program_repeated};
    match p {
        None => CoSim::software_only(
            &assemble(&sw_program_repeated(
                &cordic_batch(),
                iterations,
                SwStyle::Compiled,
                TIMING_REPS,
            ))
            .expect("assembles"),
        ),
        Some(p) => CoSim::with_peripheral(
            &assemble(&hw_program_repeated(&cordic_batch(), iterations, p, TIMING_REPS))
                .expect("assembles"),
            softsim_apps::cordic::hardware::cordic_peripheral(p),
        ),
    }
}

/// Long-running RTL system matching [`cordic_cosim_long`].
pub fn cordic_rtl_long(iterations: u32, p: Option<usize>) -> SocRtl {
    use softsim_apps::cordic::software::{hw_program_repeated, sw_program_repeated};
    match p {
        None => SocRtl::new(
            &assemble(&sw_program_repeated(
                &cordic_batch(),
                iterations,
                SwStyle::Compiled,
                TIMING_REPS,
            ))
            .expect("assembles"),
        ),
        Some(p) => softsim_apps::cordic::rtl::build_cordic_rtl(
            &assemble(&hw_program_repeated(&cordic_batch(), iterations, p, TIMING_REPS))
                .expect("assembles"),
            p,
        ),
    }
}

/// Co-simulator for a CORDIC configuration (`p = None` → pure software).
pub fn cordic_cosim(iterations: u32, p: Option<usize>) -> CoSim {
    match p {
        None => CoSim::software_only(&cordic_sw_image(iterations)),
        Some(p) => CoSim::with_peripheral(
            &cordic_hw_image(iterations, p),
            softsim_apps::cordic::hardware::cordic_peripheral(p),
        ),
    }
}

/// Low-level (RTL) system for a CORDIC configuration.
pub fn cordic_rtl(iterations: u32, p: Option<usize>) -> SocRtl {
    match p {
        None => SocRtl::new(&cordic_sw_image(iterations)),
        Some(p) => softsim_apps::cordic::rtl::build_cordic_rtl(&cordic_hw_image(iterations, p), p),
    }
}

/// Matrix sizes swept in Figure 7.
pub const MATMUL_NS: [usize; 4] = [4, 8, 16, 32];

/// The paper's headline matrix size ("multiplication of two matrices"
/// with 2×2 / 4×4 blocks, Table I).
pub const MATMUL_TABLE_N: usize = 16;

/// The deterministic matrices of size `n` used by every matmul run.
pub fn matmul_inputs(n: usize) -> (Matrix, Matrix) {
    (Matrix::test_pattern(n, 7), Matrix::test_pattern(n, 8))
}

/// Assembled matmul image (`nb = None` → pure software).
pub fn matmul_image(n: usize, nb: Option<usize>) -> Image {
    let (a, b) = matmul_inputs(n);
    let src = match nb {
        None => mm_sw::sw_program(&a, &b),
        Some(nb) => mm_sw::hw_program(&a, &b, nb),
    };
    assemble(&src).expect("matmul assembles")
}

/// Co-simulator for a matmul configuration.
pub fn matmul_cosim(n: usize, nb: Option<usize>) -> CoSim {
    match nb {
        None => CoSim::software_only(&matmul_image(n, None)),
        Some(nb) => CoSim::with_peripheral(
            &matmul_image(n, Some(nb)),
            softsim_apps::matmul::hardware::matmul_peripheral(nb),
        ),
    }
}

/// Co-simulator for a hardened CORDIC configuration: `ecc` turns on the
/// SEC-DED codec on every FSL channel, `tmr` swaps the peripheral for
/// the triple-modular-redundant build. Both off reproduces
/// [`cordic_cosim`] with `Some(p)` exactly — the hardening knobs never
/// change the program image or the data path.
pub fn cordic_cosim_hardened(iterations: u32, p: usize, ecc: bool, tmr: bool) -> CoSim {
    let peripheral = if tmr {
        softsim_apps::cordic::hardware::cordic_peripheral_tmr(p)
    } else {
        softsim_apps::cordic::hardware::cordic_peripheral(p)
    };
    let mut sim = CoSim::with_peripheral(&cordic_hw_image(iterations, p), peripheral);
    sim.set_fsl_ecc(ecc);
    sim
}

/// Hardened block-matmul co-simulator, mirroring
/// [`cordic_cosim_hardened`].
pub fn matmul_cosim_hardened(n: usize, nb: usize, ecc: bool, tmr: bool) -> CoSim {
    let peripheral = if tmr {
        softsim_apps::matmul::hardware::matmul_peripheral_tmr(nb)
    } else {
        softsim_apps::matmul::hardware::matmul_peripheral(nb)
    };
    let mut sim = CoSim::with_peripheral(&matmul_image(n, Some(nb)), peripheral);
    sim.set_fsl_ecc(ecc);
    sim
}

/// Low-level (RTL) system for a matmul configuration.
pub fn matmul_rtl_sys(n: usize, nb: Option<usize>) -> SocRtl {
    match nb {
        None => SocRtl::new(&matmul_image(n, None)),
        Some(nb) => softsim_apps::matmul::rtl::build_matmul_rtl(&matmul_image(n, Some(nb)), nb),
    }
}

/// The peripheral attached in a CORDIC co-simulation (needed for resource
/// accounting alongside [`cordic_cosim`]).
pub fn cordic_peripheral(p: usize) -> Peripheral {
    softsim_apps::cordic::hardware::cordic_peripheral(p)
}
