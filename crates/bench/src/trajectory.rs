//! The committed performance-trajectory record
//! (`BENCH_TRAJECTORY.json`) and its regression gate.
//!
//! The per-PR BENCH records each answer one question about one
//! subsystem; the trajectory record aggregates their headline numbers
//! into a single committed series — interpreter cycles/sec, co-sim
//! throughput, fast-forward speedup, recovery rate, durable journal
//! overhead, translated-execution throughput, service throughput under
//! overload — so any change has one
//! file to beat and CI has one gate to hold. `tables --trajectory`
//! regenerates the record from the BENCH_0003–0010 files in the
//! current directory; `tables --trajectory-gate` re-extracts the same
//! series from (possibly freshly regenerated) BENCH files and fails if
//! a gated series regresses past its factor against the committed
//! record: floors (`fresh >= factor x committed`) for throughput and
//! rates, a ceiling (`fresh <= factor x committed`) for journal bytes
//! per trial. A gated series missing from either side — committed but
//! no longer extracted, or freshly extracted but absent from the
//! committed record — fails the gate loudly instead of being skipped.
//!
//! Extraction is pure parsing via `softsim_trace::json` — given the
//! same BENCH files the record is byte-identical, which is what the
//! staleness test in this module asserts against the committed file.

use crate::tables::json_f64;
use softsim_trace::json::{parse, Value};
use std::path::Path;

/// The committed trajectory record's file name.
pub const TRAJECTORY_FILE: &str = "BENCH_TRAJECTORY.json";

/// The BENCH records the trajectory aggregates, in extraction order.
pub const TRAJECTORY_SOURCES: [&str; 7] = [
    "BENCH_0003.json",
    "BENCH_0004.json",
    "BENCH_0005.json",
    "BENCH_0006.json",
    "BENCH_0007.json",
    "BENCH_0009.json",
    "BENCH_0010.json",
];

/// How a series is gated against the committed record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Regression floor: `fresh >= factor * committed`.
    Floor(f64),
    /// Regression ceiling: `fresh <= factor * committed`.
    Ceiling(f64),
    /// Recorded but not gated (machine-dependent ratios whose absolute
    /// floors live in their own CI jobs).
    Info,
}

impl Gate {
    fn kind(&self) -> &'static str {
        match self {
            Gate::Floor(_) => "floor",
            Gate::Ceiling(_) => "ceiling",
            Gate::Info => "info",
        }
    }

    fn factor(&self) -> f64 {
        match self {
            Gate::Floor(f) | Gate::Ceiling(f) => *f,
            Gate::Info => 0.0,
        }
    }
}

/// One headline series entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Stable series name (the gate keys on it).
    pub name: &'static str,
    /// Which BENCH record it was extracted from.
    pub source: &'static str,
    /// The extracted value.
    pub value: f64,
    /// How the series is gated.
    pub gate: Gate,
}

fn read_json(dir: &Path, file: &str) -> Result<Value, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{file}: {e}"))
}

fn f64_at(doc: &Value, file: &str, path: &[&str]) -> Result<f64, String> {
    let mut v = doc;
    for key in path {
        v = v.get(key).ok_or_else(|| format!("{file}: missing key `{}`", path.join(".")))?;
    }
    v.as_f64().ok_or_else(|| format!("{file}: `{}` is not a number", path.join(".")))
}

/// Extracts the headline series from the BENCH records in `dir`.
///
/// The selection is deliberately small and stable: interpreter and
/// co-sim throughput plus RTL speedup (BENCH_0003), fast-forward and
/// parallel speedups (BENCH_0004), the fully-hardened recovery rate
/// (BENCH_0005), total profiled hotspot cycles (BENCH_0006), journal
/// bytes per trial (BENCH_0007), translated-execution throughput and
/// speedup (BENCH_0009), and service jobs/sec, cache hit rate and shed
/// rate under overload (BENCH_0010).
pub fn extract(dir: &Path) -> Result<Vec<SeriesPoint>, String> {
    let mut out = Vec::new();

    let b3 = read_json(dir, "BENCH_0003.json")?;
    let components = b3
        .get("components")
        .and_then(|v| v.as_array())
        .ok_or("BENCH_0003.json: missing `components`")?;
    let iss = components
        .iter()
        .find(|c| c.get("name").and_then(|n| n.as_str()) == Some("iss_alone"))
        .ok_or("BENCH_0003.json: no `iss_alone` component")?;
    out.push(SeriesPoint {
        name: "iss_cycles_per_sec",
        source: "BENCH_0003.json",
        value: f64_at(iss, "BENCH_0003.json", &["cycles_per_sec"])?,
        gate: Gate::Floor(0.8),
    });
    let workloads = b3
        .get("workloads")
        .and_then(|v| v.as_array())
        .ok_or("BENCH_0003.json: missing `workloads`")?;
    if workloads.is_empty() {
        return Err("BENCH_0003.json: empty `workloads`".into());
    }
    let mut cosim_sum = 0.0;
    let mut speedup_sum = 0.0;
    for w in workloads {
        cosim_sum += f64_at(w, "BENCH_0003.json", &["cosim", "cycles_per_sec"])?;
        speedup_sum += f64_at(w, "BENCH_0003.json", &["speedup_vs_rtl"])?;
    }
    out.push(SeriesPoint {
        name: "cosim_cycles_per_sec_mean",
        source: "BENCH_0003.json",
        value: cosim_sum / workloads.len() as f64,
        gate: Gate::Floor(0.8),
    });
    out.push(SeriesPoint {
        name: "speedup_vs_rtl_mean",
        source: "BENCH_0003.json",
        value: speedup_sum / workloads.len() as f64,
        gate: Gate::Info,
    });

    let b4 = read_json(dir, "BENCH_0004.json")?;
    out.push(SeriesPoint {
        name: "fast_forward_speedup_stall",
        source: "BENCH_0004.json",
        value: f64_at(&b4, "BENCH_0004.json", &["stall_campaign", "speedup_fast_forward"])?,
        gate: Gate::Floor(0.8),
    });
    out.push(SeriesPoint {
        name: "fast_forward_speedup_campaign",
        source: "BENCH_0004.json",
        value: f64_at(&b4, "BENCH_0004.json", &["campaign", "speedup_fast_forward"])?,
        gate: Gate::Info,
    });
    out.push(SeriesPoint {
        name: "parallel_speedup_stall",
        source: "BENCH_0004.json",
        value: f64_at(&b4, "BENCH_0004.json", &["stall_campaign", "speedup_parallel"])?,
        gate: Gate::Info,
    });

    let b5 = read_json(dir, "BENCH_0005.json")?;
    let rows =
        b5.get("rows").and_then(|v| v.as_array()).ok_or("BENCH_0005.json: missing `rows`")?;
    let mut full_rate: Option<f64> = None;
    for row in rows {
        if row.get("hardening").and_then(|h| h.as_str()) == Some("ecc+tmr") {
            let rate = f64_at(row, "BENCH_0005.json", &["recovery_rate"])?;
            full_rate = Some(match full_rate {
                Some(r) => r.min(rate),
                None => rate,
            });
        }
    }
    out.push(SeriesPoint {
        name: "recovery_rate_full_hardening",
        source: "BENCH_0005.json",
        value: full_rate.ok_or("BENCH_0005.json: no `ecc+tmr` rows")?,
        gate: Gate::Floor(0.8),
    });

    let b6 = read_json(dir, "BENCH_0006.json")?;
    let workloads = b6
        .get("workloads")
        .and_then(|v| v.as_array())
        .ok_or("BENCH_0006.json: missing `workloads`")?;
    let mut cycles = 0.0;
    for w in workloads {
        cycles += f64_at(w, "BENCH_0006.json", &["cycles"])?;
    }
    out.push(SeriesPoint {
        name: "hotspot_total_cycles",
        source: "BENCH_0006.json",
        value: cycles,
        gate: Gate::Info,
    });

    let b7 = read_json(dir, "BENCH_0007.json")?;
    let journal_bytes = f64_at(&b7, "BENCH_0007.json", &["campaign", "journal_bytes"])?;
    let trials = f64_at(&b7, "BENCH_0007.json", &["trials"])?;
    if trials <= 0.0 {
        return Err("BENCH_0007.json: non-positive `trials`".into());
    }
    out.push(SeriesPoint {
        name: "durable_journal_bytes_per_trial",
        source: "BENCH_0007.json",
        value: journal_bytes / trials,
        gate: Gate::Ceiling(1.25),
    });

    let b9 = read_json(dir, "BENCH_0009.json")?;
    out.push(SeriesPoint {
        name: "translated_cycles_per_sec",
        source: "BENCH_0009.json",
        value: f64_at(&b9, "BENCH_0009.json", &["iss", "translated", "cycles_per_sec"])?,
        gate: Gate::Floor(0.8),
    });
    out.push(SeriesPoint {
        name: "translate_speedup",
        source: "BENCH_0009.json",
        value: f64_at(&b9, "BENCH_0009.json", &["best_speedup"])?,
        gate: Gate::Info,
    });

    let b10 = read_json(dir, "BENCH_0010.json")?;
    out.push(SeriesPoint {
        name: "serve_jobs_per_sec",
        source: "BENCH_0010.json",
        value: f64_at(&b10, "BENCH_0010.json", &["jobs_per_sec"])?,
        gate: Gate::Floor(0.8),
    });
    out.push(SeriesPoint {
        name: "serve_cache_hit_rate",
        source: "BENCH_0010.json",
        value: f64_at(&b10, "BENCH_0010.json", &["cache_hit_rate"])?,
        gate: Gate::Floor(0.8),
    });
    out.push(SeriesPoint {
        name: "serve_shed_rate",
        source: "BENCH_0010.json",
        value: f64_at(&b10, "BENCH_0010.json", &["shed_rate"])?,
        gate: Gate::Info,
    });

    Ok(out)
}

/// Renders a series list as the `BENCH_TRAJECTORY.json` document.
pub fn trajectory_json(series: &[SeriesPoint]) -> String {
    let entries: Vec<String> = series
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":\"{}\",\"source\":\"{}\",\"value\":{},\"gate\":\"{}\",\"factor\":{}}}",
                p.name,
                p.source,
                json_f64(p.value),
                p.gate.kind(),
                json_f64(p.gate.factor()),
            )
        })
        .collect();
    let sources: Vec<String> = TRAJECTORY_SOURCES.iter().map(|s| format!("\"{s}\"")).collect();
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_TRAJECTORY\",\
         \"description\":\"headline performance-trajectory series aggregated from the \
         committed BENCH records; floors/ceilings gate regressions in CI\",\
         \"sources\":[{}],\"series\":[{}]}}\n",
        sources.join(","),
        entries.join(","),
    )
}

/// Extracts from `dir` and writes `BENCH_TRAJECTORY.json` (or `out`).
pub fn write_trajectory(dir: &Path, out: &Path) -> Result<(), String> {
    let series = extract(dir)?;
    std::fs::write(out, trajectory_json(&series)).map_err(|e| format!("{}: {e}", out.display()))
}

/// Gates freshly extracted series (from the BENCH files in `dir`)
/// against the committed trajectory record. Returns the per-series
/// report text on success; on any gate violation (or missing series)
/// returns it as the error. Ungated (`info`) series are reported but
/// never fail.
pub fn gate(dir: &Path, committed: &Path) -> Result<String, String> {
    let fresh = extract(dir)?;
    let text =
        std::fs::read_to_string(committed).map_err(|e| format!("{}: {e}", committed.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", committed.display()))?;
    let series = doc
        .get("series")
        .and_then(|v| v.as_array())
        .ok_or("committed trajectory: missing `series`")?;
    let mut report = String::from("trajectory gate (fresh vs committed):\n");
    let mut failures = 0usize;
    for entry in series {
        let name = entry
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("committed trajectory: series entry without `name`")?;
        let committed_value = entry
            .get("value")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("committed trajectory: `{name}` has no value"))?;
        let kind = entry.get("gate").and_then(|g| g.as_str()).unwrap_or("info");
        let factor = entry.get("factor").and_then(|f| f.as_f64()).unwrap_or(0.0);
        let Some(point) = fresh.iter().find(|p| p.name == name) else {
            report.push_str(&format!("  FAIL {name}: missing from fresh extraction\n"));
            failures += 1;
            continue;
        };
        let (ok, bound) = match kind {
            "floor" => (point.value >= factor * committed_value, factor * committed_value),
            "ceiling" => (point.value <= factor * committed_value, factor * committed_value),
            _ => (true, committed_value),
        };
        let verdict = if ok { "ok  " } else { "FAIL" };
        if !ok {
            failures += 1;
        }
        report.push_str(&format!(
            "  {verdict} {name}: fresh {:.6e} vs committed {:.6e} ({kind} {:.6e})\n",
            point.value, committed_value, bound,
        ));
    }
    // The reverse direction: a freshly extracted gated series that the
    // committed record does not know about means the record is stale —
    // a new floor/ceiling would silently go ungated until regenerated.
    let committed_names: Vec<&str> =
        series.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
    for point in &fresh {
        if matches!(point.gate, Gate::Info) || committed_names.contains(&point.name) {
            continue;
        }
        report.push_str(&format!(
            "  FAIL {}: gated series missing from the committed record — regenerate \
             {TRAJECTORY_FILE}\n",
            point.name,
        ));
        failures += 1;
    }
    if failures > 0 {
        report.push_str(&format!("  {failures} series regressed\n"));
        Err(report)
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
    }

    #[test]
    fn committed_trajectory_is_fresh() {
        let series = extract(&repo_root()).expect("extraction from committed BENCH files");
        let fresh = trajectory_json(&series);
        let committed = std::fs::read_to_string(repo_root().join(TRAJECTORY_FILE))
            .expect("BENCH_TRAJECTORY.json must be committed");
        assert_eq!(
            fresh, committed,
            "BENCH_TRAJECTORY.json is stale — regenerate with \
             `cargo run --release -p softsim-bench --bin tables -- --trajectory`"
        );
    }

    #[test]
    fn committed_record_passes_its_own_gate() {
        let report = gate(&repo_root(), &repo_root().join(TRAJECTORY_FILE))
            .expect("committed record must pass against itself");
        assert!(report.contains("iss_cycles_per_sec"));
        assert!(!report.contains("FAIL"));
    }

    #[test]
    fn gate_fails_on_regression() {
        // Committed trajectory with an inflated floor value: the real
        // BENCH files can't reach 10x the committed iss throughput.
        let series = extract(&repo_root()).unwrap();
        let mut inflated = series.clone();
        for p in &mut inflated {
            if p.name == "iss_cycles_per_sec" {
                p.value *= 10.0;
            }
        }
        let dir =
            std::env::temp_dir().join(format!("softsim_trajectory_gate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let committed = dir.join(TRAJECTORY_FILE);
        std::fs::write(&committed, trajectory_json(&inflated)).unwrap();
        let err = gate(&repo_root(), &committed).expect_err("10x floor must fail");
        assert!(err.contains("FAIL iss_cycles_per_sec"), "unexpected report: {err}");
        assert!(err.contains("series regressed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extraction_is_deterministic_and_gated_series_present() {
        let a = extract(&repo_root()).unwrap();
        let b = extract(&repo_root()).unwrap();
        assert_eq!(a, b);
        for name in [
            "iss_cycles_per_sec",
            "fast_forward_speedup_stall",
            "recovery_rate_full_hardening",
            "translated_cycles_per_sec",
            "serve_jobs_per_sec",
            "serve_cache_hit_rate",
        ] {
            let p = a.iter().find(|p| p.name == name).expect(name);
            assert!(matches!(p.gate, Gate::Floor(f) if f > 0.0), "{name} must be floor-gated");
        }
        let j = a.iter().find(|p| p.name == "durable_journal_bytes_per_trial").unwrap();
        assert!(matches!(j.gate, Gate::Ceiling(f) if f > 1.0));
    }

    /// Writes `series` as a committed trajectory file in a fresh temp
    /// dir and runs the gate against it, cleaning up afterwards.
    fn gate_against(series: &[SeriesPoint], tag: &str) -> Result<String, String> {
        let dir =
            std::env::temp_dir().join(format!("softsim_trajectory_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let committed = dir.join(TRAJECTORY_FILE);
        std::fs::write(&committed, trajectory_json(series)).unwrap();
        let result = gate(&repo_root(), &committed);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    #[test]
    fn gate_fails_when_committed_series_vanishes_from_fresh_extraction() {
        // A committed record naming a gated series the extractor no
        // longer produces must fail, not silently shrink coverage.
        let mut series = extract(&repo_root()).unwrap();
        for p in &mut series {
            if p.name == "iss_cycles_per_sec" {
                p.name = "renamed_out_from_under_the_gate";
            }
        }
        let err = gate_against(&series, "vanished").expect_err("unknown committed series");
        assert!(
            err.contains("FAIL renamed_out_from_under_the_gate: missing from fresh extraction"),
            "unexpected report: {err}"
        );
    }

    #[test]
    fn gate_fails_when_fresh_gated_series_missing_from_committed_record() {
        // The reverse direction: the committed record predates a newly
        // added floor-gated series (exactly how BENCH_0009 lands) — the
        // gate must demand regeneration instead of skipping the floor.
        let series: Vec<SeriesPoint> = extract(&repo_root())
            .unwrap()
            .into_iter()
            .filter(|p| p.name != "translated_cycles_per_sec")
            .collect();
        let err = gate_against(&series, "stale").expect_err("stale committed record");
        assert!(
            err.contains("FAIL translated_cycles_per_sec: gated series missing"),
            "unexpected report: {err}"
        );
        // Info series are exempt: dropping one must not fail the gate.
        let without_info: Vec<SeriesPoint> = extract(&repo_root())
            .unwrap()
            .into_iter()
            .filter(|p| p.name != "translate_speedup")
            .collect();
        gate_against(&without_info, "info").expect("info series are never demanded");
    }
}
