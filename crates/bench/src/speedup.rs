//! The `BENCH_0004` speedup record: stall fast-forwarding and the
//! parallel sweep engine against the plain serial baseline.
//!
//! Three runs of the same 120-trial CORDIC fault campaign — serial with
//! fast-forwarding off, serial with fast-forwarding on, and the
//! parallel runner (fast-forwarding on) — are timed wall-clock and
//! asserted to produce byte-identical reports, so every speedup in the
//! JSON is backed by an equivalence check, not just a stopwatch. The
//! same triple is timed on the FSL-stall-heavy stuck-flag campaign
//! (every trial deadlocks, the case fast-forwarding exists for), and a
//! final section times the Figure 5 DSE sweep serial vs parallel. The
//! numbers are machine-dependent (like `BENCH_0003.json`); the report
//! equality is not.

use crate::faults::{
    cordic_campaign_parallel, cordic_campaign_with, cordic_stuck_campaign,
    cordic_stuck_campaign_parallel, default_workers, REPORT_SEED, REPORT_TRIALS,
};
use crate::tables::{figure5_with, json_f64};
use softsim_resilience::CampaignConfig;
use std::time::Instant;

/// Wall-clock seconds `f` takes, with its result.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64(), r)
}

/// The machine-readable `BENCH_0004` record as a JSON string.
///
/// # Panics
/// Panics if the three campaign runs or the two sweep runs disagree on
/// any result — wall-clock without equivalence is meaningless here.
pub fn speedup_json() -> String {
    let workers = default_workers();
    let stepped = CampaignConfig { fast_forward: false, ..CampaignConfig::default() };
    let (serial_s, serial) = timed(|| cordic_campaign_with(REPORT_SEED, REPORT_TRIALS, stepped));
    let (ff_s, ff) =
        timed(|| cordic_campaign_with(REPORT_SEED, REPORT_TRIALS, CampaignConfig::default()));
    let (par_s, par) = timed(|| cordic_campaign_parallel(REPORT_SEED, REPORT_TRIALS, workers));
    assert_eq!(serial, ff, "fast-forwarding must not change the campaign report");
    assert_eq!(serial, par, "the parallel runner must not change the campaign report");

    let (stuck_serial_s, stuck_serial) = timed(|| cordic_stuck_campaign(REPORT_TRIALS, stepped));
    let (stuck_ff_s, stuck_ff) =
        timed(|| cordic_stuck_campaign(REPORT_TRIALS, CampaignConfig::default()));
    let (stuck_par_s, stuck_par) = timed(|| cordic_stuck_campaign_parallel(REPORT_TRIALS, workers));
    assert_eq!(stuck_serial, stuck_ff, "fast-forwarding must not change the stuck-fault report");
    assert_eq!(
        stuck_serial, stuck_par,
        "the parallel runner must not change the stuck-fault report"
    );

    let (sweep_serial_s, sweep_serial) = timed(|| figure5_with(1));
    let (sweep_par_s, sweep_par) = timed(|| figure5_with(workers));
    let sweep_cycles: Vec<u64> = sweep_serial.iter().map(|q| q.cycles).collect();
    assert_eq!(
        sweep_cycles,
        sweep_par.iter().map(|q| q.cycles).collect::<Vec<u64>>(),
        "the parallel sweep must reproduce the serial cycle counts"
    );

    let ratio = |base: f64, opt: f64| json_f64(base / opt.max(1e-12));
    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0004\",\
         \"description\":\"stall fast-forwarding + parallel sweep engine wall-clock vs the serial stepped baseline\",\
         \"workers\":{workers},\
         \"campaign\":{{\"workload\":\"cordic fault campaign\",\"trials\":{REPORT_TRIALS},\
         \"serial\":{{\"wall_seconds\":{}}},\
         \"fast_forward\":{{\"wall_seconds\":{}}},\
         \"parallel\":{{\"wall_seconds\":{}}},\
         \"speedup_fast_forward\":{},\"speedup_parallel\":{},\
         \"reports_identical\":true}},\
         \"stall_campaign\":{{\"workload\":\"cordic stuck-flag campaign (every trial deadlocks)\",\"trials\":{REPORT_TRIALS},\
         \"serial\":{{\"wall_seconds\":{}}},\
         \"fast_forward\":{{\"wall_seconds\":{}}},\
         \"parallel\":{{\"wall_seconds\":{}}},\
         \"speedup_fast_forward\":{},\"speedup_parallel\":{},\
         \"reports_identical\":true}},\
         \"sweep\":{{\"workload\":\"figure5 cordic DSE grid\",\"points\":{},\
         \"serial\":{{\"wall_seconds\":{}}},\
         \"parallel\":{{\"wall_seconds\":{}}},\
         \"speedup\":{},\"points_identical\":true}}}}\n",
        json_f64(serial_s),
        json_f64(ff_s),
        json_f64(par_s),
        ratio(serial_s, ff_s),
        ratio(serial_s, par_s),
        json_f64(stuck_serial_s),
        json_f64(stuck_ff_s),
        json_f64(stuck_par_s),
        ratio(stuck_serial_s, stuck_ff_s),
        ratio(stuck_serial_s, stuck_par_s),
        sweep_cycles.len(),
        json_f64(sweep_serial_s),
        json_f64(sweep_par_s),
        ratio(sweep_serial_s, sweep_par_s),
    )
}

/// Writes [`speedup_json`] to `path`.
pub fn write_speedup_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, speedup_json())
}

#[cfg(test)]
mod tests {
    use softsim_trace::json::parse;

    #[test]
    fn speedup_json_is_well_formed_with_required_keys() {
        let doc = parse(&super::speedup_json()).expect("valid json");
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), "softsim-bench/1");
        assert_eq!(doc.get("bench_id").unwrap().as_str().unwrap(), "BENCH_0004");
        for section in ["campaign", "stall_campaign"] {
            let campaign = doc.get(section).unwrap();
            for key in ["serial", "fast_forward", "parallel"] {
                let wall = campaign.get(key).unwrap().get("wall_seconds").unwrap();
                assert!(wall.as_f64().unwrap() >= 0.0);
            }
            assert!(campaign.get("speedup_fast_forward").unwrap().as_f64().unwrap() > 0.0);
            assert!(campaign.get("speedup_parallel").unwrap().as_f64().unwrap() > 0.0);
        }
        let sweep = doc.get("sweep").unwrap();
        assert!(sweep.get("points").unwrap().as_f64().unwrap() > 0.0);
        assert!(sweep.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }
}
