//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function returns structured rows plus a formatted text block; the
//! `tables` binary prints them and `EXPERIMENTS.md` records paper-vs-
//! measured values.

use crate::measure::{self, SimTiming};
use crate::workloads::{self, CORDIC_ITERS, CORDIC_PS, MATMUL_NS, MATMUL_TABLE_N};
use softsim_apps::cordic::hardware::pipeline_resources;
use softsim_apps::matmul::hardware::unit_resources;
use softsim_blocks::Resources;
use softsim_cosim::{CoSimStop, PAPER_CLOCK_HZ};
use softsim_resource::{actual_from_primitives, estimate_system, DataSheet, SystemConfig};
use std::fmt::Write as _;

/// One point of Figure 5: CORDIC execution time vs P.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Requested iteration count (8 or 24).
    pub iterations: u32,
    /// PEs in the pipeline (0 = pure software).
    pub p: usize,
    /// Application cycles at 50 MHz.
    pub cycles: u64,
    /// Execution time in µs.
    pub time_us: f64,
}

/// Regenerates Figure 5: time performance of the CORDIC divider. The
/// grid points are independent co-simulations, swept on worker threads
/// (see [`crate::sweep::parallel_map`]); the result order — and hence
/// the rendered text — matches the serial sweep exactly.
pub fn figure5() -> Vec<Fig5Point> {
    figure5_with(crate::sweep::default_workers())
}

/// [`figure5`] with an explicit worker-thread count (1 = serial); the
/// speedup bench compares the two.
pub fn figure5_with(workers: usize) -> Vec<Fig5Point> {
    let mut grid = Vec::new();
    for &iters in &CORDIC_ITERS {
        for p in std::iter::once(0).chain(CORDIC_PS) {
            grid.push((iters, p));
        }
    }
    crate::sweep::parallel_map(grid, workers, |(iters, p)| {
        let mut sim = workloads::cordic_cosim(iters, (p > 0).then_some(p));
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let cycles = sim.cpu_stats().cycles;
        Fig5Point { iterations: iters, p, cycles, time_us: cycles as f64 / PAPER_CLOCK_HZ * 1e6 }
    })
}

/// Formats Figure 5 as text.
pub fn figure5_text() -> String {
    let pts = figure5();
    let mut out = String::from(
        "Figure 5: CORDIC division time vs P (P = 0 is pure software), 50 MHz\n\
         iters  P   cycles     time(us)   speedup-vs-SW\n",
    );
    for &iters in &CORDIC_ITERS {
        let sw = pts.iter().find(|q| q.iterations == iters && q.p == 0).unwrap().cycles;
        for q in pts.iter().filter(|q| q.iterations == iters) {
            let _ = writeln!(
                out,
                "{:>5} {:>2}  {:>8}   {:>8.2}   {:>6.2}x",
                q.iterations,
                q.p,
                q.cycles,
                q.time_us,
                sw as f64 / q.cycles as f64
            );
        }
    }
    out
}

/// One point of Figure 7: matmul execution time vs matrix size.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Matrix dimension N.
    pub n: usize,
    /// Block size (0 = pure software).
    pub nb: usize,
    /// Application cycles.
    pub cycles: u64,
    /// Execution time in µs.
    pub time_us: f64,
}

/// Regenerates Figure 7: block matmul time vs N for pure SW / 2×2 /
/// 4×4, swept on worker threads in input order like [`figure5`].
pub fn figure7() -> Vec<Fig7Point> {
    figure7_with(crate::sweep::default_workers())
}

/// [`figure7`] with an explicit worker-thread count (1 = serial).
pub fn figure7_with(workers: usize) -> Vec<Fig7Point> {
    let mut grid = Vec::new();
    for &n in &MATMUL_NS {
        for nb in [0usize, 2, 4] {
            if nb != 0 && n % nb != 0 {
                continue;
            }
            grid.push((n, nb));
        }
    }
    crate::sweep::parallel_map(grid, workers, |(n, nb)| {
        let mut sim = workloads::matmul_cosim(n, (nb > 0).then_some(nb));
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let cycles = sim.cpu_stats().cycles;
        Fig7Point { n, nb, cycles, time_us: cycles as f64 / PAPER_CLOCK_HZ * 1e6 }
    })
}

/// Formats Figure 7 as text.
pub fn figure7_text() -> String {
    let pts = figure7();
    let mut out = String::from(
        "Figure 7: block matrix multiplication time vs N, 50 MHz\n\
         N    variant   cycles      time(us)    vs-SW\n",
    );
    for q in &pts {
        let sw = pts.iter().find(|r| r.n == q.n && r.nb == 0).unwrap().cycles;
        let variant = match q.nb {
            0 => "pure SW".to_string(),
            nb => format!("{nb}x{nb} blk"),
        };
        let _ = writeln!(
            out,
            "{:>3}  {:<8}  {:>9}   {:>9.2}   {:>5.2}x",
            q.n,
            variant,
            q.cycles,
            q.time_us,
            sw as f64 / q.cycles as f64
        );
    }
    out
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Design description (matches the paper's rows).
    pub design: String,
    /// Estimated resources (§III-C estimator).
    pub estimated: Resources,
    /// Actual resources (RTL elaboration).
    pub actual: Resources,
    /// Co-simulation wall time.
    pub cosim: SimTiming,
    /// Low-level (RTL) wall time for the same workload.
    pub rtl: SimTiming,
}

impl Table1Row {
    /// Simulation-time speedup of the co-simulator over the RTL baseline.
    pub fn sim_speedup(&self) -> f64 {
        self.rtl.seconds() / self.cosim.seconds().max(1e-12)
    }
}

/// Regenerates Table I: resources and simulation times for the four
/// CORDIC configurations and the two matmul configurations.
///
/// `repeats` scales the simulated workload so wall times are measurable.
pub fn table1(repeats: u32) -> Vec<Table1Row> {
    let sheet = DataSheet::default();
    let mut rows = Vec::new();
    for &p in &CORDIC_PS {
        let image = workloads::cordic_hw_image(24, p);
        let estimated = estimate_system(
            &SystemConfig { program: &image, peripheral: pipeline_resources(p), fsl_channels: 1 },
            &sheet,
        );
        let actual = actual_from_primitives(workloads::cordic_rtl(24, Some(p)).kernel.primitives());
        let cosim = measure::time_cosim(|| workloads::cordic_cosim_long(24, Some(p)), repeats);
        let rtl = measure::time_rtl(|| workloads::cordic_rtl_long(24, Some(p)), repeats);
        rows.push(Table1Row {
            design: format!("24-iter CORDIC division, P = {p}"),
            estimated,
            actual,
            cosim,
            rtl,
        });
    }
    for nb in [2usize, 4] {
        let n = MATMUL_TABLE_N;
        let image = workloads::matmul_image(n, Some(nb));
        let estimated = estimate_system(
            &SystemConfig { program: &image, peripheral: unit_resources(nb), fsl_channels: 1 },
            &sheet,
        );
        let actual =
            actual_from_primitives(workloads::matmul_rtl_sys(n, Some(nb)).kernel.primitives());
        let cosim = measure::time_cosim(|| workloads::matmul_cosim(n, Some(nb)), repeats);
        let rtl = measure::time_rtl(|| workloads::matmul_rtl_sys(n, Some(nb)), repeats);
        rows.push(Table1Row {
            design: format!("{n}x{n} matmul, {nb}x{nb} blocks"),
            estimated,
            actual,
            cosim,
            rtl,
        });
    }
    rows
}

/// Formats Table I as text.
pub fn table1_text(repeats: u32) -> String {
    let rows = table1(repeats);
    let mut out = String::from(
        "Table I: resources (estimated/actual) and cycle-accurate simulation time\n\
         design                              slices      BRAM  mult  cosim(s)  rtl(s)  speedup\n",
    );
    let mut speedups = Vec::new();
    for r in &rows {
        speedups.push(r.sim_speedup());
        let _ = writeln!(
            out,
            "{:<34} {:>5}/{:<5}  {:>2}/{:<2}  {:>2}/{:<2}  {:>7.3}  {:>7.3}  {:>5.1}x",
            r.design,
            r.estimated.slices,
            r.actual.slices,
            r.estimated.brams,
            r.actual.brams,
            r.estimated.mult18s,
            r.actual.mult18s,
            r.cosim.seconds(),
            r.rtl.seconds(),
            r.sim_speedup()
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let (min, max) =
        speedups.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    let _ = writeln!(
        out,
        "simulation speedups: {min:.1}x .. {max:.1}x, average {avg:.1}x \
         (paper: 5.6x .. 19.4x, averages 12.8x / 13x / 15.1x)"
    );
    out
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Simulator name.
    pub simulator: &'static str,
    /// Simulated clock cycles per wall second.
    pub cycles_per_sec: f64,
}

/// Regenerates Table II: raw simulation speeds of the component
/// simulators on the CORDIC division workload.
pub fn table2() -> Vec<Table2Row> {
    let img = workloads::cordic_sw_image(24);
    let iss = measure::time_iss_alone(&img, 100);
    let blocks =
        measure::time_blocks_alone(softsim_apps::cordic::hardware::cordic_graph(4), 500_000);
    let rtl = measure::time_rtl(|| workloads::cordic_rtl_long(24, Some(4)), 2);
    let cosim = measure::time_cosim(|| workloads::cordic_cosim_long(24, Some(4)), 5);
    vec![
        Table2Row {
            simulator: "instruction simulator (ISS alone)",
            cycles_per_sec: iss.cycles_per_sec(),
        },
        Table2Row {
            simulator: "block simulator (HW peripheral only)",
            cycles_per_sec: blocks.cycles_per_sec(),
        },
        Table2Row {
            simulator: "co-simulation (ISS + blocks + FSL)",
            cycles_per_sec: cosim.cycles_per_sec(),
        },
        Table2Row {
            simulator: "low-level behavioral RTL (baseline)",
            cycles_per_sec: rtl.cycles_per_sec(),
        },
    ]
}

/// Formats Table II as text.
pub fn table2_text() -> String {
    let rows = table2();
    let rtl = rows.last().unwrap().cycles_per_sec;
    let mut out = String::from(
        "Table II: simulation speeds on the CORDIC division application\n\
         simulator                              cycles/sec     vs RTL\n",
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<38} {:>11.0}   {:>7.1}x",
            r.simulator,
            r.cycles_per_sec,
            r.cycles_per_sec / rtl
        );
    }
    out.push_str("(paper: instr. simulator 1.9e5, Simulink 1.4e4, ModelSim 2.3e3 cycles/sec)\n");
    out
}

/// Ablation: the same CORDIC pipeline attached over a dedicated FSL vs
/// the shared, polled OPB (the two bus protocols of §III-A).
pub fn ablation_fsl_vs_opb_text() -> String {
    use softsim_apps::cordic::opb::opb_cosim;
    let batch = workloads::cordic_batch();
    let mut out = String::from(
        "Ablation: FSL vs OPB attachment of the CORDIC pipeline (24 iterations)\n\
         P   FSL cycles   OPB cycles   OPB/FSL\n",
    );
    for &p in &CORDIC_PS {
        let mut fsl = workloads::cordic_cosim(24, Some(p));
        assert_eq!(fsl.run(u64::MAX / 2), CoSimStop::Halted);
        let (mut opb, _) = opb_cosim(&batch, 24, p);
        assert_eq!(opb.run(u64::MAX / 2), CoSimStop::Halted);
        let (f, o) = (fsl.cpu_stats().cycles, opb.cpu_stats().cycles);
        let _ = writeln!(out, "{p}   {f:>10}   {o:>10}   {:>6.2}x", o as f64 / f as f64);
    }
    out.push_str("(dedicated point-to-point FIFOs beat the shared polled bus at every P)\n");
    out
}

/// Ablation: the soft-processor configuration dimension — pure-software
/// CORDIC vs the FSL pipeline vs a divider-equipped processor, each with
/// its resource bill.
pub fn ablation_configurations_text() -> String {
    use softsim_apps::cordic::divider::idiv_program;
    use softsim_apps::cordic::software::{sw_program, SwStyle};
    use softsim_cosim::CoSim;
    use softsim_isa::asm::assemble;
    use softsim_isa::CpuConfig;

    let batch = workloads::cordic_batch();
    let mut out = String::from(
        "Ablation: processor configurations for Q8.24 division (batch of 8)\n\
         design                        cycles   time(us)   slices  mult18\n",
    );
    let mut row = |name: &str, cycles: u64, res: Resources| {
        let _ = writeln!(
            out,
            "{name:<28} {cycles:>8} {:>9.2} {:>8} {:>7}",
            cycles as f64 / PAPER_CLOCK_HZ * 1e6,
            res.slices,
            res.mult18s
        );
    };
    // Pure software CORDIC, default configuration.
    {
        let img = assemble(&sw_program(&batch, 24, SwStyle::Compiled)).unwrap();
        let mut sim = CoSim::software_only(&img);
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let res = estimate_system(
            &SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 },
            &DataSheet::default(),
        );
        row("SW CORDIC (default CPU)", sim.cpu_stats().cycles, res);
    }
    // FSL CORDIC pipeline, P = 4.
    {
        let img = workloads::cordic_hw_image(24, 4);
        let mut sim = workloads::cordic_cosim(24, Some(4));
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let res = estimate_system(
            &SystemConfig { program: &img, peripheral: pipeline_resources(4), fsl_channels: 1 },
            &DataSheet::default(),
        );
        row("CORDIC pipeline, P=4", sim.cpu_stats().cycles, res);
    }
    // Divider-equipped processor, no peripheral.
    {
        let img = assemble(&idiv_program(&batch)).unwrap();
        let mut sim = CoSim::with_config(&img, CpuConfig::full(), None);
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let res = estimate_system(
            &SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 },
            &DataSheet::for_config(&CpuConfig::full()),
        );
        row("divider option (idiv)", sim.cpu_stats().cycles, res);
    }
    out.push_str(
        "(the co-simulation environment exposes all three corners of the\n configuration space in seconds — the paper's design-exploration pitch)\n",
    );
    out
}

/// The serial-recursion study: the Levinson-Durbin weight update with
/// each division strategy (the paper's §I argument, quantified).
pub fn lpc_text() -> String {
    use softsim_apps::lpc::reference::test_autocorrelation;
    use softsim_apps::lpc::software::{lpc_cosim, LpcDivision};
    let r = test_autocorrelation(6);
    let mut out = String::from(
        "Levinson-Durbin weight update (order 6): division-strategy cycles\n\
         strategy               cycles   time(us)\n",
    );
    for div in [
        LpcDivision::CordicSw,
        LpcDivision::CordicFsl(4),
        LpcDivision::CordicFsl(8),
        LpcDivision::Idiv,
    ] {
        let (mut sim, _) = lpc_cosim(&r, div);
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let c = sim.cpu_stats().cycles;
        let _ = writeln!(
            out,
            "{:<22} {:>7} {:>9.2}",
            format!("{div:?}"),
            c,
            c as f64 / PAPER_CLOCK_HZ * 1e6
        );
    }
    out.push_str(
        "(serial data dependence caps the FSL pipeline's gain at ~1.6x vs the\n batched 3.7x of Figure 5 — the paper's §I claim, quantified)\n",
    );
    // The §I counterpart: the data-parallel FIR filter, where offload
    // shines and grows with tap count.
    out.push_str("\nFIR filtering (40 samples): the data-parallel counterpart\n");
    out.push_str("taps   SW cycles   HW cycles   speedup\n");
    {
        use softsim_apps::fir::reference::test_signal;
        use softsim_apps::fir::software::fir_cosim;
        let input = test_signal(40, 3);
        for t in [4usize, 8, 16] {
            let taps: Vec<i32> = (1..=t as i32).collect();
            let mut cycles = [0u64; 2];
            for (slot, hw) in [(0, false), (1, true)] {
                let (mut sim, _) = fir_cosim(&taps, &input, hw);
                assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
                cycles[slot] = sim.cpu_stats().cycles;
            }
            let _ = writeln!(
                out,
                "{t:>4} {:>11} {:>11} {:>8.2}x",
                cycles[0],
                cycles[1],
                cycles[0] as f64 / cycles[1] as f64
            );
        }
    }
    out.push_str("(every tap multiplies in parallel: gains grow with tap count)\n");
    out
}

/// Writes Figure 5 and Figure 7 as CSV files into `dir`, for external
/// plotting.
pub fn write_csvs(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut fig5 = String::from("iterations,p,cycles,time_us\n");
    for q in figure5() {
        let _ = writeln!(fig5, "{},{},{},{}", q.iterations, q.p, q.cycles, q.time_us);
    }
    std::fs::write(dir.join("fig5_cordic.csv"), fig5)?;
    let mut fig7 = String::from("n,block,cycles,time_us\n");
    for q in figure7() {
        let _ = writeln!(fig7, "{},{},{},{}", q.n, q.nb, q.cycles, q.time_us);
    }
    std::fs::write(dir.join("fig7_matmul.csv"), fig7)?;
    Ok(())
}

/// The quantitative claims of §IV, recomputed.
pub fn claims_text() -> String {
    let mut out = String::from("Section IV claims, recomputed:\n");
    // CORDIC: P=4, 24 iterations vs pure software.
    let pts = figure5();
    let sw = pts.iter().find(|q| q.iterations == 24 && q.p == 0).unwrap();
    let p4 = pts.iter().find(|q| q.iterations == 24 && q.p == 4).unwrap();
    let sheet = DataSheet::default();
    let sw_img = workloads::cordic_sw_image(24);
    let sw_res = estimate_system(
        &SystemConfig { program: &sw_img, peripheral: Resources::ZERO, fsl_channels: 0 },
        &sheet,
    );
    let hw_img = workloads::cordic_hw_image(24, 4);
    let hw_res = estimate_system(
        &SystemConfig { program: &hw_img, peripheral: pipeline_resources(4), fsl_channels: 1 },
        &sheet,
    );
    let _ = writeln!(
        out,
        "  CORDIC 24-iter, P=4: {:.2}x speedup at +{} slices (+{:.0}%)  [paper: 5.6x, +280 (+30%)]",
        sw.cycles as f64 / p4.cycles as f64,
        hw_res.slices - sw_res.slices,
        (hw_res.slices - sw_res.slices) as f64 / sw_res.slices as f64 * 100.0
    );
    // Matmul: 16×16, 4×4 and 2×2 blocks vs pure software.
    let pts = figure7();
    let n = MATMUL_TABLE_N;
    let sw = pts.iter().find(|q| q.n == n && q.nb == 0).unwrap();
    let b4 = pts.iter().find(|q| q.n == n && q.nb == 4).unwrap();
    let b2 = pts.iter().find(|q| q.n == n && q.nb == 2).unwrap();
    let _ = writeln!(
        out,
        "  matmul {n}x{n}, 4x4 blocks: {:.2}x speedup   [paper: 2.2x]",
        sw.cycles as f64 / b4.cycles as f64
    );
    let _ = writeln!(
        out,
        "  matmul {n}x{n}, 2x2 blocks: {:+.1}% execution time [paper: +8.8%]",
        (b2.cycles as f64 / sw.cycles as f64 - 1.0) * 100.0
    );
    out
}

/// Runs the CORDIC `P = 4`, 24-iteration co-simulation with the full
/// observability stack attached and renders the profile: hot PCs,
/// instruction mix, the stall-attribution cycle breakdown, FIFO
/// high-water marks and the gateway traffic — everything `softsim-trace`
/// collects, reconciled against the ISS's own counters.
pub fn profile_text() -> String {
    use softsim_trace::{shared, Fanout, FifoDir, Profile, Timeline};
    use std::cell::RefCell;
    use std::rc::Rc;

    let profile = Rc::new(RefCell::new(Profile::new()));
    let timeline = Rc::new(RefCell::new(Timeline::new()));
    let fanout = Fanout::new().with(shared(profile.clone())).with(shared(timeline.clone()));

    let mut sim = workloads::cordic_cosim(24, Some(4));
    sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

    let stats = sim.cpu_stats();
    let profile = profile.borrow();
    let timeline = timeline.borrow();
    let breakdown = profile.breakdown();
    assert_eq!(
        breakdown.total, stats.cycles,
        "trace must reconcile exactly with the ISS cycle counter"
    );

    let mut out = String::from("Profile: CORDIC division, 24 iterations, P = 4 pipeline\n\n");
    out.push_str(&profile.report(10));
    let _ = writeln!(
        out,
        "\nFIFO high-water (depth 16): to-hw {} words, from-hw {} words",
        timeline.high_water(FifoDir::ToHw),
        timeline.high_water(FifoDir::FromHw),
    );
    let _ = writeln!(
        out,
        "reconciliation: {} compute + {} FSL-read-stall + {} FSL-write-stall = {} cycles (ISS: {})",
        breakdown.compute,
        breakdown.fsl_read_stall,
        breakdown.fsl_write_stall,
        breakdown.compute + breakdown.fsl_read_stall + breakdown.fsl_write_stall,
        stats.cycles,
    );
    out
}

/// Window width (cycles) of the `--metrics` report.
pub const METRICS_WINDOW: u64 = 256;

/// Runs the CORDIC `P = 4`, 24-iteration co-simulation with a
/// [`softsim_metrics::MetricsCollector`] (paired with a bounded
/// recorder, so drop accounting is exercised too) and renders both
/// export formats: the cycle-windowed series as a table and the
/// cumulative registry as Prometheus text exposition. Fully
/// deterministic — the run is cycle-exact and the exposition is sorted.
pub fn metrics_text() -> String {
    use softsim_metrics::MetricsCollector;
    use softsim_trace::{shared, Fanout, Recorder};
    use std::cell::RefCell;
    use std::rc::Rc;

    let collector = Rc::new(RefCell::new(MetricsCollector::new(METRICS_WINDOW)));
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 16)));
    let fanout = Fanout::new().with(shared(collector.clone())).with(shared(recorder.clone()));
    let mut sim = workloads::cordic_cosim(24, Some(4));
    sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

    let mut collector = collector.borrow_mut();
    collector.finish(sim.cpu_stats().cycles);
    collector.set_dropped_events(recorder.borrow().dropped());

    let series = collector.series();
    let mut out = format!(
        "Metrics: CORDIC division, 24 iterations, P = 4 pipeline \
         (window = {METRICS_WINDOW} cycles)\n\n\
         windowed series (selected columns):\n\
         win      cycles  instr    ipc  pushes  pops  gw_to  gw_from  reg_w  signature\n"
    );
    for row in &series.rows {
        let v = |name| series.value(row, name).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:>3} {:>5}..{:<5} {:>5} {:>6.2}  {:>6} {:>5}  {:>5}  {:>7}  {:>5}   {:>8.0}",
            row.index,
            row.start,
            row.end,
            v("instructions"),
            v("ipc"),
            v("fifo_pushes"),
            v("fifo_pops"),
            v("gateway_to_hw"),
            v("gateway_from_hw"),
            v("reg_writes"),
            v("data_signature"),
        );
    }
    let _ = writeln!(
        out,
        "(full series: {} windows x {} columns, JSON export via `WindowSeries::to_json`)",
        series.rows.len(),
        series.columns.len()
    );
    out.push_str("\nPrometheus exposition:\n");
    out.push_str(&collector.to_prometheus());
    out
}

/// A JSON number: finite `f64`s render via `Display` (shortest
/// round-trip, never exponent notation); non-finite values are clamped
/// to `0` so the output stays RFC 8259 valid.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

fn json_timing(t: &SimTiming) -> String {
    format!(
        "{{\"wall_seconds\":{},\"sim_cycles\":{},\"cycles_per_sec\":{}}}",
        json_f64(t.seconds()),
        t.sim_cycles,
        json_f64(t.cycles_per_sec())
    )
}

/// The machine-readable benchmark record (`BENCH_0003.json`): wall
/// time, simulated cycles and cycles/sec for the co-simulator vs the
/// RTL baseline on the Table I workloads, plus the Table II component
/// speeds. The schema (key set) is stable; the numbers are wall-clock
/// and therefore machine-dependent.
///
/// `repeats` scales each timed workload, exactly as in [`table1`].
pub fn bench_json(repeats: u32) -> String {
    let mut workload_rows = Vec::new();
    let mut add = |name: &str, cosim: SimTiming, rtl: SimTiming| {
        workload_rows.push(format!(
            "{{\"name\":\"{name}\",\"cosim\":{},\"rtl\":{},\"speedup_vs_rtl\":{}}}",
            json_timing(&cosim),
            json_timing(&rtl),
            json_f64(rtl.seconds() / cosim.seconds().max(1e-12))
        ));
    };
    for &p in &CORDIC_PS {
        add(
            &format!("cordic_24iter_p{p}"),
            measure::time_cosim(|| workloads::cordic_cosim_long(24, Some(p)), repeats),
            measure::time_rtl(|| workloads::cordic_rtl_long(24, Some(p)), repeats),
        );
    }
    for nb in [2usize, 4] {
        let n = MATMUL_TABLE_N;
        add(
            &format!("matmul_{n}x{n}_nb{nb}"),
            measure::time_cosim(|| workloads::matmul_cosim(n, Some(nb)), repeats),
            measure::time_rtl(|| workloads::matmul_rtl_sys(n, Some(nb)), repeats),
        );
    }

    let img = workloads::cordic_sw_image(24);
    let iss = measure::time_iss_alone(&img, 20 * repeats);
    let blocks =
        measure::time_blocks_alone(softsim_apps::cordic::hardware::cordic_graph(4), 100_000);
    let components =
        [("iss_alone", iss.cycles_per_sec()), ("blocks_alone", blocks.cycles_per_sec())]
            .iter()
            .map(|(name, cps)| {
                format!("{{\"name\":\"{name}\",\"cycles_per_sec\":{}}}", json_f64(*cps))
            })
            .collect::<Vec<_>>();

    format!(
        "{{\"schema\":\"softsim-bench/1\",\"bench_id\":\"BENCH_0003\",\
         \"description\":\"co-simulation vs RTL wall-clock speed (Ou & Prasanna, IPDPS 2005, Tables I-II)\",\
         \"clock_hz\":{},\"repeats\":{repeats},\
         \"workloads\":[{}],\"components\":[{}]}}\n",
        json_f64(PAPER_CLOCK_HZ),
        workload_rows.join(","),
        components.join(",")
    )
}

/// Writes [`bench_json`] to `path`.
pub fn write_bench_json(path: &std::path::Path, repeats: u32) -> std::io::Result<()> {
    std::fs::write(path, bench_json(repeats))
}

/// The deterministic record committed as `tables_output.txt`: every
/// cycle-exact section of the evaluation, and nothing wall-clock.
/// Table I's simulation times and Table II's simulator speeds are
/// machine-dependent, so they are deliberately excluded here and live
/// in `BENCH_0003.json` (`tables --bench-json`) instead; a CI test
/// asserts the committed file matches this function's output byte for
/// byte.
pub fn record_text() -> String {
    let mut out = String::from(
        "softsim deterministic record — regenerate with\n\
         `cargo run --release -p softsim-bench --bin tables -- --record`\n\
         Cycle-exact sections only: the wall-clock tables (Table I\n\
         simulation times, Table II simulator speeds) are machine-dependent\n\
         and are recorded in BENCH_0003.json (`tables --bench-json`).\n\n",
    );
    for section in [
        figure5_text(),
        figure7_text(),
        claims_text(),
        profile_text(),
        crate::hotspots::hotspots_text(),
        crate::faults::faults_text(),
        crate::recover::recovery_text(),
        crate::durable::durable_text(),
        ablation_fsl_vs_opb_text(),
        ablation_configurations_text(),
        lpc_text(),
        metrics_text(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape() {
        let pts = figure5();
        // 2 iteration counts × 5 P values.
        assert_eq!(pts.len(), 10);
        for &iters in &CORDIC_ITERS {
            let series: Vec<_> = pts.iter().filter(|q| q.iterations == iters).collect();
            // Hardware monotonically improves with more PEs (allowing the
            // staircase plateau where pass counts coincide).
            for w in series.windows(2) {
                assert!(
                    w[1].cycles <= w[0].cycles,
                    "{iters} iters: P={} ({}) should not be slower than P={} ({})",
                    w[1].p,
                    w[1].cycles,
                    w[0].p,
                    w[0].cycles
                );
            }
        }
        // 24 iterations always cost more than 8 at the same P.
        for p in std::iter::once(0).chain(CORDIC_PS) {
            let c8 = pts.iter().find(|q| q.iterations == 8 && q.p == p).unwrap().cycles;
            let c24 = pts.iter().find(|q| q.iterations == 24 && q.p == p).unwrap().cycles;
            assert!(c24 > c8, "P={p}");
        }
    }

    #[test]
    fn figure7_shape() {
        let pts = figure7();
        for &n in &MATMUL_NS {
            let sw = pts.iter().find(|q| q.n == n && q.nb == 0).unwrap().cycles;
            let b2 = pts.iter().find(|q| q.n == n && q.nb == 2).unwrap().cycles;
            assert!(b2 > sw, "2x2 blocks lose at N={n}");
            if n % 4 == 0 {
                let b4 = pts.iter().find(|q| q.n == n && q.nb == 4).unwrap().cycles;
                assert!(b4 < sw, "4x4 blocks win at N={n}");
            }
        }
    }

    #[test]
    fn table1_estimates_track_actuals() {
        for row in table1(1) {
            let err = softsim_resource::slice_error(row.estimated, row.actual);
            assert!(
                err.abs() < 0.10,
                "{}: estimated {} vs actual {}",
                row.design,
                row.estimated.slices,
                row.actual.slices
            );
            assert!(row.sim_speedup() > 1.0, "{}: co-sim must beat RTL", row.design);
        }
    }

    #[test]
    fn claims_render() {
        let text = claims_text();
        assert!(text.contains("CORDIC 24-iter"));
        assert!(text.contains("4x4 blocks"));
    }

    #[test]
    fn metrics_report_is_deterministic() {
        let a = metrics_text();
        assert_eq!(a, metrics_text(), "metrics report must be cycle-exact");
        assert!(a.contains("softsim_iss_instructions_total"));
        assert!(a.contains("softsim_fsl_occupancy_bucket{le=\"+Inf\"}"));
        assert!(a.contains("softsim_trace_dropped_events 0"));
    }

    #[test]
    fn bench_json_is_well_formed_with_required_keys() {
        let text = bench_json(1);
        let doc = softsim_trace::json::parse(&text).expect("BENCH_0003 must be valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("softsim-bench/1"));
        assert_eq!(doc.get("bench_id").unwrap().as_str(), Some("BENCH_0003"));
        let workloads = doc.get("workloads").unwrap().as_array().unwrap();
        assert_eq!(workloads.len(), 6, "four CORDIC configs + two matmul configs");
        for w in workloads {
            assert!(w.get("name").unwrap().as_str().is_some());
            for sim in ["cosim", "rtl"] {
                let t = w.get(sim).unwrap();
                assert!(t.get("wall_seconds").unwrap().as_f64().unwrap() > 0.0);
                assert!(t.get("sim_cycles").unwrap().as_f64().unwrap() > 0.0);
                assert!(t.get("cycles_per_sec").unwrap().as_f64().unwrap() > 0.0);
            }
            assert!(w.get("speedup_vs_rtl").unwrap().as_f64().is_some());
        }
        assert!(!doc.get("components").unwrap().as_array().unwrap().is_empty());
    }
}
