//! # softsim-bench — the benchmark harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§IV): Figure 5 (CORDIC time vs P), Figure 7 (matmul time vs N),
//! Table I (resources + simulation times) and Table II (raw simulator
//! speeds), plus the quantitative §IV claims.
//!
//! * `cargo run --release -p softsim-bench --bin tables -- --all`
//!   prints everything (see `EXPERIMENTS.md`);
//! * `cargo bench` runs the wall-clock benchmarks (built on the
//!   dependency-free [`harness`]), one per table/figure, plus the
//!   tracing-overhead guard.

#![warn(missing_docs)]

pub mod durable;
pub mod faults;
pub mod harness;
pub mod hotspots;
pub mod measure;
pub mod recover;
pub mod serve;
pub mod speedup;
pub mod sweep;
pub mod tables;
pub mod trajectory;
pub mod translate;
pub mod workloads;
