//! Prints the reproduced tables and figures of the paper.
//!
//! Usage: `tables [--fig5] [--fig7] [--table1] [--table2] [--claims]
//! [--ablation] [--profile] [--faults] [--metrics] [--all]
//! [--csv [DIR]] [--bench-json [PATH]] [--speedup-json [PATH]]
//! [--recovery [PATH]] [--hotspots [PATH]] [--durable-json [PATH]]
//! [--journal [PATH]] [--resume] [--record [PATH]]`
//!
//! Run in release mode — the Table I / Table II rows, `--bench-json`
//! and `--speedup-json` measure wall-clock simulation speed.
//!
//! * `--bench-json` writes the machine-readable benchmark record
//!   (`BENCH_0003.json` by default) — wall times, cycles/sec and
//!   co-sim-vs-RTL speedups.
//! * `--speedup-json` writes the fast-forward / parallel-runner record
//!   (`BENCH_0004.json` by default) — the serial stepped campaign vs
//!   stall fast-forwarding vs the parallel sweep engine, with report
//!   equality asserted before any number is written.
//! * `--recovery` writes the rollback-recovery record
//!   (`BENCH_0005.json` by default) — the hardening matrix (unhardened
//!   / ECC / TMR / both) with per-row recovery rates, cycle-exact and
//!   byte-reproducible, serial-vs-parallel equality asserted first.
//! * `--hotspots` writes the guest-program hotspot record
//!   (`BENCH_0006.json` by default) — per-workload hot basic blocks and
//!   partition-advisor rankings, cycle-exact and byte-reproducible
//!   across machines and `SOFTSIM_SWEEP_WORKERS` values.
//! * `--durable-json` writes the durable-campaign record
//!   (`BENCH_0007.json` by default) — journaled execution with
//!   interrupt-and-resume byte-identity, worker invariance and the
//!   trial-isolation demo, cycle-exact and byte-reproducible.
//! * `--journal [PATH]` (default `target/campaign.ssjl`) switches
//!   `--faults` and `--recovery` to the crash-resumable journaled
//!   runners: every completed trial is appended to the `SSJL` journal
//!   at PATH (`PATH.recovery` for the recovery campaign). Kill the run
//!   at any point, then pass `--resume` to pick up where it died — the
//!   finished report is byte-identical to an uninterrupted run.
//! * `--record` writes the deterministic record (`tables_output.txt` by
//!   default) — every cycle-exact section, no wall-clock numbers — the
//!   file CI asserts is up to date. Set `SOFTSIM_SWEEP_WORKERS=1` to
//!   force the serial sweep path; CI diffs that against the default
//!   parallel one.
//! * `--telemetry [SNAPSHOT]` (default `target/telemetry.prom`) turns
//!   on harness telemetry for the `--faults` campaign: a stderr
//!   progress/ETA heartbeat, a periodically refreshed Prometheus
//!   snapshot file, and a final per-worker utilization summary on
//!   stderr. stdout is untouched — CI byte-diffs it against a
//!   telemetry-off run.
//! * `--translate-json` writes the translated-execution record
//!   (`BENCH_0009.json` by default) — the basic-block ISS fast path vs
//!   the stepped interpreter on compute-heavy software workloads, with
//!   result equality asserted before any number is written.
//! * `--serve-json` writes the simulation-service record
//!   (`BENCH_0010.json` by default) — jobs/sec, cache hit rate and shed
//!   rate under a synthetic overload burst, with cached-report
//!   byte-identity asserted before any number is written.
//! * `--trajectory [PATH]` aggregates the BENCH_0003–0010 records in
//!   the current directory into the committed trajectory record
//!   (`BENCH_TRAJECTORY.json` by default).
//! * `--trajectory-gate [COMMITTED]` re-extracts the same series and
//!   fails (exit 1) if any floor/ceiling-gated series regresses past
//!   its factor vs the committed record.

use softsim_bench::tables;
use softsim_metrics::telemetry::{Telemetry, TelemetryConfig};
use std::time::Duration;

fn main() {
    // Environment is validated eagerly: a malformed override is a
    // configuration error (exit 2) before any table is computed, not a
    // silent fallback mid-run.
    if let Err(e) = softsim_bench::sweep::sweep_workers_from_env() {
        eprintln!("configuration error: {e}");
        std::process::exit(2);
    }
    if let Err(e) = softsim_resilience::abort_after_trials_from_env() {
        eprintln!("configuration error: {e}");
        std::process::exit(2);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    // `--flag [PATH]`: an optional operand that is not itself a flag.
    let operand = |flag: &str, default: &str| {
        args.iter().position(|a| a == flag).map(|pos| {
            args.get(pos + 1)
                .filter(|d| !d.starts_with("--"))
                .map(String::as_str)
                .unwrap_or(default)
                .to_string()
        })
    };

    if want("--fig5") {
        println!("{}", tables::figure5_text());
    }
    if want("--fig7") {
        println!("{}", tables::figure7_text());
    }
    if want("--table1") {
        // Repeat each workload so wall times are well above timer noise.
        println!("{}", tables::table1_text(5));
    }
    if want("--table2") {
        println!("{}", tables::table2_text());
    }
    if want("--claims") {
        println!("{}", tables::claims_text());
    }
    if want("--profile") {
        println!("{}", tables::profile_text());
    }
    let journal = operand("--journal", "target/campaign.ssjl");
    let resume = args.iter().any(|a| a == "--resume");
    // `--telemetry [SNAPSHOT]`: harness telemetry for the `--faults`
    // campaign. Everything it emits goes to stderr or the snapshot
    // file, never stdout — the deterministic sections stay byte-
    // identical with or without it.
    let telemetry = operand("--telemetry", "target/telemetry.prom").map(|snap| {
        let path = std::path::PathBuf::from(&snap);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        Telemetry::new(TelemetryConfig {
            heartbeat: Some(Duration::from_millis(1_000)),
            snapshot: Some((path, Duration::from_millis(1_000))),
        })
    });

    if want("--faults") {
        match &journal {
            Some(path) => println!(
                "{}",
                softsim_bench::durable::durable_faults_text(std::path::Path::new(path), resume)
            ),
            None => println!(
                "{}",
                softsim_bench::faults::faults_text_with_telemetry(telemetry.as_ref())
            ),
        }
    }
    if want("--metrics") {
        println!("{}", tables::metrics_text());
    }
    if want("--ablation") {
        println!("{}", tables::ablation_fsl_vs_opb_text());
        println!("{}", tables::ablation_configurations_text());
        println!("{}", tables::lpc_text());
    }
    // `--csv [DIR]`: also write the figure data for external plotting.
    if let Some(dir) = operand("--csv", "target/figures") {
        tables::write_csvs(std::path::Path::new(&dir)).expect("write CSVs");
        println!("wrote {dir}/fig5_cordic.csv and {dir}/fig7_matmul.csv");
    }
    if let Some(path) = operand("--bench-json", "BENCH_0003.json") {
        tables::write_bench_json(std::path::Path::new(&path), 3).expect("write bench JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--speedup-json", "BENCH_0004.json") {
        softsim_bench::speedup::write_speedup_json(std::path::Path::new(&path))
            .expect("write speedup JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--recovery", "BENCH_0005.json") {
        match &journal {
            Some(j) => {
                let jpath = format!("{j}.recovery");
                println!(
                    "{}",
                    softsim_bench::durable::durable_recovery_text(
                        std::path::Path::new(&jpath),
                        resume,
                    )
                );
            }
            None => {
                softsim_bench::recover::write_recovery_json(std::path::Path::new(&path))
                    .expect("write recovery JSON");
                println!("wrote {path}");
            }
        }
    }
    if let Some(path) = operand("--hotspots", "BENCH_0006.json") {
        softsim_bench::hotspots::write_hotspots_json(std::path::Path::new(&path))
            .expect("write hotspots JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--durable-json", "BENCH_0007.json") {
        softsim_bench::durable::write_durable_json(std::path::Path::new(&path))
            .expect("write durable JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--translate-json", "BENCH_0009.json") {
        softsim_bench::translate::write_translate_json(std::path::Path::new(&path))
            .expect("write translate JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--serve-json", "BENCH_0010.json") {
        softsim_bench::serve::write_serve_json(std::path::Path::new(&path))
            .expect("write serve JSON");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--record", "tables_output.txt") {
        std::fs::write(&path, tables::record_text()).expect("write record");
        println!("wrote {path}");
    }
    if let Some(path) = operand("--trajectory", softsim_bench::trajectory::TRAJECTORY_FILE) {
        softsim_bench::trajectory::write_trajectory(
            std::path::Path::new("."),
            std::path::Path::new(&path),
        )
        .expect("write trajectory record");
        println!("wrote {path}");
    }
    if let Some(committed) =
        operand("--trajectory-gate", softsim_bench::trajectory::TRAJECTORY_FILE)
    {
        match softsim_bench::trajectory::gate(
            std::path::Path::new("."),
            std::path::Path::new(&committed),
        ) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                eprint!("{report}");
                std::process::exit(1);
            }
        }
    }
    if let Some(t) = &telemetry {
        t.finish();
        eprintln!("{}", t.summary());
    }
}
