//! Prints the reproduced tables and figures of the paper.
//!
//! Usage: `tables [--fig5] [--fig7] [--table1] [--table2] [--claims]
//! [--ablation] [--profile] [--faults] [--all] [--csv [DIR]]`
//!
//! Run in release mode — the Table I / Table II rows measure wall-clock
//! simulation speed.

use softsim_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    if want("--fig5") {
        println!("{}", tables::figure5_text());
    }
    if want("--fig7") {
        println!("{}", tables::figure7_text());
    }
    if want("--table1") {
        // Repeat each workload so wall times are well above timer noise.
        println!("{}", tables::table1_text(5));
    }
    if want("--table2") {
        println!("{}", tables::table2_text());
    }
    if want("--claims") {
        println!("{}", tables::claims_text());
    }
    if want("--profile") {
        println!("{}", tables::profile_text());
    }
    if want("--faults") {
        println!("{}", softsim_bench::faults::faults_text());
    }
    if want("--ablation") {
        println!("{}", tables::ablation_fsl_vs_opb_text());
        println!("{}", tables::ablation_configurations_text());
        println!("{}", tables::lpc_text());
    }
    // `--csv [DIR]`: also write the figure data for external plotting.
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let dir = args
            .get(pos + 1)
            .filter(|d| !d.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("target/figures");
        tables::write_csvs(std::path::Path::new(dir)).expect("write CSVs");
        println!("wrote {dir}/fig5_cordic.csv and {dir}/fig7_matmul.csv");
    }
}
