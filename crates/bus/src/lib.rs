//! # softsim-bus — cycle-accurate arithmetic-level bus models
//!
//! The communication-interface component of the paper's co-simulation
//! environment (Fig. 1): Fast Simplex Link FIFO channels ([`fsl`]), the
//! Local Memory Bus with its fixed one-cycle latency ([`lmb`]), and an
//! On-chip Peripheral Bus model ([`opb`]).
//!
//! These models capture only the arithmetic aspects of the protocols —
//! word values, control bits, `full`/`exists` flags, and per-transfer cycle
//! costs — exactly the abstraction level the paper argues is sufficient for
//! cycle-accurate co-simulation.

#![warn(missing_docs)]

pub mod fsl;
pub mod lmb;
pub mod opb;

pub use fsl::{FslBank, FslFifo, FslStats, FslWord, CHANNELS, DEFAULT_DEPTH};
pub use lmb::{LmbMemory, MemError, LMB_LATENCY};
pub use opb::{OpbBus, OpbFault, OpbPeripheral, RegisterFile, OPB_READ_LATENCY, OPB_WRITE_LATENCY};

#[cfg(test)]
mod proptests {
    use crate::fsl::{FslFifo, FslWord};
    use proptest::prelude::*;

    proptest! {
        /// The FIFO never exceeds its depth, never loses or reorders words,
        /// and its flags always reflect occupancy — under any interleaving
        /// of pushes and pops.
        #[test]
        fn fifo_invariants(depth in 1usize..32, ops in proptest::collection::vec(any::<Option<u32>>(), 0..200)) {
            let mut fifo = FslFifo::new(depth);
            let mut model: std::collections::VecDeque<u32> = Default::default();
            for op in ops {
                match op {
                    Some(v) => {
                        let accepted = fifo.try_push(FslWord::data(v));
                        prop_assert_eq!(accepted, model.len() < depth);
                        if accepted { model.push_back(v); }
                    }
                    None => {
                        let got = fifo.try_pop().map(|w| w.data);
                        prop_assert_eq!(got, model.pop_front());
                    }
                }
                prop_assert!(fifo.len() <= depth);
                prop_assert_eq!(fifo.len(), model.len());
                prop_assert_eq!(fifo.exists(), !model.is_empty());
                prop_assert_eq!(fifo.full(), model.len() == depth);
                prop_assert_eq!(fifo.peek().map(|w| w.data), model.front().copied());
            }
        }

        /// Byte-level writes and word-level reads agree on big-endian layout.
        #[test]
        fn lmb_endianness(addr_words in 0u32..4, value: u32) {
            let mut mem = crate::lmb::LmbMemory::new(64);
            let addr = addr_words * 4;
            mem.write_u32(addr, value).unwrap();
            let b = value.to_be_bytes();
            for (i, expect) in b.iter().enumerate() {
                prop_assert_eq!(mem.read_u8(addr + i as u32).unwrap(), *expect);
            }
            prop_assert_eq!(mem.read_u16(addr).unwrap(), (value >> 16) as u16);
            prop_assert_eq!(mem.read_u16(addr + 2).unwrap(), value as u16);
        }
    }
}
