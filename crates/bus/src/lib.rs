//! # softsim-bus — cycle-accurate arithmetic-level bus models
//!
//! The communication-interface component of the paper's co-simulation
//! environment (Fig. 1): Fast Simplex Link FIFO channels ([`fsl`]), the
//! Local Memory Bus with its fixed one-cycle latency ([`lmb`]), and an
//! On-chip Peripheral Bus model ([`opb`]).
//!
//! These models capture only the arithmetic aspects of the protocols —
//! word values, control bits, `full`/`exists` flags, and per-transfer cycle
//! costs — exactly the abstraction level the paper argues is sufficient for
//! cycle-accurate co-simulation.

#![warn(missing_docs)]

pub mod fsl;
pub mod lmb;
pub mod opb;

pub use fsl::{
    ecc_decode, ecc_encode, EccVerdict, FslBank, FslBankState, FslFifo, FslFifoState, FslStats,
    FslWord, CHANNELS, DEFAULT_DEPTH,
};
pub use lmb::{LmbMemory, MemError, LMB_LATENCY};
pub use opb::{OpbBus, OpbFault, OpbPeripheral, RegisterFile, OPB_READ_LATENCY, OPB_WRITE_LATENCY};

#[cfg(test)]
mod randomized {
    use crate::fsl::{FslFifo, FslWord};
    use softsim_testkit::cases;

    /// The FIFO never exceeds its depth, never loses or reorders words,
    /// and its flags always reflect occupancy — under any interleaving
    /// of pushes and pops.
    #[test]
    fn fifo_invariants() {
        cases(200, |seed, rng| {
            let depth = rng.range_usize(1, 32);
            let mut fifo = FslFifo::new(depth);
            let mut model: std::collections::VecDeque<u32> = Default::default();
            for _ in 0..rng.range_usize(0, 200) {
                if rng.flip() {
                    let v = rng.next_u32();
                    let accepted = fifo.try_push(FslWord::data(v));
                    assert_eq!(accepted, model.len() < depth, "seed {seed}");
                    if accepted {
                        model.push_back(v);
                    }
                } else {
                    let got = fifo.try_pop().map(|w| w.data);
                    assert_eq!(got, model.pop_front(), "seed {seed}");
                }
                assert!(fifo.len() <= depth, "seed {seed}");
                assert_eq!(fifo.len(), model.len(), "seed {seed}");
                assert_eq!(fifo.exists(), !model.is_empty(), "seed {seed}");
                assert_eq!(fifo.full(), model.len() == depth, "seed {seed}");
                assert_eq!(fifo.peek().map(|w| w.data), model.front().copied(), "seed {seed}");
            }
        });
    }

    /// Byte-level writes and word-level reads agree on big-endian layout.
    #[test]
    fn lmb_endianness() {
        cases(100, |seed, rng| {
            let mut mem = crate::lmb::LmbMemory::new(64);
            let addr = rng.range_u32(0, 4) * 4;
            let value = rng.next_u32();
            mem.write_u32(addr, value).unwrap();
            for (i, expect) in value.to_be_bytes().iter().enumerate() {
                assert_eq!(mem.read_u8(addr + i as u32).unwrap(), *expect, "seed {seed}");
            }
            assert_eq!(mem.read_u16(addr).unwrap(), (value >> 16) as u16, "seed {seed}");
            assert_eq!(mem.read_u16(addr + 2).unwrap(), value as u16, "seed {seed}");
        });
    }
}
