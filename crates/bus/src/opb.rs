//! On-chip Peripheral Bus (OPB) model.
//!
//! Besides FSLs, MicroBlaze peripherals can attach over the IBM
//! CoreConnect On-chip Peripheral Bus; the paper's co-simulator supports
//! both ("Various bus protocols, such as the IBM on-chip peripheral bus
//! (OPB) and the Xilinx fast simplex link, are supported in our
//! environment", §III-A). We model the OPB at the same arithmetic level:
//! a shared memory-mapped bus with a fixed per-transfer latency that is
//! substantially higher than an FSL transfer — the property the ablation
//! benchmark (FSL vs OPB attachment) exercises.

use std::fmt;

/// Cycles for one OPB read transfer (address + arbitration + data phases).
pub const OPB_READ_LATENCY: u32 = 4;
/// Cycles for one OPB write transfer.
pub const OPB_WRITE_LATENCY: u32 = 3;

/// Error raised when an access hits no mapped peripheral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpbFault {
    /// The faulting bus address.
    pub addr: u32,
}

impl fmt::Display for OpbFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no OPB peripheral mapped at {:#010x}", self.addr)
    }
}

impl std::error::Error for OpbFault {}

/// A device attached to the OPB.
pub trait OpbPeripheral {
    /// Word read at a peripheral-relative offset.
    fn read(&mut self, offset: u32) -> u32;
    /// Word write at a peripheral-relative offset.
    fn write(&mut self, offset: u32, value: u32);
    /// Advances the peripheral by one bus clock.
    fn tick(&mut self) {}
}

struct Mapping {
    base: u32,
    size: u32,
    dev: Box<dyn OpbPeripheral>,
}

/// The OPB interconnect: address decode plus fixed transfer latencies.
#[derive(Default)]
pub struct OpbBus {
    mappings: Vec<Mapping>,
    reads: u64,
    writes: u64,
}

impl OpbBus {
    /// Creates an empty bus.
    pub fn new() -> OpbBus {
        OpbBus::default()
    }

    /// Maps a peripheral at `[base, base+size)`.
    ///
    /// # Panics
    /// Panics if the range overlaps an existing mapping or is empty.
    pub fn map(&mut self, base: u32, size: u32, dev: Box<dyn OpbPeripheral>) {
        assert!(size > 0, "empty OPB mapping");
        let end = base as u64 + size as u64;
        for m in &self.mappings {
            let m_end = m.base as u64 + m.size as u64;
            assert!(
                end <= m.base as u64 || m_end <= base as u64,
                "OPB mapping [{base:#x},{end:#x}) overlaps [{:#x},{m_end:#x})",
                m.base
            );
        }
        self.mappings.push(Mapping { base, size, dev });
    }

    fn lookup(&mut self, addr: u32) -> Result<(&mut Mapping, u32), OpbFault> {
        for m in &mut self.mappings {
            if addr >= m.base && (addr as u64) < m.base as u64 + m.size as u64 {
                let off = addr - m.base;
                return Ok((m, off));
            }
        }
        Err(OpbFault { addr })
    }

    /// Performs a read transfer; returns `(value, cycles)`.
    pub fn read(&mut self, addr: u32) -> Result<(u32, u32), OpbFault> {
        let (m, off) = self.lookup(addr)?;
        let v = m.dev.read(off);
        self.reads += 1;
        Ok((v, OPB_READ_LATENCY))
    }

    /// Performs a write transfer; returns the cycle cost.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<u32, OpbFault> {
        let (m, off) = self.lookup(addr)?;
        m.dev.write(off, value);
        self.writes += 1;
        Ok(OPB_WRITE_LATENCY)
    }

    /// Advances all attached peripherals one clock.
    pub fn tick(&mut self) {
        for m in &mut self.mappings {
            m.dev.tick();
        }
    }

    /// `(reads, writes)` transfer counts.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// A simple bank of software-visible registers, the typical OPB slave.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: Vec<u32>,
}

impl RegisterFile {
    /// A register file with `n` 32-bit registers.
    pub fn new(n: usize) -> RegisterFile {
        RegisterFile { regs: vec![0; n] }
    }
}

impl OpbPeripheral for RegisterFile {
    fn read(&mut self, offset: u32) -> u32 {
        self.regs.get((offset / 4) as usize).copied().unwrap_or(0)
    }

    fn write(&mut self, offset: u32, value: u32) {
        if let Some(r) = self.regs.get_mut((offset / 4) as usize) {
            *r = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_read_write() {
        let mut bus = OpbBus::new();
        bus.map(0x8000_0000, 0x100, Box::new(RegisterFile::new(4)));
        let cycles = bus.write(0x8000_0004, 42).unwrap();
        assert_eq!(cycles, OPB_WRITE_LATENCY);
        let (v, cycles) = bus.read(0x8000_0004).unwrap();
        assert_eq!(v, 42);
        assert_eq!(cycles, OPB_READ_LATENCY);
        assert_eq!(bus.traffic(), (1, 1));
    }

    #[test]
    fn unmapped_access_faults() {
        let mut bus = OpbBus::new();
        assert_eq!(bus.read(0x1234), Err(OpbFault { addr: 0x1234 }));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_mappings_rejected() {
        let mut bus = OpbBus::new();
        bus.map(0x1000, 0x100, Box::new(RegisterFile::new(1)));
        bus.map(0x10FC, 0x100, Box::new(RegisterFile::new(1)));
    }

    #[test]
    fn opb_slower_than_fsl() {
        // The design-space property the matmul experiment depends on:
        // bus transfers dominate when work per word is small. Compared
        // dynamically so the constants cannot be tuned below FSL cost.
        let fsl_cycles = softsim_isa::Inst::Get {
            rd: softsim_isa::Reg::new(1),
            chan: softsim_isa::FslChan::new(0),
            mode: softsim_isa::FslMode::BLOCKING_DATA,
        }
        .base_cycles();
        assert!(OPB_READ_LATENCY > fsl_cycles);
        assert!(OPB_WRITE_LATENCY >= fsl_cycles);
    }
}
