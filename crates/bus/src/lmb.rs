//! Local Memory Bus (LMB) model.
//!
//! On MicroBlaze, instructions and data live in on-chip block RAM reached
//! through two LMB interface controllers (one instruction-side, one
//! data-side). When controllers and processor run at the same frequency —
//! the configuration the paper's cycle-accurate simulator requires — every
//! access completes with a fixed latency of one clock cycle (§III-A).
//!
//! MB32 is big-endian, like MicroBlaze.

use softsim_isa::Image;
use std::fmt;

/// Fixed LMB access latency in clock cycles (the paper's configuration).
pub const LMB_LATENCY: u32 = 1;

/// A memory-access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address beyond the configured memory size.
    OutOfRange {
        /// The faulting byte address.
        addr: u32,
        /// The memory size in bytes.
        size: u32,
    },
    /// Half/word access not aligned to its width.
    Misaligned {
        /// The faulting byte address.
        addr: u32,
        /// The required alignment in bytes.
        align: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size } => {
                write!(f, "address {addr:#010x} outside local memory of {size} bytes")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#010x} not aligned to {align} bytes")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Block-RAM local memory behind the two LMB controllers.
#[derive(Debug, Clone)]
pub struct LmbMemory {
    bytes: Vec<u8>,
}

impl LmbMemory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a word).
    pub fn new(size: u32) -> LmbMemory {
        LmbMemory { bytes: vec![0; size.next_multiple_of(4) as usize] }
    }

    /// Creates a memory sized `size` bytes and loads a program image at its
    /// base address.
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn with_image(size: u32, image: &Image) -> LmbMemory {
        let mut mem = LmbMemory::new(size);
        let base = image.base();
        assert!(
            (base + image.len_bytes()) as usize <= mem.bytes.len(),
            "image of {} bytes at base {:#x} exceeds memory of {} bytes",
            image.len_bytes(),
            base,
            mem.bytes.len()
        );
        mem.bytes[base as usize..(base + image.len_bytes()) as usize]
            .copy_from_slice(image.bytes());
        mem
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, width: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, align: width });
        }
        let end = addr as u64 + width as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange { addr, size: self.size() });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Reads a big-endian half word (2-aligned).
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_be_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a big-endian word (4-aligned).
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_be_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Writes a big-endian half word (2-aligned).
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Writes a big-endian word (4-aligned).
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Raw view of memory, for inspection in tests and tools.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Replaces the entire contents from a snapshot image.
    ///
    /// # Panics
    /// Panics if `image` is not exactly this memory's size — restoring a
    /// snapshot into a differently-sized memory is a caller bug.
    pub fn load_bytes(&mut self, image: &[u8]) {
        assert_eq!(image.len(), self.bytes.len(), "snapshot/memory size mismatch");
        self.bytes.copy_from_slice(image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;

    #[test]
    fn big_endian_like_microblaze() {
        let mut m = LmbMemory::new(16);
        m.write_u32(0, 0xAABBCCDD).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0xAA);
        assert_eq!(m.read_u8(3).unwrap(), 0xDD);
        assert_eq!(m.read_u16(2).unwrap(), 0xCCDD);
    }

    #[test]
    fn alignment_enforced() {
        let m = LmbMemory::new(16);
        assert_eq!(m.read_u32(2), Err(MemError::Misaligned { addr: 2, align: 4 }));
        assert_eq!(m.read_u16(1), Err(MemError::Misaligned { addr: 1, align: 2 }));
        assert!(m.read_u8(3).is_ok());
    }

    #[test]
    fn bounds_enforced() {
        let mut m = LmbMemory::new(8);
        assert!(matches!(m.read_u32(8), Err(MemError::OutOfRange { .. })));
        assert!(matches!(m.write_u8(100, 0), Err(MemError::OutOfRange { .. })));
        assert!(m.write_u32(4, 1).is_ok());
    }

    #[test]
    fn loads_image_at_base() {
        let img = assemble(".org 0x10\n.word 0x12345678\n").unwrap();
        let m = LmbMemory::with_image(64, &img);
        assert_eq!(m.read_u32(0x10).unwrap(), 0x12345678);
        assert_eq!(m.read_u32(0).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn oversized_image_panics() {
        let img = assemble(".space 128\n.word 1\n").unwrap();
        let _ = LmbMemory::with_image(64, &img);
    }
}
