//! Cycle-accurate arithmetic-level model of the Xilinx Fast Simplex Link.
//!
//! FSLs are the unidirectional FIFO channels through which MicroBlaze talks
//! to customized hardware peripherals (§III-B of the paper). Each channel
//! carries 32-bit words tagged with a *control* bit; the processor sees a
//! `full` flag on its write side and an `exists` flag on its read side. The
//! paper's co-simulator models exactly these flags plus the FIFO contents —
//! "the high-level simulation of the communication interface only captures
//! the arithmetic aspects of the communication protocols regardless
//! of whether the data buffering ... is realized using registers, slices
//! or embedded memory blocks."

use softsim_trace::{FifoDir, SharedSink, TraceEvent};
use std::collections::VecDeque;

/// Default FSL FIFO depth (the Xilinx FSL macro default).
pub const DEFAULT_DEPTH: usize = 16;

/// Tracing state of one FIFO: the shared sink plus this channel's
/// identity and the current clock cycle (stamped in by whoever owns the
/// clock domain — [`FslBank::set_trace_cycle`]). Boxed so the untraced
/// FIFO stays small.
#[derive(Clone)]
struct FifoTrace {
    sink: SharedSink,
    dir: FifoDir,
    channel: u8,
    cycle: u64,
}

impl std::fmt::Debug for FifoTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FifoTrace")
            .field("dir", &self.dir)
            .field("channel", &self.channel)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

/// One word traveling over an FSL: 32 data bits plus the control bit.
///
/// The applications in the paper use the control bit to mark configuration
/// words (the CORDIC `C0` constant, the matrix-B block elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslWord {
    /// The 32-bit payload.
    pub data: u32,
    /// The control flag (`Out#_control` on the reader side).
    pub control: bool,
}

impl FslWord {
    /// A data word (control bit clear).
    pub const fn data(data: u32) -> FslWord {
        FslWord { data, control: false }
    }

    /// A control word (control bit set).
    pub const fn control(data: u32) -> FslWord {
        FslWord { data, control: true }
    }
}

/// Occupancy and traffic statistics for one FSL channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FslStats {
    /// Total words pushed.
    pub pushes: u64,
    /// Total words popped.
    pub pops: u64,
    /// Push attempts rejected because the FIFO was full.
    pub full_rejections: u64,
    /// Pop attempts rejected because the FIFO was empty.
    pub empty_rejections: u64,
    /// High-water mark of FIFO occupancy.
    pub max_occupancy: usize,
}

/// A single unidirectional FSL FIFO channel.
#[derive(Debug, Clone)]
pub struct FslFifo {
    queue: VecDeque<FslWord>,
    depth: usize,
    stats: FslStats,
    trace: Option<Box<FifoTrace>>,
    /// Fault-injection override: the `full` flag reads asserted
    /// regardless of occupancy (an SEU in the flag logic).
    stuck_full: bool,
    /// Fault-injection override: the `exists` flag reads deasserted
    /// regardless of occupancy.
    stuck_empty: bool,
}

/// Serializable state of one FSL FIFO (see [`FslFifo::save_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FslFifoState {
    /// Buffered words, front first.
    pub words: Vec<FslWord>,
    /// Traffic statistics at snapshot time.
    pub stats: FslStats,
    /// Stuck-flag fault overrides.
    pub stuck_full: bool,
    /// Stuck-flag fault overrides.
    pub stuck_empty: bool,
}

impl Default for FslFifo {
    fn default() -> Self {
        FslFifo::new(DEFAULT_DEPTH)
    }
}

impl FslFifo {
    /// Creates a channel with the given FIFO depth.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> FslFifo {
        assert!(depth > 0, "FSL FIFO depth must be positive");
        FslFifo {
            queue: VecDeque::with_capacity(depth),
            depth,
            stats: FslStats::default(),
            trace: None,
            stuck_full: false,
            stuck_empty: false,
        }
    }

    /// Attaches a trace sink to this FIFO. Pushes, pops and flag
    /// rejections are emitted as cycle-stamped events; the cycle domain
    /// is supplied via [`FslFifo::set_trace_cycle`].
    pub fn attach_trace(&mut self, sink: SharedSink, dir: FifoDir, channel: u8) {
        self.trace = Some(Box::new(FifoTrace { sink, dir, channel, cycle: 0 }));
    }

    /// Stamps the current clock cycle into subsequently emitted events.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if let Some(t) = &mut self.trace {
            t.cycle = cycle;
        }
    }

    /// FIFO capacity in words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no word is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The `FSL#_full` flag the writer observes. A
    /// [`FslFifo::set_stuck_full`] fault forces it asserted.
    pub fn full(&self) -> bool {
        self.stuck_full || self.queue.len() >= self.depth
    }

    /// The `FSL#_exists` flag the reader observes. A
    /// [`FslFifo::set_stuck_empty`] fault forces it deasserted.
    pub fn exists(&self) -> bool {
        !self.stuck_empty && !self.queue.is_empty()
    }

    /// Attempts to push one word; returns `false` (and leaves the FIFO
    /// unchanged) when full. Matches the blocking-write stall condition.
    pub fn try_push(&mut self, word: FslWord) -> bool {
        if self.full() {
            self.stats.full_rejections += 1;
            if let Some(t) = &self.trace {
                t.sink.borrow_mut().event(&TraceEvent::FifoFull {
                    cycle: t.cycle,
                    dir: t.dir,
                    channel: t.channel,
                });
            }
            return false;
        }
        self.queue.push_back(word);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        if let Some(t) = &self.trace {
            t.sink.borrow_mut().event(&TraceEvent::FifoPush {
                cycle: t.cycle,
                dir: t.dir,
                channel: t.channel,
                data: word.data,
                control: word.control,
                occupancy: self.queue.len() as u8,
            });
        }
        true
    }

    /// Attempts to pop one word; `None` when empty (or when a stuck
    /// `exists` fault hides the buffered words from the reader).
    pub fn try_pop(&mut self) -> Option<FslWord> {
        let popped = if self.stuck_empty { None } else { self.queue.pop_front() };
        match popped {
            Some(w) => {
                self.stats.pops += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoPop {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                        data: w.data,
                        control: w.control,
                        occupancy: self.queue.len() as u8,
                    });
                }
                Some(w)
            }
            None => {
                self.stats.empty_rejections += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoEmpty {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                    });
                }
                None
            }
        }
    }

    /// Charges `n` empty-pop rejections in one jump — what `n` failing
    /// [`FslFifo::try_pop`] calls on a channel whose `exists` flag
    /// cannot assert would record. Statistics only, no trace events:
    /// the stall fast-forward path that uses this runs untraced (a
    /// trace sink disengages fast-forwarding so the per-cycle event
    /// stream stays complete).
    pub fn add_empty_rejections(&mut self, n: u64) {
        self.stats.empty_rejections += n;
    }

    /// Charges `n` full-push rejections in one jump — the write-side
    /// counterpart of [`FslFifo::add_empty_rejections`].
    pub fn add_full_rejections(&mut self, n: u64) {
        self.stats.full_rejections += n;
    }

    /// The word at the head without consuming it.
    pub fn peek(&self) -> Option<FslWord> {
        self.queue.front().copied()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> FslStats {
        self.stats
    }

    /// Empties the FIFO (reset).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Forces (or releases) the `full` flag regardless of occupancy —
    /// models an SEU in the flag logic. Writers stall forever while set.
    pub fn set_stuck_full(&mut self, stuck: bool) {
        self.stuck_full = stuck;
    }

    /// Forces (or releases) a deasserted `exists` flag regardless of
    /// occupancy. Readers see an empty channel while set.
    pub fn set_stuck_empty(&mut self, stuck: bool) {
        self.stuck_empty = stuck;
    }

    /// Mutable access to the `index`-th buffered word (0 = head), for
    /// fault injection into in-flight data. `None` past the occupancy.
    pub fn word_mut(&mut self, index: usize) -> Option<&mut FslWord> {
        self.queue.get_mut(index)
    }

    /// Silently removes the `index`-th buffered word (0 = head) — a
    /// dropped-word protocol fault. Returns the word, or `None` past the
    /// occupancy. Deliberately bypasses statistics and tracing: the
    /// design under test never observes the transfer.
    pub fn remove_word(&mut self, index: usize) -> Option<FslWord> {
        self.queue.remove(index)
    }

    /// Duplicates the head word in place — a duplicated-word protocol
    /// fault. Returns `false` (unchanged) when the FIFO is empty or
    /// already full. Bypasses statistics and tracing like
    /// [`FslFifo::remove_word`].
    pub fn duplicate_head(&mut self) -> bool {
        if self.queue.len() >= self.depth {
            return false;
        }
        match self.queue.front().copied() {
            Some(w) => {
                self.queue.push_front(w);
                true
            }
            None => false,
        }
    }

    /// Captures the FIFO's snapshot state (contents, statistics and
    /// fault overrides). Trace attachment is an observer and excluded.
    pub fn save_state(&self) -> FslFifoState {
        FslFifoState {
            words: self.queue.iter().copied().collect(),
            stats: self.stats,
            stuck_full: self.stuck_full,
            stuck_empty: self.stuck_empty,
        }
    }

    /// Restores a snapshot taken by [`FslFifo::save_state`].
    ///
    /// # Panics
    /// Panics if the snapshot holds more words than this FIFO's depth.
    pub fn load_state(&mut self, state: &FslFifoState) {
        assert!(state.words.len() <= self.depth, "snapshot exceeds FIFO depth");
        self.queue.clear();
        self.queue.extend(state.words.iter().copied());
        self.stats = state.stats;
        self.stuck_full = state.stuck_full;
        self.stuck_empty = state.stuck_empty;
    }
}

/// Number of FSL channels per direction on MicroBlaze.
pub const CHANNELS: usize = 8;

/// The full set of FSL channels attached to a soft processor:
/// eight *master* (processor → hardware) and eight *slave*
/// (hardware → processor) channels, as on MicroBlaze.
#[derive(Debug, Clone)]
pub struct FslBank {
    /// Processor → peripheral channels (CPU `put` side).
    to_hw: [FslFifo; CHANNELS],
    /// Peripheral → processor channels (CPU `get` side).
    from_hw: [FslFifo; CHANNELS],
    /// True once a trace sink is attached: gates the per-cycle stamping
    /// so the untraced path pays a single branch.
    traced: bool,
}

impl Default for FslBank {
    fn default() -> Self {
        FslBank::new(DEFAULT_DEPTH)
    }
}

impl FslBank {
    /// Creates a bank with uniform FIFO depth.
    pub fn new(depth: usize) -> FslBank {
        FslBank {
            to_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            from_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            traced: false,
        }
    }

    /// Attaches a trace sink to every channel in both directions. FIFO
    /// events carry the cycle most recently stamped in with
    /// [`FslBank::set_trace_cycle`] (the processor does this each tick).
    pub fn attach_trace(&mut self, sink: SharedSink) {
        for (i, f) in self.to_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::ToHw, i as u8);
        }
        for (i, f) in self.from_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::FromHw, i as u8);
        }
        self.traced = true;
    }

    /// True once [`FslBank::attach_trace`] has been called.
    pub fn traced(&self) -> bool {
        self.traced
    }

    /// Stamps the current clock cycle into every channel's trace state.
    /// No-op (one branch) when no sink is attached.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if !self.traced {
            return;
        }
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.set_trace_cycle(cycle);
        }
    }

    /// Highest occupancy ever observed on any processor → hardware
    /// channel.
    pub fn max_to_hw_occupancy(&self) -> usize {
        self.to_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Highest occupancy ever observed on any hardware → processor
    /// channel.
    pub fn max_from_hw_occupancy(&self) -> usize {
        self.from_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Processor-to-hardware channel `ch` (the CPU writes here).
    pub fn to_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.to_hw[ch]
    }

    /// Hardware-to-processor channel `ch` (the CPU reads here).
    pub fn from_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.from_hw[ch]
    }

    /// Immutable view of a processor-to-hardware channel.
    pub fn to_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.to_hw[ch]
    }

    /// Immutable view of a hardware-to-processor channel.
    pub fn from_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.from_hw[ch]
    }

    /// Resets every FIFO.
    pub fn clear(&mut self) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.clear();
        }
    }

    /// Total words currently buffered in both directions.
    pub fn words_in_flight(&self) -> usize {
        self.to_hw.iter().chain(self.from_hw.iter()).map(FslFifo::len).sum()
    }

    /// Total successful pushes + pops across every channel in both
    /// directions — a monotone progress counter for liveness watchdogs:
    /// if it stops advancing, no word is moving anywhere in the bank.
    pub fn total_ops(&self) -> u64 {
        self.to_hw
            .iter()
            .chain(self.from_hw.iter())
            .map(|f| f.stats().pushes + f.stats().pops)
            .sum()
    }

    /// Captures every channel's snapshot state.
    pub fn save_state(&self) -> FslBankState {
        FslBankState {
            to_hw: self.to_hw.iter().map(FslFifo::save_state).collect(),
            from_hw: self.from_hw.iter().map(FslFifo::save_state).collect(),
        }
    }

    /// Restores a snapshot taken by [`FslBank::save_state`].
    ///
    /// # Panics
    /// Panics on a channel-count mismatch or when any channel's snapshot
    /// exceeds its FIFO depth.
    pub fn load_state(&mut self, state: &FslBankState) {
        assert_eq!(state.to_hw.len(), CHANNELS, "snapshot channel count");
        assert_eq!(state.from_hw.len(), CHANNELS, "snapshot channel count");
        for (f, s) in self.to_hw.iter_mut().zip(&state.to_hw) {
            f.load_state(s);
        }
        for (f, s) in self.from_hw.iter_mut().zip(&state.from_hw) {
            f.load_state(s);
        }
    }
}

/// Serializable state of a full FSL bank (see [`FslBank::save_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FslBankState {
    /// Processor → hardware channels, index order.
    pub to_hw: Vec<FslFifoState>,
    /// Hardware → processor channels, index order.
    pub from_hw: Vec<FslFifoState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = FslFifo::new(4);
        assert!(f.try_push(FslWord::data(1)));
        assert!(f.try_push(FslWord::control(2)));
        assert_eq!(f.try_pop(), Some(FslWord::data(1)));
        assert_eq!(f.try_pop(), Some(FslWord::control(2)));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn full_and_exists_flags() {
        let mut f = FslFifo::new(2);
        assert!(!f.exists());
        assert!(!f.full());
        f.try_push(FslWord::data(1));
        assert!(f.exists());
        f.try_push(FslWord::data(2));
        assert!(f.full());
        assert!(!f.try_push(FslWord::data(3)), "push into full FIFO must fail");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut f = FslFifo::new(2);
        f.try_push(FslWord::data(1));
        f.try_push(FslWord::data(2));
        f.try_push(FslWord::data(3)); // rejected
        f.try_pop();
        f.try_pop();
        f.try_pop(); // rejected
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 2);
        assert_eq!(s.full_rejections, 1);
        assert_eq!(s.empty_rejections, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn control_bit_survives_transit() {
        let mut bank = FslBank::default();
        bank.to_hw(0).try_push(FslWord::control(0xC0));
        bank.to_hw(0).try_push(FslWord::data(0xD0));
        let w0 = bank.to_hw(0).try_pop().unwrap();
        let w1 = bank.to_hw(0).try_pop().unwrap();
        assert!(w0.control && w0.data == 0xC0);
        assert!(!w1.control && w1.data == 0xD0);
    }

    #[test]
    fn bank_directions_are_independent() {
        let mut bank = FslBank::new(4);
        bank.to_hw(3).try_push(FslWord::data(7));
        assert!(bank.from_hw(3).is_empty());
        assert_eq!(bank.words_in_flight(), 1);
        bank.clear();
        assert_eq!(bank.words_in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = FslFifo::new(0);
    }
}
