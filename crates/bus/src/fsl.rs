//! Cycle-accurate arithmetic-level model of the Xilinx Fast Simplex Link.
//!
//! FSLs are the unidirectional FIFO channels through which MicroBlaze talks
//! to customized hardware peripherals (§III-B of the paper). Each channel
//! carries 32-bit words tagged with a *control* bit; the processor sees a
//! `full` flag on its write side and an `exists` flag on its read side. The
//! paper's co-simulator models exactly these flags plus the FIFO contents —
//! "the high-level simulation of the communication interface only captures
//! the arithmetic aspects of the communication protocols regardless
//! of whether the data buffering ... is realized using registers, slices
//! or embedded memory blocks."

use softsim_trace::{FifoDir, SharedSink, TraceEvent};
use std::collections::VecDeque;

/// Default FSL FIFO depth (the Xilinx FSL macro default).
pub const DEFAULT_DEPTH: usize = 16;

/// Tracing state of one FIFO: the shared sink plus this channel's
/// identity and the current clock cycle (stamped in by whoever owns the
/// clock domain — [`FslBank::set_trace_cycle`]). Boxed so the untraced
/// FIFO stays small.
#[derive(Clone)]
struct FifoTrace {
    sink: SharedSink,
    dir: FifoDir,
    channel: u8,
    cycle: u64,
}

impl std::fmt::Debug for FifoTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FifoTrace")
            .field("dir", &self.dir)
            .field("channel", &self.channel)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

/// One word traveling over an FSL: 32 data bits plus the control bit.
///
/// The applications in the paper use the control bit to mark configuration
/// words (the CORDIC `C0` constant, the matrix-B block elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslWord {
    /// The 32-bit payload.
    pub data: u32,
    /// The control flag (`Out#_control` on the reader side).
    pub control: bool,
}

impl FslWord {
    /// A data word (control bit clear).
    pub const fn data(data: u32) -> FslWord {
        FslWord { data, control: false }
    }

    /// A control word (control bit set).
    pub const fn control(data: u32) -> FslWord {
        FslWord { data, control: true }
    }
}

/// Occupancy and traffic statistics for one FSL channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FslStats {
    /// Total words pushed.
    pub pushes: u64,
    /// Total words popped.
    pub pops: u64,
    /// Push attempts rejected because the FIFO was full.
    pub full_rejections: u64,
    /// Pop attempts rejected because the FIFO was empty.
    pub empty_rejections: u64,
    /// High-water mark of FIFO occupancy.
    pub max_occupancy: usize,
}

/// A single unidirectional FSL FIFO channel.
#[derive(Debug, Clone)]
pub struct FslFifo {
    queue: VecDeque<FslWord>,
    depth: usize,
    stats: FslStats,
    trace: Option<Box<FifoTrace>>,
}

impl Default for FslFifo {
    fn default() -> Self {
        FslFifo::new(DEFAULT_DEPTH)
    }
}

impl FslFifo {
    /// Creates a channel with the given FIFO depth.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> FslFifo {
        assert!(depth > 0, "FSL FIFO depth must be positive");
        FslFifo {
            queue: VecDeque::with_capacity(depth),
            depth,
            stats: FslStats::default(),
            trace: None,
        }
    }

    /// Attaches a trace sink to this FIFO. Pushes, pops and flag
    /// rejections are emitted as cycle-stamped events; the cycle domain
    /// is supplied via [`FslFifo::set_trace_cycle`].
    pub fn attach_trace(&mut self, sink: SharedSink, dir: FifoDir, channel: u8) {
        self.trace = Some(Box::new(FifoTrace { sink, dir, channel, cycle: 0 }));
    }

    /// Stamps the current clock cycle into subsequently emitted events.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if let Some(t) = &mut self.trace {
            t.cycle = cycle;
        }
    }

    /// FIFO capacity in words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no word is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The `FSL#_full` flag the writer observes.
    pub fn full(&self) -> bool {
        self.queue.len() >= self.depth
    }

    /// The `FSL#_exists` flag the reader observes.
    pub fn exists(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Attempts to push one word; returns `false` (and leaves the FIFO
    /// unchanged) when full. Matches the blocking-write stall condition.
    pub fn try_push(&mut self, word: FslWord) -> bool {
        if self.full() {
            self.stats.full_rejections += 1;
            if let Some(t) = &self.trace {
                t.sink.borrow_mut().event(&TraceEvent::FifoFull {
                    cycle: t.cycle,
                    dir: t.dir,
                    channel: t.channel,
                });
            }
            return false;
        }
        self.queue.push_back(word);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        if let Some(t) = &self.trace {
            t.sink.borrow_mut().event(&TraceEvent::FifoPush {
                cycle: t.cycle,
                dir: t.dir,
                channel: t.channel,
                data: word.data,
                control: word.control,
                occupancy: self.queue.len() as u8,
            });
        }
        true
    }

    /// Attempts to pop one word; `None` when empty.
    pub fn try_pop(&mut self) -> Option<FslWord> {
        match self.queue.pop_front() {
            Some(w) => {
                self.stats.pops += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoPop {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                        data: w.data,
                        control: w.control,
                        occupancy: self.queue.len() as u8,
                    });
                }
                Some(w)
            }
            None => {
                self.stats.empty_rejections += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoEmpty {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                    });
                }
                None
            }
        }
    }

    /// The word at the head without consuming it.
    pub fn peek(&self) -> Option<FslWord> {
        self.queue.front().copied()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> FslStats {
        self.stats
    }

    /// Empties the FIFO (reset).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Number of FSL channels per direction on MicroBlaze.
pub const CHANNELS: usize = 8;

/// The full set of FSL channels attached to a soft processor:
/// eight *master* (processor → hardware) and eight *slave*
/// (hardware → processor) channels, as on MicroBlaze.
#[derive(Debug, Clone)]
pub struct FslBank {
    /// Processor → peripheral channels (CPU `put` side).
    to_hw: [FslFifo; CHANNELS],
    /// Peripheral → processor channels (CPU `get` side).
    from_hw: [FslFifo; CHANNELS],
    /// True once a trace sink is attached: gates the per-cycle stamping
    /// so the untraced path pays a single branch.
    traced: bool,
}

impl Default for FslBank {
    fn default() -> Self {
        FslBank::new(DEFAULT_DEPTH)
    }
}

impl FslBank {
    /// Creates a bank with uniform FIFO depth.
    pub fn new(depth: usize) -> FslBank {
        FslBank {
            to_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            from_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            traced: false,
        }
    }

    /// Attaches a trace sink to every channel in both directions. FIFO
    /// events carry the cycle most recently stamped in with
    /// [`FslBank::set_trace_cycle`] (the processor does this each tick).
    pub fn attach_trace(&mut self, sink: SharedSink) {
        for (i, f) in self.to_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::ToHw, i as u8);
        }
        for (i, f) in self.from_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::FromHw, i as u8);
        }
        self.traced = true;
    }

    /// True once [`FslBank::attach_trace`] has been called.
    pub fn traced(&self) -> bool {
        self.traced
    }

    /// Stamps the current clock cycle into every channel's trace state.
    /// No-op (one branch) when no sink is attached.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if !self.traced {
            return;
        }
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.set_trace_cycle(cycle);
        }
    }

    /// Highest occupancy ever observed on any processor → hardware
    /// channel.
    pub fn max_to_hw_occupancy(&self) -> usize {
        self.to_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Highest occupancy ever observed on any hardware → processor
    /// channel.
    pub fn max_from_hw_occupancy(&self) -> usize {
        self.from_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Processor-to-hardware channel `ch` (the CPU writes here).
    pub fn to_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.to_hw[ch]
    }

    /// Hardware-to-processor channel `ch` (the CPU reads here).
    pub fn from_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.from_hw[ch]
    }

    /// Immutable view of a processor-to-hardware channel.
    pub fn to_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.to_hw[ch]
    }

    /// Immutable view of a hardware-to-processor channel.
    pub fn from_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.from_hw[ch]
    }

    /// Resets every FIFO.
    pub fn clear(&mut self) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.clear();
        }
    }

    /// Total words currently buffered in both directions.
    pub fn words_in_flight(&self) -> usize {
        self.to_hw.iter().chain(self.from_hw.iter()).map(FslFifo::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = FslFifo::new(4);
        assert!(f.try_push(FslWord::data(1)));
        assert!(f.try_push(FslWord::control(2)));
        assert_eq!(f.try_pop(), Some(FslWord::data(1)));
        assert_eq!(f.try_pop(), Some(FslWord::control(2)));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn full_and_exists_flags() {
        let mut f = FslFifo::new(2);
        assert!(!f.exists());
        assert!(!f.full());
        f.try_push(FslWord::data(1));
        assert!(f.exists());
        f.try_push(FslWord::data(2));
        assert!(f.full());
        assert!(!f.try_push(FslWord::data(3)), "push into full FIFO must fail");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut f = FslFifo::new(2);
        f.try_push(FslWord::data(1));
        f.try_push(FslWord::data(2));
        f.try_push(FslWord::data(3)); // rejected
        f.try_pop();
        f.try_pop();
        f.try_pop(); // rejected
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 2);
        assert_eq!(s.full_rejections, 1);
        assert_eq!(s.empty_rejections, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn control_bit_survives_transit() {
        let mut bank = FslBank::default();
        bank.to_hw(0).try_push(FslWord::control(0xC0));
        bank.to_hw(0).try_push(FslWord::data(0xD0));
        let w0 = bank.to_hw(0).try_pop().unwrap();
        let w1 = bank.to_hw(0).try_pop().unwrap();
        assert!(w0.control && w0.data == 0xC0);
        assert!(!w1.control && w1.data == 0xD0);
    }

    #[test]
    fn bank_directions_are_independent() {
        let mut bank = FslBank::new(4);
        bank.to_hw(3).try_push(FslWord::data(7));
        assert!(bank.from_hw(3).is_empty());
        assert_eq!(bank.words_in_flight(), 1);
        bank.clear();
        assert_eq!(bank.words_in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = FslFifo::new(0);
    }
}
