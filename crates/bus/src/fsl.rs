//! Cycle-accurate arithmetic-level model of the Xilinx Fast Simplex Link.
//!
//! FSLs are the unidirectional FIFO channels through which MicroBlaze talks
//! to customized hardware peripherals (§III-B of the paper). Each channel
//! carries 32-bit words tagged with a *control* bit; the processor sees a
//! `full` flag on its write side and an `exists` flag on its read side. The
//! paper's co-simulator models exactly these flags plus the FIFO contents —
//! "the high-level simulation of the communication interface only captures
//! the arithmetic aspects of the communication protocols regardless
//! of whether the data buffering ... is realized using registers, slices
//! or embedded memory blocks."

use softsim_trace::{FifoDir, SharedSink, TraceEvent};
use std::collections::VecDeque;

/// Default FSL FIFO depth (the Xilinx FSL macro default).
pub const DEFAULT_DEPTH: usize = 16;

// --- SEC-DED word codec -------------------------------------------------
//
// A (39,33) Hamming code with an overall parity bit over the 33-bit FSL
// payload (32 data bits + the control bit): single-bit upsets in a
// buffered word are corrected in place at pop time, double-bit upsets
// are signaled as detected-uncorrectable. The 6 Hamming check bits and
// the overall parity bit live in a per-word check byte stored alongside
// the FIFO contents — the model of the extra block-RAM parity column a
// hardened FSL macro would carry.

/// Hamming codeword position of each of the 33 payload bits (32 data
/// bits then the control bit): the non-power-of-two positions ≥ 3, in
/// order. The highest is 39, so positions fit 6 bits.
const PAYLOAD_POS: [u8; 33] = {
    let mut t = [0u8; 33];
    let mut pos = 3u8;
    let mut i = 0;
    while i < 33 {
        if pos & (pos - 1) != 0 {
            t[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    t
};

/// Codeword position of the control bit.
const CONTROL_POS: u8 = PAYLOAD_POS[32];

/// Inverse map: codeword position → payload bit index (0xFF: a check
/// position or unused).
const POS_PAYLOAD: [u8; 64] = {
    let mut t = [0xFFu8; 64];
    let mut i = 0;
    while i < 33 {
        t[PAYLOAD_POS[i] as usize] = i as u8;
        i += 1;
    }
    t
};

/// Per-byte-lane syndrome contributions: XOR of the codeword positions
/// of the set bits of one data byte. Keeps the per-word encode/decode
/// cost at four table lookups, so enabling ECC is invisible next to the
/// cycle loop (the overhead bench guards this).
const ECC_LANE: [[u8; 256]; 4] = {
    let mut t = [[0u8; 256]; 4];
    let mut lane = 0;
    while lane < 4 {
        let mut byte = 0usize;
        while byte < 256 {
            let mut syn = 0u8;
            let mut bit = 0;
            while bit < 8 {
                if (byte >> bit) & 1 == 1 {
                    syn ^= PAYLOAD_POS[lane * 8 + bit];
                }
                bit += 1;
            }
            t[lane][byte] = syn;
            byte += 1;
        }
        lane += 1;
    }
    t
};

/// XOR of the codeword positions of every set payload bit.
fn payload_syndrome(w: FslWord) -> u8 {
    let d = w.data;
    ECC_LANE[0][(d & 0xff) as usize]
        ^ ECC_LANE[1][(d >> 8 & 0xff) as usize]
        ^ ECC_LANE[2][(d >> 16 & 0xff) as usize]
        ^ ECC_LANE[3][(d >> 24) as usize]
        ^ if w.control { CONTROL_POS } else { 0 }
}

/// What the SEC-DED decoder concluded about one popped word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccVerdict {
    /// The word matched its check byte.
    Clean,
    /// A single-bit upset was corrected (in the payload, a check bit or
    /// the parity bit — payload corrections change the returned word).
    Corrected,
    /// A multi-bit upset: detected but not correctable. The word is
    /// delivered as-is; the consumer decides what survival means.
    Uncorrectable,
}

/// Encodes the SEC-DED check byte for one word: Hamming check bits in
/// bits 0–5, overall parity in bit 6.
pub fn ecc_encode(w: FslWord) -> u8 {
    let check = payload_syndrome(w) & 0x3f;
    let parity = (w.data.count_ones() + w.control as u32 + check.count_ones()) as u8 & 1;
    check | parity << 6
}

/// Decodes one word against its stored check byte, correcting a
/// single-bit payload upset in place.
pub fn ecc_decode(mut w: FslWord, stored: u8) -> (FslWord, EccVerdict) {
    let stored_check = stored & 0x3f;
    let syndrome = (payload_syndrome(w) ^ stored_check) & 0x3f;
    let parity = (w.data.count_ones() + w.control as u32 + stored_check.count_ones()) as u8 & 1;
    let parity_err = parity != stored >> 6 & 1;
    match (parity_err, syndrome) {
        (false, 0) => (w, EccVerdict::Clean),
        // Even number of flipped bits but a nonzero syndrome: a
        // double-bit upset, beyond single-error correction.
        (false, _) => (w, EccVerdict::Uncorrectable),
        // Odd number of flips: a single-bit upset somewhere in the
        // codeword. Syndrome 0 means the parity bit itself; a check
        // position means a check bit; a payload position is corrected
        // in the word.
        (true, 0) => (w, EccVerdict::Corrected),
        (true, s) => match POS_PAYLOAD[s as usize] {
            0xFF if s & (s - 1) == 0 => (w, EccVerdict::Corrected),
            0xFF => (w, EccVerdict::Uncorrectable),
            idx if idx < 32 => {
                w.data ^= 1 << idx;
                (w, EccVerdict::Corrected)
            }
            _ => {
                w.control = !w.control;
                (w, EccVerdict::Corrected)
            }
        },
    }
}

/// Tracing state of one FIFO: the shared sink plus this channel's
/// identity and the current clock cycle (stamped in by whoever owns the
/// clock domain — [`FslBank::set_trace_cycle`]). Boxed so the untraced
/// FIFO stays small.
#[derive(Clone)]
struct FifoTrace {
    sink: SharedSink,
    dir: FifoDir,
    channel: u8,
    cycle: u64,
}

impl std::fmt::Debug for FifoTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FifoTrace")
            .field("dir", &self.dir)
            .field("channel", &self.channel)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

/// One word traveling over an FSL: 32 data bits plus the control bit.
///
/// The applications in the paper use the control bit to mark configuration
/// words (the CORDIC `C0` constant, the matrix-B block elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslWord {
    /// The 32-bit payload.
    pub data: u32,
    /// The control flag (`Out#_control` on the reader side).
    pub control: bool,
}

impl FslWord {
    /// A data word (control bit clear).
    pub const fn data(data: u32) -> FslWord {
        FslWord { data, control: false }
    }

    /// A control word (control bit set).
    pub const fn control(data: u32) -> FslWord {
        FslWord { data, control: true }
    }
}

/// Occupancy and traffic statistics for one FSL channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FslStats {
    /// Total words pushed.
    pub pushes: u64,
    /// Total words popped.
    pub pops: u64,
    /// Push attempts rejected because the FIFO was full.
    pub full_rejections: u64,
    /// Pop attempts rejected because the FIFO was empty.
    pub empty_rejections: u64,
    /// Single-bit upsets the SEC-DED codec corrected at pop time.
    pub ecc_corrected: u64,
    /// Multi-bit upsets the codec detected but could not correct.
    pub ecc_uncorrectable: u64,
    /// High-water mark of FIFO occupancy.
    pub max_occupancy: usize,
}

/// A single unidirectional FSL FIFO channel.
#[derive(Debug, Clone)]
pub struct FslFifo {
    queue: VecDeque<FslWord>,
    depth: usize,
    stats: FslStats,
    trace: Option<Box<FifoTrace>>,
    /// SEC-DED protection: when on, every buffered word carries a check
    /// byte in `check` (same queue order), encoded at push and verified
    /// (with single-bit correction) at pop.
    ecc: bool,
    check: VecDeque<u8>,
    /// Fault-injection override: the `full` flag reads asserted
    /// regardless of occupancy (an SEU in the flag logic).
    stuck_full: bool,
    /// Fault-injection override: the `exists` flag reads deasserted
    /// regardless of occupancy.
    stuck_empty: bool,
}

/// Serializable state of one FSL FIFO (see [`FslFifo::save_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FslFifoState {
    /// Buffered words, front first.
    pub words: Vec<FslWord>,
    /// Whether SEC-DED protection was on.
    pub ecc: bool,
    /// Check bytes matching `words` (empty when `ecc` is off).
    pub check: Vec<u8>,
    /// Traffic statistics at snapshot time.
    pub stats: FslStats,
    /// Stuck-flag fault overrides.
    pub stuck_full: bool,
    /// Stuck-flag fault overrides.
    pub stuck_empty: bool,
}

impl Default for FslFifo {
    fn default() -> Self {
        FslFifo::new(DEFAULT_DEPTH)
    }
}

impl FslFifo {
    /// Creates a channel with the given FIFO depth.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> FslFifo {
        assert!(depth > 0, "FSL FIFO depth must be positive");
        FslFifo {
            queue: VecDeque::with_capacity(depth),
            depth,
            stats: FslStats::default(),
            trace: None,
            ecc: false,
            check: VecDeque::new(),
            stuck_full: false,
            stuck_empty: false,
        }
    }

    /// Enables (or disables) the SEC-DED word codec on this channel.
    /// Words already buffered are (re-)encoded as clean — protection
    /// starts from the current contents.
    pub fn set_ecc(&mut self, on: bool) {
        self.ecc = on;
        self.check.clear();
        if on {
            self.check.extend(self.queue.iter().map(|&w| ecc_encode(w)));
        }
    }

    /// True while the SEC-DED codec is enabled.
    pub fn ecc(&self) -> bool {
        self.ecc
    }

    /// Attaches a trace sink to this FIFO. Pushes, pops and flag
    /// rejections are emitted as cycle-stamped events; the cycle domain
    /// is supplied via [`FslFifo::set_trace_cycle`].
    pub fn attach_trace(&mut self, sink: SharedSink, dir: FifoDir, channel: u8) {
        self.trace = Some(Box::new(FifoTrace { sink, dir, channel, cycle: 0 }));
    }

    /// Detaches any trace sink from this FIFO.
    pub fn detach_trace(&mut self) {
        self.trace = None;
    }

    /// Stamps the current clock cycle into subsequently emitted events.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if let Some(t) = &mut self.trace {
            t.cycle = cycle;
        }
    }

    /// FIFO capacity in words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no word is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The `FSL#_full` flag the writer observes. A
    /// [`FslFifo::set_stuck_full`] fault forces it asserted.
    pub fn full(&self) -> bool {
        self.stuck_full || self.queue.len() >= self.depth
    }

    /// The `FSL#_exists` flag the reader observes. A
    /// [`FslFifo::set_stuck_empty`] fault forces it deasserted.
    pub fn exists(&self) -> bool {
        !self.stuck_empty && !self.queue.is_empty()
    }

    /// Attempts to push one word; returns `false` (and leaves the FIFO
    /// unchanged) when full. Matches the blocking-write stall condition.
    pub fn try_push(&mut self, word: FslWord) -> bool {
        if self.full() {
            self.stats.full_rejections += 1;
            if let Some(t) = &self.trace {
                t.sink.borrow_mut().event(&TraceEvent::FifoFull {
                    cycle: t.cycle,
                    dir: t.dir,
                    channel: t.channel,
                });
            }
            return false;
        }
        self.queue.push_back(word);
        if self.ecc {
            self.check.push_back(ecc_encode(word));
        }
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        if let Some(t) = &self.trace {
            t.sink.borrow_mut().event(&TraceEvent::FifoPush {
                cycle: t.cycle,
                dir: t.dir,
                channel: t.channel,
                data: word.data,
                control: word.control,
                occupancy: self.queue.len() as u8,
            });
        }
        true
    }

    /// Attempts to pop one word; `None` when empty (or when a stuck
    /// `exists` fault hides the buffered words from the reader).
    pub fn try_pop(&mut self) -> Option<FslWord> {
        let popped = if self.stuck_empty { None } else { self.queue.pop_front() };
        match popped {
            Some(mut w) => {
                if self.ecc {
                    let stored = self.check.pop_front().expect("check byte per buffered word");
                    let (decoded, verdict) = ecc_decode(w, stored);
                    w = decoded;
                    match verdict {
                        EccVerdict::Clean => {}
                        EccVerdict::Corrected => self.stats.ecc_corrected += 1,
                        EccVerdict::Uncorrectable => self.stats.ecc_uncorrectable += 1,
                    }
                }
                self.stats.pops += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoPop {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                        data: w.data,
                        control: w.control,
                        occupancy: self.queue.len() as u8,
                    });
                }
                Some(w)
            }
            None => {
                self.stats.empty_rejections += 1;
                if let Some(t) = &self.trace {
                    t.sink.borrow_mut().event(&TraceEvent::FifoEmpty {
                        cycle: t.cycle,
                        dir: t.dir,
                        channel: t.channel,
                    });
                }
                None
            }
        }
    }

    /// Charges `n` empty-pop rejections in one jump — what `n` failing
    /// [`FslFifo::try_pop`] calls on a channel whose `exists` flag
    /// cannot assert would record. Statistics only, no trace events:
    /// the stall fast-forward path that uses this runs untraced (a
    /// trace sink disengages fast-forwarding so the per-cycle event
    /// stream stays complete).
    pub fn add_empty_rejections(&mut self, n: u64) {
        self.stats.empty_rejections += n;
    }

    /// Charges `n` full-push rejections in one jump — the write-side
    /// counterpart of [`FslFifo::add_empty_rejections`].
    pub fn add_full_rejections(&mut self, n: u64) {
        self.stats.full_rejections += n;
    }

    /// The word at the head without consuming it.
    pub fn peek(&self) -> Option<FslWord> {
        self.queue.front().copied()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> FslStats {
        self.stats
    }

    /// Empties the FIFO (reset).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.check.clear();
    }

    /// Forces (or releases) the `full` flag regardless of occupancy —
    /// models an SEU in the flag logic. Writers stall forever while set.
    pub fn set_stuck_full(&mut self, stuck: bool) {
        self.stuck_full = stuck;
    }

    /// Forces (or releases) a deasserted `exists` flag regardless of
    /// occupancy. Readers see an empty channel while set.
    pub fn set_stuck_empty(&mut self, stuck: bool) {
        self.stuck_empty = stuck;
    }

    /// Mutable access to the `index`-th buffered word (0 = head), for
    /// fault injection into in-flight data. `None` past the occupancy.
    /// Deliberately leaves any SEC-DED check byte untouched: a stale
    /// check byte is exactly how the codec notices the upset at pop.
    pub fn word_mut(&mut self, index: usize) -> Option<&mut FslWord> {
        self.queue.get_mut(index)
    }

    /// Silently removes the `index`-th buffered word (0 = head) — a
    /// dropped-word protocol fault. Returns the word, or `None` past the
    /// occupancy. Deliberately bypasses statistics and tracing: the
    /// design under test never observes the transfer.
    pub fn remove_word(&mut self, index: usize) -> Option<FslWord> {
        let w = self.queue.remove(index);
        if self.ecc && w.is_some() {
            self.check.remove(index);
        }
        w
    }

    /// Duplicates the head word in place — a duplicated-word protocol
    /// fault. Returns `false` (unchanged) when the FIFO is empty or
    /// already full. Bypasses statistics and tracing like
    /// [`FslFifo::remove_word`].
    pub fn duplicate_head(&mut self) -> bool {
        if self.queue.len() >= self.depth {
            return false;
        }
        match self.queue.front().copied() {
            Some(w) => {
                self.queue.push_front(w);
                if self.ecc {
                    // The duplicate inherits the head's stored check
                    // byte, stale or not — the fault copies the raw
                    // buffered row, not a re-encoded word.
                    let chk = *self.check.front().expect("check byte per buffered word");
                    self.check.push_front(chk);
                }
                true
            }
            None => false,
        }
    }

    /// Captures the FIFO's snapshot state (contents, statistics and
    /// fault overrides). Trace attachment is an observer and excluded.
    pub fn save_state(&self) -> FslFifoState {
        FslFifoState {
            words: self.queue.iter().copied().collect(),
            ecc: self.ecc,
            check: self.check.iter().copied().collect(),
            stats: self.stats,
            stuck_full: self.stuck_full,
            stuck_empty: self.stuck_empty,
        }
    }

    /// Restores a snapshot taken by [`FslFifo::save_state`].
    ///
    /// # Panics
    /// Panics if the snapshot holds more words than this FIFO's depth.
    pub fn load_state(&mut self, state: &FslFifoState) {
        assert!(state.words.len() <= self.depth, "snapshot exceeds FIFO depth");
        if state.ecc {
            assert_eq!(state.check.len(), state.words.len(), "check byte per buffered word");
        }
        self.queue.clear();
        self.queue.extend(state.words.iter().copied());
        self.ecc = state.ecc;
        self.check.clear();
        self.check.extend(state.check.iter().copied());
        self.stats = state.stats;
        self.stuck_full = state.stuck_full;
        self.stuck_empty = state.stuck_empty;
    }
}

/// Number of FSL channels per direction on MicroBlaze.
pub const CHANNELS: usize = 8;

/// The full set of FSL channels attached to a soft processor:
/// eight *master* (processor → hardware) and eight *slave*
/// (hardware → processor) channels, as on MicroBlaze.
#[derive(Debug, Clone)]
pub struct FslBank {
    /// Processor → peripheral channels (CPU `put` side).
    to_hw: [FslFifo; CHANNELS],
    /// Peripheral → processor channels (CPU `get` side).
    from_hw: [FslFifo; CHANNELS],
    /// True once a trace sink is attached: gates the per-cycle stamping
    /// so the untraced path pays a single branch.
    traced: bool,
}

impl Default for FslBank {
    fn default() -> Self {
        FslBank::new(DEFAULT_DEPTH)
    }
}

impl FslBank {
    /// Creates a bank with uniform FIFO depth.
    pub fn new(depth: usize) -> FslBank {
        FslBank {
            to_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            from_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            traced: false,
        }
    }

    /// Attaches a trace sink to every channel in both directions. FIFO
    /// events carry the cycle most recently stamped in with
    /// [`FslBank::set_trace_cycle`] (the processor does this each tick).
    pub fn attach_trace(&mut self, sink: SharedSink) {
        for (i, f) in self.to_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::ToHw, i as u8);
        }
        for (i, f) in self.from_hw.iter_mut().enumerate() {
            f.attach_trace(sink.clone(), FifoDir::FromHw, i as u8);
        }
        self.traced = true;
    }

    /// Detaches the trace sink from every channel.
    pub fn detach_trace(&mut self) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.detach_trace();
        }
        self.traced = false;
    }

    /// True once [`FslBank::attach_trace`] has been called.
    pub fn traced(&self) -> bool {
        self.traced
    }

    /// Enables (or disables) the SEC-DED word codec on every channel in
    /// both directions.
    pub fn set_ecc_all(&mut self, on: bool) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.set_ecc(on);
        }
    }

    /// True when channel 0 (and, under [`FslBank::set_ecc_all`], every
    /// channel) runs the SEC-DED codec.
    pub fn ecc(&self) -> bool {
        self.to_hw[0].ecc()
    }

    /// Total single-bit corrections across every channel.
    pub fn ecc_corrected_total(&self) -> u64 {
        self.to_hw.iter().chain(self.from_hw.iter()).map(|f| f.stats().ecc_corrected).sum()
    }

    /// Total detected-uncorrectable upsets across every channel.
    pub fn ecc_uncorrectable_total(&self) -> u64 {
        self.to_hw.iter().chain(self.from_hw.iter()).map(|f| f.stats().ecc_uncorrectable).sum()
    }

    /// Stamps the current clock cycle into every channel's trace state.
    /// No-op (one branch) when no sink is attached.
    pub fn set_trace_cycle(&mut self, cycle: u64) {
        if !self.traced {
            return;
        }
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.set_trace_cycle(cycle);
        }
    }

    /// Highest occupancy ever observed on any processor → hardware
    /// channel.
    pub fn max_to_hw_occupancy(&self) -> usize {
        self.to_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Highest occupancy ever observed on any hardware → processor
    /// channel.
    pub fn max_from_hw_occupancy(&self) -> usize {
        self.from_hw.iter().map(|f| f.stats().max_occupancy).max().unwrap_or(0)
    }

    /// Processor-to-hardware channel `ch` (the CPU writes here).
    pub fn to_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.to_hw[ch]
    }

    /// Hardware-to-processor channel `ch` (the CPU reads here).
    pub fn from_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.from_hw[ch]
    }

    /// Immutable view of a processor-to-hardware channel.
    pub fn to_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.to_hw[ch]
    }

    /// Immutable view of a hardware-to-processor channel.
    pub fn from_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.from_hw[ch]
    }

    /// Resets every FIFO.
    pub fn clear(&mut self) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.clear();
        }
    }

    /// Total words currently buffered in both directions.
    pub fn words_in_flight(&self) -> usize {
        self.to_hw.iter().chain(self.from_hw.iter()).map(FslFifo::len).sum()
    }

    /// Total successful pushes + pops across every channel in both
    /// directions — a monotone progress counter for liveness watchdogs:
    /// if it stops advancing, no word is moving anywhere in the bank.
    pub fn total_ops(&self) -> u64 {
        self.to_hw
            .iter()
            .chain(self.from_hw.iter())
            .map(|f| f.stats().pushes + f.stats().pops)
            .sum()
    }

    /// Captures every channel's snapshot state.
    pub fn save_state(&self) -> FslBankState {
        FslBankState {
            to_hw: self.to_hw.iter().map(FslFifo::save_state).collect(),
            from_hw: self.from_hw.iter().map(FslFifo::save_state).collect(),
        }
    }

    /// Restores a snapshot taken by [`FslBank::save_state`].
    ///
    /// # Panics
    /// Panics on a channel-count mismatch or when any channel's snapshot
    /// exceeds its FIFO depth.
    pub fn load_state(&mut self, state: &FslBankState) {
        assert_eq!(state.to_hw.len(), CHANNELS, "snapshot channel count");
        assert_eq!(state.from_hw.len(), CHANNELS, "snapshot channel count");
        for (f, s) in self.to_hw.iter_mut().zip(&state.to_hw) {
            f.load_state(s);
        }
        for (f, s) in self.from_hw.iter_mut().zip(&state.from_hw) {
            f.load_state(s);
        }
    }
}

/// Serializable state of a full FSL bank (see [`FslBank::save_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FslBankState {
    /// Processor → hardware channels, index order.
    pub to_hw: Vec<FslFifoState>,
    /// Hardware → processor channels, index order.
    pub from_hw: Vec<FslFifoState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = FslFifo::new(4);
        assert!(f.try_push(FslWord::data(1)));
        assert!(f.try_push(FslWord::control(2)));
        assert_eq!(f.try_pop(), Some(FslWord::data(1)));
        assert_eq!(f.try_pop(), Some(FslWord::control(2)));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn full_and_exists_flags() {
        let mut f = FslFifo::new(2);
        assert!(!f.exists());
        assert!(!f.full());
        f.try_push(FslWord::data(1));
        assert!(f.exists());
        f.try_push(FslWord::data(2));
        assert!(f.full());
        assert!(!f.try_push(FslWord::data(3)), "push into full FIFO must fail");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut f = FslFifo::new(2);
        f.try_push(FslWord::data(1));
        f.try_push(FslWord::data(2));
        f.try_push(FslWord::data(3)); // rejected
        f.try_pop();
        f.try_pop();
        f.try_pop(); // rejected
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 2);
        assert_eq!(s.full_rejections, 1);
        assert_eq!(s.empty_rejections, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn control_bit_survives_transit() {
        let mut bank = FslBank::default();
        bank.to_hw(0).try_push(FslWord::control(0xC0));
        bank.to_hw(0).try_push(FslWord::data(0xD0));
        let w0 = bank.to_hw(0).try_pop().unwrap();
        let w1 = bank.to_hw(0).try_pop().unwrap();
        assert!(w0.control && w0.data == 0xC0);
        assert!(!w1.control && w1.data == 0xD0);
    }

    #[test]
    fn bank_directions_are_independent() {
        let mut bank = FslBank::new(4);
        bank.to_hw(3).try_push(FslWord::data(7));
        assert!(bank.from_hw(3).is_empty());
        assert_eq!(bank.words_in_flight(), 1);
        bank.clear();
        assert_eq!(bank.words_in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = FslFifo::new(0);
    }

    #[test]
    fn ecc_corrects_every_single_bit_payload_flip() {
        for &word in &[FslWord::data(0), FslWord::control(0xdead_beef), FslWord::data(u32::MAX)] {
            let check = ecc_encode(word);
            for bit in 0..33 {
                let mut upset = word;
                if bit < 32 {
                    upset.data ^= 1 << bit;
                } else {
                    upset.control = !upset.control;
                }
                assert_eq!(ecc_decode(upset, check), (word, EccVerdict::Corrected), "bit {bit}");
            }
            assert_eq!(ecc_decode(word, check), (word, EccVerdict::Clean));
        }
    }

    #[test]
    fn ecc_flags_double_bit_flips_uncorrectable() {
        let word = FslWord::data(0x1234_5678);
        let check = ecc_encode(word);
        for (a, b) in [(0u32, 1u32), (3, 17), (5, 31), (0, 31)] {
            let mut upset = word;
            upset.data ^= (1 << a) | (1 << b);
            let (_, verdict) = ecc_decode(upset, check);
            assert_eq!(verdict, EccVerdict::Uncorrectable, "bits {a},{b}");
        }
    }

    #[test]
    fn ecc_fifo_corrects_in_flight_corruption() {
        let mut f = FslFifo::new(4);
        f.set_ecc(true);
        f.try_push(FslWord::data(0xaaaa_5555));
        f.try_push(FslWord::control(7));
        // Flip one bit of the buffered head; the check byte goes stale.
        f.word_mut(0).unwrap().data ^= 1 << 13;
        assert_eq!(f.try_pop(), Some(FslWord::data(0xaaaa_5555)), "flip corrected at pop");
        assert_eq!(f.try_pop(), Some(FslWord::control(7)));
        assert_eq!(f.stats().ecc_corrected, 1);
        assert_eq!(f.stats().ecc_uncorrectable, 0);
    }

    #[test]
    fn ecc_fifo_signals_uncorrectable_and_delivers_word() {
        let mut f = FslFifo::new(4);
        f.set_ecc(true);
        f.try_push(FslWord::data(0x0f0f_0f0f));
        let w = f.word_mut(0).unwrap();
        w.data ^= (1 << 2) | (1 << 21);
        assert_eq!(f.try_pop(), Some(FslWord::data(0x0f0f_0f0f ^ (1 << 2) ^ (1 << 21))));
        assert_eq!(f.stats().ecc_uncorrectable, 1);
    }

    #[test]
    fn ecc_survives_protocol_faults_and_snapshots() {
        let mut f = FslFifo::new(4);
        f.set_ecc(true);
        f.try_push(FslWord::data(1));
        f.try_push(FslWord::data(2));
        f.try_push(FslWord::data(3));
        assert!(f.duplicate_head());
        assert_eq!(f.remove_word(2), Some(FslWord::data(2)));
        let snap = f.save_state();
        let mut g = FslFifo::new(4);
        g.load_state(&snap);
        assert_eq!(g.try_pop(), Some(FslWord::data(1)));
        assert_eq!(g.try_pop(), Some(FslWord::data(1)));
        assert_eq!(g.try_pop(), Some(FslWord::data(3)));
        assert_eq!(g.stats().ecc_corrected, 0, "clean traffic stays clean");
        assert_eq!(g.stats().ecc_uncorrectable, 0);
    }
}
