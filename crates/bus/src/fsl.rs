//! Cycle-accurate arithmetic-level model of the Xilinx Fast Simplex Link.
//!
//! FSLs are the unidirectional FIFO channels through which MicroBlaze talks
//! to customized hardware peripherals (§III-B of the paper). Each channel
//! carries 32-bit words tagged with a *control* bit; the processor sees a
//! `full` flag on its write side and an `exists` flag on its read side. The
//! paper's co-simulator models exactly these flags plus the FIFO contents —
//! "the high-level simulation of the communication interface only captures
//! the arithmetic aspects of the communication protocols regardless
//! of whether the data buffering ... is realized using registers, slices
//! or embedded memory blocks."

use std::collections::VecDeque;

/// Default FSL FIFO depth (the Xilinx FSL macro default).
pub const DEFAULT_DEPTH: usize = 16;

/// One word traveling over an FSL: 32 data bits plus the control bit.
///
/// The applications in the paper use the control bit to mark configuration
/// words (the CORDIC `C0` constant, the matrix-B block elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FslWord {
    /// The 32-bit payload.
    pub data: u32,
    /// The control flag (`Out#_control` on the reader side).
    pub control: bool,
}

impl FslWord {
    /// A data word (control bit clear).
    pub const fn data(data: u32) -> FslWord {
        FslWord { data, control: false }
    }

    /// A control word (control bit set).
    pub const fn control(data: u32) -> FslWord {
        FslWord { data, control: true }
    }
}

/// Occupancy and traffic statistics for one FSL channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FslStats {
    /// Total words pushed.
    pub pushes: u64,
    /// Total words popped.
    pub pops: u64,
    /// Push attempts rejected because the FIFO was full.
    pub full_rejections: u64,
    /// Pop attempts rejected because the FIFO was empty.
    pub empty_rejections: u64,
    /// High-water mark of FIFO occupancy.
    pub max_occupancy: usize,
}

/// A single unidirectional FSL FIFO channel.
#[derive(Debug, Clone)]
pub struct FslFifo {
    queue: VecDeque<FslWord>,
    depth: usize,
    stats: FslStats,
}

impl Default for FslFifo {
    fn default() -> Self {
        FslFifo::new(DEFAULT_DEPTH)
    }
}

impl FslFifo {
    /// Creates a channel with the given FIFO depth.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> FslFifo {
        assert!(depth > 0, "FSL FIFO depth must be positive");
        FslFifo { queue: VecDeque::with_capacity(depth), depth, stats: FslStats::default() }
    }

    /// FIFO capacity in words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no word is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The `FSL#_full` flag the writer observes.
    pub fn full(&self) -> bool {
        self.queue.len() >= self.depth
    }

    /// The `FSL#_exists` flag the reader observes.
    pub fn exists(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Attempts to push one word; returns `false` (and leaves the FIFO
    /// unchanged) when full. Matches the blocking-write stall condition.
    pub fn try_push(&mut self, word: FslWord) -> bool {
        if self.full() {
            self.stats.full_rejections += 1;
            return false;
        }
        self.queue.push_back(word);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        true
    }

    /// Attempts to pop one word; `None` when empty.
    pub fn try_pop(&mut self) -> Option<FslWord> {
        match self.queue.pop_front() {
            Some(w) => {
                self.stats.pops += 1;
                Some(w)
            }
            None => {
                self.stats.empty_rejections += 1;
                None
            }
        }
    }

    /// The word at the head without consuming it.
    pub fn peek(&self) -> Option<FslWord> {
        self.queue.front().copied()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> FslStats {
        self.stats
    }

    /// Empties the FIFO (reset).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Number of FSL channels per direction on MicroBlaze.
pub const CHANNELS: usize = 8;

/// The full set of FSL channels attached to a soft processor:
/// eight *master* (processor → hardware) and eight *slave*
/// (hardware → processor) channels, as on MicroBlaze.
#[derive(Debug, Clone)]
pub struct FslBank {
    /// Processor → peripheral channels (CPU `put` side).
    to_hw: [FslFifo; CHANNELS],
    /// Peripheral → processor channels (CPU `get` side).
    from_hw: [FslFifo; CHANNELS],
}

impl Default for FslBank {
    fn default() -> Self {
        FslBank::new(DEFAULT_DEPTH)
    }
}

impl FslBank {
    /// Creates a bank with uniform FIFO depth.
    pub fn new(depth: usize) -> FslBank {
        FslBank {
            to_hw: std::array::from_fn(|_| FslFifo::new(depth)),
            from_hw: std::array::from_fn(|_| FslFifo::new(depth)),
        }
    }

    /// Processor-to-hardware channel `ch` (the CPU writes here).
    pub fn to_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.to_hw[ch]
    }

    /// Hardware-to-processor channel `ch` (the CPU reads here).
    pub fn from_hw(&mut self, ch: usize) -> &mut FslFifo {
        &mut self.from_hw[ch]
    }

    /// Immutable view of a processor-to-hardware channel.
    pub fn to_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.to_hw[ch]
    }

    /// Immutable view of a hardware-to-processor channel.
    pub fn from_hw_ref(&self, ch: usize) -> &FslFifo {
        &self.from_hw[ch]
    }

    /// Resets every FIFO.
    pub fn clear(&mut self) {
        for f in self.to_hw.iter_mut().chain(self.from_hw.iter_mut()) {
            f.clear();
        }
    }

    /// Total words currently buffered in both directions.
    pub fn words_in_flight(&self) -> usize {
        self.to_hw.iter().chain(self.from_hw.iter()).map(FslFifo::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = FslFifo::new(4);
        assert!(f.try_push(FslWord::data(1)));
        assert!(f.try_push(FslWord::control(2)));
        assert_eq!(f.try_pop(), Some(FslWord::data(1)));
        assert_eq!(f.try_pop(), Some(FslWord::control(2)));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn full_and_exists_flags() {
        let mut f = FslFifo::new(2);
        assert!(!f.exists());
        assert!(!f.full());
        f.try_push(FslWord::data(1));
        assert!(f.exists());
        f.try_push(FslWord::data(2));
        assert!(f.full());
        assert!(!f.try_push(FslWord::data(3)), "push into full FIFO must fail");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut f = FslFifo::new(2);
        f.try_push(FslWord::data(1));
        f.try_push(FslWord::data(2));
        f.try_push(FslWord::data(3)); // rejected
        f.try_pop();
        f.try_pop();
        f.try_pop(); // rejected
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 2);
        assert_eq!(s.full_rejections, 1);
        assert_eq!(s.empty_rejections, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn control_bit_survives_transit() {
        let mut bank = FslBank::default();
        bank.to_hw(0).try_push(FslWord::control(0xC0));
        bank.to_hw(0).try_push(FslWord::data(0xD0));
        let w0 = bank.to_hw(0).try_pop().unwrap();
        let w1 = bank.to_hw(0).try_pop().unwrap();
        assert!(w0.control && w0.data == 0xC0);
        assert!(!w1.control && w1.data == 0xD0);
    }

    #[test]
    fn bank_directions_are_independent() {
        let mut bank = FslBank::new(4);
        bank.to_hw(3).try_push(FslWord::data(7));
        assert!(bank.from_hw(3).is_empty());
        assert_eq!(bank.words_in_flight(), 1);
        bank.clear();
        assert_eq!(bank.words_in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = FslFifo::new(0);
    }
}
