//! Structural RTL netlist of the CORDIC pipeline — what System Generator
//! would emit for the Fig. 4 design, simulated in the event-driven
//! low-level baseline.
//!
//! Cycle semantics match the block-level peripheral exactly (validated by
//! the cross-simulator tests): deserializer, PEs and serializer latch on
//! rising clock edges; the FSL interface stages run on falling edges.
//! Each PE additionally instantiates combinational add/sub observers so
//! the event kernel sees the same per-cycle datapath traffic the real
//! netlist would generate.

use crate::cordic::reference;
use softsim_isa::Image;
use softsim_rtl::kernel::Primitives;
use softsim_rtl::{comp, RtlStop, SocRtl};
use std::collections::VecDeque;

/// Primitive bill of one PE's registers (the add/sub LUTs are counted by
/// the combinational observer components themselves): stage registers
/// pack into the adder slices, leaving the XS/C registers.
const PE_PRIMITIVES: Primitives = Primitives { ff_bits: 62, lut_bits: 0, mult18s: 0, brams: 0 };
/// Deserializer: three 32-bit holding registers plus phase control.
const DESER_PRIMITIVES: Primitives =
    Primitives { ff_bits: 100, lut_bits: 24, mult18s: 0, brams: 0 };
/// Serializer: SRL16 buffering plus output register and control.
const SER_PRIMITIVES: Primitives = Primitives { ff_bits: 40, lut_bits: 40, mult18s: 0, brams: 0 };

/// Builds the full low-level system: MB32 SoC plus the `p`-PE CORDIC
/// pipeline on FSL channel 0, running `image`.
pub fn build_cordic_rtl(image: &Image, p: usize) -> SocRtl {
    let mut soc = SocRtl::new(image);
    attach_cordic_rtl(&mut soc, p);
    soc
}

/// Attaches the pipeline to an existing SoC.
pub fn attach_cordic_rtl(soc: &mut SocRtl, p: usize) {
    assert!(p >= 1);
    let hin = soc.hw_in(0);
    let hout = soc.hw_out(0);
    let clk = soc.clock.clk;
    let k = &mut soc.kernel;

    // Stage-boundary signals: index 0 is the deserializer output.
    let mut xs = Vec::new();
    let mut y = Vec::new();
    let mut z = Vec::new();
    let mut tv = Vec::new();
    let mut c = Vec::new();
    let mut cl = Vec::new();
    for i in 0..=p {
        xs.push(k.signal(format!("st{i}_xs"), 32));
        y.push(k.signal(format!("st{i}_y"), 32));
        z.push(k.signal(format!("st{i}_z"), 32));
        tv.push(k.signal(format!("st{i}_tv"), 1));
        c.push(k.signal(format!("st{i}_c"), 32));
        cl.push(k.signal(format!("st{i}_cl"), 1));
    }

    // Deserializer FSM (rising edge).
    {
        k.add_primitives(DESER_PRIMITIVES);
        let (o_xs, o_y, o_z, o_tv, o_c, o_cl) = (xs[0], y[0], z[0], tv[0], c[0], cl[0]);
        let mut phase = 0u8;
        let (mut rxs, mut ry) = (0u32, 0u32);
        k.process("cordic_deser", &[clk], move |ctx| {
            if !ctx.rising(clk) {
                return;
            }
            ctx.set(o_tv, 0);
            ctx.set(o_cl, 0);
            if ctx.get(hin.valid) == 0 {
                return;
            }
            let data = ctx.get(hin.data) as u32;
            if ctx.get(hin.ctrl) != 0 {
                ctx.set(o_c, data as u64);
                ctx.set(o_cl, 1);
                return;
            }
            match phase {
                0 => rxs = data,
                1 => ry = data,
                _ => {
                    ctx.set(o_xs, rxs as u64);
                    ctx.set(o_y, ry as u64);
                    ctx.set(o_z, data as u64);
                    ctx.set(o_tv, 1);
                }
            }
            phase = (phase + 1) % 3;
        });
    }

    // PE chain (rising edge) with combinational observers.
    for i in 0..p {
        k.add_primitives(PE_PRIMITIVES);
        let (i_xs, i_y, i_z, i_tv, i_c, i_cl) = (xs[i], y[i], z[i], tv[i], c[i], cl[i]);
        let (o_xs, o_y, o_z, o_tv, o_c, o_cl) =
            (xs[i + 1], y[i + 1], z[i + 1], tv[i + 1], c[i + 1], cl[i + 1]);
        let mut c_reg: i32 = 0;
        k.process(format!("cordic_pe{i}"), &[clk], move |ctx| {
            if !ctx.rising(clk) {
                return;
            }
            if ctx.get(i_cl) != 0 {
                c_reg = ctx.get(i_c) as u32 as i32;
                ctx.set(o_c, ((c_reg >> 1) as u32) as u64);
                ctx.set(o_cl, 1);
            } else {
                ctx.set(o_cl, 0);
            }
            let t = ctx.get(i_tv) != 0;
            ctx.set(o_tv, t as u64);
            if t {
                let (nxs, ny, nz) = reference::iterate(
                    ctx.get(i_xs) as u32 as i32,
                    ctx.get(i_y) as u32 as i32,
                    ctx.get(i_z) as u32 as i32,
                    c_reg,
                );
                ctx.set(o_xs, (nxs as u32) as u64);
                ctx.set(o_y, (ny as u32) as u64);
                ctx.set(o_z, (nz as u32) as u64);
            }
        });
        // Combinational Y/Z add-sub observers: the structural datapath
        // the clocked stage registers would capture.
        let y_sum = k.signal(format!("pe{i}_y_addsub"), 32);
        let z_sum = k.signal(format!("pe{i}_z_addsub"), 32);
        let d = k.signal(format!("pe{i}_d"), 1);
        comp::sign_bit(k, &format!("pe{i}_sign"), i_y, d, 32);
        comp::addsub(k, &format!("pe{i}_yas"), i_y, i_xs, Some(d), y_sum, 32);
        comp::addsub(k, &format!("pe{i}_zas"), i_z, i_c, Some(d), z_sum, 32);
    }

    // Serializer FSM (rising edge): queue (Y, Z) pairs, one word/cycle.
    {
        k.add_primitives(SER_PRIMITIVES);
        let (i_y, i_z, i_tv) = (y[p], z[p], tv[p]);
        let mut queue: VecDeque<u64> = VecDeque::new();
        k.process("cordic_ser", &[clk], move |ctx| {
            if !ctx.rising(clk) {
                return;
            }
            if ctx.get(i_tv) != 0 {
                queue.push_back(ctx.get(i_y));
                queue.push_back(ctx.get(i_z));
            }
            match queue.pop_front() {
                Some(w) => {
                    ctx.set(hout.data, w);
                    ctx.set(hout.valid, 1);
                }
                None => ctx.set(hout.valid, 0),
            }
        });
    }
}

/// Convenience: run a CORDIC image against the RTL system.
pub fn run_cordic_rtl(image: &Image, p: usize, max_cycles: u64) -> (SocRtl, RtlStop) {
    let mut soc = build_cordic_rtl(image, p);
    let stop = soc.run(max_cycles);
    (soc, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cordic::reference;
    use crate::cordic::software::{hw_program, CordicBatch, RESULT_LABEL};
    use softsim_isa::asm::assemble;

    fn batch() -> CordicBatch {
        CordicBatch::new(&[
            (reference::to_fix(1.0), reference::to_fix(0.5)),
            (reference::to_fix(1.5), reference::to_fix(1.2)),
            (reference::to_fix(2.0), reference::to_fix(-1.0)),
        ])
    }

    #[test]
    fn rtl_pipeline_matches_reference() {
        let b = batch();
        for p in [2usize, 4] {
            let img = assemble(&hw_program(&b, 24, p)).unwrap();
            let (soc, stop) = run_cordic_rtl(&img, p, 1_000_000);
            assert_eq!(stop, RtlStop::Halted, "P={p}");
            let base = img.symbol(RESULT_LABEL).unwrap();
            for i in 0..b.len() {
                let got = soc.mem_word(base + 4 * i as u32) as i32;
                let expect = reference::divide_fix(b.a[i], b.b[i], 24);
                assert_eq!(got, expect, "P={p} sample {i}");
            }
        }
    }

    #[test]
    fn rtl_cycle_count_matches_cosim() {
        // The paper's premise: the high-level co-simulation is
        // cycle-accurate with respect to the low-level implementation.
        let b = batch();
        for p in [2usize, 4, 8] {
            let img = assemble(&hw_program(&b, 24, p)).unwrap();
            let mut cosim = softsim_cosim::CoSim::with_peripheral(
                &img,
                crate::cordic::hardware::cordic_peripheral(p),
            );
            assert_eq!(cosim.run(1_000_000), softsim_cosim::CoSimStop::Halted);
            let (soc, stop) = run_cordic_rtl(&img, p, 1_000_000);
            assert_eq!(stop, RtlStop::Halted);
            assert_eq!(
                soc.cpu_cycles(),
                cosim.cpu_stats().cycles,
                "P={p}: RTL and co-sim must agree cycle-exactly"
            );
        }
    }

    #[test]
    fn rtl_actual_resources_near_estimate() {
        // Table I: estimated (System Generator) vs actual (place & route)
        // track each other within a few percent.
        for p in [2usize, 4, 6, 8] {
            let b = batch();
            let img = assemble(&hw_program(&b, 24, p)).unwrap();
            let soc = build_cordic_rtl(&img, p);
            let actual = softsim_resource::actual_from_primitives(soc.kernel.primitives());
            let cfg = softsim_resource::SystemConfig {
                program: &img,
                peripheral: crate::cordic::hardware::pipeline_resources(p),
                fsl_channels: 1,
            };
            let est = softsim_resource::estimate_system(&cfg, &Default::default());
            let err = softsim_resource::slice_error(est, actual);
            assert!(
                err.abs() < 0.08,
                "P={p}: estimated {} vs actual {} ({:+.1}%)",
                est.slices,
                actual.slices,
                err * 100.0
            );
            assert_eq!(est.mult18s, actual.mult18s, "PEs use no multipliers");
        }
    }
}
