//! MB32 software for the CORDIC division application (§IV-A): the pure
//! software implementation (the paper's `P = 0` baseline) and the
//! HW-accelerated driver that streams data through the PE pipeline.
//!
//! Two code-generation styles are provided for the software kernel:
//!
//! * [`SwStyle::Compiled`] keeps the loop state in stack slots, like the
//!   unoptimized `mb-gcc` output of the paper's era EDK flow — this is
//!   the baseline style for reproducing Figure 5;
//! * [`SwStyle::HandOptimized`] keeps everything in registers, a bound on
//!   how fast the software can possibly get (used as an ablation).

use crate::cordic::reference::ONE;

/// Software kernel code-generation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwStyle {
    /// Stack-resident locals, reloaded/spilled each iteration (compiled
    /// C, low optimization — the paper's software baseline).
    Compiled,
    /// Register-resident state (hand-tuned assembly upper bound).
    HandOptimized,
}

/// Batch of division inputs: `(a, b)` pairs in Q8.24, `b / a` requested.
#[derive(Debug, Clone)]
pub struct CordicBatch {
    /// Divisors (`a`, must be positive and within convergence).
    pub a: Vec<i32>,
    /// Dividends (`b`).
    pub b: Vec<i32>,
}

impl CordicBatch {
    /// A batch from `(a, b)` pairs.
    pub fn new(pairs: &[(i32, i32)]) -> CordicBatch {
        CordicBatch {
            a: pairs.iter().map(|p| p.0).collect(),
            b: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Address of the results array (`Z` values, Q8.24) in the generated
/// programs' data section.
pub const RESULT_LABEL: &str = "z_data";

/// Generates the pure-software CORDIC division program: divides every
/// `b[i] / a[i]` with `iterations` steps, leaving quotients at
/// [`RESULT_LABEL`].
pub fn sw_program(batch: &CordicBatch, iterations: u32, style: SwStyle) -> String {
    sw_program_repeated(batch, iterations, style, 1)
}

/// Like [`sw_program`] but processing the batch `reps` times, for
/// simulation-speed measurements over longer runs (the paper times
/// ~1.5 ms of simulated execution).
pub fn sw_program_repeated(
    batch: &CordicBatch,
    iterations: u32,
    style: SwStyle,
    reps: u32,
) -> String {
    let n = batch.len();
    assert!(n > 0, "empty batch");
    assert!(reps >= 1);
    let kernel = match style {
        SwStyle::Compiled => COMPILED_KERNEL,
        SwStyle::HandOptimized => OPTIMIZED_KERNEL,
    };
    format!(
        ".equ NSAMPLES, {n}\n\
         .equ ITERS, {iterations}\n\
         start:\n\
         \tli   r31, {reps}\n\
         outer:\n\
         \tli   r21, a_data\n\
         \tli   r22, b_data\n\
         \tli   r23, {RESULT_LABEL}\n\
         \tli   r20, NSAMPLES\n\
         {kernel}\
         \taddik r31, r31, -1\n\
         \tbnei r31, outer\n\
         \thalt\n\
         \n\
         .align 4\n\
         a_data: .word {a}\n\
         b_data: .word {b}\n\
         {RESULT_LABEL}: .space {space}\n",
        a = words(&batch.a),
        b = words(&batch.b),
        space = 4 * n,
    )
}

/// Stack-style kernel: XS, Y, Z, C and the loop counter live in memory
/// (the `frame` scratch area), reloaded and spilled as compiled code
/// would at low optimization.
const COMPILED_KERNEL: &str = "\
sample:\tlwi  r5, r21, 0        # XS = a\n\
\tswi  r5, r0, frame+0\n\
\tlwi  r6, r22, 0        # Y = b\n\
\tswi  r6, r0, frame+4\n\
\tswi  r0, r0, frame+8   # Z = 0\n\
\tli   r8, 0x1000000     # C = 1.0 (Q8.24)\n\
\tswi  r8, r0, frame+12\n\
\tli   r9, ITERS\n\
\tswi  r9, r0, frame+16\n\
iter:\tlwi  r5, r0, frame+0\n\
\tlwi  r6, r0, frame+4\n\
\tlwi  r7, r0, frame+8\n\
\tlwi  r8, r0, frame+12\n\
\tbgei r6, ypos\n\
\taddk r6, r6, r5        # Y += XS\n\
\trsubk r7, r8, r7       # Z -= C\n\
\tbri  join\n\
ypos:\trsubk r6, r5, r6       # Y -= XS\n\
\taddk r7, r7, r8        # Z += C\n\
join:\tsra  r5, r5            # XS >>= 1\n\
\tsrl  r8, r8            # C >>= 1\n\
\tswi  r5, r0, frame+0\n\
\tswi  r6, r0, frame+4\n\
\tswi  r7, r0, frame+8\n\
\tswi  r8, r0, frame+12\n\
\tlwi  r9, r0, frame+16\n\
\taddik r9, r9, -1\n\
\tswi  r9, r0, frame+16\n\
\tbnei r9, iter\n\
\tlwi  r7, r0, frame+8\n\
\tswi  r7, r23, 0        # store quotient\n\
\taddik r21, r21, 4\n\
\taddik r22, r22, 4\n\
\taddik r23, r23, 4\n\
\taddik r20, r20, -1\n\
\tbnei r20, sample\n\
\tbri  done\n\
.align 4\n\
frame:\t.space 20\n\
done:\n";

/// Register-resident kernel (hand-optimized bound).
const OPTIMIZED_KERNEL: &str = "\
sample:\tlwi  r5, r21, 0        # XS = a\n\
\tlwi  r6, r22, 0        # Y = b\n\
\taddk r7, r0, r0        # Z = 0\n\
\tli   r8, 0x1000000     # C = 1.0\n\
\tli   r9, ITERS\n\
iter:\tbgei r6, ypos\n\
\taddk r6, r6, r5\n\
\trsubk r7, r8, r7\n\
\tbri  join\n\
ypos:\trsubk r6, r5, r6\n\
\taddk r7, r7, r8\n\
join:\tsra  r5, r5\n\
\tsrl  r8, r8\n\
\taddik r9, r9, -1\n\
\tbnei r9, iter\n\
\tswi  r7, r23, 0\n\
\taddik r21, r21, 4\n\
\taddik r22, r22, 4\n\
\taddik r23, r23, 4\n\
\taddik r20, r20, -1\n\
\tbnei r20, sample\n";

/// Generates the HW-accelerated program for a `p`-PE pipeline: data makes
/// `ceil(iterations / p)` passes through the peripheral on FSL channel 0.
/// Effective iterations are rounded up to a whole number of passes (the
/// extra iterations only add precision).
///
/// Per pass the program sends the control word `C_0 = 2^{-kP}` (Q8.24),
/// then for each sample the triple `XS = a·C_0, Y, Z` and reads back
/// `Y, Z`. Y/Z state lives in memory arrays between passes; `XS` is
/// recomputed from `a` with a constant barrel shift.
pub fn hw_program(batch: &CordicBatch, iterations: u32, p: usize) -> String {
    hw_program_repeated(batch, iterations, p, 1)
}

/// Like [`hw_program`] but processing the batch `reps` times (longer
/// simulated runs for the timing comparisons). Repetitions restart from
/// the previous results in `y_data`/`z_data`, which leaves the
/// instruction stream identical per repetition.
pub fn hw_program_repeated(batch: &CordicBatch, iterations: u32, p: usize, reps: u32) -> String {
    let n = batch.len();
    assert!(n > 0, "empty batch");
    assert!(reps >= 1);
    assert!(
        2 * n <= 16,
        "batch of {n} samples would overflow the 16-deep output FSL FIFO \
         (the paper: 'the size of each set of data is selected carefully')"
    );
    let passes = (iterations as usize).div_ceil(p);
    let mut s = String::new();
    s.push_str(&format!(
        ".equ NSAMPLES, {n}\nstart:\n\tli   r31, {reps}\nouter:\n\tli   r25, a_data\n\tli   r26, y_data\n\tli   r27, {RESULT_LABEL}\n"
    ));
    for pass in 0..passes {
        let shift = (pass * p) as u32;
        let c0 = if shift >= 31 { 0 } else { ONE >> shift };
        s.push_str(&format!(
            "# ---- pass {pass}: C0 = 2^-{shift}\n\
             \tli   r8, {c0}\n\
             \tcput r8, rfsl0\n\
             \tli   r20, NSAMPLES\n\
             \taddk r21, r25, r0\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             send{pass}:\n\
             \tlwi  r5, r21, 0\n"
        ));
        if shift > 0 {
            s.push_str(&format!("\tbsrai r5, r5, {}\n", shift.min(31)));
        }
        s.push_str(&format!(
            "\tput  r5, rfsl0         # XS\n\
             \tlwi  r6, r22, 0\n\
             \tput  r6, rfsl0         # Y\n\
             \tlwi  r7, r23, 0\n\
             \tput  r7, rfsl0         # Z\n\
             \taddik r21, r21, 4\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, send{pass}\n\
             \tli   r20, NSAMPLES\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             recv{pass}:\n\
             \tget  r6, rfsl0         # Y'\n\
             \tswi  r6, r22, 0\n\
             \tget  r7, rfsl0         # Z'\n\
             \tswi  r7, r23, 0\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, recv{pass}\n"
        ));
    }
    s.push_str(&format!(
        "\taddik r31, r31, -1\n\tbnei r31, outer\n\thalt\n\n.align 4\na_data: .word {a}\ny_data: .word {b}\n{RESULT_LABEL}: .space {space}\n",
        a = words(&batch.a),
        b = words(&batch.b),
        space = 4 * n,
    ));
    s
}

/// Generates the driver for the dual-output pipeline
/// ([`crate::cordic::hardware::cordic_peripheral_dual`]): Y results come
/// back on FSL 0, Z results on FSL 1, permitting batches of up to 16
/// samples per set.
pub fn hw_program_dual(batch: &CordicBatch, iterations: u32, p: usize) -> String {
    let n = batch.len();
    assert!(n > 0, "empty batch");
    assert!(n <= 16, "batch of {n} samples would overflow the per-channel output FIFOs");
    let passes = (iterations as usize).div_ceil(p);
    let mut s = String::new();
    s.push_str(&format!(
        ".equ NSAMPLES, {n}\nstart:\n\tli   r25, a_data\n\tli   r26, y_data\n\tli   r27, {RESULT_LABEL}\n"
    ));
    for pass in 0..passes {
        let shift = (pass * p) as u32;
        let c0 = if shift >= 31 { 0 } else { ONE >> shift };
        s.push_str(&format!(
            "# ---- pass {pass}: C0 = 2^-{shift}\n\
             \tli   r8, {c0}\n\
             \tcput r8, rfsl0\n\
             \tli   r20, NSAMPLES\n\
             \taddk r21, r25, r0\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             send{pass}:\n\
             \tlwi  r5, r21, 0\n"
        ));
        if shift > 0 {
            s.push_str(&format!("\tbsrai r5, r5, {}\n", shift.min(31)));
        }
        s.push_str(&format!(
            "\tput  r5, rfsl0         # XS\n\
             \tlwi  r6, r22, 0\n\
             \tput  r6, rfsl0         # Y\n\
             \tlwi  r7, r23, 0\n\
             \tput  r7, rfsl0         # Z\n\
             \taddik r21, r21, 4\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, send{pass}\n\
             \tli   r20, NSAMPLES\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             recv{pass}:\n\
             \tget  r6, rfsl0         # Y' (channel 0)\n\
             \tswi  r6, r22, 0\n\
             \tget  r7, rfsl1         # Z' (channel 1)\n\
             \tswi  r7, r23, 0\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, recv{pass}\n"
        ));
    }
    s.push_str(&format!(
        "\thalt\n\n.align 4\na_data: .word {a}\ny_data: .word {b}\n{RESULT_LABEL}: .space {space}\n",
        a = words(&batch.a),
        b = words(&batch.b),
        space = 4 * n,
    ));
    s
}

/// Number of passes the HW program makes for `iterations` on `p` PEs.
pub fn passes(iterations: u32, p: usize) -> usize {
    (iterations as usize).div_ceil(p)
}

/// Effective iterations performed (rounded up to whole passes).
pub fn effective_iterations(iterations: u32, p: usize) -> u32 {
    (passes(iterations, p) * p) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cordic::hardware::cordic_peripheral;
    use crate::cordic::reference;
    use softsim_cosim::{CoSim, CoSimStop};
    use softsim_isa::asm::assemble;

    fn batch() -> CordicBatch {
        CordicBatch::new(&[
            (reference::to_fix(1.0), reference::to_fix(0.5)),
            (reference::to_fix(1.5), reference::to_fix(1.2)),
            (reference::to_fix(2.0), reference::to_fix(-1.0)),
            (reference::to_fix(1.25), reference::to_fix(0.8)),
        ])
    }

    fn read_results(sim: &CoSim, img: &softsim_isa::Image, n: usize) -> Vec<i32> {
        let base = img.symbol(RESULT_LABEL).expect("result label");
        (0..n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32).collect()
    }

    #[test]
    fn sw_both_styles_match_reference() {
        for style in [SwStyle::Compiled, SwStyle::HandOptimized] {
            let b = batch();
            let img = assemble(&sw_program(&b, 24, style)).expect("assembles");
            let mut sim = CoSim::software_only(&img);
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "{style:?}");
            let results = read_results(&sim, &img, b.len());
            for (i, got) in results.iter().enumerate() {
                let expect = reference::divide_fix(b.a[i], b.b[i], 24);
                assert_eq!(*got, expect, "{style:?} sample {i}");
            }
        }
    }

    #[test]
    fn compiled_style_is_slower_than_optimized() {
        let b = batch();
        let run = |style| {
            let img = assemble(&sw_program(&b, 24, style)).unwrap();
            let mut sim = CoSim::software_only(&img);
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
            sim.cpu_stats().cycles
        };
        let compiled = run(SwStyle::Compiled);
        let optimized = run(SwStyle::HandOptimized);
        assert!(
            compiled > optimized * 3 / 2,
            "stack-resident code is much slower: {compiled} vs {optimized}"
        );
    }

    #[test]
    fn hw_program_matches_reference_for_all_p() {
        let b = batch();
        for p in [2usize, 4, 6, 8] {
            let iters = 24u32;
            let img = assemble(&hw_program(&b, iters, p)).expect("assembles");
            let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(p));
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "P={p}");
            assert_eq!(sim.hw_stats().output_overflows, 0);
            let results = read_results(&sim, &img, b.len());
            let eff = effective_iterations(iters, p);
            for (i, got) in results.iter().enumerate() {
                let expect = reference::divide_fix(b.a[i], b.b[i], eff);
                assert_eq!(*got, expect, "P={p} sample {i}");
            }
        }
    }

    #[test]
    fn hw_is_faster_than_sw_at_24_iterations() {
        // The core claim of Figure 5: attaching the pipeline beats pure
        // software at high iteration counts.
        let b = batch();
        let img = assemble(&sw_program(&b, 24, SwStyle::Compiled)).unwrap();
        let mut sw = CoSim::software_only(&img);
        assert_eq!(sw.run(10_000_000), CoSimStop::Halted);
        let img = assemble(&hw_program(&b, 24, 4)).unwrap();
        let mut hw = CoSim::with_peripheral(&img, cordic_peripheral(4));
        assert_eq!(hw.run(10_000_000), CoSimStop::Halted);
        let speedup = sw.cpu_stats().cycles as f64 / hw.cpu_stats().cycles as f64;
        assert!(speedup > 2.0, "P=4 speedup should be substantial, got {speedup:.2}");
    }

    #[test]
    fn dual_channel_variant_matches_reference() {
        // The Fig. 4 fidelity variant: Y on FSL0, Z on FSL1, batches up
        // to 16 samples.
        use crate::cordic::hardware::cordic_peripheral_dual;
        let pairs: Vec<(i32, i32)> = (0..16)
            .map(|i| {
                (reference::to_fix(1.0 + 0.1 * i as f64), reference::to_fix(0.5 + 0.05 * i as f64))
            })
            .collect();
        let b = CordicBatch::new(&pairs);
        for p in [2usize, 4] {
            let img = assemble(&hw_program_dual(&b, 24, p)).expect("assembles");
            let mut sim = CoSim::with_peripheral(&img, cordic_peripheral_dual(p));
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "P={p}");
            assert_eq!(sim.hw_stats().output_overflows, 0);
            let results = read_results(&sim, &img, b.len());
            let eff = effective_iterations(24, p);
            for (i, got) in results.iter().enumerate() {
                assert_eq!(*got, reference::divide_fix(b.a[i], b.b[i], eff), "P={p} sample {i}");
            }
        }
    }

    #[test]
    fn dual_channel_is_not_slower_than_single() {
        use crate::cordic::hardware::{cordic_peripheral, cordic_peripheral_dual};
        let b = batch();
        let single = {
            let img = assemble(&hw_program(&b, 24, 4)).unwrap();
            let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(4));
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
            sim.cpu_stats().cycles
        };
        let dual = {
            let img = assemble(&hw_program_dual(&b, 24, 4)).unwrap();
            let mut sim = CoSim::with_peripheral(&img, cordic_peripheral_dual(4));
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
            sim.cpu_stats().cycles
        };
        assert!(dual <= single, "dual-channel output: {dual} vs {single}");
    }

    #[test]
    fn more_pes_fewer_passes() {
        assert_eq!(passes(24, 4), 6);
        assert_eq!(passes(24, 8), 3);
        assert_eq!(passes(8, 6), 2);
        assert_eq!(effective_iterations(8, 6), 12);
    }
}
