//! Golden reference model of the adaptive CORDIC divider (§IV-A).
//!
//! Linear-mode vectoring CORDIC computes `b / a` iteratively (Eq. 1 of
//! the paper, reformulated as Eq. 2 so data can make repeated passes
//! through a fixed pipeline):
//!
//! ```text
//! X_{i+1} = X_i
//! Y_{i+1} = Y_i + d_i · X_i · C_i       d_i = +1 if Y_i < 0 else −1
//! Z_{i+1} = Z_i − d_i · C_i             C_{i+1} = C_i / 2,  C_0 = 1
//! ```
//!
//! After `n` iterations `Z_n ≈ b / a` (for `0 < b/a < 2` and positive
//! operands; the standard linear-CORDIC convergence domain).

/// Fractional bits of the Q8.24 fixed-point format used end to end
/// (32-bit words over the FSL; 24 iterations need 24 fractional bits).
pub const FRAC_BITS: u32 = 24;

/// Fixed-point one (`C_0`).
pub const ONE: i32 = 1 << FRAC_BITS;

/// Converts a float to Q8.24.
pub fn to_fix(v: f64) -> i32 {
    (v * ONE as f64).round() as i32
}

/// Converts Q8.24 to a float.
pub fn from_fix(v: i32) -> f64 {
    v as f64 / ONE as f64
}

/// One CORDIC iteration of Eq. 2 on `(xs, y, z)` state, where `xs` is the
/// pre-shifted `X·C_i` product and `c` is `C_i` itself.
#[inline]
pub fn iterate(xs: i32, y: i32, z: i32, c: i32) -> (i32, i32, i32) {
    if y < 0 {
        // d = +1: Y += X·C, Z -= C.
        (xs >> 1, y.wrapping_add(xs), z.wrapping_sub(c))
    } else {
        // d = −1: Y -= X·C, Z += C.
        (xs >> 1, y.wrapping_sub(xs), z.wrapping_add(c))
    }
}

/// Divides `b / a` with `iterations` CORDIC steps, entirely in Q8.24.
///
/// Returns the quotient in Q8.24. Inputs must lie in the convergence
/// domain (`a > 0`, `|b| < 2a`).
pub fn divide_fix(a: i32, b: i32, iterations: u32) -> i32 {
    let (mut xs, mut y, mut z) = (a, b, 0i32);
    let mut c = ONE;
    for _ in 0..iterations {
        let (nxs, ny, nz) = iterate(xs, y, z, c);
        xs = nxs;
        y = ny;
        z = nz;
        c >>= 1;
    }
    z
}

/// Float-domain wrapper around [`divide_fix`].
pub fn divide(a: f64, b: f64, iterations: u32) -> f64 {
    from_fix(divide_fix(to_fix(a), to_fix(b), iterations))
}

/// Absolute error bound after `n` iterations: the residual step size,
/// plus quantization slack.
pub fn error_bound(iterations: u32) -> f64 {
    2.0 / (1u64 << iterations.min(FRAC_BITS)) as f64 + 4.0 / ONE as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_quotient() {
        for &(a, b) in
            &[(1.0, 0.5), (1.5, 1.0), (2.0, 1.999), (3.0, 0.001), (1.0, -0.75), (2.5, -2.0)]
        {
            let q = divide(a, b, 24);
            let err = (q - b / a).abs();
            assert!(err <= error_bound(24), "{b}/{a}: got {q}, err {err}");
        }
    }

    #[test]
    fn precision_improves_with_iterations() {
        let exact: f64 = 0.7 / 1.3;
        let e8 = (divide(1.3, 0.7, 8) - exact).abs();
        let e24 = (divide(1.3, 0.7, 24) - exact).abs();
        assert!(e24 < e8, "24 iterations beat 8: {e24} vs {e8}");
        assert!(e8 <= error_bound(8));
    }

    #[test]
    fn adaptive_iteration_count_is_the_motivation() {
        // The paper's motivation: dynamic range decides how many
        // iterations are needed. A mid-range quotient is fine at 8
        // iterations; a high-precision one needs more.
        let coarse = (divide(1.0, 1.0, 8) - 1.0).abs();
        assert!(coarse <= error_bound(8));
        let fine = (divide(1.0, 1.0, 24) - 1.0).abs();
        assert!(fine <= error_bound(24));
    }

    #[test]
    fn fix_round_trip() {
        for v in [-1.5, -0.0625, 0.0, 0.333, 1.9999] {
            assert!((from_fix(to_fix(v)) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn iterate_matches_equation_signs() {
        // Y < 0: d = +1 → Y grows by XS, Z shrinks by C.
        let (_, y, z) = iterate(ONE, -ONE / 2, 0, ONE);
        assert_eq!(y, -ONE / 2 + ONE);
        assert_eq!(z, -ONE);
        // Y ≥ 0: d = −1 → Y shrinks, Z grows.
        let (_, y, z) = iterate(ONE, ONE / 2, 0, ONE);
        assert_eq!(y, ONE / 2 - ONE);
        assert_eq!(z, ONE);
    }
}
