//! The adaptive CORDIC processor for division (§IV-A of the paper).
//!
//! * [`mod@reference`] — the golden Eq. 1 / Eq. 2 model;
//! * [`hardware`] — the P-PE pipeline peripheral (block level);
//! * [`software`] — the pure-software kernel and the HW-accelerated
//!   driver program;
//! * [`rtl`] — the same pipeline as a structural RTL netlist for the
//!   low-level baseline.

pub mod divider;
pub mod hardware;
pub mod opb;
pub mod reference;
pub mod rtl;

pub mod software;
