//! OPB-attached variant of the CORDIC pipeline — the bus-protocol
//! ablation.
//!
//! The paper's environment supports both Fast Simplex Links and the
//! shared On-chip Peripheral Bus (§III-A). This module drives the *same*
//! PE pipeline through a memory-mapped OPB register interface
//! ([`softsim_cosim::OpbBlockAdapter`]): every transfer pays the OPB
//! read/write latency and results must be *polled*, so the comparison
//! against the FSL driver isolates the cost of the bus choice.

use crate::cordic::hardware::cordic_graph;
use crate::cordic::reference::ONE;
use crate::cordic::software::CordicBatch;
use softsim_bus::OpbBus;
use softsim_cosim::opb::{REG_RDATA, REG_STATUS, REG_WCTRL, REG_WDATA};
use softsim_cosim::{CoSim, OpbBlockAdapter};
use softsim_isa::asm::assemble;
use softsim_isa::Image;

/// Base address of the CORDIC peripheral on the OPB.
pub const CORDIC_OPB_BASE: u32 = 0x8000_0000;

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Generates the OPB driver program: same algorithm and passes as the
/// FSL driver, but transfers go through memory-mapped registers with
/// status polling.
pub fn opb_program(batch: &CordicBatch, iterations: u32, p: usize) -> String {
    let n = batch.len();
    assert!(n > 0, "empty batch");
    let passes = (iterations as usize).div_ceil(p);
    let mut s = String::new();
    s.push_str(&format!(
        ".equ NSAMPLES, {n}\n\
         start:\n\
         \tli   r30, {CORDIC_OPB_BASE}\n\
         \tli   r25, a_data\n\
         \tli   r26, y_data\n\
         \tli   r27, z_data\n"
    ));
    for pass in 0..passes {
        let shift = (pass * p) as u32;
        let c0 = if shift >= 31 { 0 } else { ONE >> shift };
        s.push_str(&format!(
            "# ---- pass {pass}\n\
             \tli   r8, {c0}\n\
             \tswi  r8, r30, {REG_WCTRL}\n\
             \tli   r20, NSAMPLES\n\
             \taddk r21, r25, r0\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             send{pass}:\n\
             \tlwi  r5, r21, 0\n"
        ));
        if shift > 0 {
            s.push_str(&format!("\tbsrai r5, r5, {}\n", shift.min(31)));
        }
        s.push_str(&format!(
            "\tswi  r5, r30, {REG_WDATA}\n\
             \tlwi  r6, r22, 0\n\
             \tswi  r6, r30, {REG_WDATA}\n\
             \tlwi  r7, r23, 0\n\
             \tswi  r7, r30, {REG_WDATA}\n\
             \taddik r21, r21, 4\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, send{pass}\n\
             \tli   r20, NSAMPLES\n\
             \taddk r22, r26, r0\n\
             \taddk r23, r27, r0\n\
             recv{pass}:\n\
             polly{pass}:\n\
             \tlwi  r5, r30, {REG_STATUS}\n\
             \tandi r5, r5, 1\n\
             \tbeqi r5, polly{pass}\n\
             \tlwi  r6, r30, {REG_RDATA}\n\
             \tswi  r6, r22, 0\n\
             pollz{pass}:\n\
             \tlwi  r5, r30, {REG_STATUS}\n\
             \tandi r5, r5, 1\n\
             \tbeqi r5, pollz{pass}\n\
             \tlwi  r7, r30, {REG_RDATA}\n\
             \tswi  r7, r23, 0\n\
             \taddik r22, r22, 4\n\
             \taddik r23, r23, 4\n\
             \taddik r20, r20, -1\n\
             \tbnei r20, recv{pass}\n"
        ));
    }
    s.push_str(&format!(
        "\thalt\n\n.align 4\na_data: .word {a}\ny_data: .word {b}\nz_data: .space {space}\n",
        a = words(&batch.a),
        b = words(&batch.b),
        space = 4 * n,
    ));
    s
}

/// Builds the full OPB-attached co-simulation: the driver program plus
/// the pipeline behind the register adapter.
pub fn opb_cosim(batch: &CordicBatch, iterations: u32, p: usize) -> (CoSim, Image) {
    let img = assemble(&opb_program(batch, iterations, p)).expect("opb driver assembles");
    let mut sim = CoSim::software_only(&img);
    let mut bus = OpbBus::new();
    bus.map(CORDIC_OPB_BASE, 0x100, Box::new(OpbBlockAdapter::new(cordic_graph(p))));
    sim.cpu_mut().attach_opb(bus);
    (sim, img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cordic::reference;
    use crate::cordic::software::{effective_iterations, hw_program};
    use softsim_cosim::CoSimStop;

    fn batch() -> CordicBatch {
        CordicBatch::new(&[
            (reference::to_fix(1.0), reference::to_fix(0.5)),
            (reference::to_fix(1.5), reference::to_fix(1.2)),
            (reference::to_fix(2.0), reference::to_fix(-1.0)),
        ])
    }

    #[test]
    fn opb_attachment_computes_correct_quotients() {
        let b = batch();
        for p in [2usize, 4] {
            let (mut sim, img) = opb_cosim(&b, 24, p);
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "P={p}");
            let base = img.symbol("z_data").unwrap();
            let eff = effective_iterations(24, p);
            for i in 0..b.len() {
                let got = sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32;
                assert_eq!(got, reference::divide_fix(b.a[i], b.b[i], eff), "P={p} sample {i}");
            }
        }
    }

    #[test]
    fn fsl_attachment_beats_opb_attachment() {
        // The ablation: identical pipeline, identical algorithm — the
        // dedicated FSL interface is substantially faster than the shared
        // polled bus.
        let b = batch();
        let p = 4;
        let (mut opb, _) = opb_cosim(&b, 24, p);
        assert_eq!(opb.run(10_000_000), CoSimStop::Halted);
        let img = assemble(&hw_program(&b, 24, p)).unwrap();
        let mut fsl = CoSim::with_peripheral(&img, crate::cordic::hardware::cordic_peripheral(p));
        assert_eq!(fsl.run(10_000_000), CoSimStop::Halted);
        let ratio = opb.cpu_stats().cycles as f64 / fsl.cpu_stats().cycles as f64;
        assert!(
            ratio > 1.3,
            "OPB should cost noticeably more than FSL, got {ratio:.2}x \
             ({} vs {} cycles)",
            opb.cpu_stats().cycles,
            fsl.cpu_stats().cycles
        );
    }
}
