//! Division on the optional hardware divider — the processor-
//! configuration alternative to the CORDIC approaches.
//!
//! The paper's premise (a) is that soft processors have "many possible
//! configurations"; MicroBlaze's optional divider is exactly such a
//! configuration choice. This module computes the same Q8.24 quotients as
//! the CORDIC designs using `idivu` long division in 6-bit chunks,
//! giving the design space a third corner: pure-software CORDIC vs
//! FSL-attached CORDIC pipeline vs divider-equipped processor.

use crate::cordic::reference::FRAC_BITS;
use crate::cordic::software::CordicBatch;

/// Fractional bits produced per long-division refinement step (chosen so
/// the shifted remainder cannot overflow 32 bits for inputs in the
/// CORDIC convergence domain).
pub const CHUNK_BITS: u32 = 6;

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Generates the divider-based program: for every sample computes
/// `b / a` in Q8.24 via one integer `idivu` plus
/// `FRAC_BITS / CHUNK_BITS` refinement steps, leaving results at
/// `z_data`. Requires a divider-equipped processor configuration.
pub fn idiv_program(batch: &CordicBatch) -> String {
    let n = batch.len();
    assert!(n > 0, "empty batch");
    assert_eq!(FRAC_BITS % CHUNK_BITS, 0);
    format!(
        ".equ NSAMPLES, {n}\n\
         .equ CHUNKS, {chunks}\n\
         start:\n\
         \tli   r21, a_data\n\
         \tli   r22, b_data\n\
         \tli   r23, z_data\n\
         \tli   r20, NSAMPLES\n\
         sample:\n\
         \tlwi  r5, r21, 0        # a > 0\n\
         \tlwi  r6, r22, 0        # b (signed)\n\
         \taddk r12, r0, r0       # sign flag\n\
         \tbgei r6, positive\n\
         \trsubk r6, r6, r0       # b = -b\n\
         \taddik r12, r0, 1\n\
         positive:\n\
         \tidivu r7, r5, r6       # integer part (b/a < 2 in-domain)\n\
         \tmul  r8, r7, r5\n\
         \trsubk r6, r8, r6       # remainder\n\
         \taddk r10, r7, r0       # quotient accumulator\n\
         \tli   r9, CHUNKS\n\
         refine:\n\
         \tbslli r6, r6, {cb}\n\
         \tidivu r7, r5, r6\n\
         \tmul  r8, r7, r5\n\
         \trsubk r6, r8, r6\n\
         \tbslli r10, r10, {cb}\n\
         \taddk r10, r10, r7\n\
         \taddik r9, r9, -1\n\
         \tbnei r9, refine\n\
         \tbeqi r12, store\n\
         \trsubk r10, r10, r0     # restore sign\n\
         store:\n\
         \tswi  r10, r23, 0\n\
         \taddik r21, r21, 4\n\
         \taddik r22, r22, 4\n\
         \taddik r23, r23, 4\n\
         \taddik r20, r20, -1\n\
         \tbnei r20, sample\n\
         \thalt\n\n\
         .align 4\n\
         a_data: .word {a}\n\
         b_data: .word {b}\n\
         z_data: .space {space}\n",
        chunks = FRAC_BITS / CHUNK_BITS,
        cb = CHUNK_BITS,
        a = words(&batch.a),
        b = words(&batch.b),
        space = 4 * n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cordic::reference;
    use crate::cordic::software::{hw_program, sw_program, SwStyle};
    use softsim_cosim::{CoSim, CoSimStop};
    use softsim_isa::asm::assemble;
    use softsim_isa::CpuConfig;

    fn batch() -> CordicBatch {
        CordicBatch::new(&[
            (reference::to_fix(1.0), reference::to_fix(0.5)),
            (reference::to_fix(1.5), reference::to_fix(1.2)),
            (reference::to_fix(2.0), reference::to_fix(-1.0)),
            (reference::to_fix(1.25), reference::to_fix(0.8)),
        ])
    }

    #[test]
    fn divider_quotients_are_exact_to_lsb() {
        let b = batch();
        let img = assemble(&idiv_program(&b)).expect("assembles");
        let mut sim = CoSim::with_config(&img, CpuConfig::full(), None);
        assert_eq!(sim.run(1_000_000), CoSimStop::Halted);
        let base = img.symbol("z_data").unwrap();
        for i in 0..b.len() {
            let got = sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32;
            let exact = (b.b[i] as f64) / (b.a[i] as f64);
            let err = (got as f64 / (1 << 24) as f64 - exact).abs();
            assert!(err < 2.0 / (1 << 24) as f64, "sample {i}: err {err}");
        }
    }

    #[test]
    fn needs_the_divider_option() {
        let b = batch();
        let img = assemble(&idiv_program(&b)).unwrap();
        let mut sim = CoSim::software_only(&img); // default config: no divider
        assert!(matches!(sim.run(1_000_000), CoSimStop::Fault(_)));
    }

    #[test]
    fn design_space_three_corners() {
        // The configuration ablation: SW CORDIC vs FSL CORDIC pipeline vs
        // divider-equipped processor, same task, same precision class.
        let b = batch();
        let sw_img = assemble(&sw_program(&b, 24, SwStyle::Compiled)).unwrap();
        let mut sw = CoSim::software_only(&sw_img);
        assert_eq!(sw.run(10_000_000), CoSimStop::Halted);

        let hw_img = assemble(&hw_program(&b, 24, 4)).unwrap();
        let mut hw = CoSim::with_peripheral(&hw_img, crate::cordic::hardware::cordic_peripheral(4));
        assert_eq!(hw.run(10_000_000), CoSimStop::Halted);

        let div_img = assemble(&idiv_program(&b)).unwrap();
        let mut dv = CoSim::with_config(&div_img, CpuConfig::full(), None);
        assert_eq!(dv.run(10_000_000), CoSimStop::Halted);

        let (sw_c, hw_c, dv_c) =
            (sw.cpu_stats().cycles, hw.cpu_stats().cycles, dv.cpu_stats().cycles);
        assert!(dv_c < sw_c, "the divider option beats software CORDIC: {dv_c} vs {sw_c}");
        // Both accelerated options are multiples faster than software.
        assert!(sw_c as f64 / dv_c as f64 > 2.0);
        assert!(sw_c as f64 / hw_c as f64 > 2.0);
    }
}
