//! The customized hardware peripheral of §IV-A: a linear pipeline of P
//! fully-pipelined CORDIC processing elements, described at the block
//! level (the System Generator design of Fig. 4).
//!
//! # Port protocol (one input FSL, one output FSL)
//!
//! * A **control word** (`cput`) carries `C_0` for the upcoming pass;
//!   PE 0 latches it and the value propagates down the pipeline, halved
//!   at each PE, so PE *i* holds `C_0 · 2^-i` (Eq. 2 of the paper).
//! * **Data words** arrive in triples `XS, Y, Z` where `XS = X · C_0`
//!   (the software pre-shifts X by the pass's shift amount, so each PE
//!   only needs an add/sub pair and a one-bit shift — no multipliers,
//!   matching the 3/3 multiplier column of Table I).
//! * Results leave as pairs `Y, Z` (X never changes, so the processor
//!   keeps it locally).

use crate::cordic::reference;
use softsim_blocks::block::{bit, state_word, Block};
use softsim_blocks::library::Tmr;
use softsim_blocks::{Fix, FixFmt, Graph, Resources};
use softsim_cosim::{FslFromHw, FslToHw, Peripheral};
use std::collections::VecDeque;

const W32: FixFmt = FixFmt::INT32;

fn raw32(x: &Fix) -> i32 {
    x.to_bits() as u32 as i32
}

fn fix32(v: i32) -> Fix {
    Fix::from_bits(v as u32 as u64, W32)
}

/// Unpacks a word-triple stream from one FSL into `(XS, Y, Z)` tuples and
/// extracts control words (an MCode-style framing block).
#[derive(Debug, Clone, Default)]
pub struct Deserializer {
    phase: u8,
    xs: i32,
    y: i32,
    z: i32,
    tuple_valid: bool,
    c0: i32,
    c_load: bool,
}

impl Deserializer {
    /// A fresh deserializer.
    pub fn new() -> Deserializer {
        Deserializer::default()
    }
}

impl Block for Deserializer {
    fn kind(&self) -> &'static str {
        "CordicDeserializer"
    }
    fn inputs(&self) -> usize {
        3 // data, valid, ctrl
    }
    fn outputs(&self) -> usize {
        6 // xs, y, z, tuple_valid, c0, c_load
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        match port {
            0..=2 | 4 => W32,
            _ => FixFmt::BOOL,
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = fix32(self.xs);
        outputs[1] = fix32(self.y);
        outputs[2] = fix32(self.z);
        outputs[3] = bit(self.tuple_valid);
        outputs[4] = fix32(self.c0);
        outputs[5] = bit(self.c_load);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        let data = raw32(&inputs[0]);
        let valid = !inputs[1].is_zero();
        let ctrl = !inputs[2].is_zero();
        self.tuple_valid = false;
        self.c_load = false;
        if !valid {
            return;
        }
        if ctrl {
            self.c0 = data;
            self.c_load = true;
            return;
        }
        match self.phase {
            0 => self.xs = data,
            1 => self.y = data,
            _ => {
                self.z = data;
                self.tuple_valid = true;
            }
        }
        self.phase = (self.phase + 1) % 3;
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // No word arriving and the single-cycle strobes already clear.
        inputs[1].is_zero() && !self.tuple_valid && !self.c_load
    }
    fn resources(&self) -> Resources {
        // Three 32-bit holding registers, a phase counter and decode.
        Resources::slices(3 * 16 + 4)
    }
    fn reset(&mut self) {
        *self = Deserializer::default();
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.phase as u64);
        out.push(self.xs as u32 as u64);
        out.push(self.y as u32 as u64);
        out.push(self.z as u32 as u64);
        out.push(self.tuple_valid as u64);
        out.push(self.c0 as u32 as u64);
        out.push(self.c_load as u64);
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        let mut w = || state_word("CordicDeserializer", src);
        self.phase = w() as u8;
        self.xs = w() as u32 as i32;
        self.y = w() as u32 as i32;
        self.z = w() as u32 as i32;
        self.tuple_valid = w() != 0;
        self.c0 = w() as u32 as i32;
        self.c_load = w() != 0;
    }
}

/// One CORDIC processing element (Eq. 2): a fully-pipelined stage with a
/// per-PE `C` register loaded through the control chain.
#[derive(Debug, Clone, Default)]
pub struct CordicPe {
    // Stage registers.
    xs: i32,
    y: i32,
    z: i32,
    tuple_valid: bool,
    // Control chain.
    c: i32,
    c_fwd: i32,
    c_load_fwd: bool,
}

impl CordicPe {
    /// A fresh PE with `C = 0` (loaded by the first control word).
    pub fn new() -> CordicPe {
        CordicPe::default()
    }
}

impl Block for CordicPe {
    fn kind(&self) -> &'static str {
        "CordicPe"
    }
    fn inputs(&self) -> usize {
        6 // xs, y, z, tuple_valid, c_in, c_load
    }
    fn outputs(&self) -> usize {
        6 // same shape, next stage
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        match port {
            0..=2 | 4 => W32,
            _ => FixFmt::BOOL,
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = fix32(self.xs);
        outputs[1] = fix32(self.y);
        outputs[2] = fix32(self.z);
        outputs[3] = bit(self.tuple_valid);
        outputs[4] = fix32(self.c_fwd);
        outputs[5] = bit(self.c_load_fwd);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        let (xs, y, z) = (raw32(&inputs[0]), raw32(&inputs[1]), raw32(&inputs[2]));
        let tv = !inputs[3].is_zero();
        let c_in = raw32(&inputs[4]);
        let c_load = !inputs[5].is_zero();
        if c_load {
            // Latch my own copy and forward the halved value (Eq. 2).
            self.c = c_in;
            self.c_fwd = c_in >> 1;
        }
        self.c_load_fwd = c_load;
        self.tuple_valid = tv;
        if tv {
            let (nxs, ny, nz) = reference::iterate(xs, y, z, self.c);
            self.xs = nxs;
            self.y = ny;
            self.z = nz;
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // No tuple and no control word incoming, and the forwarded
        // strobes already clear.
        inputs[3].is_zero() && inputs[5].is_zero() && !self.tuple_valid && !self.c_load_fwd
    }
    fn resources(&self) -> Resources {
        // Two 32-bit add/sub datapaths (Y and Z), stage registers packing
        // behind them, the C register and the sign/select logic.
        Resources::slices(2 * Resources::adder_slices(32) + 4)
    }
    fn reset(&mut self) {
        *self = CordicPe::default();
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.xs as u32 as u64);
        out.push(self.y as u32 as u64);
        out.push(self.z as u32 as u64);
        out.push(self.tuple_valid as u64);
        out.push(self.c as u32 as u64);
        out.push(self.c_fwd as u32 as u64);
        out.push(self.c_load_fwd as u64);
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        let mut w = || state_word("CordicPe", src);
        self.xs = w() as u32 as i32;
        self.y = w() as u32 as i32;
        self.z = w() as u32 as i32;
        self.tuple_valid = w() != 0;
        self.c = w() as u32 as i32;
        self.c_fwd = w() as u32 as i32;
        self.c_load_fwd = w() != 0;
    }
}

/// Packs `(Y, Z)` result pairs back onto one output FSL, one word per
/// cycle, with an internal buffer.
#[derive(Debug, Clone, Default)]
pub struct Serializer {
    queue: VecDeque<i32>,
    out_data: i32,
    out_valid: bool,
    /// High-water mark, to check the paper's "size each set of data so
    /// the output FIFOs do not overflow" rule.
    pub max_occupancy: usize,
}

impl Serializer {
    /// A fresh serializer.
    pub fn new() -> Serializer {
        Serializer::default()
    }
}

impl Block for Serializer {
    fn kind(&self) -> &'static str {
        "CordicSerializer"
    }
    fn inputs(&self) -> usize {
        3 // y, z, valid
    }
    fn outputs(&self) -> usize {
        2 // out_data, out_valid
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        if port == 0 {
            W32
        } else {
            FixFmt::BOOL
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = fix32(self.out_data);
        outputs[1] = bit(self.out_valid);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if !inputs[2].is_zero() {
            self.queue.push_back(raw32(&inputs[0]));
            self.queue.push_back(raw32(&inputs[1]));
            self.max_occupancy = self.max_occupancy.max(self.queue.len());
        }
        match self.queue.pop_front() {
            Some(w) => {
                self.out_data = w;
                self.out_valid = true;
            }
            None => {
                self.out_valid = false;
            }
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // Nothing arriving, nothing buffered, nothing being presented.
        inputs[2].is_zero() && self.queue.is_empty() && !self.out_valid
    }
    fn resources(&self) -> Resources {
        // SRL16-based buffering plus the output register and control.
        Resources::slices(2 * 16 + 6)
    }
    fn reset(&mut self) {
        *self = Serializer::default();
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.queue.len() as u64);
        out.extend(self.queue.iter().map(|&w| w as u32 as u64));
        out.push(self.out_data as u32 as u64);
        out.push(self.out_valid as u64);
        out.push(self.max_occupancy as u64);
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        let mut w = || state_word("CordicSerializer", src);
        // Clamp the self-describing length: the graph-level span framing
        // bounds the words available, but a fault-flipped length word
        // must not demand an absurd queue from the zero-padded tail.
        let len = (w() as usize).min(4096);
        self.queue.clear();
        for _ in 0..len {
            self.queue.push_back(w() as u32 as i32);
        }
        self.out_data = w() as u32 as i32;
        self.out_valid = w() != 0;
        self.max_occupancy = w() as usize;
    }
}

/// Builds the block-level CORDIC pipeline of `p ≥ 1` PEs with standard
/// FSL gateway names on channel 0.
pub fn cordic_graph(p: usize) -> Graph {
    assert!(p >= 1, "pipeline needs at least one PE");
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", W32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let ctrl = g.gateway_in("fsl0_ctrl", FixFmt::BOOL);
    let deser = g.add("deser", Deserializer::new());
    g.wire(data, deser, 0).unwrap();
    g.wire(valid, deser, 1).unwrap();
    g.wire(ctrl, deser, 2).unwrap();
    let mut prev = deser;
    for i in 0..p {
        let pe = g.add(format!("pe{i}"), CordicPe::new());
        for port in 0..6 {
            g.connect(prev, port, pe, port).unwrap();
        }
        prev = pe;
    }
    let ser = g.add("ser", Serializer::new());
    g.connect(prev, 1, ser, 0).unwrap(); // Y
    g.connect(prev, 2, ser, 1).unwrap(); // Z
    g.connect(prev, 3, ser, 2).unwrap(); // tuple_valid
    g.gateway_out("fsl0_out_data", ser, 0);
    g.gateway_out("fsl0_out_valid", ser, 1);
    g.compile().expect("cordic pipeline compiles");
    g
}

/// Wraps [`cordic_graph`] as an attachable peripheral.
pub fn cordic_peripheral(p: usize) -> Peripheral {
    Peripheral::new(cordic_graph(p), vec![FslToHw::standard(0)], vec![FslFromHw::standard(0)])
}

/// Builds the dual-output variant of the pipeline: Y results leave on
/// FSL 0 and Z results on FSL 1 *in the same cycle*, with no serializer —
/// the multiple "data output FSLs" of the paper's Fig. 4. Output FIFO
/// capacity doubles, so batches up to 16 samples fit.
pub fn cordic_graph_dual(p: usize) -> Graph {
    assert!(p >= 1, "pipeline needs at least one PE");
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", W32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let ctrl = g.gateway_in("fsl0_ctrl", FixFmt::BOOL);
    let deser = g.add("deser", Deserializer::new());
    g.wire(data, deser, 0).unwrap();
    g.wire(valid, deser, 1).unwrap();
    g.wire(ctrl, deser, 2).unwrap();
    let mut prev = deser;
    for i in 0..p {
        let pe = g.add(format!("pe{i}"), CordicPe::new());
        for port in 0..6 {
            g.connect(prev, port, pe, port).unwrap();
        }
        prev = pe;
    }
    // Direct wires: Y on channel 0, Z on channel 1, valid shared.
    g.gateway_out("fsl0_out_data", prev, 1);
    g.gateway_out("fsl0_out_valid", prev, 3);
    g.gateway_out("fsl1_out_data", prev, 2);
    g.gateway_out("fsl1_out_valid", prev, 3);
    g.compile().expect("dual cordic pipeline compiles");
    g
}

/// Wraps [`cordic_graph_dual`] as a peripheral on channels 0 and 1.
pub fn cordic_peripheral_dual(p: usize) -> Peripheral {
    Peripheral::new(
        cordic_graph_dual(p),
        vec![FslToHw::standard(0)],
        vec![FslFromHw::standard(0), FslFromHw::standard(1)],
    )
}

/// Resource estimate of the P-PE pipeline alone (for §III-C totals).
pub fn pipeline_resources(p: usize) -> Resources {
    cordic_graph(p).resources()
}

/// TMR-hardened variant of [`cordic_graph`]: every sequential block is
/// wrapped in a [`Tmr`] voter. Same gateway names and cycle behavior as
/// the unhardened pipeline (the voter is transparent while replicas
/// agree), ~3× the slice cost, and replica miscompares surface through
/// `Graph::detected_faults` for the recovery supervisor.
pub fn cordic_graph_tmr(p: usize) -> Graph {
    assert!(p >= 1, "pipeline needs at least one PE");
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", W32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let ctrl = g.gateway_in("fsl0_ctrl", FixFmt::BOOL);
    let deser = g.add("deser", Tmr::new(Deserializer::new()));
    g.wire(data, deser, 0).unwrap();
    g.wire(valid, deser, 1).unwrap();
    g.wire(ctrl, deser, 2).unwrap();
    let mut prev = deser;
    for i in 0..p {
        let pe = g.add(format!("pe{i}"), Tmr::new(CordicPe::new()));
        for port in 0..6 {
            g.connect(prev, port, pe, port).unwrap();
        }
        prev = pe;
    }
    let ser = g.add("ser", Tmr::new(Serializer::new()));
    g.connect(prev, 1, ser, 0).unwrap(); // Y
    g.connect(prev, 2, ser, 1).unwrap(); // Z
    g.connect(prev, 3, ser, 2).unwrap(); // tuple_valid
    g.gateway_out("fsl0_out_data", ser, 0);
    g.gateway_out("fsl0_out_valid", ser, 1);
    g.compile().expect("TMR cordic pipeline compiles");
    g
}

/// Wraps [`cordic_graph_tmr`] as an attachable peripheral.
pub fn cordic_peripheral_tmr(p: usize) -> Peripheral {
    Peripheral::new(cordic_graph_tmr(p), vec![FslToHw::standard(0)], vec![FslFromHw::standard(0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_blocks::Fix;

    /// Drives the raw graph directly (no CPU) with one control word and
    /// one sample for a single pass through `p` PEs.
    fn one_pass(p: usize, a: i32, b: i32) -> (i32, i32) {
        let mut g = cordic_graph(p);
        let send = |g: &mut Graph, word: i32, ctrl: bool| {
            g.set_input("fsl0_data", fix32(word)).unwrap();
            g.set_input("fsl0_valid", bit(true)).unwrap();
            g.set_input("fsl0_ctrl", bit(ctrl)).unwrap();
            g.step();
        };
        send(&mut g, reference::ONE, true); // C0 = 1.0
        send(&mut g, a, false); // XS = X·C0 = a
        send(&mut g, b, false); // Y
        send(&mut g, 0, false); // Z
        g.set_input("fsl0_valid", Fix::zero(FixFmt::BOOL)).unwrap();
        let mut out = Vec::new();
        for _ in 0..(p + 20) {
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(raw32(&g.output("fsl0_out_data").unwrap()));
            }
            if out.len() == 2 {
                break;
            }
        }
        assert_eq!(out.len(), 2, "expected Y and Z back");
        (out[0], out[1])
    }

    #[test]
    fn single_pass_matches_reference() {
        for p in [1, 2, 4, 6, 8] {
            let a = reference::to_fix(1.5);
            let b = reference::to_fix(0.9);
            let (_y, z) = one_pass(p, a, b);
            // Reference: p iterations starting from C0 = 1.
            let expect = reference::divide_fix(a, b, p as u32);
            assert_eq!(z, expect, "P={p}");
        }
    }

    #[test]
    fn pipeline_is_fully_pipelined() {
        // Two samples back-to-back come out 3 cycles apart (the input
        // serialization interval), proving the PEs accept one tuple per
        // cycle.
        let mut g = cordic_graph(4);
        let send = |g: &mut Graph, word: i32, ctrl: bool| {
            g.set_input("fsl0_data", fix32(word)).unwrap();
            g.set_input("fsl0_valid", bit(true)).unwrap();
            g.set_input("fsl0_ctrl", bit(ctrl)).unwrap();
            g.step();
        };
        send(&mut g, reference::ONE, true);
        let a = reference::to_fix(1.0);
        for b in [reference::to_fix(0.5), reference::to_fix(0.25)] {
            send(&mut g, a, false);
            send(&mut g, b, false);
            send(&mut g, 0, false);
        }
        g.set_input("fsl0_valid", bit(false)).unwrap();
        let mut outs = Vec::new();
        for cycle in 0..40 {
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                outs.push((cycle, raw32(&g.output("fsl0_out_data").unwrap())));
            }
        }
        assert_eq!(outs.len(), 4, "two (Y, Z) pairs");
        // Y/Z of sample 0 in consecutive cycles, then sample 1's pair.
        assert_eq!(outs[1].0 - outs[0].0, 1);
        assert!(outs[2].0 - outs[1].0 <= 2, "second sample close behind");
    }

    #[test]
    fn multi_pass_reaches_full_precision() {
        // 24 iterations as 6 passes through a 4-PE pipeline: the host
        // re-sends data with XS pre-shifted and C0 halved P times.
        let p = 4;
        let iters = 24u32;
        let a = reference::to_fix(1.7);
        let b = reference::to_fix(1.1);
        let (mut y, mut z) = (b, 0i32);
        for pass in 0..(iters / p as u32) {
            let shift = pass * p as u32;
            let mut g = cordic_graph(p);
            let send = |g: &mut Graph, word: i32, ctrl: bool| {
                g.set_input("fsl0_data", fix32(word)).unwrap();
                g.set_input("fsl0_valid", bit(true)).unwrap();
                g.set_input("fsl0_ctrl", bit(ctrl)).unwrap();
                g.step();
            };
            send(&mut g, reference::ONE >> shift, true);
            send(&mut g, a >> shift, false);
            send(&mut g, y, false);
            send(&mut g, z, false);
            g.set_input("fsl0_valid", bit(false)).unwrap();
            let mut out = Vec::new();
            while out.len() < 2 {
                g.step();
                if !g.output("fsl0_out_valid").unwrap().is_zero() {
                    out.push(raw32(&g.output("fsl0_out_data").unwrap()));
                }
            }
            y = out[0];
            z = out[1];
        }
        let expect = reference::divide_fix(a, b, iters);
        assert_eq!(z, expect);
        let err = (reference::from_fix(z) - 1.1 / 1.7).abs();
        assert!(err <= reference::error_bound(iters));
    }

    #[test]
    fn resources_scale_linearly_with_p() {
        let r2 = pipeline_resources(2);
        let r4 = pipeline_resources(4);
        let r8 = pipeline_resources(8);
        let per_pe = (r4.slices - r2.slices) / 2;
        assert_eq!((r8.slices - r4.slices) / 4, per_pe, "constant per-PE cost");
        assert!((30..45).contains(&per_pe), "~36 slices per PE, got {per_pe}");
        assert_eq!(r8.mult18s, 0, "PEs use no multipliers (Table I)");
    }
}
