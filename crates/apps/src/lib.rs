//! # softsim-apps — the evaluation applications
//!
//! The paper's two §IV applications plus the §I motivating examples, each
//! with a golden reference, MB32 software, a block-level hardware
//! peripheral and (where used in the comparisons) a structural RTL
//! netlist:
//!
//! * [`cordic`] — the adaptive CORDIC processor for division (§IV-A),
//!   including the OPB-attached variant and the divider-option ablation;
//! * [`matmul`] — block matrix multiplication (§IV-B), with both an
//!   MCode-style unit and a structural schematic realization;
//! * [`lpc`] — the Levinson-Durbin recursion (§I's software-suited
//!   recursive algorithm);
//! * [`fir`] — FIR filtering (§I's hardware-suited data-parallel
//!   computation), built from the PyGen-style generators;
//! * [`beamformer`] — the composite system: autocorrelation + weight
//!   update + filtering with two peripherals on one processor.

#![warn(missing_docs)]

pub mod beamformer;
pub mod cordic;
pub mod fir;
pub mod lpc;
pub mod matmul;
