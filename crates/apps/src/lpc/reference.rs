//! Golden reference for the Levinson-Durbin recursion — the paper's own
//! §I example of a computation that suits *software* on a soft processor:
//! "some applications have tightly coupled data dependency among
//! computation steps and do not benefit from parallel execution. Many
//! recursive algorithms (e.g. Levinson Durbin recursion) ... fall into
//! this category."
//!
//! Levinson-Durbin solves the Toeplitz normal equations of linear
//! prediction: given autocorrelation lags `r[0..=m]`, it produces the LPC
//! coefficients `a[1..=m]` and reflection coefficients `k[1..=m]` — the
//! adaptive-beamforming weight update the paper's §IV motivates for its
//! CORDIC divider.
//!
//! Arithmetic is Q4.12 fixed point (products truncated with an arithmetic
//! shift, exactly as the MB32 code computes), parameterized over the
//! division strategy so each hardware/software partition has a bit-exact
//! model.

/// Fractional bits of the Q4.12 format used by the recursion.
pub const FRAC: u32 = 12;

/// Fixed-point one.
pub const ONE: i32 = 1 << FRAC;

/// CORDIC iterations used by the CORDIC-based division strategies
/// (enough for the Q12 result to be exact to ±2 LSB).
pub const CORDIC_ITERS: u32 = 14;

/// Converts a float to Q4.12.
pub fn to_fix(v: f64) -> i32 {
    (v * ONE as f64).round() as i32
}

/// Converts Q4.12 to a float.
pub fn from_fix(v: i32) -> f64 {
    v as f64 / ONE as f64
}

/// Q4.12 multiply with truncation (what `mul` + `bsrai 12` computes).
#[inline]
pub fn qmul(a: i32, b: i32) -> i32 {
    (a.wrapping_mul(b)) >> FRAC
}

/// How the recursion's divisions are performed — the HW/SW partitioning
/// axis of this application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivStrategy {
    /// The optional hardware divider: `(num << 12) / den`, truncating
    /// toward zero (`idiv` semantics).
    Idiv,
    /// Linear CORDIC in software or through the FSL pipeline (both
    /// compute the identical Eq. 2 iteration) with the given number of
    /// steps — [`CORDIC_ITERS`] for the software loop, rounded up to
    /// whole passes for the FSL pipeline.
    Cordic(u32),
}

/// One Q12 division `num / den` under the chosen strategy.
pub fn divide(num: i32, den: i32, strategy: DivStrategy) -> i32 {
    match strategy {
        DivStrategy::Idiv => {
            let n = num << FRAC;
            if den == 0 {
                0
            } else {
                n.wrapping_div(den)
            }
        }
        DivStrategy::Cordic(iters) => {
            // Eq. 2 with C0 = 1.0 in Q12 (format-agnostic iteration).
            let (mut xs, mut y, mut z) = (den, num, 0i32);
            let mut c = ONE;
            for _ in 0..iters {
                if y < 0 {
                    y = y.wrapping_add(xs);
                    z = z.wrapping_sub(c);
                } else {
                    y = y.wrapping_sub(xs);
                    z = z.wrapping_add(c);
                }
                xs >>= 1;
                c >>= 1;
            }
            z
        }
    }
}

/// Result of the recursion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpcResult {
    /// LPC coefficients `a[0..=order]` (`a[0] = 1.0`), Q4.12.
    pub a: Vec<i32>,
    /// Reflection coefficients `k[1..=order]`, Q4.12.
    pub k: Vec<i32>,
    /// Final prediction-error energy, Q4.12.
    pub error: i32,
}

/// Runs the Levinson-Durbin recursion on autocorrelation lags `r`
/// (`r[0] > 0`), to order `r.len() - 1`, mirroring the MB32 program's
/// fixed-point arithmetic exactly.
pub fn levinson_durbin(r: &[i32], strategy: DivStrategy) -> LpcResult {
    let order = r.len() - 1;
    assert!(order >= 1, "order must be at least 1");
    assert!(r[0] > 0, "r[0] must be positive");
    let mut a = vec![0i32; order + 1];
    a[0] = ONE;
    let mut k = Vec::with_capacity(order);
    let mut e = r[0];
    for m in 1..=order {
        // acc = r[m] + sum_{i=1}^{m-1} a[i] * r[m-i]
        let mut acc = r[m];
        for i in 1..m {
            acc = acc.wrapping_add(qmul(a[i], r[m - i]));
        }
        // k_m = -acc / E
        let km = divide(acc, e, strategy).wrapping_neg();
        k.push(km);
        // a[i] += k_m * a[m-i]  (in-place pairwise update)
        for i in 1..=(m - 1) / 2 {
            let (lo, hi) = (a[i], a[m - i]);
            a[i] = lo.wrapping_add(qmul(km, hi));
            a[m - i] = hi.wrapping_add(qmul(km, lo));
        }
        if m >= 2 && m % 2 == 0 {
            let mid = m / 2;
            a[mid] = a[mid].wrapping_add(qmul(km, a[mid]));
        }
        a[m] = km;
        // E *= 1 - k_m^2
        let k2 = qmul(km, km);
        e = e.wrapping_sub(qmul(e, k2));
    }
    LpcResult { a, k, error: e }
}

/// Autocorrelation lags (Q4.12, `r[0] = 1.0`) of a synthetic AR(2)
/// process — a stable test input with well-conditioned recursions.
pub fn test_autocorrelation(order: usize) -> Vec<i32> {
    // AR(2): x[n] = 0.75 x[n-1] - 0.5 x[n-2] + w[n]; analytic
    // autocorrelation via the Yule-Walker difference equation.
    let (p1, p2) = (0.75f64, -0.5f64);
    let mut rho = vec![0.0f64; order + 1];
    rho[0] = 1.0;
    rho[1] = p1 / (1.0 - p2);
    for m in 2..=order {
        rho[m] = p1 * rho[m - 1] + p2 * rho[m - 2];
    }
    rho.iter().map(|&v| to_fix(v)).collect()
}

/// Float-domain Levinson-Durbin for accuracy checks.
pub fn levinson_durbin_f64(r: &[f64]) -> (Vec<f64>, f64) {
    let order = r.len() - 1;
    let mut a = vec![0.0; order + 1];
    a[0] = 1.0;
    let mut e = r[0];
    for m in 1..=order {
        let mut acc = r[m];
        for i in 1..m {
            acc += a[i] * r[m - i];
        }
        let km = -acc / e;
        let prev = a.clone();
        for i in 1..m {
            a[i] = prev[i] + km * prev[m - i];
        }
        a[m] = km;
        e *= 1.0 - km * km;
    }
    (a, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_ar2_coefficients() {
        // For an AR(2) process the order-2 LPC coefficients are exactly
        // the (negated) process coefficients.
        let r = test_autocorrelation(2);
        for strategy in [DivStrategy::Idiv, DivStrategy::Cordic(CORDIC_ITERS)] {
            let res = levinson_durbin(&r, strategy);
            let a1 = from_fix(res.a[1]);
            let a2 = from_fix(res.a[2]);
            assert!((a1 - -0.75).abs() < 0.01, "{strategy:?}: a1 = {a1}");
            assert!((a2 - 0.5).abs() < 0.01, "{strategy:?}: a2 = {a2}");
        }
    }

    #[test]
    fn matches_float_reference_at_higher_order() {
        let order = 6;
        let r_fix = test_autocorrelation(order);
        let r_f64: Vec<f64> = r_fix.iter().map(|&v| from_fix(v)).collect();
        let (a_f64, e_f64) = levinson_durbin_f64(&r_f64);
        for strategy in [DivStrategy::Idiv, DivStrategy::Cordic(CORDIC_ITERS)] {
            let res = levinson_durbin(&r_fix, strategy);
            for (i, af) in a_f64.iter().enumerate().skip(1) {
                let err = (from_fix(res.a[i]) - af).abs();
                assert!(err < 0.03, "{strategy:?}: a[{i}] off by {err}");
            }
            assert!((from_fix(res.error) - e_f64).abs() < 0.05);
        }
    }

    #[test]
    fn prediction_error_decreases_and_stays_positive() {
        let r = test_autocorrelation(6);
        let res = levinson_durbin(&r, DivStrategy::Idiv);
        assert!(res.error > 0, "stable process keeps E > 0");
        assert!(res.error < r[0], "prediction reduces the error energy");
    }

    #[test]
    fn reflection_coefficients_bounded() {
        let r = test_autocorrelation(6);
        for strategy in [DivStrategy::Idiv, DivStrategy::Cordic(CORDIC_ITERS)] {
            let res = levinson_durbin(&r, strategy);
            for (i, &km) in res.k.iter().enumerate() {
                assert!(km.abs() <= ONE, "{strategy:?}: |k[{i}]| <= 1");
            }
        }
    }

    #[test]
    fn division_strategies_agree_within_lsb_tolerance() {
        for (num, den) in [(100, 4096), (-2048, 4096), (3000, 5000), (-4000, 4100)] {
            let a = divide(num, den, DivStrategy::Idiv);
            let b = divide(num, den, DivStrategy::Cordic(CORDIC_ITERS));
            assert!((a - b).abs() <= 2, "num={num} den={den}: idiv {a} vs cordic {b}");
        }
    }
}
