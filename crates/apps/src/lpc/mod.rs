//! Linear-prediction (Levinson-Durbin) weight update — the third
//! application: the paper's §I example of a *recursive* computation whose
//! tight data dependencies favor software execution on the soft
//! processor, with the division offload as the only HW/SW partitioning
//! choice.

pub mod reference;
pub mod software;
