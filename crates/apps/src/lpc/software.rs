//! MB32 programs for the Levinson-Durbin recursion, parameterized over
//! how the per-order division `k_m = -acc / E` is performed:
//!
//! * [`LpcDivision::CordicSw`] — an inline software CORDIC loop (the
//!   all-software partition);
//! * [`LpcDivision::CordicFsl`] — each division round-trips through the
//!   FSL-attached CORDIC pipeline (the offloaded partition). Because the
//!   recursion is *serial*, only one sample is ever in flight: the
//!   pipeline cannot fill, which is precisely the paper's §I argument
//!   that recursive algorithms do not benefit from parallel hardware;
//! * [`LpcDivision::Idiv`] — the optional hardware divider.
//!
//! The order loop is fully unrolled by the generator (orders are small in
//! adaptive filtering), with all arrays in local memory.

use crate::lpc::reference::{DivStrategy, CORDIC_ITERS, ONE};
use softsim_cosim::{CoSim, Peripheral};
use softsim_isa::asm::assemble;
use softsim_isa::{CpuConfig, Image};
use std::fmt::Write as _;

/// Division implementation for the generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpcDivision {
    /// Inline software CORDIC ([`CORDIC_ITERS`] iterations).
    CordicSw,
    /// The FSL-attached CORDIC pipeline with `P` PEs (one sample per
    /// division — serial use).
    CordicFsl(usize),
    /// The optional hardware divider (`idiv`).
    Idiv,
}

impl LpcDivision {
    /// The bit-exact reference strategy this implementation computes.
    pub fn reference_strategy(self) -> DivStrategy {
        match self {
            LpcDivision::Idiv => DivStrategy::Idiv,
            LpcDivision::CordicSw => DivStrategy::Cordic(CORDIC_ITERS),
            LpcDivision::CordicFsl(p) => {
                DivStrategy::Cordic(((CORDIC_ITERS as usize).div_ceil(p) * p) as u32)
            }
        }
    }

    /// The processor configuration the program needs.
    pub fn cpu_config(self) -> CpuConfig {
        match self {
            LpcDivision::Idiv => CpuConfig::full(),
            _ => CpuConfig::default(),
        }
    }
}

/// Emits the division sequence: quotient `(r21 << 12) / r20` into `r22`.
fn emit_division(s: &mut String, div: LpcDivision, m: usize) {
    match div {
        LpcDivision::Idiv => {
            let _ = write!(
                s,
                "\tbslli r5, r21, 12\n\
                 \tidiv r22, r20, r5\n"
            );
        }
        LpcDivision::CordicSw => {
            let _ = write!(
                s,
                "\taddk r5, r20, r0       # xs = E\n\
                 \taddk r6, r21, r0       # y = acc\n\
                 \taddk r7, r0, r0        # z = 0\n\
                 \tli   r8, {ONE}\n\
                 \tli   r9, {CORDIC_ITERS}\n\
                 cdl{m}:\tbgei r6, cdp{m}\n\
                 \taddk r6, r6, r5\n\
                 \trsubk r7, r8, r7\n\
                 \tbri  cdn{m}\n\
                 cdp{m}:\trsubk r6, r5, r6\n\
                 \taddk r7, r7, r8\n\
                 cdn{m}:\tsra  r5, r5\n\
                 \tsrl  r8, r8\n\
                 \taddik r9, r9, -1\n\
                 \tbnei r9, cdl{m}\n\
                 \taddk r22, r7, r0\n"
            );
        }
        LpcDivision::CordicFsl(p) => {
            let passes = (CORDIC_ITERS as usize).div_ceil(p);
            let _ = write!(
                s,
                "\taddk r6, r21, r0       # y = acc\n\
                 \taddk r7, r0, r0        # z = 0\n"
            );
            for pass in 0..passes {
                let shift = pass * p;
                let c0 = if shift >= 31 { 0 } else { ONE >> shift };
                let _ = write!(s, "\tli   r8, {c0}\n\tcput r8, rfsl0\n");
                if shift == 0 {
                    let _ = writeln!(s, "\taddk r5, r20, r0");
                } else {
                    let _ = writeln!(s, "\tbsrai r5, r20, {}", shift.min(31));
                }
                let _ = write!(
                    s,
                    "\tput  r5, rfsl0         # XS\n\
                     \tput  r6, rfsl0         # Y\n\
                     \tput  r7, rfsl0         # Z\n\
                     \tget  r6, rfsl0         # Y'\n\
                     \tget  r7, rfsl0         # Z'\n"
                );
            }
            let _ = writeln!(s, "\taddk r22, r7, r0");
        }
    }
}

/// Generates the order-`r.len()-1` Levinson-Durbin program for
/// autocorrelation lags `r` (Q4.12). Results: `a_data` (a[0..=order]),
/// `k_data` (k[1..=order]) and `e_out` (final error).
pub fn lpc_program(r: &[i32], div: LpcDivision) -> String {
    let order = r.len() - 1;
    let mut s = format!("# Levinson-Durbin, order {order}, division: {div:?}\nstart:\n");
    s.push_str(&lpc_body(order, div));
    s.push_str("\thalt\n\n");
    s.push_str(&lpc_data(r));
    s
}

/// Emits just the recursion's instructions (no `start:`/`halt`/data), for
/// composition into larger programs. Expects the labels of [`lpc_data`]
/// to be defined and clobbers r5–r9 and r20–r22.
pub fn lpc_body(order: usize, div: LpcDivision) -> String {
    assert!((1..=12).contains(&order), "supported orders: 1..=12");
    let mut s = String::new();
    let _ = writeln!(s, "\tlwi  r20, r0, r_data   # E = r[0]");
    for m in 1..=order {
        let _ = write!(s, "# ---- order {m}\n\tlwi  r21, r0, r_data+{}\n", 4 * m);
        for i in 1..m {
            let _ = write!(
                s,
                "\tlwi  r5, r0, a_data+{ai}\n\
                 \tlwi  r6, r0, r_data+{ri}\n\
                 \tmul  r5, r5, r6\n\
                 \tbsrai r5, r5, 12\n\
                 \taddk r21, r21, r5\n",
                ai = 4 * i,
                ri = 4 * (m - i),
            );
        }
        emit_division(&mut s, div, m);
        let _ = writeln!(s, "\trsubk r22, r22, r0     # k = -quotient");
        // Pairwise in-place coefficient update.
        for i in 1..=(m - 1) / 2 {
            let j = m - i;
            let _ = write!(
                s,
                "\tlwi  r5, r0, a_data+{ai}\n\
                 \tlwi  r6, r0, a_data+{aj}\n\
                 \tmul  r7, r22, r6\n\
                 \tbsrai r7, r7, 12\n\
                 \taddk r7, r5, r7\n\
                 \tmul  r8, r22, r5\n\
                 \tbsrai r8, r8, 12\n\
                 \taddk r8, r6, r8\n\
                 \tswi  r7, r0, a_data+{ai}\n\
                 \tswi  r8, r0, a_data+{aj}\n",
                ai = 4 * i,
                aj = 4 * j,
            );
        }
        if m >= 2 && m % 2 == 0 {
            let mid = 4 * (m / 2);
            let _ = write!(
                s,
                "\tlwi  r5, r0, a_data+{mid}\n\
                 \tmul  r7, r22, r5\n\
                 \tbsrai r7, r7, 12\n\
                 \taddk r5, r5, r7\n\
                 \tswi  r5, r0, a_data+{mid}\n"
            );
        }
        let _ = write!(
            s,
            "\tswi  r22, r0, a_data+{am}\n\
             \tswi  r22, r0, k_data+{km}\n\
             \tmul  r5, r22, r22\n\
             \tbsrai r5, r5, 12\n\
             \tmul  r5, r20, r5\n\
             \tbsrai r5, r5, 12\n\
             \trsubk r20, r5, r20    # E -= E*k^2\n",
            am = 4 * m,
            km = 4 * (m - 1),
        );
    }
    let _ = writeln!(s, "\tswi  r20, r0, e_out");
    s
}

/// The data section the recursion operates on: `r_data` (inputs),
/// `a_data` (coefficients, `a[0] = 1.0`), `k_data` and `e_out`.
pub fn lpc_data(r: &[i32]) -> String {
    let order = r.len() - 1;
    format!(
        ".align 4\nr_data: .word {r}\n\
         a_data: .word {one}{zeros}\nk_data: .space {ks}\ne_out: .space 4\n",
        r = r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
        one = ONE,
        zeros = ", 0".repeat(order),
        ks = 4 * order,
    )
}

/// Builds the co-simulation for an LPC configuration (attaching the FSL
/// pipeline when the strategy needs it).
pub fn lpc_cosim(r: &[i32], div: LpcDivision) -> (CoSim, Image) {
    let img = assemble(&lpc_program(r, div)).expect("lpc program assembles");
    let peripheral: Option<Peripheral> = match div {
        LpcDivision::CordicFsl(p) => Some(crate::cordic::hardware::cordic_peripheral(p)),
        _ => None,
    };
    (CoSim::with_config(&img, div.cpu_config(), peripheral), img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpc::reference::{self, levinson_durbin, test_autocorrelation};
    use softsim_cosim::CoSimStop;

    fn run(div: LpcDivision, order: usize) -> (Vec<i32>, Vec<i32>, i32, u64) {
        let r = test_autocorrelation(order);
        let (mut sim, img) = lpc_cosim(&r, div);
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "{div:?}");
        let read = |label: &str, n: usize| -> Vec<i32> {
            let base = img.symbol(label).unwrap();
            (0..n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32).collect()
        };
        let a = read("a_data", order + 1);
        let k = read("k_data", order);
        let e = read("e_out", 1)[0];
        (a, k, e, sim.cpu_stats().cycles)
    }

    #[test]
    fn all_strategies_match_their_reference_bit_exactly() {
        let order = 6;
        let r = test_autocorrelation(order);
        for div in [LpcDivision::CordicSw, LpcDivision::CordicFsl(4), LpcDivision::Idiv] {
            let expect = levinson_durbin(&r, div.reference_strategy());
            let (a, k, e, _) = run(div, order);
            assert_eq!(a, expect.a, "{div:?}: coefficients");
            assert_eq!(k, expect.k, "{div:?}: reflection coefficients");
            assert_eq!(e, expect.error, "{div:?}: error energy");
        }
    }

    #[test]
    fn results_are_accurate_lpc_solutions() {
        let order = 4;
        let (a, _, _, _) = run(LpcDivision::Idiv, order);
        let r_f64: Vec<f64> =
            test_autocorrelation(order).iter().map(|&v| reference::from_fix(v)).collect();
        let (a_f64, _) = reference::levinson_durbin_f64(&r_f64);
        for (i, af) in a_f64.iter().enumerate().skip(1) {
            let err = (reference::from_fix(a[i]) - af).abs();
            assert!(err < 0.03, "a[{i}] off by {err}");
        }
    }

    #[test]
    fn serial_recursion_defeats_the_pipeline() {
        // The paper's §I claim, demonstrated: with one division in flight
        // at a time, offloading to the FSL pipeline cannot beat the
        // inline software CORDIC by much — the round-trip latency eats
        // the parallelism (contrast with the batched Figure 5 workload).
        let order = 6;
        let (_, _, _, sw) = run(LpcDivision::CordicSw, order);
        let (_, _, _, fsl) = run(LpcDivision::CordicFsl(4), order);
        let (_, _, _, idiv) = run(LpcDivision::Idiv, order);
        let gain = sw as f64 / fsl as f64;
        assert!(
            gain < 2.0,
            "serial FSL offload must gain far less than the batched 3.7x: {gain:.2}x \
             (sw {sw}, fsl {fsl})"
        );
        assert!(idiv < sw, "the divider option wins on serial divisions");
    }
}
