//! FIR filtering — the adaptive-beamforming data path whose weights the
//! paper's CORDIC/Levinson-Durbin machinery updates. Unlike the recursive
//! weight *update*, the filter itself is "inherently more suitable" for
//! parallel hardware (§I): every tap multiplies concurrently.
//!
//! The peripheral is assembled entirely from the PyGen-style generators
//! (`softsim_blocks::gen`): a tap-delay line, a multiplier bank and a
//! balanced adder tree.

pub mod hardware;
pub mod reference;
pub mod rtl;
pub mod software;
