//! Golden reference for the FIR filter: integer convolution with the
//! exact wrap-around arithmetic of the 32-bit hardware datapath.

/// Direct-form FIR: `y[n] = Σ_k h[k] · x[n-k]` with `x[m] = 0` for
/// `m < 0`, all arithmetic wrapping in 32 bits.
pub fn fir(taps: &[i32], input: &[i32]) -> Vec<i32> {
    input
        .iter()
        .enumerate()
        .map(|(n, _)| {
            let mut acc = 0i32;
            for (k, &h) in taps.iter().enumerate() {
                if n >= k {
                    acc = acc.wrapping_add(h.wrapping_mul(input[n - k]));
                }
            }
            acc
        })
        .collect()
}

/// A deterministic test signal with 12-bit amplitudes.
pub fn test_signal(len: usize, seed: u32) -> Vec<i32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 20) as i32) - 2048
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_response_is_the_taps() {
        let taps = vec![3, -2, 7, 1];
        let mut input = vec![0i32; 8];
        input[0] = 1;
        let y = fir(&taps, &input);
        assert_eq!(&y[..4], &taps[..]);
        assert!(y[4..].iter().all(|&v| v == 0));
    }

    #[test]
    fn moving_average() {
        let taps = vec![1, 1, 1];
        let y = fir(&taps, &[1, 2, 3, 4, 5]);
        assert_eq!(y, vec![1, 3, 6, 9, 12]);
    }

    #[test]
    fn linearity() {
        let taps = vec![2, -1, 4];
        let x1 = test_signal(16, 1);
        let x2 = test_signal(16, 2);
        let sum: Vec<i32> = x1.iter().zip(&x2).map(|(a, b)| a.wrapping_add(*b)).collect();
        let y_sum = fir(&taps, &sum);
        let y1 = fir(&taps, &x1);
        let y2 = fir(&taps, &x2);
        for i in 0..16 {
            assert_eq!(y_sum[i], y1[i].wrapping_add(y2[i]));
        }
    }
}
