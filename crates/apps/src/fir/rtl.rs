//! Structural RTL netlist of the FIR filter for the low-level baseline:
//! tap registers, a tap-delay line, per-tap multiplier primitives and an
//! adder-tree's worth of add/sub components, all generating real event
//! traffic, with the control FSM cycle-exact against the block-level
//! filter.

use softsim_isa::Image;
use softsim_rtl::kernel::Primitives;
use softsim_rtl::{comp, RtlStop, SocRtl};

/// Builds the full low-level system: MB32 SoC plus a `t`-tap FIR on FSL
/// channel `ch`.
pub fn build_fir_rtl(image: &Image, t: usize, ch: usize) -> SocRtl {
    let mut soc = SocRtl::new(image);
    attach_fir_rtl(&mut soc, t, ch);
    soc
}

/// Attaches the filter to an existing SoC.
pub fn attach_fir_rtl(soc: &mut SocRtl, t: usize, ch: usize) {
    assert!((1..=32).contains(&t));
    let hin = soc.hw_in(ch);
    let hout = soc.hw_out(ch);
    let clk = soc.clock.clk;
    let k = &mut soc.kernel;

    // Tap and delay-line registers plus the write pointer and strobes.
    k.add_primitives(Primitives {
        ff_bits: (2 * t * 32 + 8) as u64,
        lut_bits: (t * 4 + 20) as u64,
        mult18s: 0,
        brams: 0,
    });

    // Observation datapath: per-tap multiplier and accumulator adder.
    let x_bcast = k.signal(format!("fir{ch}_x"), 32);
    let mut tap_sigs = Vec::new();
    let mut prods = Vec::new();
    for i in 0..t {
        let h = k.signal(format!("fir{ch}_h{i}"), 32);
        let p = k.signal(format!("fir{ch}_p{i}"), 32);
        comp::multiplier(k, &format!("fir{ch}_mult{i}"), clk, x_bcast, h, p, 32, 1);
        tap_sigs.push(h);
        prods.push(p);
    }
    // Adder tree observers (t-1 adders).
    let mut level = prods.clone();
    let mut depth = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (i, pair) in level.chunks(2).enumerate() {
            if let [a, b] = pair {
                let y = k.signal(format!("fir{ch}_t{depth}_{i}"), 32);
                comp::addsub(k, &format!("fir{ch}_add{depth}_{i}"), *a, *b, None, y, 32);
                next.push(y);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        depth += 1;
    }

    // Control FSM, cycle-exact with the block-level graph: taps load on
    // control words; each sample computes y combinationally and registers
    // it (visible — and pushed — the following cycle).
    let mut taps = vec![0i32; t];
    let mut ptr = 0usize;
    let mut line = vec![0i32; t]; // line[0] unused; line[k] = x[n-k]
    let mut pending: Option<i32> = None;
    k.process(format!("fir{ch}_ctrl"), &[clk], move |ctx| {
        if !ctx.rising(clk) {
            return;
        }
        // Present last cycle's registered output.
        match pending.take() {
            Some(y) => {
                ctx.set(hout.data, (y as u32) as u64);
                ctx.set(hout.valid, 1);
            }
            None => ctx.set(hout.valid, 0),
        }
        if ctx.get(hin.valid) == 0 {
            return;
        }
        let data = ctx.get(hin.data) as u32 as i32;
        if ctx.get(hin.ctrl) != 0 {
            taps[ptr % t] = data;
            ctx.set(tap_sigs[ptr % t], (data as u32) as u64);
            ptr += 1;
            return;
        }
        // Sample: y = h[0]*x + sum h[k]*line[k]; then shift the line.
        ctx.set(x_bcast, (data as u32) as u64);
        let mut y = taps[0].wrapping_mul(data);
        for k_i in 1..t {
            y = y.wrapping_add(taps[k_i].wrapping_mul(line[k_i]));
        }
        for k_i in (2..t).rev() {
            line[k_i] = line[k_i - 1];
        }
        if t > 1 {
            line[1] = data;
        }
        pending = Some(y);
    });
}

/// Convenience: run a FIR image against the RTL system (filter on
/// channel 0).
pub fn run_fir_rtl(image: &Image, t: usize, max_cycles: u64) -> (SocRtl, RtlStop) {
    let mut soc = build_fir_rtl(image, t, 0);
    let stop = soc.run(max_cycles);
    (soc, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::reference;
    use crate::fir::software::fir_cosim;
    use softsim_cosim::CoSimStop;
    use softsim_isa::asm::assemble;

    #[test]
    fn rtl_fir_matches_reference_and_cosim_cycles() {
        let taps = vec![4, -3, 2, 1];
        let input = reference::test_signal(20, 9);
        let (mut hi, img) = fir_cosim(&taps, &input, true);
        assert_eq!(hi.run(10_000_000), CoSimStop::Halted);
        let (soc, stop) = run_fir_rtl(&img, taps.len(), 10_000_000);
        assert_eq!(stop, RtlStop::Halted);
        assert_eq!(hi.cpu_stats().cycles, soc.cpu_cycles(), "cycle counts");
        let base = img.symbol("y_data").unwrap();
        let expect = reference::fir(&taps, &input);
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(soc.mem_word(base + 4 * i as u32) as i32, *e, "sample {i}");
        }
    }

    #[test]
    fn multi_peripheral_rtl_matches_cosim() {
        // The beamformer: CORDIC pipeline on FSL 0 and the FIR on FSL 2,
        // both as RTL, against the two-peripheral co-simulation.
        use crate::beamformer::{beamformer_cosim, beamformer_program, FIR_CHANNEL};
        use crate::cordic::rtl::attach_cordic_rtl;
        use crate::fir::reference::test_signal;
        use crate::lpc::reference::test_autocorrelation;

        let r = test_autocorrelation(4);
        let input = test_signal(16, 7);
        let p = 4;
        let (mut hi, img) = beamformer_cosim(&r, p, &input);
        assert_eq!(hi.run(10_000_000), CoSimStop::Halted);

        let img2 = assemble(&beamformer_program(&r, p, &input)).unwrap();
        let mut soc = SocRtl::new(&img2);
        attach_cordic_rtl(&mut soc, p);
        attach_fir_rtl(&mut soc, r.len(), FIR_CHANNEL);
        assert_eq!(soc.run(10_000_000), RtlStop::Halted);
        assert_eq!(hi.cpu_stats().cycles, soc.cpu_cycles(), "cycle counts");
        let base = img.symbol("y_data").unwrap();
        for i in 0..input.len() as u32 {
            assert_eq!(
                hi.cpu().mem().read_u32(base + 4 * i).unwrap(),
                soc.mem_word(base + 4 * i),
                "sample {i}"
            );
        }
    }
}
