//! MB32 software for FIR filtering: the pure-software loop and the
//! FSL-streaming driver for the hardware filter — the §I "suitable for
//! hardware" counterpart to the Levinson-Durbin recursion.

use softsim_cosim::{CoSim, Peripheral};
use softsim_isa::asm::assemble;
use softsim_isa::Image;

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Pure-software direct-form FIR over `input`, taps in memory; results at
/// `y_data`.
pub fn sw_program(taps: &[i32], input: &[i32]) -> String {
    let t = taps.len();
    let n = input.len();
    format!(
        ".equ T, {t}\n.equ N, {n}\n\
         start:\n\
         \taddk r20, r0, r0       # n = 0\n\
         nloop:\taddk r5, r0, r0  # acc\n\
         \taddk r21, r0, r0       # k = 0\n\
         kloop:\trsubk r6, r21, r20   # n - k\n\
         \tblti r6, skip           # x[m] = 0 for m < 0\n\
         \tbslli r7, r21, 2\n\
         \tlwi  r7, r7, h_data    # h[k]\n\
         \tbslli r8, r6, 2\n\
         \tlwi  r8, r8, x_data    # x[n-k]\n\
         \tmul  r7, r7, r8\n\
         \taddk r5, r5, r7\n\
         skip:\taddik r21, r21, 1\n\
         \trsubik r6, r21, T\n\
         \tbnei r6, kloop\n\
         \tbslli r6, r20, 2\n\
         \tswi  r5, r6, y_data\n\
         \taddik r20, r20, 1\n\
         \trsubik r6, r20, N\n\
         \tbnei r6, nloop\n\
         \thalt\n\n.align 4\n\
         h_data: .word {h}\n\
         x_data: .word {x}\n\
         y_data: .space {ys}\n",
        h = words(taps),
        x = words(input),
        ys = 4 * n,
    )
}

/// FSL driver for the hardware filter: loads the taps as control words,
/// then streams samples in batches sized to the output FIFO, storing
/// filtered samples at `y_data`.
pub fn hw_program(taps: &[i32], input: &[i32]) -> String {
    let t = taps.len();
    let n = input.len();
    let batch = 8usize; // ≤ 16-deep output FIFO with headroom
    let mut s = format!(
        ".equ T, {t}\n.equ N, {n}\n\
         start:\n\
         \tli   r25, h_data\n\
         \tli   r20, T\n\
         hload:\tlwi r5, r25, 0\n\
         \tcput r5, rfsl0\n\
         \taddik r25, r25, 4\n\
         \taddik r20, r20, -1\n\
         \tbnei r20, hload\n\
         \tli   r26, x_data\n\
         \tli   r27, y_data\n\
         \tli   r24, N\n\
         chunk:\n\
         \taddk r23, r24, r0      # this batch = min(remaining, {batch})\n\
         \trsubik r6, r24, {batch}\n\
         \tbgei r6, sized\n\
         \tli   r23, {batch}\n\
         sized:\n\
         \taddk r22, r23, r0\n\
         send:\tlwi r5, r26, 0\n\
         \tput  r5, rfsl0\n\
         \taddik r26, r26, 4\n\
         \taddik r22, r22, -1\n\
         \tbnei r22, send\n\
         \taddk r22, r23, r0\n\
         recv:\tget r5, rfsl0\n\
         \tswi  r5, r27, 0\n\
         \taddik r27, r27, 4\n\
         \taddik r22, r22, -1\n\
         \tbnei r22, recv\n\
         \trsubk r24, r23, r24\n\
         \tbnei r24, chunk\n\
         \thalt\n\n.align 4\n"
    );
    s.push_str(&format!(
        "h_data: .word {h}\nx_data: .word {x}\ny_data: .space {ys}\n",
        h = words(taps),
        x = words(input),
        ys = 4 * n,
    ));
    s
}

/// Builds the co-simulation for a FIR configuration.
pub fn fir_cosim(taps: &[i32], input: &[i32], hw: bool) -> (CoSim, Image) {
    if hw {
        let img = assemble(&hw_program(taps, input)).expect("fir hw assembles");
        let p: Peripheral = crate::fir::hardware::fir_peripheral(taps.len());
        (CoSim::with_peripheral(&img, p), img)
    } else {
        let img = assemble(&sw_program(taps, input)).expect("fir sw assembles");
        (CoSim::software_only(&img), img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::reference;
    use softsim_cosim::CoSimStop;

    fn run(taps: &[i32], input: &[i32], hw: bool) -> (Vec<i32>, u64) {
        let (mut sim, img) = fir_cosim(taps, input, hw);
        assert_eq!(sim.run(100_000_000), CoSimStop::Halted, "hw={hw}");
        let base = img.symbol("y_data").unwrap();
        let y = (0..input.len())
            .map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32)
            .collect();
        (y, sim.cpu_stats().cycles)
    }

    #[test]
    fn sw_and_hw_match_reference() {
        let taps = vec![4, -3, 2, 1];
        let input = reference::test_signal(30, 9);
        let expect = reference::fir(&taps, &input);
        let (sw, _) = run(&taps, &input, false);
        assert_eq!(sw, expect, "software");
        let (hw, _) = run(&taps, &input, true);
        assert_eq!(hw, expect, "hardware");
    }

    #[test]
    fn streaming_filter_is_where_hardware_shines() {
        // The §I contrast to Levinson-Durbin: the data-parallel filter
        // gains large factors from offload, growing with tap count.
        let input = reference::test_signal(40, 3);
        let taps8: Vec<i32> = (1..=8).collect();
        let (_, sw) = run(&taps8, &input, false);
        let (_, hw) = run(&taps8, &input, true);
        let speedup = sw as f64 / hw as f64;
        assert!(speedup > 4.0, "8-tap FIR offload speedup {speedup:.2}");
    }
}
