//! The FIR peripheral, assembled from *library blocks only* (no custom
//! MCode blocks): tap registers loaded by control words through an
//! accumulator write-pointer, a register tap-delay line, a combinational
//! multiplier bank and a balanced adder tree — the System Generator
//! design style, built with the PyGen-style generators.

use softsim_blocks::gen::{adder_tree, mult_bank};
use softsim_blocks::library::{
    Accumulator, Constant, Delay, Logical, LogicalOp, Register, RelOp, Relational,
};
use softsim_blocks::{FixFmt, Graph, Resources};
use softsim_cosim::{FslFromHw, FslToHw, Peripheral};

const W32: FixFmt = FixFmt::INT32;

/// Builds a `t`-tap FIR peripheral with standard channel-0 gateways.
///
/// Protocol: `t` control words load the taps `h[0..t]` in order; each
/// data word is one input sample, producing one output sample the next
/// cycle (initiation interval 1 — every tap multiplies in parallel,
/// the §I "suitable for hardware" case).
pub fn fir_graph(t: usize) -> Graph {
    fir_graph_chan(t, 0)
}

/// Builds the filter on an arbitrary FSL channel.
pub fn fir_graph_chan(t: usize, ch: usize) -> Graph {
    assert!((1..=32).contains(&t), "supported tap counts: 1..=32");
    let mut g = Graph::new();
    let data = g.gateway_in(format!("fsl{ch}_data"), W32);
    let valid = g.gateway_in(format!("fsl{ch}_valid"), FixFmt::BOOL);
    let ctrl = g.gateway_in(format!("fsl{ch}_ctrl"), FixFmt::BOOL);

    // Sample strobe: valid && !ctrl; tap strobe: valid && ctrl.
    let not_ctrl = g.add("not_ctrl", Logical::new(LogicalOp::Not, 1, FixFmt::BOOL));
    g.wire(ctrl, not_ctrl, 0).unwrap();
    let sample_en = g.add("sample_en", Logical::new(LogicalOp::And, 2, FixFmt::BOOL));
    g.wire(valid, sample_en, 0).unwrap();
    g.wire(not_ctrl, sample_en, 1).unwrap();
    let tap_en = g.add("tap_en", Logical::new(LogicalOp::And, 2, FixFmt::BOOL));
    g.wire(valid, tap_en, 0).unwrap();
    g.wire(ctrl, tap_en, 1).unwrap();

    // Tap write pointer: counts control words.
    let one = g.add("one", Constant::int(1, FixFmt::unsigned(6, 0)));
    let zero_bit = g.add("zero_bit", Constant::int(0, FixFmt::BOOL));
    let ptr = g.add("tap_ptr", Accumulator::new(FixFmt::unsigned(6, 0)));
    g.wire(one, ptr, 0).unwrap();
    g.connect(tap_en, 0, ptr, 1).unwrap();
    g.wire(zero_bit, ptr, 2).unwrap();

    // Tap registers with decoded enables.
    let mut taps = Vec::with_capacity(t);
    for i in 0..t {
        let idx = g.add(format!("idx{i}"), Constant::int(i as i64, FixFmt::unsigned(6, 0)));
        let hit = g.add(format!("hit{i}"), Relational::new(RelOp::Eq, 6));
        g.connect(ptr, 0, hit, 0).unwrap();
        g.wire(idx, hit, 1).unwrap();
        let en = g.add(format!("en{i}"), Logical::new(LogicalOp::And, 2, FixFmt::BOOL));
        g.wire(hit, en, 0).unwrap();
        g.connect(tap_en, 0, en, 1).unwrap();
        let reg = g.add(format!("h{i}"), Register::zeroed(W32));
        g.wire(data, reg, 0).unwrap();
        g.wire(en, reg, 1).unwrap();
        taps.push(reg);
    }

    // Tap-delay line: x[n], x[n-1], ..., shifted only on sample strobes.
    let mut xs = vec![(data, 0usize)];
    let mut prev = (data, 0usize);
    for i in 1..t {
        let d = g.add(format!("x{i}"), Register::zeroed(W32));
        g.connect(prev.0, prev.1, d, 0).unwrap();
        g.connect(sample_en, 0, d, 1).unwrap();
        prev = (d, 0);
        xs.push(prev);
    }

    // Multiplier bank and adder tree (PyGen-style generators). Each lane
    // multiplies h[k] by x[n-k]; latency 0 keeps the math combinational
    // so the output registers after one cycle.
    let mut products = Vec::with_capacity(t);
    for (k, (x, xp)) in xs.iter().enumerate() {
        let lanes = mult_bank(&mut g, &format!("mac{k}_"), (*x, *xp), &[(taps[k], 0)], W32, 0)
            .expect("mult bank wires");
        products.push((lanes[0], 0usize));
    }
    let (sum, sum_port) = adder_tree(&mut g, "tree", &products, W32).expect("adder tree wires");

    // Registered output, valid one cycle after the sample.
    let out = g.add("y", Register::zeroed(W32));
    g.connect(sum, sum_port, out, 0).unwrap();
    g.connect(sample_en, 0, out, 1).unwrap();
    let out_valid = g.add("y_valid", Delay::new(FixFmt::BOOL, 1));
    g.connect(sample_en, 0, out_valid, 0).unwrap();
    g.gateway_out(format!("fsl{ch}_out_data"), out, 0);
    g.gateway_out(format!("fsl{ch}_out_valid"), out_valid, 0);
    g.compile().expect("fir graph compiles");
    g
}

/// Wraps [`fir_graph`] as an attachable peripheral.
pub fn fir_peripheral(t: usize) -> Peripheral {
    fir_peripheral_chan(t, 0)
}

/// Wraps [`fir_graph_chan`] as a peripheral on channel `ch`.
pub fn fir_peripheral_chan(t: usize, ch: usize) -> Peripheral {
    Peripheral::new(
        fir_graph_chan(t, ch),
        vec![FslToHw::standard(ch)],
        vec![FslFromHw::standard(ch)],
    )
}

/// Resource estimate of the filter alone.
pub fn fir_resources(t: usize) -> Resources {
    fir_graph(t).resources()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::reference;
    use softsim_blocks::block::bit;
    use softsim_blocks::Fix;

    fn fix32(v: i32) -> Fix {
        Fix::from_bits(v as u32 as u64, W32)
    }

    fn drive(t: usize, taps: &[i32], input: &[i32]) -> Vec<i32> {
        let mut g = fir_graph(t);
        let mut out = Vec::new();
        let send = |g: &mut Graph, w: i32, c: bool, out: &mut Vec<i32>| {
            g.set_input("fsl0_data", fix32(w)).unwrap();
            g.set_input("fsl0_valid", bit(true)).unwrap();
            g.set_input("fsl0_ctrl", bit(c)).unwrap();
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(g.output("fsl0_out_data").unwrap().to_bits() as u32 as i32);
            }
        };
        for &h in taps {
            send(&mut g, h, true, &mut out);
        }
        for &x in input {
            send(&mut g, x, false, &mut out);
        }
        g.set_input("fsl0_valid", bit(false)).unwrap();
        while out.len() < input.len() {
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(g.output("fsl0_out_data").unwrap().to_bits() as u32 as i32);
            }
        }
        out
    }

    #[test]
    fn matches_reference_convolution() {
        for t in [1usize, 3, 4, 8] {
            let taps: Vec<i32> = (0..t as i32).map(|k| 3 - 2 * k).collect();
            let input = reference::test_signal(24, 5);
            let got = drive(t, &taps, &input);
            assert_eq!(got, reference::fir(&taps, &input), "{t} taps");
        }
    }

    #[test]
    fn full_rate_streaming() {
        // One output per input cycle: the filter sustains II = 1.
        let taps = vec![1, 1];
        let input = vec![5, 6, 7, 8];
        let got = drive(2, &taps, &input);
        assert_eq!(got, vec![5, 11, 13, 15]);
    }

    #[test]
    fn resources_scale_with_taps() {
        let r4 = fir_resources(4);
        let r8 = fir_resources(8);
        assert_eq!(r4.mult18s, 4 * 4, "32-bit multipliers tile 2x2 MULT18s");
        assert!(r8.slices > r4.slices);
        assert_eq!(r8.mult18s, 2 * r4.mult18s);
    }
}
