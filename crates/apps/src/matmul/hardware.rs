//! The block-matrix-multiplication peripheral of §IV-B (Fig. 6): an
//! `nb × nb` block-product unit with `nb` parallel multipliers and a
//! resident B block loaded through control words.
//!
//! # Port protocol (one input FSL, one output FSL)
//!
//! * `nb²` **control words** load the B block, row-major
//!   (`b(0,0), b(0,1), …`) — "the data elements of matrix blocks from
//!   matrix B are fed into the hardware peripheral as control words".
//! * `nb²` **data words** stream the A block column-major
//!   (`a(0,0), a(1,0), …`); each word fires `nb` multiply-accumulates in
//!   one cycle (one per result column).
//! * When the last A element arrives, the finished `nb²` block product is
//!   handed to an output buffer and streamed back row-major, one word per
//!   cycle, while the next A block may already stream in.

use softsim_blocks::block::{bit, state_word, Block};
use softsim_blocks::library::Tmr;
use softsim_blocks::{Fix, FixFmt, Graph, Resources};
use softsim_cosim::{FslFromHw, FslToHw, Peripheral};
use std::collections::VecDeque;

const W32: FixFmt = FixFmt::INT32;

fn raw32(x: &Fix) -> i32 {
    x.to_bits() as u32 as i32
}

fn fix32(v: i32) -> Fix {
    Fix::from_bits(v as u32 as u64, W32)
}

/// The block-product unit as a custom (MCode-style) block.
#[derive(Debug, Clone)]
pub struct MatmulUnit {
    nb: usize,
    /// Resident B block, row-major (loaded by control words).
    b: Vec<i32>,
    /// Write index for incoming control words.
    b_idx: usize,
    /// Accumulators, row-major.
    acc: Vec<i32>,
    /// Position of the next A element: k*nb + i (column-major count).
    a_idx: usize,
    /// Output buffer streaming one word per cycle.
    out: VecDeque<i32>,
    out_data: i32,
    out_valid: bool,
    /// High-water mark of the output buffer.
    pub max_occupancy: usize,
}

impl MatmulUnit {
    /// A unit for `nb × nb` blocks.
    pub fn new(nb: usize) -> MatmulUnit {
        assert!(nb >= 1);
        MatmulUnit {
            nb,
            b: vec![0; nb * nb],
            b_idx: 0,
            acc: vec![0; nb * nb],
            a_idx: 0,
            out: VecDeque::new(),
            out_data: 0,
            out_valid: false,
            max_occupancy: 0,
        }
    }
}

impl Block for MatmulUnit {
    fn kind(&self) -> &'static str {
        "MatmulUnit"
    }
    fn inputs(&self) -> usize {
        3 // data, valid, ctrl
    }
    fn outputs(&self) -> usize {
        2 // out_data, out_valid
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        if port == 0 {
            W32
        } else {
            FixFmt::BOOL
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = fix32(self.out_data);
        outputs[1] = bit(self.out_valid);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        let nb = self.nb;
        let data = raw32(&inputs[0]);
        let valid = !inputs[1].is_zero();
        let ctrl = !inputs[2].is_zero();
        if valid {
            if ctrl {
                // Load B row-major; wrap so a new block overwrites.
                self.b[self.b_idx] = data;
                self.b_idx = (self.b_idx + 1) % (nb * nb);
                // A new B block restarts the A stream.
                self.a_idx = 0;
                for a in &mut self.acc {
                    *a = 0;
                }
            } else {
                // A element a(i, k) arrives column-major.
                let k = self.a_idx / nb;
                let i = self.a_idx % nb;
                for j in 0..nb {
                    // The nb parallel multiply-accumulates of Fig. 6.
                    self.acc[i * nb + j] =
                        self.acc[i * nb + j].wrapping_add(data.wrapping_mul(self.b[k * nb + j]));
                }
                self.a_idx += 1;
                if self.a_idx == nb * nb {
                    // Block complete: hand to the output buffer.
                    for &v in &self.acc {
                        self.out.push_back(v);
                    }
                    self.max_occupancy = self.max_occupancy.max(self.out.len());
                    for a in &mut self.acc {
                        *a = 0;
                    }
                    self.a_idx = 0;
                }
            }
        }
        match self.out.pop_front() {
            Some(w) => {
                self.out_data = w;
                self.out_valid = true;
            }
            None => self.out_valid = false,
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // No word arriving, nothing buffered, nothing being presented.
        inputs[1].is_zero() && self.out.is_empty() && !self.out_valid
    }
    fn resources(&self) -> Resources {
        let nb = self.nb as u32;
        // nb parallel 18×18 multipliers (the 2 extra / 4 extra MULT18X18s
        // of Table I); per result element one accumulator adder with its
        // register packed behind it and one B register (~9 slices/element
        // at 32 bits), nb column-broadcast registers, plus the stream
        // control and output buffering.
        Resources { slices: nb * nb * 9 + nb * 10 + 63, brams: 0, mult18s: nb }
    }
    fn reset(&mut self) {
        *self = MatmulUnit::new(self.nb);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.b.iter().map(|&w| w as u32 as u64));
        out.push(self.b_idx as u64);
        out.extend(self.acc.iter().map(|&w| w as u32 as u64));
        out.push(self.a_idx as u64);
        out.push(self.out.len() as u64);
        out.extend(self.out.iter().map(|&w| w as u32 as u64));
        out.push(self.out_data as u32 as u64);
        out.push(self.out_valid as u64);
        out.push(self.max_occupancy as u64);
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        let nb = self.nb;
        let mut w = || state_word("MatmulUnit", src);
        for v in &mut self.b {
            *v = w() as u32 as i32;
        }
        // Clamp the self-describing indices and length: fault injection
        // may hand this block a bit-flipped frame, and a wild index must
        // corrupt data (detectably), not panic or exhaust memory.
        self.b_idx = w() as usize % (nb * nb);
        for v in &mut self.acc {
            *v = w() as u32 as i32;
        }
        self.a_idx = w() as usize % (nb * nb);
        let len = (w() as usize).min(4096);
        self.out.clear();
        for _ in 0..len {
            self.out.push_back(w() as u32 as i32);
        }
        self.out_data = w() as u32 as i32;
        self.out_valid = w() != 0;
        self.max_occupancy = w() as usize;
    }
}

/// Builds the block-level peripheral graph with standard FSL gateway
/// names on channel 0.
pub fn matmul_graph(nb: usize) -> Graph {
    matmul_graph_chan(nb, 0)
}

/// Builds the peripheral graph on an arbitrary FSL channel (several
/// peripherals can then share one processor).
pub fn matmul_graph_chan(nb: usize, ch: usize) -> Graph {
    let mut g = Graph::new();
    let data = g.gateway_in(format!("fsl{ch}_data"), W32);
    let valid = g.gateway_in(format!("fsl{ch}_valid"), FixFmt::BOOL);
    let ctrl = g.gateway_in(format!("fsl{ch}_ctrl"), FixFmt::BOOL);
    let unit = g.add(format!("matmul{nb}x{nb}"), MatmulUnit::new(nb));
    g.wire(data, unit, 0).unwrap();
    g.wire(valid, unit, 1).unwrap();
    g.wire(ctrl, unit, 2).unwrap();
    g.gateway_out(format!("fsl{ch}_out_data"), unit, 0);
    g.gateway_out(format!("fsl{ch}_out_valid"), unit, 1);
    g.compile().expect("matmul graph compiles");
    g
}

/// Wraps [`matmul_graph`] as an attachable peripheral.
pub fn matmul_peripheral(nb: usize) -> Peripheral {
    matmul_peripheral_chan(nb, 0)
}

/// Wraps [`matmul_graph_chan`] as a peripheral on channel `ch`.
pub fn matmul_peripheral_chan(nb: usize, ch: usize) -> Peripheral {
    Peripheral::new(
        matmul_graph_chan(nb, ch),
        vec![FslToHw::standard(ch)],
        vec![FslFromHw::standard(ch)],
    )
}

/// TMR-hardened [`matmul_graph_chan`]: the block-product unit runs as
/// three voted replicas. Gateway names and cycle behavior match the
/// unhardened graph; replica miscompares surface through
/// `Graph::detected_faults` for the recovery supervisor.
pub fn matmul_graph_tmr(nb: usize, ch: usize) -> Graph {
    let mut g = Graph::new();
    let data = g.gateway_in(format!("fsl{ch}_data"), W32);
    let valid = g.gateway_in(format!("fsl{ch}_valid"), FixFmt::BOOL);
    let ctrl = g.gateway_in(format!("fsl{ch}_ctrl"), FixFmt::BOOL);
    let unit = g.add(format!("matmul{nb}x{nb}"), Tmr::new(MatmulUnit::new(nb)));
    g.wire(data, unit, 0).unwrap();
    g.wire(valid, unit, 1).unwrap();
    g.wire(ctrl, unit, 2).unwrap();
    g.gateway_out(format!("fsl{ch}_out_data"), unit, 0);
    g.gateway_out(format!("fsl{ch}_out_valid"), unit, 1);
    g.compile().expect("TMR matmul graph compiles");
    g
}

/// Wraps [`matmul_graph_tmr`] as a peripheral on channel 0.
pub fn matmul_peripheral_tmr(nb: usize) -> Peripheral {
    Peripheral::new(
        matmul_graph_tmr(nb, 0),
        vec![FslToHw::standard(0)],
        vec![FslFromHw::standard(0)],
    )
}

/// Resource estimate of the block-product unit alone.
pub fn unit_resources(nb: usize) -> Resources {
    matmul_graph(nb).resources()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::reference;

    fn drive_block(nb: usize, b_rm: &[i32], a_cm: &[i32]) -> Vec<i32> {
        let mut g = matmul_graph(nb);
        let mut out = Vec::new();
        let send = |g: &mut Graph, word: i32, ctrl: bool, out: &mut Vec<i32>| {
            g.set_input("fsl0_data", fix32(word)).unwrap();
            g.set_input("fsl0_valid", bit(true)).unwrap();
            g.set_input("fsl0_ctrl", bit(ctrl)).unwrap();
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(raw32(&g.output("fsl0_out_data").unwrap()));
            }
        };
        for &bv in b_rm {
            send(&mut g, bv, true, &mut out);
        }
        for &av in a_cm {
            send(&mut g, av, false, &mut out);
        }
        g.set_input("fsl0_valid", bit(false)).unwrap();
        while out.len() < nb * nb {
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(raw32(&g.output("fsl0_out_data").unwrap()));
            }
        }
        out
    }

    #[test]
    fn unit_computes_2x2_block_product() {
        // A = [[1,2],[3,4]] (column-major [1,3,2,4]), B = [[5,6],[7,8]].
        let c = drive_block(2, &[5, 6, 7, 8], &[1, 3, 2, 4]);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn unit_computes_4x4_against_reference() {
        let nb = 4;
        let a = reference::Matrix::test_pattern(nb, 7);
        let b = reference::Matrix::test_pattern(nb, 9);
        // Column-major A stream.
        let a_cm: Vec<i32> =
            (0..nb).flat_map(|k| (0..nb).map(move |i| (i, k))).map(|(i, k)| a.get(i, k)).collect();
        let c = drive_block(nb, &b.data, &a_cm);
        let expect = reference::multiply(&a, &b);
        assert_eq!(c, expect.data);
    }

    #[test]
    fn b_block_reused_across_a_blocks() {
        let nb = 2;
        let mut g = matmul_graph(nb);
        let mut out = Vec::new();
        let send = |g: &mut Graph, word: i32, ctrl: bool, out: &mut Vec<i32>| {
            g.set_input("fsl0_data", fix32(word)).unwrap();
            g.set_input("fsl0_valid", bit(true)).unwrap();
            g.set_input("fsl0_ctrl", bit(ctrl)).unwrap();
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(raw32(&g.output("fsl0_out_data").unwrap()));
            }
        };
        // Identity B.
        for bv in [1, 0, 0, 1] {
            send(&mut g, bv, true, &mut out);
        }
        // Two A blocks, back to back: product with identity = A itself.
        for av in [1, 3, 2, 4, 5, 7, 6, 8] {
            send(&mut g, av, false, &mut out);
        }
        g.set_input("fsl0_valid", bit(false)).unwrap();
        while out.len() < 8 {
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(raw32(&g.output("fsl0_out_data").unwrap()));
            }
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8], "row-major A blocks back");
    }

    #[test]
    fn multiplier_counts_match_table_one() {
        // Table I: 2×2 uses 5 total (3 CPU + 2), 4×4 uses 7 (3 CPU + 4).
        assert_eq!(unit_resources(2).mult18s, 2);
        assert_eq!(unit_resources(4).mult18s, 4);
    }

    #[test]
    fn unit_is_pipelined_across_blocks() {
        // While block 1's results stream out, block 2 streams in: driven
        // by `b_block_reused_across_a_blocks` sending 8 A words back to
        // back and receiving all 8 results.
        let r2 = unit_resources(2);
        let r4 = unit_resources(4);
        assert!(r4.slices > r2.slices);
    }
}
