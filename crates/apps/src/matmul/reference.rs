//! Golden reference for block matrix multiplication (§IV-B).
//!
//! The paper decomposes N×N matrices into `nb × nb` blocks (Eq. 3); the
//! customized peripheral multiplies blocks, the software combines the
//! partial products. Elements are 32-bit integers (values kept within
//! 16-bit range in the experiments, so products cannot overflow).

/// Row-major dense matrix of `i32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    /// Dimension (square, N×N).
    pub n: usize,
    /// Row-major elements.
    pub data: Vec<i32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix { n, data: vec![0; n * n] }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics unless `data.len() == n * n`.
    pub fn from_rows(n: usize, data: Vec<i32>) -> Matrix {
        assert_eq!(data.len(), n * n, "dimension mismatch");
        Matrix { n, data }
    }

    /// A deterministic pseudo-random test matrix with 16-bit entries.
    pub fn test_pattern(n: usize, seed: u32) -> Matrix {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let data = (0..n * n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as i16) as i32
            })
            .collect();
        Matrix { n, data }
    }

    /// Element accessor.
    pub fn get(&self, row: usize, col: usize) -> i32 {
        self.data[row * self.n + col]
    }

    /// Element setter.
    pub fn set(&mut self, row: usize, col: usize, v: i32) {
        self.data[row * self.n + col] = v;
    }
}

/// Dense reference product `A × B` (wrapping arithmetic, as the 32-bit
/// hardware computes).
pub fn multiply(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a.get(i, k).wrapping_mul(b.get(k, j)));
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Block-decomposed product with `nb × nb` blocks — the algorithm the
/// HW/SW partition implements. Must equal [`multiply`] exactly.
pub fn multiply_blocked(a: &Matrix, b: &Matrix, nb: usize) -> Matrix {
    assert_eq!(a.n, b.n);
    assert_eq!(a.n % nb, 0, "block size must divide N");
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for jb in (0..n).step_by(nb) {
        for kb in (0..n).step_by(nb) {
            // B block (kb, jb) is "loaded once" here (the paper's reuse).
            for ib in (0..n).step_by(nb) {
                // Block product A(ib,kb) × B(kb,jb) accumulated into C.
                for i in 0..nb {
                    for j in 0..nb {
                        let mut acc = 0i32;
                        for k in 0..nb {
                            acc = acc.wrapping_add(
                                a.get(ib + i, kb + k).wrapping_mul(b.get(kb + k, jb + j)),
                            );
                        }
                        let prev = c.get(ib + i, jb + j);
                        c.set(ib + i, jb + j, prev.wrapping_add(acc));
                    }
                }
            }
        }
    }
    c
}

/// One `nb × nb` block product (what the peripheral computes): column-
/// major A-element stream against a resident B block.
pub fn block_product(a_block: &[i32], b_block: &[i32], nb: usize) -> Vec<i32> {
    assert_eq!(a_block.len(), nb * nb);
    assert_eq!(b_block.len(), nb * nb);
    let mut c = vec![0i32; nb * nb];
    // a_block column-major: a[k*nb + i] = A(i,k); b row-major.
    for k in 0..nb {
        for i in 0..nb {
            let a = a_block[k * nb + i];
            for j in 0..nb {
                c[i * nb + j] = c[i * nb + j].wrapping_add(a.wrapping_mul(b_block[k * nb + j]));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(2, vec![1, 2, 3, 4]);
        let b = Matrix::from_rows(2, vec![5, 6, 7, 8]);
        let c = multiply(&a, &b);
        assert_eq!(c.data, vec![19, 22, 43, 50]);
    }

    #[test]
    fn blocked_equals_dense_for_all_block_sizes() {
        for n in [4usize, 8, 16] {
            let a = Matrix::test_pattern(n, 1);
            let b = Matrix::test_pattern(n, 2);
            let dense = multiply(&a, &b);
            for nb in [2usize, 4] {
                assert_eq!(multiply_blocked(&a, &b, nb), dense, "n={n} nb={nb}");
            }
        }
    }

    #[test]
    fn block_product_matches_direct() {
        let nb = 2;
        // A = [[1,2],[3,4]] column-major: [1,3,2,4]; B row-major.
        let a_cm = vec![1, 3, 2, 4];
        let b_rm = vec![5, 6, 7, 8];
        let c = block_product(&a_cm, &b_rm, nb);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn test_pattern_is_deterministic_and_16_bit() {
        let m1 = Matrix::test_pattern(8, 42);
        let m2 = Matrix::test_pattern(8, 42);
        assert_eq!(m1, m2);
        assert!(m1.data.iter().all(|&v| (-32768..=32767).contains(&v)));
        assert_ne!(m1, Matrix::test_pattern(8, 43));
    }

    #[test]
    #[should_panic(expected = "block size must divide")]
    fn indivisible_block_size_rejected() {
        let a = Matrix::zeros(6);
        let b = Matrix::zeros(6);
        let _ = multiply_blocked(&a, &b, 4);
    }
}
