//! Structural RTL netlist of the block-product unit (Fig. 6) for the
//! low-level simulation baseline. Cycle semantics match the block-level
//! peripheral exactly; `nb` multiplier components and the B-register /
//! accumulator banks generate the per-cycle event traffic of the real
//! netlist.

use softsim_isa::Image;
use softsim_rtl::kernel::Primitives;
use softsim_rtl::{comp, RtlStop, SocRtl};
use std::collections::VecDeque;

/// Builds the full low-level system: MB32 SoC plus the `nb × nb`
/// block-product unit on FSL channel 0.
pub fn build_matmul_rtl(image: &Image, nb: usize) -> SocRtl {
    let mut soc = SocRtl::new(image);
    attach_matmul_rtl(&mut soc, nb);
    soc
}

/// Attaches the unit to an existing SoC.
pub fn attach_matmul_rtl(soc: &mut SocRtl, nb: usize) {
    assert!(nb >= 1);
    let hin = soc.hw_in(0);
    let hout = soc.hw_out(0);
    let clk = soc.clock.clk;
    let k = &mut soc.kernel;

    // Register banks (B block + accumulators, the accumulator registers
    // packing into their adder slices) plus stream control; the
    // multipliers and accumulator adders instantiated below count their
    // own primitives.
    k.add_primitives(Primitives {
        ff_bits: (nb * nb * 32 + 8) as u64,
        lut_bits: (nb * nb * 16 + 50) as u64,
        mult18s: 0,
        brams: 0,
    });

    // Observation signals for the nb-wide MAC datapath.
    let a_bcast = k.signal("mm_a_bcast", 32);
    let mut b_row = Vec::new();
    let mut prod = Vec::new();
    let mut acc_sig = Vec::new();
    for j in 0..nb {
        b_row.push(k.signal(format!("mm_b_row{j}"), 32));
        prod.push(k.signal(format!("mm_prod{j}"), 32));
        acc_sig.push(k.signal(format!("mm_acc{j}"), 32));
    }
    for j in 0..nb {
        // One embedded 18×18 multiplier per column (matrix elements are
        // 16-bit values, as in the paper) and one accumulator adder.
        comp::multiplier(k, &format!("mm_mult{j}"), clk, a_bcast, b_row[j], prod[j], 18, 1);
        let acc_in = acc_sig[j];
        let sum = k.signal(format!("mm_sum{j}"), 32);
        comp::addsub(k, &format!("mm_accadd{j}"), acc_in, prod[j], None, sum, 32);
    }

    // The control FSM, cycle-exact with the block-level `MatmulUnit`.
    let mut b: Vec<i32> = vec![0; nb * nb];
    let mut b_idx = 0usize;
    let mut acc: Vec<i32> = vec![0; nb * nb];
    let mut a_idx = 0usize;
    let mut out: VecDeque<i32> = VecDeque::new();
    k.process("mm_ctrl", &[clk], move |ctx| {
        if !ctx.rising(clk) {
            return;
        }
        if ctx.get(hin.valid) != 0 {
            let data = ctx.get(hin.data) as u32 as i32;
            if ctx.get(hin.ctrl) != 0 {
                b[b_idx] = data;
                b_idx = (b_idx + 1) % (nb * nb);
                a_idx = 0;
                acc.iter_mut().for_each(|a| *a = 0);
            } else {
                let kk = a_idx / nb;
                let i = a_idx % nb;
                ctx.set(a_bcast, (data as u32) as u64);
                for j in 0..nb {
                    ctx.set(b_row[j], (b[kk * nb + j] as u32) as u64);
                    acc[i * nb + j] =
                        acc[i * nb + j].wrapping_add(data.wrapping_mul(b[kk * nb + j]));
                    ctx.set(acc_sig[j], (acc[i * nb + j] as u32) as u64);
                }
                a_idx += 1;
                if a_idx == nb * nb {
                    out.extend(acc.iter().copied());
                    acc.iter_mut().for_each(|a| *a = 0);
                    a_idx = 0;
                }
            }
        }
        match out.pop_front() {
            Some(w) => {
                ctx.set(hout.data, (w as u32) as u64);
                ctx.set(hout.valid, 1);
            }
            None => ctx.set(hout.valid, 0),
        }
    });
}

/// Convenience: run a matmul image against the RTL system.
pub fn run_matmul_rtl(image: &Image, nb: usize, max_cycles: u64) -> (SocRtl, RtlStop) {
    let mut soc = build_matmul_rtl(image, nb);
    let stop = soc.run(max_cycles);
    (soc, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::reference::{self, Matrix};
    use crate::matmul::software::{hw_program, RESULT_LABEL};
    use softsim_isa::asm::assemble;

    #[test]
    fn rtl_matmul_matches_reference() {
        for (n, nb) in [(4usize, 2usize), (8, 4)] {
            let a = Matrix::test_pattern(n, 11);
            let b = Matrix::test_pattern(n, 12);
            let img = assemble(&hw_program(&a, &b, nb)).unwrap();
            let (soc, stop) = run_matmul_rtl(&img, nb, 10_000_000);
            assert_eq!(stop, RtlStop::Halted, "n={n} nb={nb}");
            let base = img.symbol(RESULT_LABEL).unwrap();
            let expect = reference::multiply(&a, &b);
            for i in 0..n * n {
                assert_eq!(
                    soc.mem_word(base + 4 * i as u32) as i32,
                    expect.data[i],
                    "n={n} nb={nb} element {i}"
                );
            }
        }
    }

    #[test]
    fn rtl_cycle_count_matches_cosim() {
        let (n, nb) = (4usize, 2usize);
        let a = Matrix::test_pattern(n, 13);
        let b = Matrix::test_pattern(n, 14);
        let img = assemble(&hw_program(&a, &b, nb)).unwrap();
        let mut cosim = softsim_cosim::CoSim::with_peripheral(
            &img,
            crate::matmul::hardware::matmul_peripheral(nb),
        );
        assert_eq!(cosim.run(10_000_000), softsim_cosim::CoSimStop::Halted);
        let (soc, stop) = run_matmul_rtl(&img, nb, 10_000_000);
        assert_eq!(stop, RtlStop::Halted);
        assert_eq!(soc.cpu_cycles(), cosim.cpu_stats().cycles);
    }

    #[test]
    fn rtl_multiplier_count_matches_table_one() {
        let a = Matrix::test_pattern(4, 1);
        let b = Matrix::test_pattern(4, 2);
        for nb in [2usize, 4] {
            let img = assemble(&hw_program(&a, &b, nb)).unwrap();
            let soc = build_matmul_rtl(&img, nb);
            // 3 CPU multipliers + nb for the unit: Table I's 5 and 7.
            assert_eq!(soc.kernel.primitives().mult18s as usize, 3 + nb);
        }
    }
}
