//! The Fig. 6 block-product unit realized *structurally* from library
//! blocks only — no custom MCode block: B registers behind a decoded
//! write pointer, position counters via accumulators and bit slices,
//! per-element multiply-accumulate lanes, and an output-sequencing FSM
//! from registers and comparators.
//!
//! Its word-for-word output equivalence against the compact
//! [`crate::matmul::hardware::MatmulUnit`] is tested below — the two
//! descriptions of the same hardware must agree, which is how System
//! Generator users validate an MCode block against its schematic.

use softsim_blocks::library::{
    Accumulator, AddSub, AddSubOp, Constant, Logical, LogicalOp, Mult, Mux, Register, RelOp,
    Relational, Slice,
};
use softsim_blocks::{FixFmt, Graph, NodeId};

const W32: FixFmt = FixFmt::INT32;
const B1: FixFmt = FixFmt::BOOL;
const CNT: FixFmt = FixFmt::unsigned(6, 0);

/// Builds the structural `nb × nb` block-product graph (standard
/// channel-0 gateways). `nb` must be a power of two (2 or 4).
pub fn matmul_structural_graph(nb: usize) -> Graph {
    assert!(nb == 2 || nb == 4, "structural variant supports nb = 2 or 4");
    let log2nb = nb.trailing_zeros() as u8;
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", W32);
    let valid = g.gateway_in("fsl0_valid", B1);
    let ctrl = g.gateway_in("fsl0_ctrl", B1);

    // Strobes.
    let not_ctrl = g.add("not_ctrl", Logical::new(LogicalOp::Not, 1, B1));
    g.wire(ctrl, not_ctrl, 0).unwrap();
    let sample_en = g.add("sample_en", Logical::new(LogicalOp::And, 2, B1));
    g.wire(valid, sample_en, 0).unwrap();
    g.wire(not_ctrl, sample_en, 1).unwrap();
    let tap_en = g.add("tap_en", Logical::new(LogicalOp::And, 2, B1));
    g.wire(valid, tap_en, 0).unwrap();
    g.wire(ctrl, tap_en, 1).unwrap();

    let one_cnt = g.add("one_cnt", Constant::int(1, CNT));
    let one_bit = g.add("one_bit", Constant::int(1, B1));
    let zero_w = g.add("zero_w", Constant::int(0, W32));

    // --- B registers behind a decoded write pointer (reset by nothing:
    // a new block simply overwrites, like the MCode unit, because the
    // pointer wraps modulo nb²).
    let bptr = g.add("bptr", Accumulator::new(CNT));
    g.wire(one_cnt, bptr, 0).unwrap();
    g.connect(tap_en, 0, bptr, 1).unwrap();
    // Wrap: reset when bptr == nb²-1 and a control word arrives.
    let blast_c = g.add("blast_c", Constant::int(nb as i64 * nb as i64 - 1, CNT));
    let bhit_last = g.add("bhit_last", Relational::new(RelOp::Eq, 6));
    g.connect(bptr, 0, bhit_last, 0).unwrap();
    g.wire(blast_c, bhit_last, 1).unwrap();
    let bwrap = g.add("bwrap", Logical::new(LogicalOp::And, 2, B1));
    g.wire(bhit_last, bwrap, 0).unwrap();
    g.connect(tap_en, 0, bwrap, 1).unwrap();
    g.connect(bwrap, 0, bptr, 2).unwrap();
    let mut b_regs = Vec::with_capacity(nb * nb);
    for idx in 0..nb * nb {
        let c = g.add(format!("bidx{idx}"), Constant::int(idx as i64, CNT));
        let hit = g.add(format!("bhit{idx}"), Relational::new(RelOp::Eq, 6));
        g.connect(bptr, 0, hit, 0).unwrap();
        g.wire(c, hit, 1).unwrap();
        let en = g.add(format!("ben{idx}"), Logical::new(LogicalOp::And, 2, B1));
        g.wire(hit, en, 0).unwrap();
        g.connect(tap_en, 0, en, 1).unwrap();
        let reg = g.add(format!("b{idx}"), Register::zeroed(W32));
        g.wire(data, reg, 0).unwrap();
        g.wire(en, reg, 1).unwrap();
        b_regs.push(reg);
    }

    // --- A-stream position: pos counts data words modulo nb²; slices
    // give i = pos[log2nb-1:0] (row) and k = pos[2*log2nb-1:log2nb].
    let pos = g.add("pos", Accumulator::new(CNT));
    g.wire(one_cnt, pos, 0).unwrap();
    g.connect(sample_en, 0, pos, 1).unwrap();
    let last_c = g.add("last_c", Constant::int(nb as i64 * nb as i64 - 1, CNT));
    let at_last = g.add("at_last", Relational::new(RelOp::Eq, 6));
    g.connect(pos, 0, at_last, 0).unwrap();
    g.wire(last_c, at_last, 1).unwrap();
    let done = g.add("done", Logical::new(LogicalOp::And, 2, B1));
    g.wire(at_last, done, 0).unwrap();
    g.connect(sample_en, 0, done, 1).unwrap();
    g.connect(done, 0, pos, 2).unwrap(); // wrap
    let sel_fmt = FixFmt::unsigned(log2nb, 0);
    let i_sel = g.add("i_sel", Slice::new(0, sel_fmt));
    g.connect(pos, 0, i_sel, 0).unwrap();
    let k_sel = g.add("k_sel", Slice::new(log2nb, sel_fmt));
    g.connect(pos, 0, k_sel, 0).unwrap();

    // --- MAC lanes: for each (i, j): product = data × B[k][j] (k muxed),
    // gated by the row decode, accumulated; hold registers capture
    // acc + final product at `done`.
    let mut holds: Vec<NodeId> = Vec::with_capacity(nb * nb);
    for i in 0..nb {
        // Row decode: i_sel == i, qualified by the sample strobe.
        let ic = g.add(format!("ic{i}"), Constant::int(i as i64, sel_fmt));
        let row_hit = g.add(format!("rowhit{i}"), Relational::new(RelOp::Eq, log2nb));
        g.connect(i_sel, 0, row_hit, 0).unwrap();
        g.wire(ic, row_hit, 1).unwrap();
        let row_en = g.add(format!("rowen{i}"), Logical::new(LogicalOp::And, 2, B1));
        g.wire(row_hit, row_en, 0).unwrap();
        g.connect(sample_en, 0, row_en, 1).unwrap();
        for j in 0..nb {
            // B column mux: selects B[k][j] by the k field.
            let mux = g.add(format!("bmux{i}_{j}"), Mux::new(nb, W32));
            g.connect(k_sel, 0, mux, 0).unwrap();
            for k in 0..nb {
                g.connect(b_regs[k * nb + j], 0, mux, 1 + k).unwrap();
            }
            let m = g.add(format!("m{i}_{j}"), Mult::new(W32, 0));
            g.wire(data, m, 0).unwrap();
            g.connect(mux, 0, m, 1).unwrap();
            // Gate the product by the row decode (0 when another row).
            let gated = g.add(format!("gate{i}_{j}"), Mux::new(2, W32));
            g.connect(row_en, 0, gated, 0).unwrap();
            g.wire(zero_w, gated, 1).unwrap();
            g.connect(m, 0, gated, 2).unwrap();
            // Accumulator, reset at `done` (the hold captured the sum).
            let acc = g.add(format!("acc{i}_{j}"), Accumulator::new(W32));
            g.connect(gated, 0, acc, 0).unwrap();
            g.connect(row_en, 0, acc, 1).unwrap();
            g.connect(done, 0, acc, 2).unwrap();
            // Hold = acc + gated product (the final addend), latched at done.
            let sum = g.add(format!("hsum{i}_{j}"), AddSub::new(AddSubOp::Add, W32));
            g.connect(acc, 0, sum, 0).unwrap();
            g.connect(gated, 0, sum, 1).unwrap();
            let hold = g.add(format!("hold{i}_{j}"), Register::zeroed(W32));
            g.connect(sum, 0, hold, 0).unwrap();
            g.connect(done, 0, hold, 1).unwrap();
            holds.push(hold);
        }
    }

    // --- Output sequencing: active for nb² cycles after `done`.
    let out_cnt = g.add("out_cnt", Accumulator::new(CNT));
    let active = g.add("active", Register::zeroed(B1));
    let out_last_hit = g.add("out_last_hit", Relational::new(RelOp::Eq, 6));
    g.connect(out_cnt, 0, out_last_hit, 0).unwrap();
    g.wire(last_c, out_last_hit, 1).unwrap();
    let out_last = g.add("out_last", Logical::new(LogicalOp::And, 2, B1));
    g.wire(out_last_hit, out_last, 0).unwrap();
    g.connect(active, 0, out_last, 1).unwrap();
    // next_active = done || (active && !out_last)
    let not_last = g.add("not_last", Logical::new(LogicalOp::Not, 1, B1));
    g.connect(out_last, 0, not_last, 0).unwrap();
    let keep = g.add("keep", Logical::new(LogicalOp::And, 2, B1));
    g.connect(active, 0, keep, 0).unwrap();
    g.wire(not_last, keep, 1).unwrap();
    let next_active = g.add("next_active", Logical::new(LogicalOp::Or, 2, B1));
    g.connect(done, 0, next_active, 0).unwrap();
    g.connect(keep, 0, next_active, 1).unwrap();
    g.connect(next_active, 0, active, 0).unwrap();
    g.wire(one_bit, active, 1).unwrap();
    g.wire(one_cnt, out_cnt, 0).unwrap();
    g.connect(active, 0, out_cnt, 1).unwrap();
    g.connect(done, 0, out_cnt, 2).unwrap();
    // Output mux over the hold registers, row-major by out_cnt.
    let omux = g.add("omux", Mux::new(nb * nb, W32));
    g.connect(out_cnt, 0, omux, 0).unwrap();
    for (idx, h) in holds.iter().enumerate() {
        g.connect(*h, 0, omux, 1 + idx).unwrap();
    }
    g.gateway_out("fsl0_out_data", omux, 0);
    g.gateway_out("fsl0_out_valid", active, 0);
    g.compile().expect("structural matmul compiles");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::hardware::matmul_graph;
    use crate::matmul::reference::Matrix;
    use softsim_blocks::block::bit;
    use softsim_blocks::Fix;

    fn fix32(v: i32) -> Fix {
        Fix::from_bits(v as u32 as u64, W32)
    }

    /// Drives a graph with B control words then A blocks (draining nb²
    /// outputs after each block); returns the output word stream.
    fn drive(g: &mut Graph, nb: usize, b_rm: &[i32], a_blocks: &[Vec<i32>]) -> Vec<i32> {
        let mut out = Vec::new();
        let step = |g: &mut Graph, w: i32, v: bool, c: bool, out: &mut Vec<i32>| {
            g.set_input("fsl0_data", fix32(w)).unwrap();
            g.set_input("fsl0_valid", bit(v)).unwrap();
            g.set_input("fsl0_ctrl", bit(c)).unwrap();
            g.step();
            if !g.output("fsl0_out_valid").unwrap().is_zero() {
                out.push(g.output("fsl0_out_data").unwrap().to_bits() as u32 as i32);
            }
        };
        for &bv in b_rm {
            step(g, bv, true, true, &mut out);
        }
        for block in a_blocks {
            for &av in block {
                step(g, av, true, false, &mut out);
            }
            // Drain before the next block (one-block output buffering).
            let target = out.len() + nb * nb;
            let mut guard = 0;
            while out.len() < target {
                step(g, 0, false, false, &mut out);
                guard += 1;
                assert!(guard < 100, "output never drained");
            }
        }
        out
    }

    #[test]
    fn structural_equals_mcode_unit() {
        for nb in [2usize, 4] {
            let b = Matrix::test_pattern(nb, 41);
            let a1 = Matrix::test_pattern(nb, 42);
            let a2 = Matrix::test_pattern(nb, 43);
            let to_cm = |m: &Matrix| -> Vec<i32> {
                (0..nb)
                    .flat_map(|k| (0..nb).map(move |i| (i, k)))
                    .map(|(i, k)| m.get(i, k))
                    .collect()
            };
            let blocks = vec![to_cm(&a1), to_cm(&a2)];
            let mut structural = matmul_structural_graph(nb);
            let mut mcode = matmul_graph(nb);
            let ys = drive(&mut structural, nb, &b.data, &blocks);
            let ym = drive(&mut mcode, nb, &b.data, &blocks);
            assert_eq!(ys, ym, "nb={nb}: structural and MCode streams differ");
            assert_eq!(ys.len(), 2 * nb * nb);
        }
    }

    #[test]
    fn structural_computes_correct_products() {
        let nb = 2;
        let b = Matrix::from_rows(2, vec![5, 6, 7, 8]);
        let a = Matrix::from_rows(2, vec![1, 2, 3, 4]);
        let a_cm = vec![1, 3, 2, 4];
        let mut g = matmul_structural_graph(nb);
        let y = drive(&mut g, nb, &b.data, &[a_cm]);
        let expect = crate::matmul::reference::multiply(&a, &b);
        assert_eq!(y, expect.data);
    }

    #[test]
    fn structural_resource_estimate_is_larger_but_same_multipliers() {
        // The schematic version spends extra slices on explicit decode
        // and sequencing logic; multiplier count must match.
        for nb in [2usize, 4] {
            let s = matmul_structural_graph(nb).resources();
            let m = matmul_graph(nb).resources();
            // nb² combinational 32-bit multipliers tile 4 MULT18s each in
            // the structural version vs nb lanes in the MCode estimate —
            // the schematic instantiates one multiplier per element.
            assert!(s.mult18s >= m.mult18s, "nb={nb}");
            assert!(s.slices > 0 && m.slices > 0);
        }
    }
}
