//! Block matrix multiplication (§IV-B of the paper).
//!
//! * [`mod@reference`] — dense and block-decomposed golden models (Eq. 3);
//! * [`hardware`] — the nb×nb block-product peripheral (Fig. 6);
//! * [`software`] — the pure-software baseline and the HW driver;
//! * [`rtl`] — the structural RTL netlist for the low-level baseline.

pub mod hardware;
pub mod reference;
pub mod rtl;
pub mod software;
pub mod structural;
